//! Minimal, dependency-free stand-in for the `rand` crate (0.9 API names).
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], [`Rng::random_range`], [`SliceRandom::shuffle`] — with
//! deterministic, seed-reproducible behaviour. The sampling algorithms are
//! simpler than upstream rand's (widening-multiply range reduction, no
//! rejection), which is fine here: callers only rely on determinism per
//! seed and approximate uniformity, never on upstream's exact streams.

/// Core random number generation: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (as upstream does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (e.g. `0..n`, `-1.0..1.0`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled from; implemented for the primitive ranges
/// the workspace uses.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + off
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Random slice operations (Fisher–Yates shuffle).
pub trait SliceRandom {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
            self.swap(i, j);
        }
    }
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn range_samples_in_bounds() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..7);
            assert!(v < 7);
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle should not be identity");
    }
}
