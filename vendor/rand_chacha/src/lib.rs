//! Minimal stand-in for the `rand_chacha` crate: a real ChaCha8 keystream
//! generator implementing the `rand` shim's [`RngCore`] / [`SeedableRng`].
//!
//! The block function is the genuine ChaCha quarter-round construction with
//! 8 rounds; only the word-extraction order and `seed_from_u64` expansion
//! differ from upstream, so streams are deterministic per seed but not
//! bit-identical to upstream `rand_chacha` (no caller relies on that).

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means exhausted.
    idx: usize,
}

#[inline]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // column round
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (o, s) in x.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.buf = x;
        self.idx = 0;
        // 64-bit block counter in words 12–13
        let (ctr, carry) = self.state[12].overflowing_add(1);
        self.state[12] = ctr;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter + nonce start at zero
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // 3 blocks' worth of words
        let vals: Vec<u32> = (0..48).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 40, "keystream should look random");
    }

    #[test]
    fn works_with_rng_trait_methods() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            let v: usize = rng.random_range(0..10);
            assert!(v < 10);
        }
        let mut xs: Vec<u32> = (0..20).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
