//! Minimal, dependency-free stand-in for the `rayon` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides exactly the API surface the workspace uses:
//!
//! * [`join`] runs its two closures on scoped OS threads — real parallelism,
//!   bounded by a per-join-tree **depth budget** (plus a global thread cap)
//!   so the top `DEPTH_BUDGET` levels of a recursion genuinely fork while
//!   deeper joins run sequentially, instead of degrading to sequential as
//!   soon as a handful of threads exist anywhere in the process;
//! * the parallel-iterator adapters ([`ParallelSlice::par_iter`],
//!   [`ParallelSliceMut::par_chunks_mut`], [`IntoParallelIterator`], …)
//!   run sequentially but keep rayon's combinator signatures (`reduce`
//!   with an identity closure, `zip` over parallel iterators, `unzip`),
//!   so call sites compile unchanged and produce identical results.
//!
//! Swap this for the real `rayon` from crates.io when network access is
//! available; no call site needs to change.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live scoped threads spawned by [`join`]; the global safety cap.
static LIVE_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Join-nesting depth of the current thread. A thread spawned by a
    /// depth-`d` join starts at depth `d + 1` (inherited below), so the
    /// budget bounds the *tree* depth, not a process-global count.
    static JOIN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Number of threads rayon would use (here: the machine's parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Forking depth: the top `DEPTH_BUDGET` join levels spawn (up to
/// `2^DEPTH_BUDGET` concurrent leaves per join tree); deeper joins run
/// sequentially. At least 3 levels even on a single-CPU host, so the
/// parallel paths of the kernels are always genuinely exercised.
fn depth_budget() -> u32 {
    let cpus = current_num_threads() as u32;
    (u32::BITS - cpus.leading_zeros() + 1).max(3)
}

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// Spawns `a` on a scoped thread while the calling thread runs `b`, while
/// within the per-tree depth budget and the global thread cap; otherwise
/// both run sequentially on the calling thread (preserving rayon's
/// effective semantics).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let depth = JOIN_DEPTH.with(|d| d.get());
    let cap = 4 * current_num_threads();
    if depth >= depth_budget() || LIVE_THREADS.load(Ordering::Relaxed) >= cap {
        return (a(), b());
    }
    // Returned on every exit path, including unwinding out of `b` or the
    // spawned `a` — a leaked permit would permanently shrink the budget.
    struct Permit;
    impl Drop for Permit {
        fn drop(&mut self) {
            LIVE_THREADS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    LIVE_THREADS.fetch_add(1, Ordering::Relaxed);
    let _permit = Permit;
    // Restores the caller's depth even when `b` unwinds.
    struct Depth(u32);
    impl Drop for Depth {
        fn drop(&mut self) {
            JOIN_DEPTH.with(|d| d.set(self.0));
        }
    }
    let _restore = Depth(depth);
    JOIN_DEPTH.with(|d| d.set(depth + 1));
    std::thread::scope(|s| {
        let ha = s.spawn(move || {
            JOIN_DEPTH.with(|d| d.set(depth + 1));
            a()
        });
        let rb = b();
        let ra = ha.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

/// Wrapper that stands in for rayon's parallel iterators.
///
/// Combinators are inherent methods (not an `Iterator` impl) so that
/// rayon-specific signatures like `reduce(identity, op)` resolve here
/// rather than to `std::iter::Iterator`.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        I: Iterator<Item = (A, B)>,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        self.0.unzip()
    }
}

impl<'a, T: 'a, I: Iterator<Item = &'a T>> ParIter<I> {
    pub fn copied(self) -> ParIter<std::iter::Copied<I>>
    where
        T: Copy,
    {
        ParIter(self.0.copied())
    }

    pub fn cloned(self) -> ParIter<std::iter::Cloned<I>>
    where
        T: Clone,
    {
        ParIter(self.0.cloned())
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// `into_par_iter` on anything iterable (ranges, vectors, …).
pub trait IntoParallelIterator {
    type Item;
    type IntoIter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::IntoIter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type IntoIter = I::IntoIter;
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn nested_join_degrades_gracefully() {
        fn sum(xs: &[u64]) -> u64 {
            if xs.len() <= 4 {
                return xs.iter().sum();
            }
            let (l, r) = xs.split_at(xs.len() / 2);
            let (a, b) = super::join(|| sum(l), || sum(r));
            a + b
        }
        let xs: Vec<u64> = (0..10_000).collect();
        assert_eq!(sum(&xs), 10_000 * 9_999 / 2);
    }

    #[test]
    fn join_restores_thread_budget_after_panic() {
        for _ in 0..3 {
            let r = std::panic::catch_unwind(|| super::join(|| 1, || panic!("boom")));
            assert!(r.is_err());
        }
        // The permits must drain back even though `b` unwound; spin briefly
        // because other tests may hold permits concurrently.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let live = super::LIVE_THREADS.load(std::sync::atomic::Ordering::Relaxed);
            if live < super::current_num_threads() * 4 || std::time::Instant::now() > deadline {
                assert!(
                    live < super::current_num_threads() * 4,
                    "panicking joins leaked thread-budget permits ({live} live)"
                );
                break;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn join_forks_real_threads_up_to_the_depth_budget() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Three levels of joins must involve more than one OS thread: the
        // depth budget is at least 3 on every host, and spawning is only
        // capped by the (much larger) global thread cap.
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        fn rec(depth: u32, ids: &Mutex<HashSet<std::thread::ThreadId>>) {
            if depth == 0 {
                ids.lock().unwrap().insert(std::thread::current().id());
                return;
            }
            super::join(|| rec(depth - 1, ids), || rec(depth - 1, ids));
        }
        rec(3, &ids);
        assert!(
            ids.lock().unwrap().len() >= 2,
            "a 3-deep join tree must fork at least one real thread"
        );
    }

    #[test]
    fn par_iter_combinators_match_sequential() {
        let a: Vec<u64> = (0..100).collect();
        let s: u64 = a.par_iter().copied().reduce(|| 0, u64::wrapping_add);
        assert_eq!(s, 4950);
        let doubled: Vec<u64> = a.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        let (evens, odds): (Vec<u64>, Vec<u64>) = (0..10u64)
            .into_par_iter()
            .map(|i| (i * 2, i * 2 + 1))
            .unzip();
        assert_eq!(evens[4], 8);
        assert_eq!(odds[4], 9);
    }

    #[test]
    fn par_chunks_mut_zip_writes() {
        let src: Vec<u64> = (0..16).collect();
        let mut dst = vec![0u64; 16];
        dst.par_chunks_mut(4)
            .zip(src.par_chunks(4))
            .for_each(|(d, s)| d.copy_from_slice(s));
        assert_eq!(dst, src);
    }
}
