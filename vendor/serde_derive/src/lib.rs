//! No-op derive macros backing the `serde` shim: `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` expand to empty impls of the shim's marker
//! traits. Written against `proc_macro` directly (no syn/quote — the build
//! environment has no crates.io access), so it only supports what this
//! workspace derives on: non-generic structs and enums.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name: the identifier following the `struct`/`enum`/
/// `union` keyword, skipping attributes, doc comments and visibility.
fn type_name(input: &TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive shim: could not find a type name in derive input");
}

fn assert_no_generics(input: &TokenStream, name: &str) {
    let mut after_name = false;
    for tt in input.clone() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == name => after_name = true,
            TokenTree::Punct(p) if after_name && p.as_char() == '<' => {
                panic!(
                    "serde_derive shim: generic type `{name}` is not supported; \
                     hand-write the marker impl or extend the shim"
                );
            }
            TokenTree::Group(_) | TokenTree::Punct(_) if after_name => break,
            _ => {}
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_no_generics(&input, &name);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_no_generics(&input, &name);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
