//! Minimal stand-in for `serde`: the `Serialize` / `Deserialize` traits as
//! markers, plus no-op derive macros (from the sibling `serde_derive` shim).
//!
//! The workspace only uses serde derives to tag report/config structs as
//! serializable; nothing actually serializes through serde yet (the bench
//! binaries emit JSON by hand). When real serialization lands, replace this
//! shim with the registry crate — the derive call sites are already correct.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias trait, as in upstream serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
