//! Minimal stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range/tuple/vec/bool strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! seeds: each test function draws `cases` deterministic samples (the RNG
//! is seeded from the case index, so runs are reproducible everywhere) and
//! asserts the property on each. That keeps the tests meaningful — they
//! still sweep the input space — while staying dependency-free.

/// Deterministic test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + off
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as u128) - (s as u128) + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                s + off
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        /// `prop::collection::vec(elem, min..max)`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        use crate::{Strategy, TestRng};

        pub struct Any;

        /// `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that asserts the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (
        @cfg ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        0xC0FE_u64 ^ ((case as u64) << 16) ^ (line!() as u64),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert a property (shim: plain `assert!` — failures abort the test
/// immediately instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 0u64..100, y in 1usize..8) {
            prop_assert!(x < 100);
            prop_assert!((1..8).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u64..10, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuple_strategy_samples(t in (0usize..4, 0u64..512, prop::bool::ANY)) {
            let (a, b, _c) = t;
            prop_assert!(a < 4 && b < 512);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
