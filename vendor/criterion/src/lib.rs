//! Minimal stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock harness: per sample
//! one timed closure call, reporting min/mean/median over the samples.
//!
//! Modes, driven by the CLI args cargo passes:
//! * `cargo bench` (no special args): full sampling, human-readable report
//!   on stdout, machine-readable JSON lines appended to the path in
//!   `$CRITERION_JSON` (if set).
//! * `cargo test` / `--test`: each benchmark body runs exactly once as a
//!   smoke test, no timing report.

use std::time::{Duration, Instant};

/// One timed benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    smoke: bool,
}

impl Bencher {
    /// Time `f`, once per sample (or exactly once in smoke mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            std::hint::black_box(f());
            return;
        }
        // one warmup call, then the timed samples
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Identifier `group/function/parameter` for a benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes harness=false bench binaries with `--bench`;
        // `cargo test --benches` invokes them with no marker flag. Only do
        // full sampling under `cargo bench` — everything else (test runs,
        // direct invocation) is a quick smoke pass.
        let smoke = !std::env::args().any(|a| a == "--bench");
        Criterion { smoke }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let smoke = self.smoke;
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
            smoke,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let smoke = self.smoke;
        run_one("", 10, smoke, &id.into(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    smoke: bool,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, self.sample_size, self.smoke, &id.into(), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    sample_size: usize,
    smoke: bool,
    id: &BenchmarkId,
    mut f: F,
) {
    let full = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        smoke,
    };
    f(&mut b);
    if smoke {
        println!("bench {full}: ok (smoke)");
        return;
    }
    let mut ns: Vec<u128> = b.samples.iter().map(|d| d.as_nanos()).collect();
    ns.sort_unstable();
    let (min, median, mean) = if ns.is_empty() {
        (0, 0, 0)
    } else {
        (
            ns[0],
            ns[ns.len() / 2],
            ns.iter().sum::<u128>() / ns.len() as u128,
        )
    };
    println!(
        "bench {full:<40} min {:>12} ns   median {:>12} ns   mean {:>12} ns   ({} samples)",
        min,
        median,
        mean,
        ns.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{full}\",\"min_ns\":{min},\"median_ns\":{median},\"mean_ns\":{mean},\"samples\":{}}}",
                ns.len()
            );
        }
    }
}

/// Collect benchmark functions into one runner, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_function() {
        let mut c = Criterion { smoke: false };
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke: true };
        let mut runs = 0;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("sum", "seq");
        assert_eq!(id.id, "sum/seq");
    }
}
