//! Cross-crate regression tests for the PR 4 native runtime: the
//! lock-free Chase-Lev pool must be a drop-in replacement for the
//! mutex-deque pool — structurally identical traces, policy-driven
//! execution end-to-end through the `Executor` layer.

use std::sync::Arc;

use hbp_core::prelude::*;
use hbp_core::sched::native::{DequeKind, NativeConfig, NativePool};
use hbp_core::sched::Policy as SchedPolicy;
use hbp_core::trace as tr;

/// Recursive join-based sum through the algos layer's pool routing.
fn traced_native_sum(deque: DequeKind, workers: usize) -> (u64, tr::Trace) {
    let xs: Vec<u64> = (0..1 << 14).collect();
    let cfg = NativeConfig {
        workers,
        seed: 33,
        policy: SchedPolicy::Rws { seed: 4 },
        deque,
        ..NativeConfig::default()
    };
    let sink = Arc::new(TraceSink::new(workers, ClockDomain::WallNs));
    let (got, _) = NativePool::run_traced(cfg, Some(Arc::clone(&sink)), || {
        hbp_core::algos::par::par_sum(&xs)
    });
    (got, sink.collect())
}

/// The ISSUE 4 satellite: `trace_diff`'s library layer aligns a
/// mutex-deque trace with a Chase-Lev trace of the same kernel and
/// finds them structurally identical — same task-id set, same fork and
/// begin/end tallies — even though timestamps, steal counts, and worker
/// placements differ freely between pools.
#[test]
fn mutex_and_chase_lev_traces_are_structurally_identical() {
    let (sum_mx, trace_mx) = traced_native_sum(DequeKind::Mutex, 4);
    let (sum_cl, trace_cl) = traced_native_sum(DequeKind::ChaseLev, 4);
    assert_eq!(sum_mx, sum_cl, "same kernel, same answer");
    let d = tr::diff(&trace_mx, &trace_cl);
    assert!(
        d.structurally_equal(),
        "mutex vs Chase-Lev pools must execute the same task DAG:\n{d}"
    );
    assert_eq!(d.a.tasks, d.b.tasks);
    assert_eq!(d.a.forks, d.b.forks);
    // Native traces are wall-clock: the diff must degrade gracefully
    // (no critical path, no bogus divergence).
    assert!(d.cp_a.is_none() && d.cp_b.is_none());
    assert!(d.divergence.is_none());
}

/// Two sim policies on one kernel: identical task-id sets (the recorded
/// computation's node ids), structural equality, and an explicit
/// critical-path comparison — the `trace_diff` binary's exact flow.
#[test]
fn sim_policy_diff_aligns_by_task_id_and_compares_critical_paths() {
    let machine = MachineConfig::new(8, 1 << 10, 32);
    let job = ExecJob::new("Scans (M-Sum)", 2048, 42);
    let trace_of = |policy: Policy| -> tr::Trace {
        let ex = SimExecutor { machine, policy };
        let sink = Arc::new(TraceSink::new(ex.workers(), ex.clock_domain()));
        ex.execute_traced(&job, &sink).expect("sim runs everything");
        sink.collect()
    };
    let ta = trace_of(Policy::Pws);
    let tb = trace_of(Policy::Rws { seed: 3 });
    let d = tr::diff(&ta, &tb);
    assert!(d.structurally_equal(), "{d}");
    assert_eq!(d.only_a_total + d.only_b_total, 0, "shared node-id space");
    let (cp_a, cp_b) = (d.cp_a.as_ref().unwrap(), d.cp_b.as_ref().unwrap());
    assert_eq!(cp_a.total, d.a.makespan, "sim CP equals makespan");
    assert_eq!(cp_b.total, d.b.makespan);
    // PWS and RWS schedule differently; the diff localizes that to a
    // hop (or finds identical paths, which fixed seeds make stable —
    // either way the field must be consistent with the hop lists).
    match &d.divergence {
        Some(div) => assert!(div.hop <= cp_a.hops.len().min(cp_b.hops.len())),
        None => assert_eq!(
            cp_a.hops.iter().map(|h| h.task).collect::<Vec<_>>(),
            cp_b.hops.iter().map(|h| h.task).collect::<Vec<_>>()
        ),
    }
}

/// A diff of a trace against itself is exactly clean.
#[test]
fn self_diff_is_clean_on_both_backends() {
    let (_, native) = traced_native_sum(DequeKind::ChaseLev, 2);
    let d = tr::diff(&native, &native);
    assert!(d.structurally_equal(), "{d}");
    assert_eq!(d.a, d.b);
}

/// `HBP_POLICY`-style policy selection reaches the native pool through
/// the `Executor` layer: every policy runs every mapped kernel.
#[test]
fn native_executor_honours_policy_for_all_kernels() {
    for policy in [
        Policy::Pws,
        Policy::Rws { seed: 7 },
        Policy::Bsp { prefix_levels: 4 },
    ] {
        let ex = NativeExecutor {
            policy,
            ..NativeExecutor::new(2, 1)
        };
        let r = ex
            .execute(&ExecJob::new("Scans (M-Sum)", 1 << 12, 3))
            .expect("M-Sum has a native kernel");
        assert!(r.makespan > 0, "{policy:?}");
        assert!(r.work > 1, "{policy:?}");
    }
}

/// The parse path every binary shares: `HBP_POLICY` syntax round-trips
/// and rejects typos with actionable messages.
#[test]
fn policy_parse_accepts_the_documented_syntax() {
    assert_eq!(Policy::parse(None), Ok(Policy::Pws));
    assert_eq!(Policy::parse(Some("pws")), Ok(Policy::Pws));
    assert_eq!(Policy::parse(Some("rws")), Ok(Policy::Rws { seed: 1 }));
    assert_eq!(Policy::parse(Some("rws:9")), Ok(Policy::Rws { seed: 9 }));
    assert_eq!(
        Policy::parse(Some("bsp:6")),
        Ok(Policy::Bsp { prefix_levels: 6 })
    );
    for bad in ["pwz", "rws:x", "pws:1", "priority", "bsp:4294967296"] {
        let err = Policy::parse(Some(bad)).expect_err(bad);
        assert!(err.contains("HBP_POLICY"), "names the variable: {err}");
    }
    assert_eq!(DequeKind::parse(None), Ok(DequeKind::ChaseLev));
    assert_eq!(DequeKind::parse(Some("mutex")), Ok(DequeKind::Mutex));
    assert!(DequeKind::parse(Some("spinlock"))
        .expect_err("typo")
        .contains("HBP_DEQUE"));
}
