//! Smoke tests: run every `examples/*.rs` main on tiny inputs so the
//! examples can never silently rot. Each example reads `HBP_EXAMPLE_N`
//! (see `hbp_repro::example_size`) to shrink its problem size; the
//! assertions inside the examples still run, so this checks behaviour,
//! not just that the binaries launch.

use std::path::PathBuf;
use std::process::Command;

/// Path of a compiled example binary, next to this test binary
/// (`target/<profile>/deps/examples_smoke-…` → `target/<profile>/examples/`).
fn example_bin(name: &str) -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push("examples");
    p.push(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    p
}

/// Run one example with a tiny problem size; panic with its output on
/// failure so CI logs show what broke.
fn run_example(name: &str, tiny_n: usize) {
    let bin = example_bin(name);
    assert!(
        bin.exists(),
        "example binary {} not built; run `cargo test` (which builds examples) \
         or `cargo build --examples` first",
        bin.display()
    );
    let out = Command::new(&bin)
        .env("HBP_EXAMPLE_N", tiny_n.to_string())
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", bin.display()));
    assert!(
        out.status.success(),
        "example `{name}` (HBP_EXAMPLE_N={tiny_n}) failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn quickstart_smoke() {
    run_example("quickstart", 512);
}

#[test]
fn false_sharing_demo_smoke() {
    // Must stay large enough that the shared-block run still shows a
    // >100x block-miss blowup (the example asserts it).
    run_example("false_sharing_demo", 400);
}

#[test]
fn matrix_pipeline_smoke() {
    run_example("matrix_pipeline", 8);
}

#[test]
fn signal_fft_smoke() {
    run_example("signal_fft", 256);
}

#[test]
fn tree_analytics_smoke() {
    run_example("tree_analytics", 48);
}

#[test]
fn trace_tour_smoke() {
    // The example itself asserts critical path == makespan and the
    // miss-delta reconciliation.
    run_example("trace_tour", 256);
}

#[test]
fn serve_tour_smoke() {
    // Runs a full (shrunk) load scenario on the ambient backend: closed
    // loop, then an open-loop overload probe; the example asserts
    // accounting and (on sim) byte-identical reproduction.
    run_example("serve_tour", 48);
}

#[test]
fn spms_tour_smoke() {
    // The example asserts oracle-sorted, stable output on whichever
    // backend the ambient HBP_BACKEND selects (CI's spms-matrix job runs
    // it across every backend × policy × deque cell).
    run_example("spms_tour", 512);
}
