//! Integration tests for the paper's two block-miss mitigation techniques:
//! padded computations (§4.7, Def 3.3) and gapping (§3.2, §4.6).

use hbp_core::prelude::*;

use hbp_core::algos::{gen, listrank, scan, sort, strassen};

/// Padding (Def 3.3) separates stack frames: stack block misses must not
/// increase, and should typically drop, across algorithms that use
/// parent-frame locals.
#[test]
fn padding_reduces_stack_block_misses() {
    let n = 1 << 13;
    let data = gen::random_u64s(n, 1 << 30, 1);
    let cfg = MachineConfig::new(8, 1 << 12, 32);

    let (plain, _) = scan::m_sum(&data, BuildConfig::with_block(32));
    let (padded, _) = scan::m_sum(&data, BuildConfig::with_block(32).padded());
    let rp = run(&plain, cfg, Policy::Pws);
    let rq = run(&padded, cfg, Policy::Pws);
    assert!(
        rq.stack_block_misses <= rp.stack_block_misses,
        "padded {} > plain {}",
        rq.stack_block_misses,
        rp.stack_block_misses
    );
}

#[test]
fn padding_preserves_results_and_work() {
    let n = 1 << 10;
    let data = gen::random_u64s(n, 1 << 20, 2);
    let (plain, o1) = scan::prefix_sums(&data, BuildConfig::with_block(32));
    let (padded, o2) = scan::prefix_sums(&data, BuildConfig::with_block(32).padded());
    assert_eq!(plain.work(), padded.work());
    assert_eq!(
        hbp_core::algos::util::read_out(&plain, o1),
        hbp_core::algos::util::read_out(&padded, o2)
    );
}

/// Strassen allocates Θ(m) stack arrays per task; padding again must not
/// hurt.
#[test]
fn padding_on_strassen_stacks() {
    let n = 16;
    let bi: Vec<f64> = (0..n * n).map(|x| (x % 9) as f64).collect();
    let cfg = MachineConfig::new(8, 1 << 12, 32);
    let (plain, _) = strassen::strassen_bi(&bi, &bi, n, BuildConfig::with_block(32));
    let (padded, _) = strassen::strassen_bi(&bi, &bi, n, BuildConfig::with_block(32).padded());
    let rp = run(&plain, cfg, Policy::Pws);
    let rq = run(&padded, cfg, Policy::Pws);
    assert!(rq.stack_block_misses <= rp.stack_block_misses + 8);
}

/// Gapping in list ranking (§4.6): once the contracted list has size
/// ≤ n/B², every element sits in its own block, so deep-level block misses
/// vanish; totals should not grow.
#[test]
fn lr_gapping_does_not_increase_block_misses() {
    let n = 1 << 12;
    let succ = gen::random_list(n, 77);
    let cfg = MachineConfig::new(8, 1 << 12, 16);
    let (gapped, _) = listrank::list_rank(&succ, BuildConfig::with_block(16), true);
    let (dense, _) = listrank::list_rank(&succ, BuildConfig::with_block(16), false);
    let rg = run(&gapped, cfg, Policy::Pws);
    let rd = run(&dense, cfg, Policy::Pws);
    assert!(
        rg.heap_block_misses <= rd.heap_block_misses + rd.heap_block_misses / 4 + 64,
        "gapped {} vs dense {}",
        rg.heap_block_misses,
        rd.heap_block_misses
    );
}

/// Sorting through fresh stack buffers must produce correct, fully
/// executed runs under both schedulers on a parameter grid.
#[test]
fn sort_runs_on_machine_grid() {
    let n = 2048;
    let keys = gen::random_u64s(n, 1 << 40, 9);
    let data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 1)).collect();
    let (comp, out) = sort::mergesort(&data, BuildConfig::with_block(32));
    let sorted = hbp_core::algos::util::read_out(&comp, out);
    assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
    for p in [2usize, 8] {
        for m in [1u64 << 10, 1 << 14] {
            let cfg = MachineConfig::new(p, m, 32);
            let r = run(&comp, cfg, Policy::Pws);
            assert_eq!(r.work, comp.work(), "p={p} M={m}");
        }
    }
}
