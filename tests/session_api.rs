//! The session API contract, end to end: one opened session serves many
//! jobs from many client threads, every submission resolves to exactly
//! one report, and traced runs are structurally deterministic under a
//! fixed seed.

use std::sync::Arc;

use hbp_core::prelude::*;
use hbp_core::trace::EventKind;

fn native_ex(seed: u64) -> NativeExecutor {
    NativeExecutor {
        seed,
        policy: Policy::Rws { seed: 1 },
        ..NativeExecutor::new(2, 0)
    }
}

#[test]
fn native_session_delivers_every_report_exactly_once_across_client_threads() {
    const CLIENTS: usize = 4;
    const JOBS: u64 = 25;
    let session = native_ex(7).open();
    // The task count of a kernel is structural (forks don't depend on
    // who steals what), so one reference run pins what every job's
    // report must say.
    let reference = session
        .submit(&ExecJob::new("Scans (M-Sum)", 1 << 10, 0))
        .expect("live session admits")
        .wait()
        .expect("M-Sum has a native kernel")
        .work;
    assert!(reference > 0);

    let all: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let session = &session;
                scope.spawn(move || {
                    (0..JOBS)
                        .map(|i| {
                            session
                                .submit(&ExecJob::new("Scans (M-Sum)", 1 << 10, c as u64 * 100 + i))
                                .expect("live session admits")
                                .wait()
                                .expect("mapped kernel resolves")
                                .work
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    // Exactly once: every handle resolved (wait() consumed it), and the
    // structural work accounting shows each job ran in full exactly once.
    assert_eq!(all.len(), CLIENTS * JOBS as usize);
    assert!(all.iter().all(|&w| w == reference));
}

#[test]
fn sim_session_is_shareable_and_matches_the_one_shot_path() {
    let ex = SimExecutor {
        machine: MachineConfig::new(4, 1 << 10, 32),
        policy: Policy::Pws,
    };
    let session = ex.open();
    let job = ExecJob::new("FFT", 512, 3);
    let one_shot = ex.execute(&job).expect("FFT builds");
    let results: Vec<ExecReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let session = &session;
                let job = &job;
                scope.spawn(move || {
                    session
                        .submit(job)
                        .expect("sim admits everything")
                        .wait()
                        .expect("FFT builds")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    for r in &results {
        assert_eq!(
            r.makespan, one_shot.makespan,
            "sim sessions are deterministic"
        );
        assert_eq!(r.work, one_shot.work);
    }
}

#[test]
fn traced_session_task_counts_are_deterministic_under_a_fixed_seed() {
    let count_tasks = |seed: u64| -> Vec<u64> {
        let session = native_ex(seed).open();
        (0..4u64)
            .map(|i| {
                let sink = Arc::new(TraceSink::new(2, ClockDomain::WallNs));
                session
                    .submit_traced(&ExecJob::new("LR", 512, i), &sink)
                    .expect("live session admits")
                    .wait()
                    .expect("LR has a native kernel");
                sink.collect()
                    .count(|k| matches!(k, EventKind::TaskBegin { .. }))
            })
            .collect()
    };
    let a = count_tasks(7);
    let b = count_tasks(7);
    assert_eq!(
        a, b,
        "same seed, same jobs: the traced task structure must repeat"
    );
    assert!(a.iter().all(|&c| c > 0), "every job recorded tasks");
}

#[test]
fn unmapped_algorithm_yields_a_job_error_not_a_hang() {
    // CC has no par_* kernel: the native session resolves the job at
    // submit time and the handle reports the typed error instead of
    // stranding a waiter.
    let session = native_ex(3).open();
    let handle = session
        .submit(&ExecJob::new("CC", 256, 0))
        .expect("admission succeeds; resolution fails");
    assert!(matches!(handle.wait(), Err(JobError::Unmapped { algo }) if algo == "CC"));
    // The session (and its pool) still serves mapped jobs afterwards.
    assert!(session
        .submit(&ExecJob::new("Sort (SPMS)", 512, 1))
        .expect("live session admits")
        .wait()
        .is_ok());
}
