//! Invariants of the `hbp-trace` subsystem against both backends.
//!
//! The load-bearing one: on the sim backend, the **critical path
//! extracted from a recorded trace equals the simulator's virtual-time
//! makespan exactly** — for multiple kernels under both PWS and RWS.
//! The critical path is computed by back-chaining released segments
//! through fork/join/steal edges (see `hbp_trace::critical`), an
//! entirely different computation from the engine's max-over-core
//! clocks, so agreement pins down both the event emission protocol and
//! the simulator's time accounting.

use hbp_core::prelude::*;
use hbp_core::trace::{chrome_trace, critical_path, json, summarize, CpError, EventKind, HopVia};

fn machine() -> MachineConfig {
    MachineConfig::new(4, 1 << 10, 32)
}

fn build(algo: &str) -> Computation {
    let spec = find(algo).unwrap_or_else(|| panic!("registry has {algo}"));
    let n = match spec.size {
        SizeKind::Linear => 1 << 10,
        SizeKind::MatrixSide => 16,
    };
    (spec.build)(n, BuildConfig::with_block(32), 42)
}

fn traced(comp: &Computation, policy: Policy) -> (ExecReport, hbp_core::trace::Trace) {
    let sink = TraceSink::new(machine().p, ClockDomain::Virtual);
    let report = run_traced(comp, machine(), policy, &sink);
    (report, sink.collect())
}

#[test]
fn critical_path_equals_sim_makespan_for_kernels_and_policies() {
    // ≥ 2 kernels × {PWS, RWS}; FFT and Strassen fork heavily, PS is the
    // paper's two-pass Type-1 shape, MT is a matrix kernel, and SPMS is
    // the irregular sample–partition–merge recursion (data-dependent
    // bucket fanouts — the acceptance row for the real sort).
    for algo in ["Scans (PS)", "FFT", "Strassen", "MT", "Sort (SPMS)"] {
        let comp = build(algo);
        for policy in [
            Policy::Pws,
            Policy::Rws { seed: 1 },
            Policy::Rws { seed: 1234 },
        ] {
            let (report, trace) = traced(&comp, policy);
            assert_eq!(trace.dropped, 0, "{algo}/{policy:?}: complete trace");
            let cp = critical_path(&trace)
                .unwrap_or_else(|e| panic!("{algo}/{policy:?}: critical path failed: {e}"));
            assert_eq!(
                cp.total, report.makespan,
                "{algo}/{policy:?}: critical path must equal the virtual-time makespan"
            );
            assert_eq!(
                cp.total,
                cp.work + cp.steal + cp.queue_wait,
                "{algo}/{policy:?}: decomposition adds up"
            );
            // The path is a contiguous chain from time 0 to the makespan.
            assert_eq!(cp.hops.first().map(|h| h.start), Some(0));
            assert_eq!(cp.hops.last().map(|h| h.end), Some(report.makespan));
            assert!(matches!(
                cp.hops.first().map(|h| h.via),
                Some(HopVia::Start)
            ));
        }
    }
}

#[test]
fn trace_miss_deltas_sum_to_report_counters() {
    for algo in ["Scans (PS)", "FFT"] {
        let comp = build(algo);
        for policy in [Policy::Pws, Policy::Rws { seed: 7 }] {
            let (report, trace) = traced(&comp, policy);
            let s = summarize(&trace);
            assert_eq!(
                s.misses,
                (
                    report.heap_block_misses,
                    report.stack_block_misses,
                    report.stack_plain_misses
                ),
                "{algo}/{policy:?}: per-segment miss deltas must sum to the report"
            );
            assert_eq!(s.steals, report.steals, "{algo}/{policy:?}: steal commits");
            assert_eq!(
                s.steals + s.steal_fails,
                report.steal_attempts,
                "{algo}/{policy:?}: traced attempts match Cor 4.1 accounting"
            );
        }
    }
}

#[test]
fn tracing_is_observational_reports_identical() {
    let comp = build("FFT");
    for policy in [Policy::Pws, Policy::Rws { seed: 3 }] {
        let plain = run(&comp, machine(), policy);
        let (traced_report, _) = traced(&comp, policy);
        assert_eq!(plain.makespan, traced_report.makespan);
        assert_eq!(plain.work, traced_report.work);
        assert_eq!(plain.steals, traced_report.steals);
        assert_eq!(plain.steal_attempts, traced_report.steal_attempts);
        assert_eq!(plain.busy, traced_report.busy);
        assert_eq!(plain.idle, traced_report.idle);
        assert_eq!(plain.usurpations, traced_report.usurpations);
    }
}

#[test]
fn chrome_export_parses_and_contains_every_worker_lane() {
    let comp = build("Scans (PS)");
    let (_, trace) = traced(&comp, Policy::Pws);
    let jtext = chrome_trace(&trace);
    let doc = json::parse(&jtext).expect("chrome export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every worker appears as a named thread lane.
    for w in 0..machine().p {
        let lane = format!("worker {w}");
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|n| n.as_str())
                        == Some(&lane)
            }),
            "missing {lane}"
        );
    }
    // Segment events carry numeric ts/dur.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(|p| p.as_str()) == Some("X")
            && e.get("dur").and_then(|d| d.as_f64()).is_some()
    }));
}

#[test]
fn truncated_ring_reports_dropped_and_refuses_critical_path() {
    let comp = build("FFT");
    let sink = hbp_core::trace::TraceSink::with_capacity(machine().p, ClockDomain::Virtual, 64);
    let _ = run_traced(&comp, machine(), Policy::Pws, &sink);
    let trace = sink.collect();
    assert!(trace.dropped > 0, "tiny ring must overflow");
    assert!(matches!(critical_path(&trace), Err(CpError::Truncated)));
}

#[test]
fn native_trace_has_balanced_nesting_and_consistent_steals() {
    let ex = NativeExecutor::new(3, 9);
    let sink = std::sync::Arc::new(TraceSink::new(3, ClockDomain::WallNs));
    let report = ex
        .execute_traced(&ExecJob::new("Sort (SPMS)", 1 << 12, 5), &sink)
        .expect("sort has a native kernel");
    let trace = sink.collect();
    assert_eq!(trace.clock, ClockDomain::WallNs);
    let segments = trace.segments();
    assert_eq!(segments.unclosed, 0, "all begin/end pairs balance");
    assert_eq!(
        trace.count(|k| matches!(k, EventKind::TaskBegin { .. })),
        trace.count(|k| matches!(k, EventKind::TaskEnd { .. }))
    );
    // Every traced steal commit is also in the report's counter.
    let traced_steals = trace.count(|k| matches!(k, EventKind::StealCommit { .. }));
    assert_eq!(traced_steals, report.steals);
    // Wall-clock traces decline critical-path extraction explicitly.
    assert!(matches!(
        critical_path(&trace),
        Err(CpError::WallClockTrace)
    ));
    let s = summarize(&trace);
    assert_eq!(s.workers, 3);
    assert!(s.busy_total > 0);
}

#[test]
fn env_trace_wrapper_returns_trace_only_when_enabled() {
    // Robust to an ambient HBP_TRACE: assert consistency with it.
    let ex = SimExecutor {
        machine: machine(),
        policy: Policy::Pws,
    };
    let run = execute_with_env_trace(&ex, &ExecJob::new("Scans (M-Sum)", 256, 1))
        .expect("M-Sum runs on sim");
    assert_eq!(
        run.trace.is_some(),
        hbp_core::Config::from_env().trace,
        "trace handle present iff HBP_TRACE enables it"
    );
    assert!(run.report.makespan > 0);
}
