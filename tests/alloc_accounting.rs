//! Allocation-accounting regression test for the fused SPMS hot path.
//!
//! PR 7 replaced per-bucket scratch `Vec`s (and `sort_unstable`'s hidden
//! per-call temp buffer) with one ping-pong arena sized by `arena_len`,
//! carved into disjoint line-aligned windows. The point of that design is
//! allocation behaviour: the sort makes O(1) large allocations per
//! super-recursion level — roughly O(log log n) total — instead of the
//! O(√n) per-bucket/per-chunk pattern the old code had (at n = 2^16 that
//! was ~256 chunk-sort temps plus ~3 Vecs for each of ~256 buckets).
//!
//! A counting `GlobalAlloc` wrapper pins that: running `par_spms` on
//! n = 2^16 pairs must stay under a small constant number of *large*
//! (≥ 4 KiB) allocations. Small allocations are ignored — the vendored
//! rayon spawns scoped threads whose bookkeeping (thread packets, join
//! handles) allocates a few hundred bytes each, and those are not what
//! this test gates. A regression back to per-bucket buffers trips the
//! bound by an order of magnitude (hundreds of ≥ 4 KiB allocations), so
//! the margin below is generous without being blind.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Allocations at or above this size count toward the budget. The arena,
/// the flattened cut/boundary tables, and the sample vector all clear it
/// at n = 2^16; thread-spawn bookkeeping stays well under it.
const LARGE: usize = 4096;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static LARGE_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= LARGE && ARMED.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow crossing the threshold is a fresh large allocation from
        // the accounting point of view (Vec doubling into large sizes).
        if new_size >= LARGE && ARMED.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn keyed(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut s = seed | 1;
    (0..n as u64)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s, i)
        })
        .collect()
}

#[test]
fn par_spms_makes_constant_large_allocations_not_per_bucket() {
    let n = 1 << 16;
    let mut data = keyed(n, 0x5eed);
    let mut expect: Vec<(u64, u64)> = data.clone();
    expect.sort(); // payloads are unique, so a full sort is the oracle

    ARMED.store(true, Ordering::SeqCst);
    hbp_core::algos::par::par_spms(&mut data);
    ARMED.store(false, Ordering::SeqCst);
    let large = LARGE_ALLOCS.load(Ordering::SeqCst);

    assert_eq!(data, expect, "sorted output before counting anything");
    // One super-recursion level at n = 2^16 (chunks of 256 fall to the
    // sequential cutoff): the arena plus a handful of flattened tables.
    // The old per-bucket shape costs hundreds here.
    assert!(
        large <= 32,
        "par_spms(n=2^16) made {large} large (>= {LARGE} B) allocations; \
         expected O(1) per super-level — per-bucket scratch is back"
    );
    // Guard the guard: the counter is actually armed and counting (the
    // arena alone is a multi-MB allocation).
    assert!(
        large >= 1,
        "counter saw no large allocations — test is inert"
    );
}
