//! Integration tests for the §5 extensions: the two-level cache hierarchy
//! (§5.2) and the bulk-synchronous mapping (§5.3), across the registry.

use hbp_core::prelude::*;

fn small_n(spec: &AlgoSpec) -> usize {
    match spec.size {
        SizeKind::Linear => 256,
        SizeKind::MatrixSide => 16,
    }
}

#[test]
fn bsp_executes_all_work_with_bounded_steal_sizes() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 3);
        let cfg = MachineConfig::new(8, 1 << 11, 32);
        let levels = 4;
        let r = run(
            &comp,
            cfg,
            Policy::Bsp {
                prefix_levels: levels,
            },
        );
        assert_eq!(r.work, comp.work(), "{}", spec.name);
        let root_size = spec.elements(small_n(&spec)) as u64;
        let floor = (root_size >> levels).max(1);
        for &s in &r.stolen_sizes {
            assert!(
                s >= floor,
                "{}: BSP stole size {s} below floor {floor}",
                spec.name
            );
        }
    }
}

#[test]
fn bsp_is_deterministic() {
    let spec = find("FFT").unwrap();
    let comp = (spec.build)(256, BuildConfig::default(), 3);
    let cfg = MachineConfig::new(8, 1 << 11, 32);
    let a = run(&comp, cfg, Policy::Bsp { prefix_levels: 4 });
    let b = run(&comp, cfg, Policy::Bsp { prefix_levels: 4 });
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.stolen_sizes, b.stolen_sizes);
}

#[test]
fn l2_machines_run_the_whole_registry() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let flat = MachineConfig::new(4, 1 << 9, 32);
        for machine in [flat.with_l2(1 << 13, false), flat.with_l2(1 << 13, true)] {
            let r = run(&comp, machine, Policy::Pws);
            assert_eq!(r.work, comp.work(), "{}", spec.name);
            // L1 miss accounting is independent of the L2 (non-inclusive)
            let t = r.machine.total();
            assert_eq!(t.l2_hits + t.l2_misses, t.misses(), "{}", spec.name);
        }
    }
}

#[test]
fn shared_l2_never_slower_than_flat() {
    for name in ["Scans (PS)", "MT", "Sort (SPMS)"] {
        let spec = lookup(name);
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let flat = MachineConfig::new(4, 1 << 8, 32);
        let rf = run(&comp, flat, Policy::Pws);
        let rl = run(&comp, flat.with_l2(1 << 13, false), Policy::Pws);
        assert!(
            rl.makespan <= rf.makespan,
            "{}: L2 {} > flat {}",
            name,
            rl.makespan,
            rf.makespan
        );
    }
}

#[test]
fn l1_miss_counts_close_with_and_without_l2() {
    // The L2 changes access *costs*, which shifts steal timing and thus
    // which core executes what — so L1 miss counts are not bit-identical,
    // but they must stay in the same ballpark (same algorithm, same
    // machine geometry).
    let spec = find("Scans (PS)").unwrap();
    let comp = (spec.build)(512, BuildConfig::default(), 5);
    let flat = MachineConfig::new(4, 1 << 9, 32);
    let rf = run(&comp, flat, Policy::Pws);
    let rl = run(&comp, flat.with_l2(1 << 13, false), Policy::Pws);
    let (tf, tl) = (rf.machine.total(), rl.machine.total());
    let (a, b) = (tf.misses() as f64, tl.misses() as f64);
    assert!(
        (a - b).abs() / a.max(b) < 0.25,
        "miss totals diverged: {a} vs {b}"
    );
}

#[test]
fn euler_tree_stats_integrate_with_scheduling() {
    use hbp_core::algos::{euler, gen};
    let n = 128;
    let edges = gen::random_tree(n, 11);
    let ts = euler::tree_stats(n, &edges, BuildConfig::default(), true);
    let cfg = MachineConfig::new(8, 1 << 11, 32);
    let r = run(&ts.comp, cfg, Policy::Pws);
    assert_eq!(r.work, ts.comp.work());
    assert!(r.max_steals_per_priority() <= 7);
}
