//! Integration tests of the paper's excess bounds (Lemmas 4.1, 4.2, 4.4,
//! 4.8): measured cache-miss and block-miss excess under PWS versus the
//! claimed envelopes, on machine-parameter grids.

use hbp_core::prelude::*;

use hbp_core::algos::{gen, mm, mt, scan, strassen};

/// Lemma 4.4(ii)/(iii): for a BP computation with f(r) = O(√r) and a tall
/// cache, PWS misses ≤ O(Q + pM/B).
#[test]
fn lemma_4_4_scan_cache_excess_within_pm_over_b() {
    let n = 1 << 15;
    let data = gen::random_u64s(n, 1 << 30, 1);
    for (m, bw) in [(1u64 << 12, 32u64), (1 << 14, 32), (1 << 12, 64)] {
        let (comp, _) = scan::prefix_sums(&data, BuildConfig::with_block(bw));
        for p in [2usize, 4, 8, 16] {
            let cfg = MachineConfig::new(p, m, bw);
            let seq = run_sequential(&comp, cfg);
            let par = run(&comp, cfg, Policy::Pws);
            let excess = par.plain_misses().saturating_sub(seq.q_misses);
            let bound = 4 * (p as u64) * m / bw + 4 * seq.q_misses;
            assert!(
                excess <= bound,
                "p={p} M={m} B={bw}: excess {excess} > {bound}"
            );
        }
    }
}

/// The same envelope for MT and Strassen (matrix algorithms, BI layout).
#[test]
fn lemma_4_1_matrix_cache_excess() {
    let n = 32;
    let rm = gen::random_matrix(n, 3);
    let mut bi = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            bi[hbp_core::algos::layout::morton(r as u64, c as u64) as usize] = rm[r * n + c];
        }
    }
    let bw = 32u64;
    let m = 1 << 12;
    let (cmt, _) = mt::transpose_bi(&bi, n, BuildConfig::with_block(bw));
    let (cst, _) = strassen::strassen_bi(&bi, &bi, n, BuildConfig::with_block(bw));
    for comp in [&cmt, &cst] {
        for p in [2usize, 8] {
            let cfg = MachineConfig::new(p, m, bw);
            let seq = run_sequential(comp, cfg);
            let par = run(comp, cfg, Policy::Pws);
            let excess = par.plain_misses().saturating_sub(seq.q_misses);
            let bound = 8 * (p as u64) * m / bw + 4 * seq.q_misses;
            assert!(excess <= bound, "p={p}: excess {excess} > {bound}");
        }
    }
}

/// Lemma 4.2(i): block-miss excess of a c = 1 scan under PWS is
/// O(pB log B) per collection.
#[test]
fn lemma_4_2_block_misses_scan_envelope() {
    let n = 1 << 14;
    let data = gen::random_u64s(n, 1 << 30, 2);
    for bw in [16u64, 32, 64] {
        let (comp, _) = scan::prefix_sums(&data, BuildConfig::with_block(bw));
        for p in [2usize, 4, 8] {
            let cfg = MachineConfig::new(p, bw * bw * 8, bw);
            let par = run(&comp, cfg, Policy::Pws);
            let logb = 64 - (bw - 1).leading_zeros() as u64;
            // two BP collections (PS) → 2 × c·pB log B, generous c = 8
            let bound = 2 * 8 * (p as u64) * bw * logb;
            assert!(
                par.block_misses() <= bound,
                "p={p} B={bw}: {} block misses > {bound}",
                par.block_misses()
            );
        }
    }
}

/// Lemma 4.2(iii): for Depth-n-MM (c = 2, s = n/4) block misses stay
/// within O(pB√n) of the input size.
#[test]
fn lemma_4_2_block_misses_mm_envelope() {
    let n = 16; // matrix side; input size m = n² = 256
    let rm = gen::random_matrix(n, 4);
    let mut bi = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            bi[hbp_core::algos::layout::morton(r as u64, c as u64) as usize] = rm[r * n + c];
        }
    }
    let bw = 16u64;
    let (comp, _) = mm::depth_n_mm(&bi, &bi, n, BuildConfig::with_block(bw));
    for p in [2usize, 4, 8] {
        let cfg = MachineConfig::new(p, 1 << 12, bw);
        let par = run(&comp, cfg, Policy::Pws);
        // O(pB√m) with √m = n; constant 16
        let bound = 16 * (p as u64) * bw * n as u64;
        assert!(
            par.block_misses() <= bound,
            "p={p}: {} > {bound}",
            par.block_misses()
        );
    }
}

/// Lemma 2.1 shape: stolen tasks of size ≥ 2M cause no cache-miss excess —
/// so with a huge cache (everything fits, Q = cold only), the excess stays
/// near zero even with many steals.
#[test]
fn lemma_2_1_no_excess_when_tasks_exceed_cache() {
    let n = 1 << 14;
    let data = gen::random_u64s(n, 1 << 30, 5);
    let (comp, _) = scan::m_sum(&data, BuildConfig::with_block(32));
    // tiny cache: M = B² (tall boundary): stolen big tasks must re-read,
    // but their sequential execution would miss anyway.
    let cfg = MachineConfig::new(8, 1 << 10, 32);
    let seq = run_sequential(&comp, cfg);
    let par = run(&comp, cfg, Policy::Pws);
    let excess = par.plain_misses().saturating_sub(seq.q_misses);
    assert!(
        excess <= seq.q_misses / 2 + 8 * (1 << 10) / 32,
        "excess {excess} vs Q {}",
        seq.q_misses
    );
}

/// Corollary 4.2 regime: small inputs (n < Mp) still have bounded excess —
/// the cache-miss excess cannot exceed the whole parallel miss count, and
/// stays within the corollary's O(p log B + (n/B)·log(4pM/n)) envelope.
#[test]
fn corollary_4_2_small_inputs() {
    let bw = 32u64;
    let m = 1u64 << 12;
    for n in [1usize << 8, 1 << 10, 1 << 12] {
        let data = gen::random_u64s(n, 1 << 30, 9);
        let (comp, _) = scan::m_sum(&data, BuildConfig::with_block(bw));
        for p in [8usize, 16] {
            // ensure we are in the n < Mp regime
            assert!((n as u64) < m * p as u64);
            let cfg = MachineConfig::new(p, m, bw);
            let seq = run_sequential(&comp, cfg);
            let par = run(&comp, cfg, Policy::Pws);
            let excess = par.plain_misses().saturating_sub(seq.q_misses);
            let logb = (64 - (bw - 1).leading_zeros()) as u64;
            let ratio = (4.0 * p as f64 * m as f64 / n as f64).log2().max(1.0);
            let bound = 8 * (p as u64 * logb + ((n as u64 / bw) as f64 * ratio) as u64);
            assert!(
                excess <= bound,
                "n={n} p={p}: excess {excess} > Cor 4.2 bound {bound}"
            );
        }
    }
}

/// Lemma 3.1 shape: the number of transfers of any single *stack* block is
/// bounded — O(min(B, log|τ|)) per task execution; across a whole run with
/// S steals the per-block transfer count stays far below the naive
/// worst case of one transfer per access.
#[test]
fn lemma_3_1_stack_block_transfers_bounded() {
    let n = 1 << 12;
    let data = gen::random_u64s(n, 1 << 30, 4);
    let (comp, _) = scan::m_sum(&data, BuildConfig::with_block(32));
    let cfg = MachineConfig::new(8, 1 << 12, 32);
    let par = run(&comp, cfg, Policy::Pws);
    // Stack traffic: every stack block miss is one transfer of some stack
    // block; with limited access the total is O((steals + p) · B) here.
    let stack_traffic = par.stack_block_misses + par.stack_plain_misses;
    let bound = (par.steals + cfg.p as u64) * cfg.block_words;
    assert!(
        stack_traffic <= bound,
        "stack traffic {stack_traffic} > (S+p)·B = {bound}"
    );
}

/// Scaling shape: block misses grow at most linearly in p (the paper's
/// bounds are all O(p · …)).
#[test]
fn block_misses_scale_at_most_linearly_in_p() {
    let n = 1 << 13;
    let data = gen::random_u64s(n, 1 << 30, 6);
    let (comp, _) = scan::prefix_sums(&data, BuildConfig::with_block(32));
    let mut prev = None;
    for p in [2usize, 4, 8, 16] {
        let cfg = MachineConfig::new(p, 1 << 12, 32);
        let bm = run(&comp, cfg, Policy::Pws).block_misses();
        if let Some(prev_bm) = prev {
            assert!(
                bm <= 3 * prev_bm + 200,
                "p={p}: block misses {bm} vs previous {prev_bm} — superlinear in p"
            );
        }
        prev = Some(bm);
    }
}
