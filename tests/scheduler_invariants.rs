//! Cross-crate integration tests for the PWS scheduler invariants the
//! paper proves (Obs 4.1–4.3, Cor 4.1, Lemma 4.6) across the whole
//! algorithm registry.

use hbp_core::prelude::*;

fn small_n(spec: &AlgoSpec) -> usize {
    match spec.size {
        SizeKind::Linear => 256,
        SizeKind::MatrixSide => 16,
    }
}

#[test]
fn obs_4_3_steals_at_most_p_minus_1_per_priority() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 7);
        for p in [2usize, 4, 8] {
            let cfg = MachineConfig::new(p, 1 << 12, 32);
            let r = run(&comp, cfg, Policy::Pws);
            assert!(
                r.max_steals_per_priority() <= (p - 1) as u64,
                "{} p={p}: {} steals at one priority",
                spec.name,
                r.max_steals_per_priority()
            );
        }
    }
}

#[test]
fn cor_4_1_steal_attempts_bounded_by_2_p_dprime() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 7);
        let p = 8usize;
        let cfg = MachineConfig::new(p, 1 << 12, 32);
        let r = run(&comp, cfg, Policy::Pws);
        let bound = 2 * p as u64 * (comp.n_priorities as u64 + 1);
        assert!(
            r.steal_attempts <= bound,
            "{}: {} attempts > 2pD' = {bound}",
            spec.name,
            r.steal_attempts
        );
    }
}

#[test]
fn pws_is_fully_deterministic_across_registry() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 3);
        let cfg = MachineConfig::new(4, 1 << 11, 32);
        let a = run(&comp, cfg, Policy::Pws);
        let b = run(&comp, cfg, Policy::Pws);
        assert_eq!(a.makespan, b.makespan, "{}", spec.name);
        assert_eq!(a.stolen_sizes, b.stolen_sizes, "{}", spec.name);
        assert_eq!(
            a.machine.total(),
            b.machine.total(),
            "{}: machine stats differ",
            spec.name
        );
    }
}

#[test]
fn all_work_executes_under_both_schedulers() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let cfg = MachineConfig::new(4, 1 << 11, 32);
        let pws = run(&comp, cfg, Policy::Pws);
        assert_eq!(pws.work, comp.work(), "{} PWS", spec.name);
        let rws = run(&comp, cfg, Policy::Rws { seed: 9 });
        assert_eq!(rws.work, comp.work(), "{} RWS", spec.name);
    }
}

#[test]
fn usurpations_bounded_by_steals() {
    // Lemma 4.6: at most p−1 usurpers per collection; globally usurpations
    // can't exceed joins whose completing side was stolen.
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let cfg = MachineConfig::new(8, 1 << 11, 32);
        let r = run(&comp, cfg, Policy::Pws);
        assert!(
            r.usurpations <= 4 * r.steals + 4,
            "{}: {} usurpations for {} steals",
            spec.name,
            r.usurpations,
            r.steals
        );
    }
}

#[test]
fn single_core_never_steals_and_never_block_misses() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let cfg = MachineConfig::new(1, 1 << 11, 32);
        let r = run(&comp, cfg, Policy::Pws);
        assert_eq!(r.steals, 0, "{}", spec.name);
        assert_eq!(r.block_misses(), 0, "{}", spec.name);
    }
}

#[test]
fn extreme_geometries_do_not_panic_or_overflow() {
    // Debug builds run with integer-overflow checks, so this doubles as a
    // regression guard for the virtual-clock and miss accounting in
    // `hbp_sched::engine` on the corner geometries: max core count, a
    // single-block cache, 1-word blocks, and a cache far larger than the
    // computation. Both schedulers must finish and execute all work.
    let data: Vec<u64> = (0..128u64).collect();
    for &(p, m, b) in &[
        (64usize, 1u64, 1u64),
        (64, 32, 32),
        (1, 1, 1),
        (64, 1 << 20, 1 << 10),
    ] {
        let (comp, _) = hbp_core::algos::scan::m_sum(&data, BuildConfig::with_block(b));
        let cfg = MachineConfig::new(p, m, b);
        let seq = run_sequential(&comp, cfg);
        let pws = run(&comp, cfg, Policy::Pws);
        let rws = run(&comp, cfg, Policy::Rws { seed: 1 });
        assert_eq!(pws.work, comp.work(), "p={p} M={m} B={b} PWS");
        assert_eq!(rws.work, comp.work(), "p={p} M={m} B={b} RWS");
        // Excess accounting must also hold up at the corners (it subtracts
        // sequential from parallel miss counts).
        let ex = pws.excess_vs(&seq);
        assert_eq!(
            ex.cache_miss_excess,
            pws.plain_misses().saturating_sub(seq.q_misses),
            "p={p} M={m} B={b}"
        );
        assert_eq!(ex.block_miss_total, pws.block_misses(), "p={p} M={m} B={b}");
    }
}

#[test]
fn makespan_never_exceeds_sequential() {
    // Work stealing with zero-cost idle waiting can't be slower than the
    // one-core schedule plus steal overhead.
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let m = MachineConfig::new(8, 1 << 12, 32);
        let seq = run_sequential(&comp, m);
        let par = run(&comp, m, Policy::Pws);
        let overhead: u64 = par.steal_overhead.iter().sum::<u64>()
            + par.block_misses() * m.miss_cost
            + (par.plain_misses().saturating_sub(seq.q_misses)) * m.miss_cost;
        assert!(
            par.makespan <= seq.makespan + overhead,
            "{}: {} > {} + {overhead}",
            spec.name,
            par.makespan,
            seq.makespan
        );
    }
}
