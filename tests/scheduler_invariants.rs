//! Cross-crate integration tests for the PWS scheduler invariants the
//! paper proves (Obs 4.1–4.3, Cor 4.1, Lemma 4.6) across the whole
//! algorithm registry, plus the determinism contracts: PWS runs are
//! byte-identical, RWS runs are byte-identical iff the seeds agree.

use hbp_core::prelude::*;
use proptest::prelude::*;

fn small_n(spec: &AlgoSpec) -> usize {
    match spec.size {
        SizeKind::Linear => 256,
        SizeKind::MatrixSide => 16,
    }
}

#[test]
fn obs_4_3_steals_at_most_p_minus_1_per_priority() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 7);
        for p in [2usize, 4, 8] {
            let cfg = MachineConfig::new(p, 1 << 12, 32);
            let r = run(&comp, cfg, Policy::Pws);
            assert!(
                r.max_steals_per_priority() <= (p - 1) as u64,
                "{} p={p}: {} steals at one priority",
                spec.name,
                r.max_steals_per_priority()
            );
        }
    }
}

#[test]
fn cor_4_1_steal_attempts_bounded_by_2_p_dprime() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 7);
        let p = 8usize;
        let cfg = MachineConfig::new(p, 1 << 12, 32);
        let r = run(&comp, cfg, Policy::Pws);
        let bound = 2 * p as u64 * (comp.n_priorities as u64 + 1);
        assert!(
            r.steal_attempts <= bound,
            "{}: {} attempts > 2pD' = {bound}",
            spec.name,
            r.steal_attempts
        );
    }
}

#[test]
fn pws_is_fully_deterministic_across_registry() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 3);
        let cfg = MachineConfig::new(4, 1 << 11, 32);
        let a = run(&comp, cfg, Policy::Pws);
        let b = run(&comp, cfg, Policy::Pws);
        assert_eq!(a.makespan, b.makespan, "{}", spec.name);
        assert_eq!(a.stolen_sizes, b.stolen_sizes, "{}", spec.name);
        assert_eq!(
            a.machine.total(),
            b.machine.total(),
            "{}: machine stats differ",
            spec.name
        );
    }
}

#[test]
fn all_work_executes_under_both_schedulers() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let cfg = MachineConfig::new(4, 1 << 11, 32);
        let pws = run(&comp, cfg, Policy::Pws);
        assert_eq!(pws.work, comp.work(), "{} PWS", spec.name);
        let rws = run(&comp, cfg, Policy::Rws { seed: 9 });
        assert_eq!(rws.work, comp.work(), "{} RWS", spec.name);
    }
}

#[test]
fn usurpations_bounded_by_steals() {
    // Lemma 4.6: at most p−1 usurpers per collection; globally usurpations
    // can't exceed joins whose completing side was stolen.
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let cfg = MachineConfig::new(8, 1 << 11, 32);
        let r = run(&comp, cfg, Policy::Pws);
        assert!(
            r.usurpations <= 4 * r.steals + 4,
            "{}: {} usurpations for {} steals",
            spec.name,
            r.usurpations,
            r.steals
        );
    }
}

#[test]
fn single_core_never_steals_and_never_block_misses() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let cfg = MachineConfig::new(1, 1 << 11, 32);
        let r = run(&comp, cfg, Policy::Pws);
        assert_eq!(r.steals, 0, "{}", spec.name);
        assert_eq!(r.block_misses(), 0, "{}", spec.name);
    }
}

#[test]
fn extreme_geometries_do_not_panic_or_overflow() {
    // Debug builds run with integer-overflow checks, so this doubles as a
    // regression guard for the virtual-clock and miss accounting in
    // `hbp_sched::engine` on the corner geometries: max core count, a
    // single-block cache, 1-word blocks, and a cache far larger than the
    // computation. Both schedulers must finish and execute all work.
    let data: Vec<u64> = (0..128u64).collect();
    for &(p, m, b) in &[
        (64usize, 1u64, 1u64),
        (64, 32, 32),
        (1, 1, 1),
        (64, 1 << 20, 1 << 10),
    ] {
        let (comp, _) = hbp_core::algos::scan::m_sum(&data, BuildConfig::with_block(b));
        let cfg = MachineConfig::new(p, m, b);
        let seq = run_sequential(&comp, cfg);
        let pws = run(&comp, cfg, Policy::Pws);
        let rws = run(&comp, cfg, Policy::Rws { seed: 1 });
        assert_eq!(pws.work, comp.work(), "p={p} M={m} B={b} PWS");
        assert_eq!(rws.work, comp.work(), "p={p} M={m} B={b} RWS");
        // Excess accounting must also hold up at the corners (it subtracts
        // sequential from parallel miss counts).
        let ex = pws.excess_vs(&seq);
        assert_eq!(
            ex.cache_miss_excess,
            pws.plain_misses().saturating_sub(seq.q_misses),
            "p={p} M={m} B={b}"
        );
        assert_eq!(ex.block_miss_total, pws.block_misses(), "p={p} M={m} B={b}");
    }
}

#[test]
fn shrunken_stack_regions_still_execute_correctly() {
    // The per-kernel stack-region size is a MachineConfig knob now; an
    // extreme-geometry machine with tiny (but sufficient) regions must
    // still run every scheduler to completion.
    let data: Vec<u64> = (0..512u64).collect();
    let (comp, _) = hbp_core::algos::scan::m_sum(&data, BuildConfig::with_block(32));
    let cfg = MachineConfig::new(8, 1 << 10, 32).with_region_words(1 << 12);
    assert_eq!(cfg.region_words, 1 << 12);
    for policy in [Policy::Pws, Policy::Rws { seed: 3 }] {
        let r = run(&comp, cfg, policy);
        assert_eq!(r.work, comp.work(), "{policy:?}");
    }
    // Same machine, default regions: the simulated metrics agree exactly —
    // region size only relocates stacks, it does not change the schedule
    // as long as frames fit.
    let dflt = MachineConfig::new(8, 1 << 10, 32);
    let a = run(&comp, cfg, Policy::Pws);
    let b = run(&comp, dflt, Policy::Pws);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.steals, b.steals);
}

/// SPMS splitter determinism: the sample positions and splitters are
/// pure functions of the input, so two *builds* over the same data give
/// the same computation, and their PWS reports are byte-identical —
/// every counter, vector, and per-core series.
#[test]
fn spms_splitters_are_deterministic_across_builds() {
    let spec = lookup("Sort (SPMS)");
    for seed in [1u64, 9, 77] {
        let a = (spec.build)(512, BuildConfig::default(), seed);
        let b = (spec.build)(512, BuildConfig::default(), seed);
        assert_eq!(a.work(), b.work(), "seed {seed}: identical recordings");
        assert_eq!(a.n_priorities, b.n_priorities, "seed {seed}");
        let cfg = MachineConfig::new(4, 1 << 11, 32);
        let ra = format!("{:?}", run(&a, cfg, Policy::Pws));
        let rb = format!("{:?}", run(&b, cfg, Policy::Pws));
        assert_eq!(ra, rb, "seed {seed}: PWS reports must be byte-identical");
    }
}

/// PWS is deterministic down to the byte: two runs must produce
/// `ExecReport`s with identical Debug renderings (every counter, vector,
/// and per-core series — not just the headline metrics).
#[test]
fn pws_reports_are_byte_identical_across_runs() {
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 11);
        let cfg = MachineConfig::new(4, 1 << 11, 32);
        let a = format!("{:?}", run(&comp, cfg, Policy::Pws));
        let b = format!("{:?}", run(&comp, cfg, Policy::Pws));
        assert_eq!(a, b, "{} PWS reports diverge", spec.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// RWS with equal seeds is byte-identical for arbitrary seeds and
    /// core counts.
    #[test]
    fn rws_equal_seeds_are_byte_identical(seed in 0u64..1_000_000, p in 2usize..=8) {
        let data: Vec<u64> = (0..256u64).collect();
        let (comp, _) = hbp_core::algos::scan::m_sum(&data, BuildConfig::with_block(32));
        let cfg = MachineConfig::new(p, 1 << 10, 32);
        let a = format!("{:?}", run(&comp, cfg, Policy::Rws { seed }));
        let b = format!("{:?}", run(&comp, cfg, Policy::Rws { seed }));
        prop_assert_eq!(a, b);
    }
}

/// Differing RWS seeds must actually change the schedule: across a batch
/// of seeds on a steal-heavy computation, the reports cannot all
/// coincide (and most seed pairs should differ).
#[test]
fn rws_differing_seeds_produce_differing_reports() {
    let data: Vec<u64> = (0..1024u64).collect();
    let (comp, _) = hbp_core::algos::scan::m_sum(&data, BuildConfig::with_block(32));
    let cfg = MachineConfig::new(8, 1 << 10, 32);
    let reports: Vec<String> = (0..16u64)
        .map(|seed| format!("{:?}", run(&comp, cfg, Policy::Rws { seed })))
        .collect();
    let distinct: std::collections::HashSet<&String> = reports.iter().collect();
    assert!(
        distinct.len() >= 8,
        "16 RWS seeds produced only {} distinct schedules",
        distinct.len()
    );
}

#[test]
fn makespan_never_exceeds_sequential() {
    // Work stealing with zero-cost idle waiting can't be slower than the
    // one-core schedule plus steal overhead.
    for spec in registry() {
        let comp = (spec.build)(small_n(&spec), BuildConfig::default(), 5);
        let m = MachineConfig::new(8, 1 << 12, 32);
        let seq = run_sequential(&comp, m);
        let par = run(&comp, m, Policy::Pws);
        let overhead: u64 = par.steal_overhead.iter().sum::<u64>()
            + par.block_misses() * m.miss_cost
            + (par.plain_misses().saturating_sub(seq.q_misses)) * m.miss_cost;
        assert!(
            par.makespan <= seq.makespan + overhead,
            "{}: {} > {} + {overhead}",
            spec.name,
            par.makespan,
            seq.makespan
        );
    }
}
