//! Property-based tests (proptest) over the core data structures and
//! algorithm invariants.

use proptest::prelude::*;

use hbp_core::prelude::*;

use hbp_core::algos::{layout, listrank, oracle, scan, sort, spms, util};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Morton encode/decode is a bijection on the coordinate grid.
    #[test]
    fn morton_roundtrip(r in 0u64..(1 << 20), c in 0u64..(1 << 20)) {
        let (rr, cc) = layout::morton_decode(layout::morton(r, c));
        prop_assert_eq!((rr, cc), (r, c));
    }

    /// Morton order is monotone within rows of a quadrant-aligned grid.
    #[test]
    fn morton_quadrant_contiguity(level in 1u32..8, qr in 0u64..8, qc in 0u64..8) {
        let k = 1u64 << level;
        let base = layout::morton(qr * k, qc * k);
        for r in 0..k {
            for c in 0..k {
                let m = layout::morton(qr * k + r, qc * k + c);
                prop_assert!(m >= base && m < base + k * k);
            }
        }
    }

    /// Gapped layout is injective and within the O(1) blowup budget.
    #[test]
    fn gapped_layout_injective(npow in 1u32..7) {
        let n = 1u64 << npow;
        let mut seen = std::collections::HashSet::new();
        for r in 0..n {
            for c in 0..n {
                prop_assert!(seen.insert(layout::gapped_index(r, c, n)));
            }
        }
        prop_assert!(layout::gwidth(n) <= 16 * n);
    }

    /// Prefix sums match the oracle on arbitrary inputs.
    #[test]
    fn prefix_sums_match(data in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let (comp, out) = scan::prefix_sums(&data, BuildConfig::default());
        prop_assert_eq!(util::read_out(&comp, out), oracle::prefix_sums(&data));
    }

    /// M-Sum matches the oracle.
    #[test]
    fn m_sum_matches(data in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let (comp, out) = scan::m_sum(&data, BuildConfig::default());
        prop_assert_eq!(util::read_out(&comp, out)[0], oracle::sum(&data));
    }

    /// Mergesort sorts arbitrary key sequences (stably w.r.t. key order).
    #[test]
    fn mergesort_sorts(keys in prop::collection::vec(0u64..1000, 1..200)) {
        let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let (comp, out) = sort::mergesort(&data, BuildConfig::default());
        let got = util::read_out(&comp, out);
        let mut want = keys.clone();
        want.sort();
        prop_assert_eq!(got.iter().map(|p| p.0).collect::<Vec<_>>(), want);
    }

    /// SPMS sorts arbitrary key sequences — including non-powers-of-two
    /// lengths — **stably**: the payload carries the input position, and
    /// full pair equality against the stable oracle checks that equal
    /// keys keep their input order.
    #[test]
    fn spms_sorts_stably(keys in prop::collection::vec(0u64..1000, 1..260)) {
        let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let (comp, out) = spms::spms(&data, BuildConfig::default());
        prop_assert_eq!(util::read_out(&comp, out), oracle::sort_pairs(&data));
    }

    /// Duplicate-heavy inputs (tiny key universes force degenerate
    /// samples and the single-key concatenation path).
    #[test]
    fn spms_sorts_duplicate_heavy(keys in prop::collection::vec(0u64..4, 1..300)) {
        let data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let (comp, out) = spms::spms(&data, BuildConfig::default());
        prop_assert_eq!(util::read_out(&comp, out), oracle::sort_pairs(&data));
    }

    /// The native SPMS kernel agrees with the recorded computation and
    /// the oracle on the same arbitrary input.
    #[test]
    fn par_spms_matches_recorded_spms(keys in prop::collection::vec(0u64..500, 1..250)) {
        let mut data: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let want = oracle::sort_pairs(&data);
        let (comp, out) = spms::spms(&data, BuildConfig::default());
        prop_assert_eq!(util::read_out(&comp, out), want.clone());
        hbp_core::algos::par::par_spms(&mut data);
        prop_assert_eq!(data, want);
    }

    /// List ranking matches the oracle on random permutation lists.
    #[test]
    fn list_rank_matches(n in 1usize..150, seed in 0u64..1000) {
        let succ = hbp_core::algos::gen::random_list(n, seed);
        let (comp, out) = listrank::list_rank(&succ, BuildConfig::default(), true);
        prop_assert_eq!(
            &util::read_out(&comp, out)[..n],
            &oracle::list_rank(&succ)[..]
        );
    }

    /// Every PWS run executes exactly the recorded work, for arbitrary
    /// machine geometry.
    #[test]
    fn pws_executes_all_work(
        p in 1usize..9,
        mpow in 8u32..14,
        bpow in 3u32..7,
        n in 16usize..400,
    ) {
        let data: Vec<u64> = (0..n as u64).collect();
        let bw = 1u64 << bpow;
        let m = (1u64 << mpow).max(bw);
        let (comp, _) = scan::m_sum(&data, BuildConfig::with_block(bw));
        let r = run(&comp, MachineConfig::new(p, m, bw), Policy::Pws);
        prop_assert_eq!(r.work, comp.work());
        prop_assert!(r.max_steals_per_priority() <= p.saturating_sub(1) as u64);
    }

    /// The LRU cache never exceeds capacity and eviction keeps residency
    /// consistent (differential check against machine stats).
    #[test]
    fn machine_miss_accounting_consistent(
        ops in prop::collection::vec((0usize..4, 0u64..512, prop::bool::ANY), 1..500)
    ) {
        let mut ms = MemSystem::new(MachineConfig::new(4, 256, 16));
        for (core, addr, write) in ops {
            ms.access(core, addr, write);
        }
        let t = ms.stats().total();
        prop_assert_eq!(t.accesses(), t.hits + t.cold + t.capacity + t.coherence);
        // every miss is one block transfer
        prop_assert_eq!(ms.stats().block_transfers, t.misses());
    }
}
