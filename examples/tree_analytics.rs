//! Tree analytics with list ranking (§4.6): compute the depth of every
//! node of a random tree via an Euler tour ranked by the paper's LR
//! algorithm — the classic application the paper cites for LR.
//!
//! ```text
//! cargo run --release --example tree_analytics
//! ```

use std::collections::HashMap;

use hbp_core::prelude::*;

use hbp_core::algos::{gen, listrank, util};

/// Build the Euler tour of a rooted tree as a linked list of directed
/// edges: each directed edge (u,v) is followed by the next edge around v.
/// Returns (succ list, edge index of tour head, map edge -> list position).
fn euler_tour(n: usize, edges: &[(usize, usize)]) -> (Vec<usize>, Vec<(usize, usize)>) {
    // adjacency with edge ids; directed edge 2i = (u->v), 2i+1 = (v->u)
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (nbr, dir-edge-id)
    for (i, &(u, v)) in edges.iter().enumerate() {
        adj[u].push((v, 2 * i));
        adj[v].push((u, 2 * i + 1));
    }
    let dirs: Vec<(usize, usize)> = edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
    // next(u->v) = the edge after (v->u) in v's adjacency (circular)
    let mut pos: HashMap<usize, usize> = HashMap::new(); // dir-edge -> index in adj[v]
    for v in 0..n {
        for (idx, &(_, e)) in adj[v].iter().enumerate() {
            pos.insert(e, idx);
        }
    }
    let m = dirs.len();
    let mut succ = vec![0usize; m];
    for e in 0..m {
        let (u, v) = dirs[e];
        let twin = e ^ 1;
        let _ = u;
        let i = pos[&twin]; // position of (v->u) in v's list... twin = (v->u): stored in adj[u]?
                            // twin (v->u) lives in adj[u]; we need the edge after twin around u? No:
                            // Euler tour rule: next(u->v) = adj[v] entry after (v->u).
        let at_v = &adj[v];
        let idx_vu = at_v
            .iter()
            .position(|&(_, e2)| e2 == twin)
            .expect("twin in adj[v]");
        let _ = i;
        let (_, nxt) = at_v[(idx_vu + 1) % at_v.len()];
        succ[e] = nxt;
    }
    (succ, dirs)
}

fn main() {
    let n = hbp_repro::example_size(512);
    let edges = gen::random_tree(n, 2026);
    let (mut succ, dirs) = euler_tour(n, &edges);

    // Break the tour into a list at the root: the tour edge entering the
    // root's first adjacency is the tail.
    let first_out = dirs
        .iter()
        .position(|&(u, _)| u == 0)
        .expect("root has an edge");
    // tail = predecessor of first_out in the circular tour
    let tail = (0..succ.len()).find(|&e| succ[e] == first_out).unwrap();
    succ[tail] = tail;

    let (comp, out) = listrank::list_rank(&succ, BuildConfig::default(), true);
    let ranks = util::read_out(&comp, out);

    // depth(v) = (#down-edges - #up-edges) on the tour prefix before first
    // arrival at v; equivalently via rank positions of the twin edges:
    // the edge (parent->v) appears before (v->parent) iff v is deeper.
    // depth(v) = depth computed by walking: here we derive depth from the
    // tour order directly (position = len-1-rank).
    let m = succ.len();
    let mut order: Vec<usize> = vec![0; m];
    for e in 0..m {
        order[(m - 1 - ranks[e] as usize).min(m - 1)] = e;
    }
    let mut depth = vec![usize::MAX; n];
    depth[0] = 0;
    let mut cur = 0usize;
    for &e in &order {
        let (u, v) = dirs[e];
        let _ = u;
        if depth[v] == usize::MAX {
            cur += 1;
            depth[v] = cur;
        } else {
            cur = depth[v];
        }
    }

    // Verify against BFS depths.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in &edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut want = vec![usize::MAX; n];
    want[0] = 0;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if want[v] == usize::MAX {
                want[v] = want[u] + 1;
                queue.push_back(v);
            }
        }
    }
    assert_eq!(depth, want, "Euler-tour depths must match BFS");
    let max_depth = want.iter().max().unwrap();
    println!("tree with {n} nodes: max depth {max_depth} (verified vs BFS)");

    // Scheduling characteristics of the LR computation itself.
    let machine = MachineConfig::default_machine();
    let seq = run_sequential(&comp, machine);
    let par = run(&comp, machine, Policy::Pws);
    println!(
        "list ranking of the {m}-edge tour: W={}, Q={}, PWS makespan={} ({:.2}x), block misses={}",
        comp.work(),
        seq.q_misses,
        par.makespan,
        seq.makespan as f64 / par.makespan as f64,
        par.block_misses()
    );
}
