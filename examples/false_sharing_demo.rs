//! False sharing, twice: (1) on the simulator, the §1 motivating scenario —
//! two cores writing into segments of an array that share a block
//! ping-pong the block Θ(B) times; (2) on the real machine, two threads
//! incrementing adjacent vs cache-line-padded counters.
//!
//! ```text
//! cargo run --release --example false_sharing_demo
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hbp_core::prelude::*;

/// Simulated: two cores each perform `iters` writes to their own counter
/// word. With `padded = false` the counters sit in the same block, so every
/// write invalidates the other core's copy — the block "ping-pongs" and
/// each access is a block miss (the Θ(B·x) delay of §1). With
/// `padded = true` the counters are in different blocks and no block miss
/// ever occurs.
fn simulated(iters: usize, padded: bool) -> ExecReport {
    let bw = 32u64;
    let comp = Builder::build(BuildConfig::with_block(bw), (2 * iters) as u64, |b| {
        let arr = b.alloc::<u64>(2 * bw as usize);
        let slot2 = if padded { bw as usize } else { 1 };
        b.fork(
            iters as u64,
            iters as u64,
            |b| {
                for i in 0..iters {
                    b.write(arr, 0, i as u64);
                }
            },
            |b| {
                for i in 0..iters {
                    b.write(arr, slot2, i as u64);
                }
            },
        );
    });
    run(&comp, MachineConfig::new(2, 1 << 12, bw), Policy::Pws)
}

/// Real threads: two counters either adjacent in one cache line or padded
/// apart; returns (adjacent_time, padded_time).
fn real_false_sharing(iters: u64) -> (std::time::Duration, std::time::Duration) {
    #[repr(align(128))]
    struct Padded(AtomicU64);

    // adjacent: same cache line
    let adjacent = [AtomicU64::new(0), AtomicU64::new(0)];
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..2 {
            let slot = &adjacent[c];
            s.spawn(move || {
                for _ in 0..iters {
                    slot.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let t_adj = t0.elapsed();

    let padded = [Padded(AtomicU64::new(0)), Padded(AtomicU64::new(0))];
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..2 {
            let slot = &padded[c].0;
            s.spawn(move || {
                for _ in 0..iters {
                    slot.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    (t_adj, t0.elapsed())
}

fn main() {
    println!("== simulated block misses (the paper's §1 scenario) ==");
    let iters = hbp_repro::example_size(1000);
    let shared = simulated(iters, false);
    let disjoint = simulated(iters, true);
    println!(
        "two cores, {iters} counter writes each: same block -> {} block misses ({:.2}x slowdown), \
         padded blocks -> {} block misses",
        shared.block_misses(),
        shared.makespan as f64 / disjoint.makespan as f64,
        disjoint.block_misses()
    );
    assert!(shared.block_misses() > 100 * (disjoint.block_misses() + 1));

    println!("\n== real hardware: adjacent vs padded atomic counters ==");
    // The hardware loop is ~3000x cheaper per iteration than the simulated
    // one, so scale the knob rather than reusing it directly.
    let iters = hbp_repro::example_size(1000) as u64 * 3000;
    // warmup
    let _ = real_false_sharing((iters / 10).max(1));
    let (adj, pad) = real_false_sharing(iters);
    println!("{iters} increments/thread: adjacent {adj:?}, padded {pad:?}");
    println!(
        "false-sharing slowdown: {:.2}x",
        adj.as_secs_f64() / pad.as_secs_f64()
    );
}
