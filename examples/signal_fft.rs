//! Spectral analysis of a synthetic signal with the six-step FFT, comparing
//! PWS against the RWS baseline on the same simulated machine — the
//! paper's headline claim is that PWS's priority rounds avoid the small,
//! block-sharing steals RWS performs.
//!
//! ```text
//! cargo run --release --example signal_fft
//! HBP_BACKEND=native cargo run --release --example signal_fft
//! ```
//!
//! Under `HBP_BACKEND=native` the example additionally runs the *real*
//! `par_fft` kernel on the native work-stealing thread pool and checks it
//! against the recorded computation's spectrum — the same analysis, once
//! in simulated virtual time and once in wall-clock time.

use hbp_core::prelude::*;

use hbp_core::algos::util::read_out;

fn main() {
    // A signal with two tones (at bins 37 and 150 for the default n = 4096;
    // the bins scale with n so the example also works on tiny smoke sizes).
    let n = hbp_repro::example_size(1 << 12);
    assert!(
        n.is_power_of_two() && n >= 128,
        "need a power of two >= 128"
    );
    let b1 = 37 * n / 4096;
    let b2 = 150 * n / 4096;
    let x: Vec<Cx> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Cx::new(
                (2.0 * std::f64::consts::PI * b1 as f64 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * b2 as f64 * t).sin(),
                0.0,
            )
        })
        .collect();

    let (comp, out) = hbp_core::algos::fft::fft(&x, BuildConfig::default());
    let spectrum = read_out(&comp, out);

    // Find the two dominant non-DC bins in the first half.
    let mut bins: Vec<(usize, f64)> = (1..n / 2).map(|k| (k, spectrum[k].abs())).collect();
    bins.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "dominant bins: {} and {} (expect {b1} and {b2})",
        bins[0].0, bins[1].0
    );
    assert!(bins[0].0 == b1 || bins[0].0 == b2);
    assert!(bins[1].0 == b1 || bins[1].0 == b2);

    let machine = MachineConfig::default_machine();
    let seq = run_sequential(&comp, machine);
    println!(
        "\nFFT n={n}: W={}, Q={}, D'={} priorities",
        comp.work(),
        seq.q_misses,
        comp.n_priorities
    );

    println!(
        "\n{:<8} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "sched", "makespan", "misses", "block", "steals", "attempts"
    );
    let pws = run(&comp, machine, Policy::Pws);
    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "PWS",
        pws.makespan,
        pws.plain_misses(),
        pws.block_misses(),
        pws.steals,
        pws.steal_attempts
    );
    for seed in [1u64, 2, 3] {
        let rws = run(&comp, machine, Policy::Rws { seed });
        println!(
            "{:<8} {:>9} {:>9} {:>8} {:>8} {:>9}",
            format!("RWS#{seed}"),
            rws.makespan,
            rws.plain_misses(),
            rws.block_misses(),
            rws.steals,
            rws.steal_attempts
        );
    }
    let median = {
        let mut s = pws.stolen_sizes.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or(0)
    };
    println!(
        "\nPWS stole {} tasks (median size {}), biggest-first by priority; \
         RWS steals 3-4x as many, mostly small block-sharing tasks.",
        pws.steals, median
    );

    let cfg = Config::from_env();
    if cfg.backend == Backend::Native {
        let mut y = x.clone();
        let (_, report) = hbp_core::sched::native::NativePool::run(cfg.native_config(42), || {
            hbp_core::algos::par::par_fft(&mut y)
        });
        // The native kernel must agree with the recorded computation.
        for k in 0..n {
            let d = (y[k].re - spectrum[k].re).abs() + (y[k].im - spectrum[k].im).abs();
            assert!(d < 1e-6 * n as f64, "native FFT diverges at bin {k}");
        }
        let busy_workers = report.busy.iter().filter(|&&b| b > 0).count();
        println!(
            "\nnative backend ({} workers): wall-clock {:.3} ms, {} tasks, \
             {} steals ({} busy workers)",
            report.p,
            report.makespan as f64 / 1e6,
            report.work,
            report.steals,
            busy_workers,
        );
    }
}
