//! Trace tour: record a structured event trace of an FFT under PWS,
//! extract the critical path from the join DAG, verify it against the
//! simulator's makespan, and export a Chrome trace for Perfetto.
//!
//! ```text
//! cargo run --release --example trace_tour
//! ```

use hbp_core::prelude::*;
use hbp_core::trace::{chrome_trace, critical_path, summarize, HopVia};

fn main() {
    let n = hbp_repro::example_size(1 << 12);
    let spec = hbp_core::find("FFT").expect("FFT is in the registry");
    let machine = MachineConfig::default_machine();
    let comp = (spec.build)(n, BuildConfig::with_block(machine.block_words), 42);

    // 1. Run under PWS with a trace sink attached. Tracing is purely
    //    observational — the report matches an untraced run exactly.
    let sink = TraceSink::new(machine.p, ClockDomain::Virtual);
    let report = run_traced(&comp, machine, Policy::Pws, &sink);
    let trace = sink.collect();
    println!(
        "FFT (n = {n}) under PWS on p = {}: {} events recorded, {} dropped",
        machine.p,
        trace.events.len(),
        trace.dropped
    );

    // 2. The critical path: the longest chain through the join DAG,
    //    decomposed into executed work, steal charges, and time stolen
    //    tasks waited in their victim's deque.
    let cp = critical_path(&trace).expect("complete sim trace");
    println!(
        "critical path = {} (work {} + steal {} + deque wait {}) over {} hops",
        cp.total,
        cp.work,
        cp.steal,
        cp.queue_wait,
        cp.hops.len()
    );
    assert_eq!(
        cp.total, report.makespan,
        "the trace's critical path equals the simulator's makespan exactly"
    );
    let stolen = cp
        .hops
        .iter()
        .filter(|h| matches!(h.via, HopVia::Steal { .. }))
        .count();
    println!(
        "the path crosses {stolen} steals; parallelism W/CP = {:.2}",
        summarize(&trace).busy_total as f64 / cp.total.max(1) as f64
    );

    // 3. Where the misses happened: per-segment deltas sum back to the
    //    report's counters.
    let s = summarize(&trace);
    assert_eq!(
        s.misses,
        (
            report.heap_block_misses,
            report.stack_block_misses,
            report.stack_plain_misses
        )
    );
    println!(
        "block misses: heap {} / stack {} (+ {} plain stack) — attributed per segment",
        s.misses.0, s.misses.1, s.misses.2
    );

    // 4. Export for chrome://tracing or https://ui.perfetto.dev.
    let out = std::env::temp_dir().join("hbp_trace_tour.json");
    std::fs::write(&out, chrome_trace(&trace)).expect("write trace json");
    println!("Chrome trace written to {}", out.display());
}
