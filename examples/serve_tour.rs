//! Serve tour: run a seeded multi-tenant load scenario against the job
//! server — mixed sort/scan/LR kernels from concurrent clients, bounded
//! admission, small-request batching — and read the report.
//!
//! Respects the workspace knobs (`HBP_BACKEND`, `HBP_POLICY`,
//! `HBP_WORKERS`, `HBP_DEQUE`) and the scenario's own `HBP_SERVE_*`
//! family; `HBP_EXAMPLE_N` shrinks the request count for the smoke test.
//!
//! ```text
//! cargo run --release --example serve_tour
//! HBP_BACKEND=native cargo run --release --example serve_tour
//! ```

use hbp_core::Backend;
use hbp_serve::{run_scenario, LoadMode, ScenarioSpec};

fn main() {
    // 1. The scenario: env-configured, with the request count scaled for
    //    smoke runs. Same seed ⇒ same schedule on both backends.
    let mut spec = ScenarioSpec::from_env();
    spec.requests = hbp_repro::example_size(spec.requests);
    spec.think_mean_ns = spec.think_mean_ns.min(20_000);
    let report = run_scenario(&spec);
    println!(
        "{} backend, {} policy, {} workers: {} requests from {} clients ({} loop)",
        report.backend, report.policy, report.workers, spec.requests, spec.clients, report.mode
    );
    println!(
        "  completed {} / rejected {} in {} ns  ->  {}.{:03} req/s",
        report.completed,
        report.rejected,
        report.makespan_ns,
        report.throughput_milli_rps / 1000,
        report.throughput_milli_rps % 1000
    );
    println!(
        "  latency p50/p95/p99 = {} / {} / {} ns (max {})",
        report.latency.p50, report.latency.p95, report.latency.p99, report.latency.max
    );
    println!(
        "  {} launches served {} requests; {} rode shared (batched) launches",
        report.launches, report.completed, report.batched_requests
    );
    assert_eq!(
        report.completed + report.rejected,
        spec.requests as u64,
        "every generated request is accounted for"
    );
    assert!(report.latency.p99 >= report.latency.p50);

    // 2. On the sim backend the whole report is reproducible — rerun and
    //    compare bytes. (Native timings are wall-clock; only the request
    //    schedule is reproducible there.)
    if spec.backend == Backend::Sim {
        let again = run_scenario(&spec);
        assert_eq!(
            report.to_json(),
            again.to_json(),
            "fixed seed must reproduce the sim report byte-for-byte"
        );
        let on_path = report.rows.iter().filter(|r| r.cp.is_some()).count();
        println!("  reproducible: yes (byte-identical rerun); {on_path} rows carry critical paths");
    }

    // 3. Overload behaviour: an open-loop burst into a single-slot queue
    //    must reject loudly, not buffer or drop.
    let mut burst = spec.clone();
    burst.mode = LoadMode::Open;
    burst.queue_cap = 1;
    burst.think_mean_ns = 0;
    burst.requests = burst.requests.min(32);
    let overload = run_scenario(&burst);
    println!(
        "  overload probe (open loop, queue_cap=1): {} rejected of {}",
        overload.rejected, burst.requests
    );
    assert_eq!(
        overload.completed + overload.rejected,
        burst.requests as u64
    );
    assert!(
        overload.rejected > 0,
        "a burst into a one-slot queue must reject"
    );
}
