//! SPMS tour: the real Sample–Partition–Merge sort on whichever backend
//! `HBP_BACKEND` selects, checked against the sequential oracle.
//!
//! ```text
//! cargo run --release --example spms_tour                      # simulator
//! HBP_BACKEND=native HBP_POLICY=rws HBP_DEQUE=cl \
//!     cargo run --release --example spms_tour                  # real threads
//! ```
//!
//! This is the CI `spms-matrix` smoke: every
//! `{sim,native} × {pws,rws,bsp} × {cl,mutex}` cell runs this binary on
//! a tiny duplicate-heavy input and the assertions inside prove (a) the
//! output is oracle-sorted **and stable**, and (b) the pool survives the
//! run (and a second one) with a sane report. `HBP_EXAMPLE_N` scales the
//! problem size; `HBP_WORKERS` sizes the native pool.

use hbp_core::prelude::*;
use hbp_repro::algos::{oracle, par, spms};

fn main() {
    let n = hbp_repro::example_size(1 << 12);
    // Duplicate-heavy keys (universe n/4) with the input position as
    // payload: equal pairs in the output ⇔ the sort is stable.
    let keys = hbp_repro::algos::gen::random_u64s(n, (n as u64 / 4).max(3), 42);
    let data: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let want = oracle::sort_pairs(&data);
    let env = Config::from_env();
    let policy = env.policy;

    match env.backend {
        Backend::Sim => {
            let machine = MachineConfig::default_machine();
            let (comp, out) = spms::spms(&data, BuildConfig::with_block(machine.block_words));
            let got = hbp_repro::algos::util::read_out(&comp, out);
            assert_eq!(got, want, "sim SPMS output must be oracle-sorted + stable");
            let report = run(&comp, machine, policy);
            assert_eq!(report.work, comp.work(), "every recorded access executed");
            println!(
                "SPMS (sim, n = {n}, {policy:?}): makespan {}u, work {}, {} steals, \
                 {} heap + {} stack block misses",
                report.makespan,
                report.work,
                report.steals,
                report.heap_block_misses,
                report.stack_block_misses
            );
        }
        Backend::Native => {
            let cfg = env.native_config(7);
            // Two runs on two pools: the second proves the first shut its
            // pool down cleanly (no leaked workers, no poisoned state).
            for round in 0..2 {
                let mut d = data.clone();
                let (_, report) =
                    hbp_repro::sched::native::NativePool::run(cfg, || par::par_spms(&mut d));
                assert_eq!(
                    d, want,
                    "native SPMS output must be oracle-sorted + stable (round {round})"
                );
                assert!(report.makespan > 0, "wall clock advanced");
                assert!(report.work >= 1, "the pool executed the root task");
                assert_eq!(report.p, cfg.workers, "report covers the whole pool");
                println!(
                    "SPMS (native round {round}, n = {n}, {policy:?}, {:?}, {} workers): \
                     {:.3} ms, {} tasks, {} steals / {} attempts",
                    cfg.deque,
                    cfg.workers,
                    report.makespan as f64 / 1e6,
                    report.work,
                    report.steals,
                    report.steal_attempts
                );
            }
        }
    }
    println!("ok: SPMS sorted {n} duplicate-heavy pairs stably on this backend");
}
