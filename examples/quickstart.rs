//! Quickstart: record an HBP computation, run it sequentially and under
//! PWS, and read off the quantities the paper bounds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hbp_core::prelude::*;

fn main() {
    // 1. Record the paper's Prefix Sums (a Type 1 HBP computation: two
    //    sequenced BP passes) on 64K elements.
    let n = hbp_repro::example_size(1 << 16);
    let data: Vec<u64> = (0..n as u64).map(|x| x % 10).collect();
    let (comp, out) = hbp_core::algos::scan::prefix_sums(&data, BuildConfig::default());

    // Outputs are computed at record time — check the last prefix.
    let total: u64 = data.iter().sum();
    let last = hbp_core::algos::util::read_out(&comp, out)[n - 1];
    assert_eq!(last, total);

    let s = analysis::summarize(&comp);
    println!("prefix-sums on n = {n}:");
    println!("  work W(n)        = {} accesses", s.work);
    println!(
        "  span T_inf       = {} (fork depth {})",
        s.span, s.fork_depth
    );
    println!("  priorities D'    = {}", s.n_priorities);
    println!(
        "  max writes/word  = {} (limited access)",
        s.max_global_writes
    );

    // 2. The machine: p = 8 cores, M = 2^14 words, B = 32 words (tall).
    let machine = MachineConfig::default_machine();

    // 3. Sequential baseline: Q(n, M, B).
    let seq = run_sequential(&comp, machine);
    println!(
        "\nsequential: Q = {} misses, time = {}",
        seq.q_misses, seq.makespan
    );

    // 4. PWS on 8 cores.
    let par = run(&comp, machine, Policy::Pws);
    println!("\nPWS on p = {}:", machine.p);
    println!(
        "  makespan          = {} ({:.2}x speedup)",
        par.makespan,
        seq.makespan as f64 / par.makespan as f64
    );
    println!(
        "  steals            = {} (max {} per priority; bound p-1 = {})",
        par.steals,
        par.max_steals_per_priority(),
        machine.p - 1
    );
    println!("  usurpations       = {}", par.usurpations);
    println!(
        "  plain misses      = {} (sequential Q = {})",
        par.plain_misses(),
        seq.q_misses
    );
    println!(
        "  block misses      = {} (heap {}, stack {})",
        par.block_misses(),
        par.heap_block_misses,
        par.stack_block_misses
    );

    let ex = par.excess_vs(&seq);
    println!("\nexcess over sequential (paper §4.2-4.3):");
    println!(
        "  cache-miss excess = {} (bound O(pM/B) = {})",
        ex.cache_miss_excess,
        machine.p as u64 * machine.cache_words / machine.block_words
    );
    println!(
        "  block misses      = {} (bound O(pB log B) per BP collection)",
        ex.block_miss_total
    );
}
