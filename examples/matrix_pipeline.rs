//! A realistic matrix pipeline: a row-major input matrix is converted to
//! the bit-interleaved layout, multiplied with Strassen, and converted
//! back to row-major with the paper's gapped conversion — the composition
//! §3.2 calls RM-Strassen.
//!
//! Prints per-stage cache/block-miss accounting under PWS, showing where
//! false sharing would bite without the BI layout and gapping.
//!
//! ```text
//! cargo run --release --example matrix_pipeline
//! ```

use hbp_core::prelude::*;

use hbp_core::algos::{gen, layout, strassen, util};

fn stage(name: &str, comp: &Computation, machine: MachineConfig) {
    let seq = run_sequential(comp, machine);
    let par = run(comp, machine, Policy::Pws);
    println!(
        "  {name:<18} W={:>9}  Q={:>7}  PWS misses={:>7}  block misses={:>6}  steals={:>4}",
        comp.work(),
        seq.q_misses,
        par.plain_misses(),
        par.block_misses(),
        par.steals,
    );
}

fn main() {
    let n = hbp_repro::example_size(64);
    assert!(n.is_power_of_two(), "matrix side must be a power of two");
    let machine = MachineConfig::default_machine();
    println!(
        "RM-Strassen pipeline, {n}x{n} matrices, p={}, M={}, B={}:",
        machine.p, machine.cache_words, machine.block_words
    );

    // Stage 1: RM -> BI for both inputs (u64 views of the bit patterns).
    let a_rm = gen::random_matrix(n, 1);
    let b_rm = gen::random_matrix(n, 2);
    let a_bits: Vec<u64> = a_rm.iter().map(|x| x.to_bits()).collect();
    let (c1, a_bi_arr) = layout::rm_to_bi(&a_bits, n, BuildConfig::default());
    stage("RM->BI", &c1, machine);
    let a_bi: Vec<f64> = util::read_out(&c1, a_bi_arr)
        .iter()
        .map(|&x| f64::from_bits(x))
        .collect();
    let b_bits: Vec<u64> = b_rm.iter().map(|x| x.to_bits()).collect();
    let (c1b, b_bi_arr) = layout::rm_to_bi(&b_bits, n, BuildConfig::default());
    let b_bi: Vec<f64> = util::read_out(&c1b, b_bi_arr)
        .iter()
        .map(|&x| f64::from_bits(x))
        .collect();

    // Stage 2: Strassen in BI (f = O(1), L = O(1)).
    let (c2, prod) = strassen::strassen_bi(&a_bi, &b_bi, n, BuildConfig::default());
    stage("Strassen (BI)", &c2, machine);
    let prod_bi = util::read_out(&c2, prod);

    // Stage 3: BI -> RM, three ways (the paper's point: compare the naive
    // conversion against the two block-sharing-aware ones).
    let prod_bits: Vec<u64> = prod_bi.iter().map(|x| x.to_bits()).collect();
    let (c3a, _) = layout::bi_to_rm_direct(&prod_bits, n, BuildConfig::default());
    stage("BI->RM direct", &c3a, machine);
    let (c3b, _) = layout::bi_to_rm_gap(&prod_bits, n, BuildConfig::default());
    stage("BI->RM (gap RM)", &c3b, machine);
    let (c3c, out) = layout::bi_to_rm_fft(&prod_bits, n, BuildConfig::default());
    stage("BI->RM for FFT", &c3c, machine);

    // Verify the pipeline end-to-end against the naive oracle.
    let result_rm: Vec<f64> = util::read_out(&c3c, out)
        .iter()
        .map(|&x| f64::from_bits(x))
        .collect();
    let want = hbp_core::algos::oracle::matmul_rm(&a_rm, &b_rm, n);
    let max_err = result_rm
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    println!("\npipeline verified against naive matmul: max |err| = {max_err:.2e}");
    assert!(max_err < 1e-9);
}
