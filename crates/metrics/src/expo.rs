//! Exposition formats: Prometheus text (the 0.0.4 wire format) and a
//! stable, hand-rolled JSON document.
//!
//! Both formats are pure functions of a [`Snapshot`], emit keys in a fixed
//! order, and never include wall-clock timestamps — so on the deterministic
//! sim backend two runs under the same seed produce byte-identical output
//! (a property CI checks).

use crate::cells::{HistSnapshot, LogHistogram, HIST_BUCKETS};
use crate::registry::Snapshot;
use std::fmt::Write;

/// Render a snapshot in the Prometheus text exposition format.
///
/// Counters get a `_total` suffix, histograms emit cumulative `_bucket`
/// lines with log2 `le` bounds plus `_sum`/`_count`, and every family is
/// preceded by `# TYPE`. Trailing empty histogram families are still
/// declared so scrapers see a stable schema.
pub fn prometheus_text(s: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);

    counter_family(&mut out, "hbp_tasks_executed_total", s, |w| {
        w.tasks_executed
    });
    counter_family(&mut out, "hbp_steals_committed_total", s, |w| {
        w.steals_committed
    });
    counter_family(&mut out, "hbp_steals_local_total", s, |w| w.steals_local);
    counter_family(&mut out, "hbp_steals_cross_domain_total", s, |w| {
        w.steals_cross_domain
    });
    counter_family(&mut out, "hbp_steals_failed_total", s, |w| w.steals_failed);
    counter_family(&mut out, "hbp_parks_total", s, |w| w.parks);
    counter_family(&mut out, "hbp_unparks_total", s, |w| w.unparks);

    gauge_family(&mut out, "hbp_queue_depth", s, |w| w.queue_depth);
    gauge_family(&mut out, "hbp_queue_depth_peak", s, |w| w.queue_depth_peak);

    histogram(&mut out, "hbp_steal_batch", &s.steal_batch_agg());

    writeln!(out, "# TYPE hbp_jobs_submitted_total counter").unwrap();
    writeln!(out, "hbp_jobs_submitted_total {}", s.jobs_submitted).unwrap();
    writeln!(out, "# TYPE hbp_jobs_completed_total counter").unwrap();
    writeln!(out, "hbp_jobs_completed_total {}", s.jobs_completed).unwrap();
    writeln!(out, "# TYPE hbp_admission_rejected_total counter").unwrap();
    writeln!(out, "hbp_admission_rejected_total {}", s.admission_rejected).unwrap();
    writeln!(out, "# TYPE hbp_admission_deferred_total counter").unwrap();
    writeln!(out, "hbp_admission_deferred_total {}", s.admission_deferred).unwrap();
    writeln!(out, "# TYPE hbp_workers_active gauge").unwrap();
    writeln!(out, "hbp_workers_active {}", s.workers_active).unwrap();
    writeln!(out, "# TYPE hbp_arena_bytes gauge").unwrap();
    writeln!(out, "hbp_arena_bytes {}", s.arena_bytes).unwrap();
    writeln!(out, "# TYPE hbp_pool_backlog gauge").unwrap();
    writeln!(out, "hbp_pool_backlog {}", s.pool_backlog).unwrap();
    writeln!(out, "# TYPE hbp_pool_backlog_peak gauge").unwrap();
    writeln!(out, "hbp_pool_backlog_peak {}", s.pool_backlog_peak).unwrap();

    histogram(&mut out, "hbp_job_latency_ns", &s.job_latency_ns);

    out
}

fn counter_family(
    out: &mut String,
    name: &str,
    s: &Snapshot,
    get: impl Fn(&crate::registry::WorkerSnap) -> u64,
) {
    writeln!(out, "# TYPE {name} counter").unwrap();
    for w in &s.workers {
        writeln!(out, "{name}{{worker=\"{}\"}} {}", w.worker, get(w)).unwrap();
    }
}

fn gauge_family(
    out: &mut String,
    name: &str,
    s: &Snapshot,
    get: impl Fn(&crate::registry::WorkerSnap) -> i64,
) {
    writeln!(out, "# TYPE {name} gauge").unwrap();
    for w in &s.workers {
        writeln!(out, "{name}{{worker=\"{}\"}} {}", w.worker, get(w)).unwrap();
    }
}

fn histogram(out: &mut String, name: &str, h: &HistSnapshot) {
    writeln!(out, "# TYPE {name} histogram").unwrap();
    // Emit buckets up to the last occupied one; the +Inf bucket carries the
    // total, so the cumulative contract holds regardless of where we stop.
    let last = h
        .buckets
        .iter()
        .rposition(|&b| b != 0)
        .map(|i| (i + 1).min(HIST_BUCKETS - 1))
        .unwrap_or(0);
    let mut cum = 0u64;
    for i in 0..=last {
        cum += h.buckets[i];
        writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cum}",
            LogHistogram::bucket_bound(i)
        )
        .unwrap();
    }
    writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count).unwrap();
    writeln!(out, "{name}_sum {}", h.sum).unwrap();
    writeln!(out, "{name}_count {}", h.count).unwrap();
}

/// Render a snapshot as one stable JSON object (no whitespace, fixed key
/// order, no timestamps).
pub fn json(s: &Snapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!("{{\"seq\":{},\"workers\":[", s.seq));
    for (i, w) in s.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"worker\":{},\"tasks\":{},\"steals_committed\":{},\"steals_local\":{},\
             \"steals_cross_domain\":{},\"steals_failed\":{},\
             \"parks\":{},\"unparks\":{},\"queue_depth\":{},\"queue_depth_peak\":{},\
             \"steal_batch\":{}}}",
            w.worker,
            w.tasks_executed,
            w.steals_committed,
            w.steals_local,
            w.steals_cross_domain,
            w.steals_failed,
            w.parks,
            w.unparks,
            w.queue_depth,
            w.queue_depth_peak,
            hist_json(&w.steal_batch),
        ));
    }
    let (sc, sf) = s.total_steals();
    let (sl, sx) = s.total_steal_locality();
    out.push_str(&format!(
        "],\"totals\":{{\"tasks\":{},\"steals_committed\":{sc},\"steals_local\":{sl},\
         \"steals_cross_domain\":{sx},\"steals_failed\":{sf}}},\
         \"serve\":{{\"jobs_submitted\":{},\"jobs_completed\":{},\"admission_rejected\":{},\
         \"admission_deferred\":{},\"latency_ns\":{},\"pool_backlog\":{},\
         \"pool_backlog_peak\":{},\"workers_active\":{}}},\
         \"arena_bytes\":{}}}",
        s.total_tasks(),
        s.jobs_submitted,
        s.jobs_completed,
        s.admission_rejected,
        s.admission_deferred,
        hist_json(&s.job_latency_ns),
        s.pool_backlog,
        s.pool_backlog_peak,
        s.workers_active,
        s.arena_bytes,
    ));
    out
}

fn hist_json(h: &HistSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        h.count,
        h.sum,
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.set_enabled(true);
        for w in 0..2 {
            let s = r.shard(w);
            s.tasks_executed.add(10 + w as u64);
            s.steals_committed.add(3);
            s.steals_local.add(2);
            s.steals_cross_domain.add(1);
            s.steal_batch.observe(2);
            s.queue_depth.set(4);
        }
        r.jobs_submitted.add(5);
        r.jobs_completed.add(5);
        r.job_latency_ns.observe(1_000);
        r.snapshot()
    }

    #[test]
    fn prometheus_shape() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE hbp_tasks_executed_total counter"));
        assert!(text.contains("hbp_tasks_executed_total{worker=\"0\"} 10"));
        assert!(text.contains("hbp_tasks_executed_total{worker=\"1\"} 11"));
        assert!(text.contains("# TYPE hbp_steals_local_total counter"));
        assert!(text.contains("hbp_steals_local_total{worker=\"0\"} 2"));
        assert!(text.contains("hbp_steals_cross_domain_total{worker=\"1\"} 1"));
        assert!(text.contains("hbp_steal_batch_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hbp_steal_batch_count 2"));
        assert!(text.contains("hbp_job_latency_ns_count 1"));
        // Cumulative buckets: +Inf equals count for every histogram.
        for fam in ["hbp_steal_batch", "hbp_job_latency_ns"] {
            let inf: u64 = text
                .lines()
                .find(|l| l.starts_with(&format!("{fam}_bucket{{le=\"+Inf\"}}")))
                .and_then(|l| l.split_whitespace().last())
                .unwrap()
                .parse()
                .unwrap();
            let count: u64 = text
                .lines()
                .find(|l| l.starts_with(&format!("{fam}_count")))
                .and_then(|l| l.split_whitespace().last())
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(inf, count, "{fam}");
        }
    }

    #[test]
    fn json_stable_and_parsable_shape() {
        let s = sample();
        let a = json(&s);
        let b = json(&s);
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"totals\":{\"tasks\":21,"));
        assert!(a.contains("\"steals_local\":2,\"steals_cross_domain\":1"));
        assert!(a.contains("\"jobs_submitted\":5"));
    }
}
