//! A background snapshot sampler: a thread that copies the registry every
//! `interval` into a bounded in-memory ring, giving the serve layer a
//! queue-depth / steal-rate timeline without any publisher-side cost.

use crate::registry::{Registry, Snapshot};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on retained snapshots; older ones are dropped FIFO.
pub const SAMPLER_CAP: usize = 1024;

/// Default sampling interval when nothing configures one
/// (`HBP_METRICS_INTERVAL` is parsed by `hbp_core::Config`, which hands
/// the resolved duration to [`Sampler::start`]).
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(50);

/// Handle to a running background sampler. Dropping it without calling
/// [`Sampler::stop`] detaches the thread (it keeps sampling until process
/// exit), so prefer `stop`, which also returns the collected timeline.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    ring: Arc<Mutex<Vec<Snapshot>>>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling `reg` every `interval`. The first snapshot is taken
    /// immediately so even very short runs yield at least one sample.
    pub fn start(reg: &'static Registry, interval: Duration) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let ring = Arc::new(Mutex::new(Vec::new()));
        let (stop2, ring2) = (Arc::clone(&stop), Arc::clone(&ring));
        let handle = std::thread::Builder::new()
            .name("hbp-metrics-sampler".into())
            .spawn(move || loop {
                {
                    let mut r = ring2.lock().unwrap();
                    if r.len() == SAMPLER_CAP {
                        r.remove(0);
                    }
                    r.push(reg.snapshot());
                }
                if stop2.load(SeqCst) {
                    return;
                }
                std::thread::sleep(interval);
            })
            .expect("spawn metrics sampler");
        Sampler {
            stop,
            ring,
            handle: Some(handle),
        }
    }

    /// Snapshots collected so far (the ring keeps the newest
    /// [`SAMPLER_CAP`]).
    pub fn timeline(&self) -> Vec<Snapshot> {
        self.ring.lock().unwrap().clone()
    }

    /// Stop the thread (taking one final snapshot) and return the timeline.
    pub fn stop(mut self) -> Vec<Snapshot> {
        self.stop.store(true, SeqCst);
        if let Some(h) = self.handle.take() {
            // The loop checks `stop` right after pushing a sample; the final
            // iteration's sleep is the worst-case join latency.
            let _ = h.join();
        }
        Arc::try_unwrap(self.ring)
            .map(|m| m.into_inner().unwrap())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static REG: Registry = Registry::new();

    #[test]
    fn collects_and_stops() {
        REG.set_enabled(true);
        REG.shard(0).tasks_executed.add(7);
        let s = Sampler::start(&REG, Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        let timeline = s.stop();
        assert!(!timeline.is_empty());
        assert!(timeline.iter().all(|s| s.total_tasks() >= 7));
        // Sequence numbers are strictly increasing along the timeline.
        for pair in timeline.windows(2) {
            assert!(pair[1].seq > pair[0].seq);
        }
    }
}
