//! # hbp-metrics — the live runtime metrics registry
//!
//! A dependency-free, lock-free metrics layer for the work-stealing
//! runtime: per-worker [`Counter`]/[`Gauge`]/[`LogHistogram`] cells in
//! cache-line-isolated shards, a process-wide [`Registry`] ([`global`]),
//! point-in-time [`Snapshot`]s, a background [`Sampler`], and
//! [`prometheus_text`]/[`json`] exposition.
//!
//! ## Contract
//!
//! - **Zero overhead when disabled.** Every instrumented site checks
//!   [`Registry::on`] (one relaxed load) and skips all metric work when the
//!   registry is off. Enable with [`Registry::set_enabled`] (the
//!   `HBP_METRICS=1` env switch is applied by `hbp_core::Config`).
//! - **Lock-free publishing.** Cells are relaxed atomics; a publish is a
//!   handful of `fetch_add`s with no CAS loops and no locks, safe from any
//!   worker thread including inside the Chase-Lev steal path.
//! - **Deterministic exposition.** Snapshots carry no wall-clock state, and
//!   both exposition formats emit fixed key order — on the sim backend two
//!   runs under one seed render byte-identical documents.
//!
//! Publishers: the native pool (per-job counter deltas, queue depth, arena
//! bytes), worker threads (park/unpark, steal batches) and the serve layer
//! (admission, job latency). Consumers: the `metrics_report` bin, the serve
//! scenario report, and Chrome-trace counter tracks via `hbp-trace`.

pub mod cells;
pub mod expo;
pub mod registry;
pub mod sampler;

pub use cells::{Counter, Gauge, HistSnapshot, LogHistogram, HIST_BUCKETS};
pub use expo::{json, prometheus_text};
pub use registry::{global, Registry, Snapshot, WorkerShard, WorkerSnap, SHARDS};
pub use sampler::{Sampler, DEFAULT_INTERVAL, SAMPLER_CAP};
