//! The three primitive metric cells: [`Counter`], [`Gauge`] and
//! [`LogHistogram`].
//!
//! All cells are plain relaxed atomics: publishing from a worker thread is a
//! single `fetch_add`/`store` with `Ordering::Relaxed`, so the cells impose
//! no synchronization on the code paths they instrument. Readers (the
//! snapshot sampler, the exposition formats) see values that are each
//! individually consistent but not mutually synchronized — exactly the
//! contract a monitoring surface needs, and nothing stronger.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Zero the counter. Not synchronized against concurrent `inc`s; for
    /// quiesced windows only.
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

/// An instantaneous signed level (queue depth, arena bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (peak tracking).
    #[inline]
    pub fn raise_to(&self, v: i64) {
        self.0.fetch_max(v, Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Number of log2 buckets in a [`LogHistogram`].
///
/// Bucket `i` counts observations `v` with `floor(log2(v)) + 1 == i`, i.e.
/// bucket 0 holds `v == 0`, bucket 1 holds `v == 1`, bucket `i` holds
/// `v ∈ [2^(i-1), 2^i)`. 48 buckets cover values up to 2^47 — more than
/// three days in nanoseconds — and anything larger lands in the last bucket.
pub const HIST_BUCKETS: usize = 48;

/// A fixed-footprint log2-bucketed histogram (latencies, batch sizes).
///
/// `observe` is one relaxed `fetch_add` into the bucket plus two for the
/// running count and sum; quantile queries interpolate the upper bound of
/// the bucket that crosses the requested rank, which is exact to within a
/// factor of two — enough for a p50/p95/p99 dashboard, and cheap enough to
/// sit inside a work-stealing runtime.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array from an inline const.
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for an observed value.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        let idx = (64 - v.leading_zeros()) as usize;
        idx.min(HIST_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`0`, `1`, `3`, `7`, ...).
    #[inline]
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Record `n` observations of the same value in O(1) — for folding a
    /// finished report's tallies (e.g. "`n` sim steals, one task each")
    /// into the histogram without an O(n) loop.
    #[inline]
    pub fn observe_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Zero every bucket. Not synchronized against concurrent `observe`s;
    /// for quiesced windows only.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// An immutable copy of a [`LogHistogram`] taken by the sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistSnapshot {
    /// The all-zero snapshot, as a merge identity.
    pub fn zero() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket in
    /// which the `q`-th observation falls. `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return LogHistogram::bucket_bound(i);
            }
        }
        LogHistogram::bucket_bound(HIST_BUCKETS - 1)
    }

    /// Merge another snapshot into this one (cross-worker aggregation).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every value lands in the bucket whose bound is >= it (until the
        // clamp bucket).
        for v in [0u64, 1, 2, 5, 100, 1 << 20, (1 << 40) + 17] {
            let b = LogHistogram::bucket_of(v);
            assert!(LogHistogram::bucket_bound(b) >= v, "v={v} b={b}");
            if b > 0 {
                assert!(LogHistogram::bucket_bound(b - 1) < v);
            }
        }
    }

    #[test]
    fn quantiles_monotone() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let (p50, p95, p99) = (s.quantile(0.50), s.quantile(0.95), s.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99);
        // log2 buckets: p50 of 1..=1000 is 500 -> bucket bound 511.
        assert_eq!(p50, 511);
        assert_eq!(p99, 1023);
    }

    #[test]
    fn gauge_peak() {
        let g = Gauge::new();
        g.raise_to(5);
        g.raise_to(3);
        assert_eq!(g.get(), 5);
        g.set(-2);
        g.add(1);
        assert_eq!(g.get(), -1);
    }
}
