//! The sharded registry: one cache-line-isolated [`WorkerShard`] per worker
//! slot plus a small set of process-wide serve/session cells, all behind a
//! single `enabled` flag so instrumented code pays one relaxed load when
//! metrics are off.

use crate::cells::{Counter, Gauge, HistSnapshot, LogHistogram};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Number of worker shards. Worker `w` publishes into shard `w % SHARDS`;
/// with the pool capped well below this, the mapping is the identity in
/// practice, and the fold keeps the registry allocation-free and lock-free
/// even for oversubscribed configurations.
pub const SHARDS: usize = 64;

/// Per-worker metric cells, padded to two cache lines so two workers'
/// hot counters never share a line (the same false-sharing discipline the
/// paper demands of the algorithms themselves).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct WorkerShard {
    /// Tasks this worker ran to completion.
    pub tasks_executed: Counter,
    /// Steal attempts that claimed at least one task.
    pub steals_committed: Counter,
    /// Committed steals whose victim shared the thief's cache domain
    /// (every steal on an unlabelled/flat pool; split from
    /// `steals_committed` by the native runtime's domain map).
    pub steals_local: Counter,
    /// Committed steals whose victim sat in another cache domain — the
    /// expensive ones the two-level victim order works to avoid.
    pub steals_cross_domain: Counter,
    /// Steal attempts that found every probed deque empty or lost a race.
    pub steals_failed: Counter,
    /// Tasks claimed per committed steal (batched stealing makes this > 1).
    pub steal_batch: LogHistogram,
    /// Transitions into the parked (condvar wait) state.
    pub parks: Counter,
    /// Wakeups out of the parked state.
    pub unparks: Counter,
    /// Instantaneous local queue depth (owner-side push/pop accounting).
    pub queue_depth: Gauge,
    /// High-water mark of `queue_depth` since the last reset.
    pub queue_depth_peak: Gauge,
}

impl WorkerShard {
    const fn new() -> Self {
        WorkerShard {
            tasks_executed: Counter::new(),
            steals_committed: Counter::new(),
            steals_local: Counter::new(),
            steals_cross_domain: Counter::new(),
            steals_failed: Counter::new(),
            steal_batch: LogHistogram::new(),
            parks: Counter::new(),
            unparks: Counter::new(),
            queue_depth: Gauge::new(),
            queue_depth_peak: Gauge::new(),
        }
    }

    fn reset(&self) {
        self.tasks_executed.reset();
        self.steals_committed.reset();
        self.steals_local.reset();
        self.steals_cross_domain.reset();
        self.steals_failed.reset();
        self.steal_batch.reset();
        self.parks.reset();
        self.unparks.reset();
        self.queue_depth.set(0);
        self.queue_depth_peak.set(0);
    }
}

/// The process-wide registry. Obtain the shared instance with [`global`];
/// construct private instances only in tests.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    /// One past the highest worker index that has published, so snapshots
    /// and exposition cover exactly the active workers.
    workers_hi: AtomicUsize,
    /// Monotonic snapshot sequence number.
    seq: AtomicU64,
    shards: [WorkerShard; SHARDS],
    /// Jobs admitted to an executor (serve layer or session API).
    pub jobs_submitted: Counter,
    /// Jobs that ran to completion.
    pub jobs_completed: Counter,
    /// Jobs bounced by the admission queue with a hard rejection (no
    /// retry hint, or the client exhausted its retries).
    pub admission_rejected: Counter,
    /// Submissions deferred with a retry-after hint — each attempt a
    /// cooperative client paces out counts once here, so
    /// `deferred / rejected` measures how much of the backpressure was
    /// absorbed cooperatively instead of dropped.
    pub admission_deferred: Counter,
    /// End-to-end job latency in nanoseconds (sim: virtual ns).
    pub job_latency_ns: LogHistogram,
    /// Bytes currently reserved by the native pool's task arena.
    pub arena_bytes: Gauge,
    /// Jobs accepted but not yet started (the pool driver's backlog).
    pub pool_backlog: Gauge,
    /// High-water mark of `pool_backlog`.
    pub pool_backlog_peak: Gauge,
    /// Peak worker participation of the most recently completed job
    /// (driver included) — on an elastic pool this tracks autoscaling
    /// job by job; on a fixed pool it sits at the worker count.
    pub workers_active: Gauge,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub const fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            workers_hi: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            shards: [const { WorkerShard::new() }; SHARDS],
            jobs_submitted: Counter::new(),
            jobs_completed: Counter::new(),
            admission_rejected: Counter::new(),
            admission_deferred: Counter::new(),
            job_latency_ns: LogHistogram::new(),
            arena_bytes: Gauge::new(),
            pool_backlog: Gauge::new(),
            pool_backlog_peak: Gauge::new(),
            workers_active: Gauge::new(),
        }
    }

    /// Is publishing enabled? Instrumented hot paths check this first and
    /// skip all metric work when it is false — the entire disabled-mode
    /// cost is this one relaxed load.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// The shard worker `w` publishes into. Also records `w` as active so
    /// snapshots include it.
    #[inline]
    pub fn shard(&self, w: usize) -> &WorkerShard {
        self.workers_hi.fetch_max((w % SHARDS) + 1, Relaxed);
        &self.shards[w % SHARDS]
    }

    /// Shard access without marking the worker active (read-side helpers).
    pub fn peek_shard(&self, w: usize) -> &WorkerShard {
        &self.shards[w % SHARDS]
    }

    pub fn workers(&self) -> usize {
        self.workers_hi.load(Relaxed)
    }

    /// Zero every cell and the active-worker watermark. Not synchronized
    /// against concurrent writers: call only from quiesced windows (between
    /// jobs, test setup).
    pub fn reset(&self) {
        for s in &self.shards {
            s.reset();
        }
        self.workers_hi.store(0, Relaxed);
        self.seq.store(0, Relaxed);
        self.jobs_submitted.reset();
        self.jobs_completed.reset();
        self.admission_rejected.reset();
        self.admission_deferred.reset();
        self.job_latency_ns.reset();
        self.arena_bytes.set(0);
        self.pool_backlog.set(0);
        self.pool_backlog_peak.set(0);
        self.workers_active.set(0);
    }

    /// Take a point-in-time copy of every cell. Each value is individually
    /// consistent; the set is not an atomic cut (it never needs to be).
    pub fn snapshot(&self) -> Snapshot {
        let seq = self.seq.fetch_add(1, Relaxed);
        let hi = self.workers();
        let workers = (0..hi)
            .map(|w| {
                let s = &self.shards[w];
                WorkerSnap {
                    worker: w,
                    tasks_executed: s.tasks_executed.get(),
                    steals_committed: s.steals_committed.get(),
                    steals_local: s.steals_local.get(),
                    steals_cross_domain: s.steals_cross_domain.get(),
                    steals_failed: s.steals_failed.get(),
                    steal_batch: s.steal_batch.snapshot(),
                    parks: s.parks.get(),
                    unparks: s.unparks.get(),
                    queue_depth: s.queue_depth.get(),
                    queue_depth_peak: s.queue_depth_peak.get(),
                }
            })
            .collect();
        Snapshot {
            seq,
            workers,
            jobs_submitted: self.jobs_submitted.get(),
            jobs_completed: self.jobs_completed.get(),
            admission_rejected: self.admission_rejected.get(),
            admission_deferred: self.admission_deferred.get(),
            job_latency_ns: self.job_latency_ns.snapshot(),
            arena_bytes: self.arena_bytes.get(),
            pool_backlog: self.pool_backlog.get(),
            pool_backlog_peak: self.pool_backlog_peak.get(),
            workers_active: self.workers_active.get(),
        }
    }
}

/// A copy of one worker shard inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnap {
    pub worker: usize,
    pub tasks_executed: u64,
    pub steals_committed: u64,
    pub steals_local: u64,
    pub steals_cross_domain: u64,
    pub steals_failed: u64,
    pub steal_batch: HistSnapshot,
    pub parks: u64,
    pub unparks: u64,
    pub queue_depth: i64,
    pub queue_depth_peak: i64,
}

/// A full point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic sequence number stamped by the registry.
    pub seq: u64,
    pub workers: Vec<WorkerSnap>,
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub admission_rejected: u64,
    pub admission_deferred: u64,
    pub job_latency_ns: HistSnapshot,
    pub arena_bytes: i64,
    pub pool_backlog: i64,
    pub pool_backlog_peak: i64,
    pub workers_active: i64,
}

impl Snapshot {
    /// Sum of tasks executed across workers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks_executed).sum()
    }

    /// (committed, failed) steal attempts across workers.
    pub fn total_steals(&self) -> (u64, u64) {
        self.workers.iter().fold((0, 0), |(c, f), w| {
            (c + w.steals_committed, f + w.steals_failed)
        })
    }

    /// (local, cross-domain) committed steals across workers. Their sum
    /// equals total committed steals on a native pool; both are zero
    /// when nothing classified locality (sim backend, metrics off).
    pub fn total_steal_locality(&self) -> (u64, u64) {
        self.workers.iter().fold((0, 0), |(l, x), w| {
            (l + w.steals_local, x + w.steals_cross_domain)
        })
    }

    /// Cross-worker aggregate of the steal-batch histograms.
    pub fn steal_batch_agg(&self) -> HistSnapshot {
        let mut agg = HistSnapshot::zero();
        for w in &self.workers {
            agg.merge(&w.steal_batch);
        }
        agg
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-wide registry. Publishing starts disabled; enablement is a
/// configuration decision — `hbp_core::Config::apply` turns it on when
/// `HBP_METRICS` asks for it (env parsing lives there, nowhere else), and
/// tests/embedding code call [`Registry::set_enabled`] directly.
pub fn global() -> &'static Registry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_resettable() {
        let r = Registry::new();
        assert!(!r.on());
        r.set_enabled(true);
        r.shard(2).tasks_executed.inc();
        r.shard(0).steal_batch.observe(3);
        assert_eq!(r.workers(), 3);
        let s = r.snapshot();
        assert_eq!(s.workers.len(), 3);
        assert_eq!(s.total_tasks(), 1);
        assert_eq!(s.steal_batch_agg().count, 1);
        r.reset();
        assert_eq!(r.workers(), 0);
        assert_eq!(r.snapshot().total_tasks(), 0);
    }

    #[test]
    fn shard_folding_wraps() {
        let r = Registry::new();
        r.shard(SHARDS + 1).tasks_executed.inc();
        // Folded into shard 1, watermark reflects the folded index.
        assert_eq!(r.peek_shard(1).tasks_executed.get(), 1);
        assert_eq!(r.workers(), 2);
    }

    #[test]
    fn snapshot_seq_monotone() {
        let r = Registry::new();
        let a = r.snapshot();
        let b = r.snapshot();
        assert!(b.seq > a.seq);
    }
}
