//! Concurrency hammer: 8 publisher threads pound one registry; every
//! increment must land. Relaxed atomics guarantee no lost updates on a
//! single cell — this test is the executable form of that claim for the
//! whole shard layout (and would catch an accidental shard aliasing or
//! a non-atomic read-modify-write sneaking into the cells).

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use hbp_metrics::Registry;

static REG: Registry = Registry::new();

#[test]
fn eight_workers_lose_no_increments() {
    const WORKERS: usize = 8;
    const PER_WORKER: u64 = 200_000;

    REG.set_enabled(true);
    let go = AtomicBool::new(false);
    thread::scope(|s| {
        for w in 0..WORKERS {
            let go = &go;
            s.spawn(move || {
                while !go.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
                let shard = REG.shard(w);
                for i in 0..PER_WORKER {
                    shard.tasks_executed.inc();
                    if i % 3 == 0 {
                        shard.steals_committed.inc();
                        shard.steal_batch.observe(1 + (i % 7));
                    } else {
                        shard.steals_failed.inc();
                    }
                    shard.queue_depth.set((i % 11) as i64);
                    shard.queue_depth_peak.raise_to((i % 11) as i64);
                    REG.jobs_submitted.inc();
                    REG.job_latency_ns.observe(i);
                }
            });
        }
        go.store(true, Ordering::Relaxed);
    });

    let snap = REG.snapshot();
    assert_eq!(snap.workers.len(), WORKERS);
    assert_eq!(snap.total_tasks(), WORKERS as u64 * PER_WORKER);
    let committed_per_worker = PER_WORKER.div_ceil(3); // i % 3 == 0
    let (committed, failed) = snap.total_steals();
    assert_eq!(committed, WORKERS as u64 * committed_per_worker);
    assert_eq!(failed, WORKERS as u64 * (PER_WORKER - committed_per_worker));
    assert_eq!(snap.jobs_submitted, WORKERS as u64 * PER_WORKER);
    assert_eq!(snap.job_latency_ns.count, WORKERS as u64 * PER_WORKER);
    let agg = snap.steal_batch_agg();
    assert_eq!(agg.count, committed);
    for w in snap.workers {
        assert_eq!(w.tasks_executed, PER_WORKER);
        assert_eq!(
            w.queue_depth_peak, 10,
            "worker {} saw every level",
            w.worker
        );
    }
}
