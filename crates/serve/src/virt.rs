//! The virtual-time scenario runner (sim backend).
//!
//! A discrete-event simulation of the server itself: arrivals, a bounded
//! admission queue, batching, and a single launch slot (one `NativePool`
//! serializes kernel launches, so the virtual server does too). Each
//! request's *service time* is the kernel's virtual-time makespan under
//! the scenario policy, measured once per (algo, n) shape by replaying
//! the kernel on the simulated machine — the service oracle. Everything
//! is integer virtual time off one seeded schedule, so the same spec
//! yields a byte-identical report.
//!
//! Backpressure is modeled the way the native server implements it: a
//! full queue answers with a retry hint of `(depth + 1 − cap) ×` the
//! EWMA per-request drain time; a pacing closed-loop client defers (a
//! re-arrival event at `now + hint`, up to
//! [`MAX_DEFERRALS`](crate::spec::MAX_DEFERRALS) attempts) before the
//! hard rejection. All of it integer virtual time — deterministic.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use hbp_core::trace::{critical_path, ClockDomain, TraceSink};
use hbp_core::{ExecJob, Executor, MachineConfig, SimExecutor};

use crate::gen::{batchable, build_schedule, Request};
use crate::report::{CpTotals, RequestRecord, ScenarioReport};
use crate::spec::{LoadMode, ScenarioSpec, MAX_DEFERRALS};

/// Simulated-machine geometry for the service oracle: the scenario's
/// core count on the workspace's default cache (4K words, 32-word
/// blocks).
fn oracle_machine(spec: &ScenarioSpec) -> MachineConfig {
    MachineConfig::new(spec.workers, 1 << 12, 32)
}

/// Measures (once per request shape) the virtual service time and
/// critical path of a kernel launch.
struct ServiceOracle {
    ex: SimExecutor,
    cache: HashMap<(&'static str, usize), (u64, CpTotals)>,
}

impl ServiceOracle {
    fn new(spec: &ScenarioSpec) -> Self {
        Self {
            ex: SimExecutor {
                machine: oracle_machine(spec),
                policy: spec.policy,
            },
            cache: HashMap::new(),
        }
    }

    fn measure(&mut self, r: &Request) -> (u64, CpTotals) {
        if let Some(&hit) = self.cache.get(&(r.algo, r.n)) {
            return hit;
        }
        let sink = Arc::new(TraceSink::new(self.ex.workers(), ClockDomain::Virtual));
        let job = ExecJob::new(r.algo, r.n, r.seed);
        let report = self
            .ex
            .execute_traced(&job, &sink)
            .unwrap_or_else(|| panic!("oracle cannot build {:?} (n={})", r.algo, r.n));
        let cp = critical_path(&sink.collect()).expect("sim traces are virtual-clock");
        let entry = (
            report.makespan,
            CpTotals {
                total: cp.total,
                work: cp.work,
                steal: cp.steal,
                queue_wait: cp.queue_wait,
            },
        );
        self.cache.insert((r.algo, r.n), entry);
        entry
    }
}

/// A heap event. Ordering is (time, insertion seq) — the seq tiebreak
/// makes simultaneous events process in a deterministic order.
struct Ev {
    t: u64,
    seq: u64,
    kind: EvKind,
}

enum EvKind {
    /// Request `idx` of the schedule arrives at the server.
    Arrive(usize),
    /// The in-flight launch (these schedule members) completes.
    Done(Vec<Member>),
}

/// One request riding a launch.
struct Member {
    idx: usize,
    enq_t: u64,
    start_t: u64,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.t, self.seq) == (other.t, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (t, seq) pops
        // first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// Record slot while a request is in flight.
#[derive(Default, Clone)]
struct Slot {
    submitted: bool,
    rejected: bool,
    deferrals: u32,
    arrival: u64,
    queue_ns: u64,
    service_ns: u64,
    latency_ns: u64,
    batch: usize,
    cp: Option<CpTotals>,
}

/// Run the scenario in virtual time (see module docs).
pub fn run_virtual(spec: &ScenarioSpec) -> ScenarioReport {
    let schedule = build_schedule(spec);
    let mut oracle = ServiceOracle::new(spec);

    let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
    let mut seq = 0u64;

    // Per-client streams: the closed loop feeds each client its next
    // request only after the previous one finishes (or is rejected).
    let mut streams: Vec<VecDeque<usize>> = vec![VecDeque::new(); spec.clients];
    match spec.mode {
        LoadMode::Open => {
            for r in &schedule {
                heap.push(Ev {
                    t: r.arrival_ns,
                    seq,
                    kind: EvKind::Arrive(r.id as usize),
                });
                seq += 1;
            }
        }
        LoadMode::Closed => {
            for r in &schedule {
                streams[r.client].push_back(r.id as usize);
            }
            for stream in &mut streams {
                if let Some(first) = stream.pop_front() {
                    heap.push(Ev {
                        t: schedule[first].think_ns,
                        seq,
                        kind: EvKind::Arrive(first),
                    });
                    seq += 1;
                }
            }
        }
    }

    let mut slots: Vec<Slot> = vec![Slot::default(); schedule.len()];
    let mut queue: VecDeque<Member> = VecDeque::new();
    let mut busy = false;
    let mut depth_samples: Vec<(u64, usize)> = vec![(0, 0)];
    let mut makespan = 0u64;
    // EWMA per-request drain time (virtual ns) — the retry-hint basis,
    // updated after every completed launch exactly like the native
    // dispatcher's estimate. 0 until the first launch completes; the
    // first hint then falls back to the arriving request's own oracle
    // service time.
    let mut est = 0u64;

    // Schedule a client's next closed-loop request after `now`.
    let next_for_client = |heap: &mut BinaryHeap<Ev>,
                           seq: &mut u64,
                           streams: &mut [VecDeque<usize>],
                           schedule: &[Request],
                           client: usize,
                           now: u64| {
        if let Some(next) = streams[client].pop_front() {
            heap.push(Ev {
                t: now + schedule[next].think_ns,
                seq: *seq,
                kind: EvKind::Arrive(next),
            });
            *seq += 1;
        }
    };

    while let Some(ev) = heap.pop() {
        let now = ev.t;
        makespan = makespan.max(now);
        match ev.kind {
            EvKind::Arrive(idx) => {
                let r = &schedule[idx];
                let slot = &mut slots[idx];
                if !slot.submitted {
                    // First attempt; re-arrivals of a deferred request
                    // keep the original arrival stamp.
                    slot.submitted = true;
                    slot.arrival = now;
                }
                if queue.len() >= spec.queue_cap {
                    let m = hbp_core::metrics::global();
                    if spec.pacing
                        && spec.mode == LoadMode::Closed
                        && slot.deferrals < MAX_DEFERRALS
                    {
                        // Deferral: the virtual client honors the
                        // `RetryAfter` hint — `(depth + 1 − cap) ×` the
                        // per-request drain estimate — and re-arrives.
                        // The client stays blocked meanwhile, exactly
                        // like a sleeping native client thread.
                        slot.deferrals += 1;
                        if m.on() {
                            m.admission_deferred.inc();
                        }
                        let base = if est > 0 {
                            est
                        } else {
                            oracle.measure(r).0.max(1)
                        };
                        let backlog = (queue.len() + 1 - spec.queue_cap) as u64;
                        heap.push(Ev {
                            t: now + backlog * base,
                            seq,
                            kind: EvKind::Arrive(idx),
                        });
                        seq += 1;
                    } else {
                        // Bounded admission: rejected and counted,
                        // never silently dropped. The closed loop still
                        // advances the client (a stalled client would
                        // deadlock the scenario).
                        slot.rejected = true;
                        if m.on() {
                            m.admission_rejected.inc();
                        }
                        if spec.mode == LoadMode::Closed {
                            next_for_client(
                                &mut heap,
                                &mut seq,
                                &mut streams,
                                &schedule,
                                r.client,
                                now,
                            );
                        }
                    }
                } else {
                    queue.push_back(Member {
                        idx,
                        enq_t: now,
                        start_t: 0,
                    });
                    depth_samples.push((now, queue.len()));
                }
            }
            EvKind::Done(members) => {
                busy = false;
                let service = slots[members[0].idx].service_ns;
                let per_req = (service / members.len() as u64).max(1);
                est = if est == 0 {
                    per_req
                } else {
                    (3 * est + per_req) / 4
                };
                for m in &members {
                    let r = &schedule[m.idx];
                    let slot = &mut slots[m.idx];
                    slot.queue_ns = m.start_t - m.enq_t;
                    slot.latency_ns = now - m.enq_t;
                    slot.batch = members.len();
                    let (_, cp) = oracle.measure(r);
                    slot.cp = Some(cp);
                    if spec.mode == LoadMode::Closed {
                        next_for_client(
                            &mut heap,
                            &mut seq,
                            &mut streams,
                            &schedule,
                            r.client,
                            now,
                        );
                    }
                }
            }
        }
        // Launch whenever the slot frees up and work is queued.
        if !busy {
            if let Some(mut head) = queue.pop_front() {
                head.start_t = now;
                let mut members = vec![head];
                if batchable(spec, schedule[members[0].idx].n) {
                    while members.len() < spec.batch_max {
                        match queue.front() {
                            Some(m) if batchable(spec, schedule[m.idx].n) => {
                                let mut m = queue.pop_front().expect("front exists");
                                m.start_t = now;
                                members.push(m);
                            }
                            _ => break,
                        }
                    }
                }
                depth_samples.push((now, queue.len()));
                // A shared launch's makespan is its slowest member's.
                let service = members
                    .iter()
                    .map(|m| oracle.measure(&schedule[m.idx]).0)
                    .max()
                    .expect("non-empty batch");
                for m in &members {
                    slots[m.idx].service_ns = service;
                }
                busy = true;
                heap.push(Ev {
                    t: now + service,
                    seq,
                    kind: EvKind::Done(members),
                });
                seq += 1;
            }
        }
    }

    let rows: Vec<RequestRecord> = schedule
        .iter()
        .map(|r| {
            let slot = &slots[r.id as usize];
            debug_assert!(slot.submitted, "request {} never arrived", r.id);
            RequestRecord {
                id: r.id,
                client: r.client,
                algo: r.algo,
                n: r.n,
                arrival_ns: slot.arrival,
                rejected: slot.rejected,
                deferrals: slot.deferrals,
                queue_ns: slot.queue_ns,
                service_ns: slot.service_ns,
                latency_ns: slot.latency_ns,
                batch: slot.batch,
                cp: slot.cp,
            }
        })
        .collect();
    // The single-launch-slot model engages every simulated core per
    // launch — workers_active is the configured core count.
    ScenarioReport::assemble(spec, "sim", rows, makespan, depth_samples, spec.workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::default_mix;
    use hbp_core::{Backend, Policy};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            seed: 11,
            requests: 40,
            clients: 4,
            mode: LoadMode::Closed,
            queue_cap: 16,
            batch_max: 4,
            small_n: 4096,
            think_mean_ns: 50,
            mix: default_mix(Backend::Sim),
            backend: Backend::Sim,
            policy: Policy::Pws,
            workers: 4,
            pacing: false,
            native: hbp_core::sched::native::NativeConfig::default(),
        }
    }

    #[test]
    fn closed_loop_serves_every_request_deterministically() {
        let spec = small_spec();
        let a = run_virtual(&spec);
        let b = run_virtual(&spec);
        assert_eq!(a.completed, 40);
        assert_eq!(a.rejected, 0);
        assert_eq!(a.to_json(), b.to_json(), "same seed, same bytes");
        assert!(a.latency.p50 > 0 && a.latency.p99 >= a.latency.p95);
        assert!(a.rows.iter().all(|r| r.cp.is_some()));
        for r in &a.rows {
            let cp = r.cp.expect("sim rows carry a critical path");
            assert_eq!(cp.total, cp.work + cp.steal + cp.queue_wait);
            assert!(cp.total <= r.service_ns, "path cannot exceed the launch");
        }
    }

    #[test]
    fn open_loop_with_tiny_queue_rejects_and_counts() {
        let mut spec = small_spec();
        spec.mode = LoadMode::Open;
        spec.queue_cap = 1;
        spec.think_mean_ns = 1; // near-simultaneous arrivals swamp the queue
        let report = run_virtual(&spec);
        assert!(report.rejected > 0, "tiny queue under burst must reject");
        assert_eq!(report.completed + report.rejected, 40);
        let rejected_rows = report.rows.iter().filter(|r| r.rejected).count() as u64;
        assert_eq!(rejected_rows, report.rejected);
    }

    #[test]
    fn pacing_defers_deterministically_and_cuts_hard_rejections() {
        // Same offered load, tiny queue: the pacing run must be
        // byte-stable across runs, count its deferrals, and hard-reject
        // strictly less than the reject-only run.
        let mut spec = small_spec();
        spec.clients = 8;
        spec.queue_cap = 1;
        spec.think_mean_ns = 1;
        let hard = run_virtual(&spec);
        assert!(hard.rejected > 0, "baseline must actually reject");
        assert_eq!(hard.deferred, 0, "no pacing, no deferrals");
        spec.pacing = true;
        let paced = run_virtual(&spec);
        assert_eq!(paced.to_json(), run_virtual(&spec).to_json());
        assert!(paced.deferred > 0, "full queue must surface deferrals");
        assert!(
            paced.rejected < hard.rejected,
            "pacing must cut hard rejections: {} vs {}",
            paced.rejected,
            hard.rejected
        );
        assert_eq!(paced.completed + paced.rejected, 40);
        // Deferred-then-completed rows exist and carry their count.
        assert!(paced.rows.iter().any(|r| !r.rejected && r.deferrals > 0));
    }

    #[test]
    fn batching_shares_launches_for_small_requests() {
        let mut spec = small_spec();
        spec.mode = LoadMode::Open;
        spec.think_mean_ns = 1; // deep backlog => batches form
        let report = run_virtual(&spec);
        assert!(
            report.batched_requests > 0,
            "burst of small requests must share launches"
        );
        assert!(report.launches < report.completed);
        // Batch members share service time.
        for r in report.rows.iter().filter(|r| r.batch > 1) {
            assert!(r.latency_ns >= r.service_ns);
        }
    }

    #[test]
    fn batching_disabled_means_solo_launches() {
        let mut spec = small_spec();
        spec.batch_max = 1;
        let report = run_virtual(&spec);
        assert!(report.rows.iter().all(|r| r.rejected || r.batch == 1));
        assert_eq!(report.launches, report.completed);
    }
}
