//! The deterministic-seed load generator: turns a [`ScenarioSpec`] into
//! a concrete request schedule.
//!
//! All randomness comes from one `ChaCha8Rng` seeded with the scenario
//! seed, drawn in a fixed order (mix pick, size pick, pacing sample per
//! request), so the same spec always yields the same schedule — the
//! property that makes load scenarios CI-able. Pacing times are
//! log-normal (service-time-like heavy tail), sampled via Box–Muller
//! from the integer stream.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::spec::ScenarioSpec;

/// One generated request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Schedule position (also the report row id).
    pub id: u64,
    /// Submitting client (round-robin over the schedule).
    pub client: usize,
    /// Canonical registry algorithm name.
    pub algo: &'static str,
    /// Problem size.
    pub n: usize,
    /// Kernel input seed — derived from (scenario seed, algo, n), so
    /// requests of the same shape share inputs and a virtual-time
    /// service oracle can cache per shape.
    pub seed: u64,
    /// Open loop: absolute arrival instant (ns from scenario start).
    pub arrival_ns: u64,
    /// Closed loop: think time before this request is submitted (ns
    /// after the client's previous completion).
    pub think_ns: u64,
}

/// Sample a log-normal with the given mean and shape σ via Box–Muller.
/// Mean 0 short-circuits to 0 (no pacing).
fn log_normal_ns(rng: &mut ChaCha8Rng, mean_ns: u64, sigma: f64) -> u64 {
    if mean_ns == 0 {
        return 0;
    }
    // Two uniforms in (0, 1]: 53-bit mantissas, never exactly zero.
    let scale = 1.0 / (1u64 << 53) as f64;
    let u1 = ((rng.next_u64() >> 11) + 1) as f64 * scale;
    let u2 = ((rng.next_u64() >> 11) + 1) as f64 * scale;
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    // E[exp(N(mu, sigma))] = exp(mu + sigma^2/2) = mean.
    let mu = (mean_ns as f64).ln() - sigma * sigma / 2.0;
    (mu + sigma * z).exp() as u64
}

/// SplitMix64 finalizer — derives per-shape kernel input seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate the scenario's full request schedule (see module docs).
/// Mix rows resolve through [`hbp_core::lookup`], so a renamed registry
/// row panics here, before any traffic is served.
pub fn build_schedule(spec: &ScenarioSpec) -> Vec<Request> {
    let mix = spec.canonical_mix();
    // Canonical &'static names via the registry (lookup can't fail for
    // a canonical mix; keeps Request free of owned strings).
    let names: Vec<&'static str> = mix.iter().map(|e| hbp_core::lookup(&e.algo).name).collect();
    let total_weight: u64 = mix.iter().map(|e| e.weight).sum();
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut arrival = 0u64;
    let mut requests = Vec::with_capacity(spec.requests);
    for id in 0..spec.requests as u64 {
        let mut pick = rng.random_range(0..total_weight);
        let mut slot = 0usize;
        for (i, e) in mix.iter().enumerate() {
            if pick < e.weight {
                slot = i;
                break;
            }
            pick -= e.weight;
        }
        let entry = &mix[slot];
        let n = entry.sizes[rng.random_range(0..entry.sizes.len())];
        let pace = log_normal_ns(&mut rng, spec.think_mean_ns, 0.5);
        arrival += pace;
        requests.push(Request {
            id,
            client: (id as usize) % spec.clients,
            algo: names[slot],
            n,
            seed: spec.seed ^ mix64((slot as u64) << 32 | n as u64),
            arrival_ns: arrival,
            think_ns: pace,
        });
    }
    requests
}

/// The per-client request streams of a closed-loop run: client `c` gets
/// the schedule's requests with `client == c`, in schedule order.
pub fn per_client(spec: &ScenarioSpec, schedule: &[Request]) -> Vec<Vec<Request>> {
    let mut streams: Vec<Vec<Request>> = vec![Vec::new(); spec.clients];
    for r in schedule {
        streams[r.client].push(r.clone());
    }
    streams
}

/// Whether this request is eligible for batching into a shared launch.
pub fn batchable(spec: &ScenarioSpec, n: usize) -> bool {
    spec.batch_max > 1 && n <= spec.small_n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{default_mix, LoadMode};
    use hbp_core::{Backend, Policy};

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            seed: 7,
            requests: 64,
            clients: 3,
            mode: LoadMode::Closed,
            queue_cap: 8,
            batch_max: 4,
            small_n: 4096,
            think_mean_ns: 10_000,
            mix: default_mix(Backend::Sim),
            backend: Backend::Sim,
            policy: Policy::Pws,
            workers: 2,
            pacing: false,
            native: hbp_core::sched::native::NativeConfig::default(),
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let s = spec();
        let a = build_schedule(&s);
        let b = build_schedule(&s);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.algo, x.n, x.seed, x.arrival_ns),
                (y.algo, y.n, y.seed, y.arrival_ns)
            );
        }
        let mut other = s.clone();
        other.seed = 8;
        let c = build_schedule(&other);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.n != y.n || x.algo != y.algo || x.arrival_ns != y.arrival_ns),
            "different seeds must differ somewhere"
        );
    }

    #[test]
    fn schedule_draws_every_mix_row_and_respects_sizes() {
        let s = spec();
        let sched = build_schedule(&s);
        for entry in &s.mix {
            let hits = sched.iter().filter(|r| r.algo == entry.algo).count();
            assert!(hits > 0, "{} never drawn in 64 requests", entry.algo);
            for r in sched.iter().filter(|r| r.algo == entry.algo) {
                assert!(
                    entry.sizes.contains(&r.n),
                    "{} at unlisted size {}",
                    r.algo,
                    r.n
                );
            }
        }
        // Arrivals are nondecreasing; same-shape requests share seeds.
        assert!(sched.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        for a in &sched {
            for b in &sched {
                if a.algo == b.algo && a.n == b.n {
                    assert_eq!(a.seed, b.seed);
                }
            }
        }
    }

    #[test]
    fn zero_think_means_no_pacing() {
        let mut s = spec();
        s.think_mean_ns = 0;
        let sched = build_schedule(&s);
        assert!(sched.iter().all(|r| r.think_ns == 0 && r.arrival_ns == 0));
    }
}
