//! Run one load scenario with the metrics registry live and print what
//! the registry saw: Prometheus text, the JSON snapshot, and the
//! per-tenant rollup from the scenario report.
//!
//! The bin enables the registry itself (`HBP_METRICS` is not required)
//! and resets it first, so the exposition covers exactly this scenario.
//! Configuration is the same environment surface as `serve_scenario`:
//! `HBP_SERVE_*` for the load, `HBP_BACKEND` / `HBP_POLICY` /
//! `HBP_WORKERS` / `HBP_DEQUE` / `HBP_COUNTERS` for the execution.
//!
//! When `HBP_METRICS_INTERVAL` is set (milliseconds), a background
//! [`Sampler`] additionally records a snapshot timeline during the run
//! and the bin appends a queue-depth / task-rate timeline summary. The
//! sampler paces on wall-clock time, so its sample count is *not*
//! deterministic — which is why it is opt-in: without it, a fixed-seed
//! sim scenario prints byte-identical output on every run.
//!
//! ```text
//! HBP_BACKEND=native HBP_SERVE_REQUESTS=64 \
//!     cargo run --release -p hbp-serve --bin metrics_report
//! ```

use hbp_core::metrics::{json, prometheus_text, Sampler};
use hbp_serve::{run_scenario, ScenarioSpec};

fn main() {
    let cfg = hbp_core::Config::from_env();
    let spec = ScenarioSpec::from_env();
    let m = hbp_core::metrics::global();
    m.set_enabled(true);
    m.reset();

    let sampler = cfg.metrics_interval.map(|every| Sampler::start(m, every));

    let report = run_scenario(&spec);

    let timeline = sampler.map(Sampler::stop);
    let snap = m.snapshot();

    println!(
        "# scenario: backend={} policy={} workers={} seed={} requests={}",
        report.backend, report.policy, report.workers, report.seed, report.requests
    );
    print!("{}", prometheus_text(&snap));
    println!();
    println!("{}", json(&snap));
    println!();

    println!("# admission (pool-wide, from the registry)");
    println!(
        "admission: rejected {} deferred {} (report: rejected {} deferred {} workers_active {})",
        snap.admission_rejected,
        snap.admission_deferred,
        report.rejected,
        report.deferred,
        report.workers_active,
    );
    println!();

    let (committed, _) = snap.total_steals();
    let (local, cross) = snap.total_steal_locality();
    println!("# steal locality (pool-wide, from the registry)");
    println!(
        "steals: committed {committed} local {local} cross-domain {cross} local-share {}",
        if committed == 0 {
            "n/a".to_string()
        } else {
            format!("{:.1}%", 100.0 * local as f64 / committed as f64)
        }
    );
    println!();

    println!("# per-tenant (derived from the scenario report, not the registry)");
    for c in &report.clients_stats {
        println!(
            "tenant {}: submitted {} completed {} rejected {} latency p50/p95/p99 = {}/{}/{} ns queue-wait p50/p95/p99 = {}/{}/{} ns",
            c.client,
            c.submitted,
            c.completed,
            c.rejected,
            c.latency.p50,
            c.latency.p95,
            c.latency.p99,
            c.queue_wait.p50,
            c.queue_wait.p95,
            c.queue_wait.p99,
        );
    }

    println!();
    println!(
        "# admission queue depth timeline ({} points)",
        report.queue_depth.len()
    );
    let line = report
        .queue_depth
        .iter()
        .map(|(t, d)| format!("{t}:{d}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{line}");

    if let Some(tl) = timeline {
        println!();
        println!("# sampler timeline: {} snapshots", tl.len());
        for s in &tl {
            println!(
                "seq {}: tasks {} steals {}/{} backlog {} jobs {}/{}",
                s.seq,
                s.total_tasks(),
                s.total_steals().0,
                s.total_steals().1,
                s.pool_backlog,
                s.jobs_submitted,
                s.jobs_completed,
            );
        }
    }
}
