//! Run one load scenario and print its JSON report to stdout.
//!
//! Configuration is entirely environment-driven: `HBP_SERVE_*` for the
//! scenario (seed, requests, clients, mode, queue cap, batching, mix,
//! pacing) plus the workspace-wide `HBP_BACKEND` / `HBP_POLICY` /
//! `HBP_WORKERS` / `HBP_DEQUE` knobs. On the sim backend the output is
//! byte-identical for a fixed seed:
//!
//! ```text
//! HBP_SERVE_SEED=42 HBP_SERVE_REQUESTS=200 cargo run --release --bin serve_scenario
//! ```

use hbp_serve::{run_scenario, ScenarioSpec};

fn main() {
    let spec = ScenarioSpec::from_env();
    let report = run_scenario(&spec);
    print!("{}", report.to_json());
}
