//! The real-mode scenario runner (native backend).
//!
//! One persistent [`NativePool`] serves the whole scenario: client
//! threads build kernel inputs *outside* the pool, push into a bounded
//! admission queue, and a dispatcher thread drains the queue — batching
//! consecutive small requests into a single pool submission via a
//! fork-join tree — without ever respawning a worker. A full queue
//! answers [`SubmitError::RetryAfter`] with a pacing hint computed from
//! the queue depth and the dispatcher's observed drain rate; closed-loop
//! clients with [`ScenarioSpec::pacing`] honor the hint (sleep, retry up
//! to [`MAX_DEFERRALS`] times), everyone else records a hard rejection.
//! Deferrals and rejections are counted separately — nothing is dropped
//! silently. Timestamps are wall-clock nanoseconds, so the report is
//! *not* byte-stable across runs (the sim backend is); the schedule
//! itself still is.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hbp_core::native_kernel;
use hbp_core::sched::native::{join, NativePool, SubmitError};

use crate::gen::{batchable, build_schedule, per_client, Request};
use crate::report::{RequestRecord, ScenarioReport};
use crate::spec::{LoadMode, ScenarioSpec, MAX_DEFERRALS};

/// A served request's timings, delivered through its [`Ticket`].
#[derive(Debug, Clone, Copy)]
struct TicketDone {
    queue_ns: u64,
    service_ns: u64,
    latency_ns: u64,
    batch: usize,
}

/// Completion rendezvous between the dispatcher and the waiting client.
#[derive(Default)]
struct Ticket {
    done: Mutex<Option<TicketDone>>,
    cv: Condvar,
}

impl Ticket {
    fn complete(&self, d: TicketDone) {
        *self.done.lock().expect("ticket poisoned") = Some(d);
        self.cv.notify_all();
    }

    fn wait(&self) -> TicketDone {
        let mut g = self.done.lock().expect("ticket poisoned");
        loop {
            if let Some(d) = *g {
                return d;
            }
            g = self.cv.wait(g).expect("ticket poisoned");
        }
    }
}

/// An admitted request waiting for the dispatcher.
struct Pending {
    idx: usize,
    kernel: Box<dyn FnOnce() + Send>,
    enq: Instant,
    ticket: Arc<Ticket>,
}

struct AdmState {
    q: VecDeque<Pending>,
    closed: bool,
    depth: Vec<(u64, usize)>,
}

/// The bounded admission queue shared by clients and the dispatcher.
struct Admission {
    state: Mutex<AdmState>,
    cv: Condvar,
    cap: usize,
    t0: Instant,
    /// EWMA of per-request drain time (ns): launch makespan ÷ batch
    /// size, folded in by the dispatcher after every launch. Seeds the
    /// `RetryAfter` hints before the first completion lands.
    est_ns: AtomicU64,
}

/// Initial per-request drain estimate before any launch completed.
const EST_SEED_NS: u64 = 1_000_000;

/// Upper bound on a single `RetryAfter` hint, so one misestimated drain
/// rate cannot park a client for seconds.
const RETRY_CAP_NS: u64 = 100_000_000;

impl Admission {
    fn new(cap: usize, t0: Instant) -> Self {
        Self {
            state: Mutex::new(AdmState {
                q: VecDeque::new(),
                closed: false,
                depth: vec![(0, 0)],
            }),
            cv: Condvar::new(),
            cap,
            t0,
            est_ns: AtomicU64::new(EST_SEED_NS),
        }
    }

    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Fold one launch's observed per-request drain time into the EWMA.
    fn observe_drain(&self, service_ns: u64, batch: usize) {
        let per_req = (service_ns / batch.max(1) as u64).max(1);
        let old = self.est_ns.load(Ordering::Relaxed);
        self.est_ns
            .store((3 * old + per_req) / 4, Ordering::Relaxed);
    }

    /// Admit, or answer with a pacing hint. `Err(RetryAfter)` means the
    /// queue was at capacity; the hint is the estimated time until it
    /// has room — `(depth + 1 − cap) ×` the observed per-request drain
    /// time. The *caller* decides whether that becomes a deferral
    /// (pacing client: sleep and retry) or a hard rejection, and counts
    /// it accordingly; nothing is dropped silently.
    fn submit(&self, p: Pending) -> Result<(), SubmitError> {
        let mut s = self.state.lock().expect("admission poisoned");
        if s.q.len() >= self.cap {
            let backlog = (s.q.len() + 1 - self.cap) as u64;
            drop(s);
            let est = self.est_ns.load(Ordering::Relaxed);
            let hint = (backlog * est).clamp(1, RETRY_CAP_NS);
            return Err(SubmitError::RetryAfter(Duration::from_nanos(hint)));
        }
        s.q.push_back(p);
        let sample = (self.now_ns(), s.q.len());
        s.depth.push(sample);
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Dispatcher side: pop the next launch (respecting the batching
    /// rule), or `None` once the queue is closed and drained.
    fn next_launch(&self, spec: &ScenarioSpec, schedule: &[Request]) -> Option<Vec<Pending>> {
        let mut s = self.state.lock().expect("admission poisoned");
        loop {
            if !s.q.is_empty() {
                break;
            }
            if s.closed {
                return None;
            }
            s = self.cv.wait(s).expect("admission poisoned");
        }
        let head = s.q.pop_front().expect("queue non-empty");
        let mut batch = vec![head];
        if batchable(spec, schedule[batch[0].idx].n) {
            while batch.len() < spec.batch_max {
                match s.q.front() {
                    Some(p) if batchable(spec, schedule[p.idx].n) => {
                        batch.push(s.q.pop_front().expect("front exists"));
                    }
                    _ => break,
                }
            }
        }
        let sample = (self.now_ns(), s.q.len());
        s.depth.push(sample);
        Some(batch)
    }

    fn close(&self) {
        self.state.lock().expect("admission poisoned").closed = true;
        self.cv.notify_all();
    }
}

/// Execute a batch of kernels as one fork-join tree — a single pool
/// submission whose makespan is the shared service time.
fn run_batch(mut kernels: Vec<Box<dyn FnOnce() + Send>>) {
    if kernels.len() <= 1 {
        if let Some(k) = kernels.pop() {
            k();
        }
        return;
    }
    let rest = kernels.split_off(kernels.len() / 2);
    join(|| run_batch(kernels), || run_batch(rest));
}

/// What a client records about one request.
#[derive(Debug, Clone, Copy, Default)]
struct Outcome {
    arrival_ns: u64,
    rejected: bool,
    deferrals: u32,
    queue_ns: u64,
    service_ns: u64,
    latency_ns: u64,
    batch: usize,
}

/// Record a hard rejection in the process-wide registry.
fn count_rejected() {
    let m = hbp_core::metrics::global();
    if m.on() {
        m.admission_rejected.inc();
    }
}

/// Record a deferral (a `RetryAfter` the client is about to honor).
fn count_deferred() {
    let m = hbp_core::metrics::global();
    if m.on() {
        m.admission_deferred.inc();
    }
}

/// Build the request's kernel, admit it, and (if admitted) wait for the
/// dispatcher's ticket. A pacing client honors `RetryAfter` hints —
/// sleep the hinted duration and resubmit, up to [`MAX_DEFERRALS`]
/// times — before recording a hard rejection. Returns the recorded
/// outcome.
fn submit_and_wait(adm: &Admission, spec: &ScenarioSpec, r: &Request) -> Outcome {
    let arrival_ns = adm.now_ns();
    let mut deferrals = 0u32;
    loop {
        let kernel = native_kernel(r.algo, r.n, r.seed)
            .unwrap_or_else(|| panic!("{:?} validated as natively served", r.algo));
        let ticket = Arc::new(Ticket::default());
        let pending = Pending {
            idx: r.id as usize,
            kernel,
            enq: Instant::now(),
            ticket: Arc::clone(&ticket),
        };
        match adm.submit(pending) {
            Err(SubmitError::RetryAfter(hint)) if spec.pacing && deferrals < MAX_DEFERRALS => {
                deferrals += 1;
                count_deferred();
                std::thread::sleep(hint);
            }
            Err(_) => {
                count_rejected();
                return Outcome {
                    arrival_ns,
                    rejected: true,
                    deferrals,
                    ..Outcome::default()
                };
            }
            Ok(()) => {
                let d = ticket.wait();
                return Outcome {
                    arrival_ns,
                    rejected: false,
                    deferrals,
                    queue_ns: d.queue_ns,
                    service_ns: d.service_ns,
                    latency_ns: d.latency_ns,
                    batch: d.batch,
                };
            }
        }
    }
}

/// Run the scenario on real threads (see module docs).
pub fn run_real(spec: &ScenarioSpec) -> ScenarioReport {
    let schedule = build_schedule(spec);
    let pool = NativePool::new(spec.native_config());
    let t0 = Instant::now();
    let adm = Admission::new(spec.queue_cap, t0);
    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(vec![Outcome::default(); schedule.len()]);
    // Peak workers the pool actually engaged across the scenario's
    // launches (< workers when an autoscale band kept the pool small).
    let workers_active = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Dispatcher: drain the admission queue into pool submissions.
        let dispatcher = scope.spawn(|| {
            while let Some(batch) = adm.next_launch(spec, &schedule) {
                let size = batch.len();
                let mut kernels = Vec::with_capacity(size);
                let mut waiters = Vec::with_capacity(size);
                for p in batch {
                    let queue_ns = p.enq.elapsed().as_nanos() as u64;
                    kernels.push(p.kernel);
                    waiters.push((p.enq, p.ticket, queue_ns));
                }
                let handle = pool
                    .submit(move || run_batch(kernels))
                    .expect("pool outlives the dispatcher");
                // `outcome` (not `wait`) so a panicking kernel cannot
                // take the dispatcher — and every waiter — down with it.
                let out = handle.outcome();
                for (w, msg) in &out.panics {
                    eprintln!("serve: kernel panicked on worker {w}: {msg}");
                }
                let service_ns = out.report.makespan;
                adm.observe_drain(service_ns, size);
                workers_active.fetch_max(out.report.workers_active, Ordering::Relaxed);
                for (enq, ticket, queue_ns) in waiters {
                    ticket.complete(TicketDone {
                        queue_ns,
                        service_ns,
                        latency_ns: enq.elapsed().as_nanos() as u64,
                        batch: size,
                    });
                }
            }
        });

        match spec.mode {
            LoadMode::Closed => {
                // One thread per client, each keeping one request
                // outstanding, thinking between completions.
                let streams = per_client(spec, &schedule);
                let mut clients = Vec::with_capacity(streams.len());
                for stream in streams {
                    let adm = &adm;
                    let outcomes = &outcomes;
                    clients.push(scope.spawn(move || {
                        for r in &stream {
                            if r.think_ns > 0 {
                                std::thread::sleep(Duration::from_nanos(r.think_ns));
                            }
                            let out = submit_and_wait(adm, spec, r);
                            outcomes.lock().expect("outcomes poisoned")[r.id as usize] = out;
                        }
                    }));
                }
                for c in clients {
                    c.join().expect("client thread panicked");
                }
            }
            LoadMode::Open => {
                // One pacing thread replays the absolute arrival times;
                // admitted requests are awaited on a second pass so the
                // arrival process never blocks on service.
                let pacer = scope.spawn(|| {
                    let mut waits: Vec<(usize, Arc<Ticket>)> = Vec::new();
                    for r in &schedule {
                        let target = Duration::from_nanos(r.arrival_ns);
                        let elapsed = t0.elapsed();
                        if target > elapsed {
                            std::thread::sleep(target - elapsed);
                        }
                        let kernel = native_kernel(r.algo, r.n, r.seed)
                            .unwrap_or_else(|| panic!("{:?} validated as natively served", r.algo));
                        let ticket = Arc::new(Ticket::default());
                        let arrival_ns = adm.now_ns();
                        // Open-loop arrivals are pre-scheduled: a full
                        // queue is a hard rejection, never a deferral
                        // (sleeping here would distort later arrivals).
                        let admitted = adm
                            .submit(Pending {
                                idx: r.id as usize,
                                kernel,
                                enq: Instant::now(),
                                ticket: Arc::clone(&ticket),
                            })
                            .is_ok();
                        if !admitted {
                            count_rejected();
                        }
                        let mut slots = outcomes.lock().expect("outcomes poisoned");
                        slots[r.id as usize].arrival_ns = arrival_ns;
                        slots[r.id as usize].rejected = !admitted;
                        drop(slots);
                        if admitted {
                            waits.push((r.id as usize, ticket));
                        }
                    }
                    for (idx, ticket) in waits {
                        let d = ticket.wait();
                        let mut slots = outcomes.lock().expect("outcomes poisoned");
                        slots[idx].queue_ns = d.queue_ns;
                        slots[idx].service_ns = d.service_ns;
                        slots[idx].latency_ns = d.latency_ns;
                        slots[idx].batch = d.batch;
                    }
                });
                pacer.join().expect("pacing thread panicked");
            }
        }

        adm.close();
        dispatcher.join().expect("dispatcher panicked");
    });

    let makespan = t0.elapsed().as_nanos() as u64;
    let depth = std::mem::take(&mut adm.state.lock().expect("admission poisoned").depth);
    let slots = outcomes.into_inner().expect("outcomes poisoned");
    let rows: Vec<RequestRecord> = schedule
        .iter()
        .map(|r| {
            let s = &slots[r.id as usize];
            RequestRecord {
                id: r.id,
                client: r.client,
                algo: r.algo,
                n: r.n,
                arrival_ns: s.arrival_ns,
                rejected: s.rejected,
                deferrals: s.deferrals,
                queue_ns: s.queue_ns,
                service_ns: s.service_ns,
                latency_ns: s.latency_ns,
                batch: s.batch,
                // Exact critical paths need virtual-clock traces; the
                // native report keeps the field honest with `None`.
                cp: None,
            }
        })
        .collect();
    drop(pool);
    ScenarioReport::assemble(
        spec,
        "native",
        rows,
        makespan,
        depth,
        workers_active.into_inner(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::default_mix;
    use hbp_core::{Backend, Policy};

    fn spec(requests: usize) -> ScenarioSpec {
        ScenarioSpec {
            seed: 5,
            requests,
            clients: 4,
            mode: LoadMode::Closed,
            queue_cap: 64,
            batch_max: 8,
            small_n: 4096,
            think_mean_ns: 0,
            mix: default_mix(Backend::Native),
            backend: Backend::Native,
            policy: Policy::Rws { seed: 1 },
            workers: 2,
            pacing: false,
            native: hbp_core::sched::native::NativeConfig::default(),
        }
    }

    #[test]
    fn closed_loop_serves_every_request_on_one_pool() {
        let report = run_real(&spec(64));
        assert_eq!(report.completed, 64);
        assert_eq!(report.rejected, 0);
        assert!(report.latency.p50 > 0);
        assert!(report.workers_active >= 1 && report.workers_active <= 2);
        assert!(report.rows.iter().all(|r| r.cp.is_none()));
        assert!(report.rows.iter().all(|r| !r.rejected && r.batch >= 1));
    }

    #[test]
    fn open_loop_with_tiny_queue_rejects_and_counts() {
        let mut s = spec(48);
        s.mode = LoadMode::Open;
        s.queue_cap = 1;
        s.think_mean_ns = 0; // all arrivals due immediately
        let report = run_real(&s);
        assert_eq!(report.completed + report.rejected, 48);
        assert!(report.rejected > 0, "burst into cap-1 queue must reject");
    }

    #[test]
    fn pacing_clients_defer_instead_of_hard_rejecting() {
        // Many clients hammering a tiny queue: without pacing the burst
        // hard-rejects; with pacing the clients absorb the hints as
        // deferrals and every request completes (closed loop keeps one
        // request per client outstanding, so MAX_DEFERRALS retries give
        // the cap-1 queue time to drain).
        let mut s = spec(48);
        s.clients = 8;
        s.queue_cap = 1;
        s.pacing = true;
        let report = run_real(&s);
        assert_eq!(report.completed + report.rejected, 48);
        assert!(
            report.rejected == 0 || report.deferred > 0,
            "pacing must surface as deferrals before any rejection"
        );
    }
}
