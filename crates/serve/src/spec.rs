//! Scenario specification: what traffic to serve, on which backend,
//! under which admission/batching policy — parsed fail-loud from
//! `HBP_SERVE_*` environment variables (plus the shared `HBP_*` knobs
//! via [`hbp_core::Config`], the single place those are parsed).

use hbp_core::sched::native::NativeConfig;
use hbp_core::{has_native_kernel, lookup, Backend, Policy};

/// How the load generator paces requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Open loop: requests arrive at pre-scheduled instants regardless
    /// of completions (arrival rate is the independent variable; queue
    /// growth and rejections are the signal).
    Open,
    /// Closed loop: each client keeps one request outstanding and
    /// submits the next one a think-time after the previous completes
    /// (concurrency is the independent variable).
    Closed,
}

impl LoadMode {
    /// Parse an `HBP_SERVE_MODE` value (`open` / `closed`; unset or
    /// empty means closed).
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("") | Some("closed") => Ok(LoadMode::Closed),
            Some("open") => Ok(LoadMode::Open),
            Some(other) => Err(format!(
                "HBP_SERVE_MODE must be `open` or `closed`, got {other:?}"
            )),
        }
    }

    /// The mode's report label.
    pub fn label(&self) -> &'static str {
        match self {
            LoadMode::Open => "open",
            LoadMode::Closed => "closed",
        }
    }
}

/// One slice of the request mix: a registry algorithm, its relative
/// weight, and the problem sizes it is requested at.
#[derive(Debug, Clone)]
pub struct MixEntry {
    /// Registry row name — resolved through [`hbp_core::lookup`] when
    /// the scenario is validated, so a renamed row breaks the scenario
    /// loudly instead of silently dropping traffic.
    pub algo: String,
    /// Relative weight (≥ 1) in the request mix.
    pub weight: u64,
    /// Problem sizes requests of this algorithm are drawn from
    /// (uniformly).
    pub sizes: Vec<usize>,
}

/// A complete load scenario. Same spec + same seed ⇒ same request
/// schedule; on the sim backend the whole scenario report is
/// byte-identical across runs.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Master seed: drives the request schedule (mix picks, sizes,
    /// think/inter-arrival times) and the kernels' input seeds.
    pub seed: u64,
    /// Total requests the generator emits.
    pub requests: usize,
    /// Concurrent clients (closed loop: one outstanding request each;
    /// open loop: requests are attributed round-robin).
    pub clients: usize,
    /// Open vs closed loop (see [`LoadMode`]).
    pub mode: LoadMode,
    /// Admission-queue bound: a submission finding the queue at this
    /// depth is *rejected and counted* — never silently dropped.
    pub queue_cap: usize,
    /// Max requests batched into one shared kernel launch (1 disables
    /// batching).
    pub batch_max: usize,
    /// Only requests with `n <= small_n` are batched (large kernels
    /// launch alone).
    pub small_n: usize,
    /// Mean think time (closed) / inter-arrival time (open) in
    /// nanoseconds — log-normally distributed with σ = 0.5. 0 means no
    /// pacing.
    pub think_mean_ns: u64,
    /// The request mix (must be non-empty; weights ≥ 1).
    pub mix: Vec<MixEntry>,
    /// Which backend serves the scenario.
    pub backend: Backend,
    /// Scheduling discipline (both backends).
    pub policy: Policy,
    /// Pool workers (native) / simulated cores (sim).
    pub workers: usize,
    /// Closed-loop clients honor `RetryAfter` pacing hints: a full
    /// queue *defers* the submission (sleep the hinted duration, retry
    /// up to [`MAX_DEFERRALS`] times) instead of hard-rejecting it
    /// outright. Open-loop arrivals are pre-scheduled and never pace.
    pub pacing: bool,
    /// Native pool tuning (deque kind, steal batching, domains,
    /// autoscale band, …). `workers`/`seed`/`policy` are taken from the
    /// spec's own fields — see [`ScenarioSpec::native_config`].
    pub native: NativeConfig,
}

/// How many times a pacing client retries a deferred submission before
/// recording a hard rejection.
pub const MAX_DEFERRALS: u32 = 3;

/// The default request mix: the paper's sort/scan/LR workloads plus CC
/// on the sim backend. CC has no `par_*` kernel yet, so the native
/// default substitutes FFT to keep a 4-algorithm mix (an explicit
/// `HBP_SERVE_MIX` naming CC on native fails loudly in
/// [`ScenarioSpec::validate`]).
pub fn default_mix(backend: Backend) -> Vec<MixEntry> {
    let fourth = match backend {
        Backend::Sim => "CC",
        Backend::Native => "FFT",
    };
    vec![
        MixEntry {
            algo: "Sort (SPMS)".into(),
            weight: 2,
            sizes: vec![512, 2048],
        },
        MixEntry {
            algo: "Scans (M-Sum)".into(),
            weight: 3,
            sizes: vec![1024, 8192],
        },
        MixEntry {
            algo: "LR".into(),
            weight: 2,
            sizes: vec![512, 2048],
        },
        MixEntry {
            algo: fourth.into(),
            weight: 1,
            sizes: vec![256, 1024],
        },
    ]
}

/// Parse an `HBP_SERVE_MIX` value:
/// `ALGO:WEIGHT:SIZE|SIZE,...` — e.g.
/// `Sort (SPMS):2:512|2048,LR:1:1024`. Every malformed field is an
/// error naming the variable and the offending entry.
pub fn parse_mix(value: &str) -> Result<Vec<MixEntry>, String> {
    let mut mix = Vec::new();
    for entry in value.split(',') {
        let mut parts = entry.splitn(3, ':');
        let (algo, weight, sizes) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(w), Some(s)) => (a.trim(), w.trim(), s),
            _ => {
                return Err(format!(
                    "HBP_SERVE_MIX entry must be ALGO:WEIGHT:SIZE|SIZE, got {entry:?}"
                ))
            }
        };
        let weight: u64 = weight.parse().ok().filter(|&w| w >= 1).ok_or_else(|| {
            format!("HBP_SERVE_MIX weight must be a positive integer in {entry:?}")
        })?;
        let sizes: Vec<usize> = sizes
            .split('|')
            .map(|s| {
                s.trim().parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("HBP_SERVE_MIX size must be a positive integer in {entry:?}")
                })
            })
            .collect::<Result<_, String>>()?;
        if sizes.is_empty() {
            return Err(format!("HBP_SERVE_MIX entry {entry:?} has no sizes"));
        }
        mix.push(MixEntry {
            algo: algo.to_string(),
            weight,
            sizes,
        });
    }
    if mix.is_empty() {
        return Err("HBP_SERVE_MIX must name at least one entry".into());
    }
    Ok(mix)
}

fn env_num<T: std::str::FromStr + Copy>(
    var: &str,
    default: T,
    min_ok: fn(&T) -> bool,
) -> Result<T, String> {
    match std::env::var(var) {
        Err(_) => Ok(default),
        Ok(s) if s.is_empty() => Ok(default),
        Ok(s) => s
            .parse::<T>()
            .ok()
            .filter(min_ok)
            .ok_or_else(|| format!("{var} must be a valid non-negative number, got {s:?}")),
    }
}

impl ScenarioSpec {
    /// Build the spec from the environment (`HBP_SERVE_*` plus the
    /// shared `HBP_BACKEND` / `HBP_POLICY` / `HBP_WORKERS` knobs),
    /// falling back to a small deterministic default scenario. Every
    /// invalid value is an error naming the variable — no silent
    /// defaults on typos. The result is already
    /// [validated](ScenarioSpec::validate).
    pub fn try_from_env() -> Result<Self, String> {
        let cfg = hbp_core::Config::try_from_env()?;
        let mix = match std::env::var("HBP_SERVE_MIX") {
            Ok(s) if !s.is_empty() => parse_mix(&s)?,
            _ => default_mix(cfg.backend),
        };
        let seed = env_num("HBP_SERVE_SEED", 42u64, |_| true)?;
        let pacing = match std::env::var("HBP_SERVE_PACING").ok().as_deref() {
            None | Some("") | Some("0") | Some("off") | Some("false") => false,
            Some("1") | Some("on") | Some("true") | Some("yes") => true,
            Some(other) => {
                return Err(format!(
                    "HBP_SERVE_PACING must be a boolean switch (1/on/true or 0/off/false), \
                     got {other:?}"
                ))
            }
        };
        let spec = Self {
            seed,
            requests: env_num("HBP_SERVE_REQUESTS", 120usize, |&r| r >= 1)?,
            clients: env_num("HBP_SERVE_CLIENTS", 4usize, |&c| c >= 1)?,
            mode: LoadMode::parse(std::env::var("HBP_SERVE_MODE").ok().as_deref())?,
            queue_cap: env_num("HBP_SERVE_QUEUE_CAP", 64usize, |&c| c >= 1)?,
            batch_max: env_num("HBP_SERVE_BATCH", 8usize, |&b| b >= 1)?,
            small_n: env_num("HBP_SERVE_SMALL_N", 4096usize, |_| true)?,
            think_mean_ns: env_num("HBP_SERVE_THINK_NS", 20_000u64, |_| true)?,
            mix,
            backend: cfg.backend,
            policy: cfg.policy,
            workers: cfg.workers,
            pacing,
            native: cfg.native_config(seed),
        };
        spec.validate();
        Ok(spec)
    }

    /// [`ScenarioSpec::try_from_env`], panicking with the parse error.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Resolve every mix row through [`hbp_core::lookup`] (panics
    /// listing the known rows on a miss — a renamed registry row breaks
    /// the scenario loudly) and, on the native backend, require a
    /// native kernel for each (panics listing what native serves).
    /// Canonicalizes the mix's algorithm names in place.
    pub fn validate(&self) {
        for entry in &self.mix {
            let spec = lookup(&entry.algo);
            if self.backend == Backend::Native && !has_native_kernel(spec.name) {
                let served: Vec<&str> = crate::NATIVE_SERVED
                    .iter()
                    .copied()
                    .filter(|a| has_native_kernel(a))
                    .collect();
                panic!(
                    "mix row {:?} has no native kernel; the native backend serves {served:?}",
                    spec.name
                );
            }
        }
        assert!(!self.mix.is_empty(), "scenario mix is empty");
    }

    /// The scenario's canonical mix: every algo name resolved through
    /// the registry (exact, fail-loud).
    pub fn canonical_mix(&self) -> Vec<MixEntry> {
        self.mix
            .iter()
            .map(|e| MixEntry {
                algo: lookup(&e.algo).name.to_string(),
                weight: e.weight,
                sizes: e.sizes.clone(),
            })
            .collect()
    }

    /// The native pool's config for this scenario: the spec's
    /// `workers`/`seed`/`policy` over the tuning knobs carried in
    /// [`ScenarioSpec::native`], so there is exactly one source of truth
    /// for the fields both hold.
    pub fn native_config(&self) -> NativeConfig {
        NativeConfig {
            workers: self.workers,
            seed: self.seed,
            policy: self.policy,
            ..self.native
        }
    }

    /// Report label for the policy (`pws`, `rws:SEED`, `bsp:LEVELS`).
    pub fn policy_label(&self) -> String {
        match self.policy {
            Policy::Pws => "pws".to_string(),
            Policy::Rws { seed } => format!("rws:{seed}"),
            Policy::Bsp { prefix_levels } => format!("bsp:{prefix_levels}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parse_roundtrips_and_rejects_garbage() {
        let mix = parse_mix("Sort (SPMS):2:512|2048,LR:1:1024").unwrap();
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[0].algo, "Sort (SPMS)");
        assert_eq!(mix[0].weight, 2);
        assert_eq!(mix[0].sizes, vec![512, 2048]);
        assert_eq!(mix[1].algo, "LR");
        for bad in ["LR", "LR:0:512", "LR:1:", "LR:1:abc", ""] {
            let err = parse_mix(bad).expect_err(bad);
            assert!(
                err.contains("HBP_SERVE_MIX"),
                "error names the variable: {err}"
            );
        }
    }

    #[test]
    fn default_mix_resolves_on_its_backend() {
        for backend in [Backend::Sim, Backend::Native] {
            for entry in default_mix(backend) {
                let spec = lookup(&entry.algo);
                if backend == Backend::Native {
                    assert!(
                        has_native_kernel(spec.name),
                        "{} must have a native kernel",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn validate_fails_loudly_on_renamed_rows() {
        let spec = ScenarioSpec {
            seed: 1,
            requests: 1,
            clients: 1,
            mode: LoadMode::Closed,
            queue_cap: 1,
            batch_max: 1,
            small_n: 0,
            think_mean_ns: 0,
            mix: vec![MixEntry {
                algo: "Sort (renamed away)".into(),
                weight: 1,
                sizes: vec![64],
            }],
            backend: Backend::Sim,
            policy: Policy::Pws,
            workers: 2,
            pacing: false,
            native: NativeConfig::default(),
        };
        let err = std::panic::catch_unwind(|| spec.validate()).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("String payload");
        assert!(msg.contains("no registry row named"), "{msg}");
    }
}
