//! # hbp-serve — kernel-as-a-service on the persistent pool runtime
//!
//! PR 5 made the native runtime a pool you *start once and keep*
//! ([`hbp_core::sched::native::NativePool`]); this crate is the service
//! built on top of it: a **multi-tenant job server** that accepts a
//! stream of kernel requests (sort / scan / list-ranking / … at mixed
//! sizes) from concurrent clients and serves them all from one pool,
//! never respawning a worker.
//!
//! The traffic comes from a **deterministic-seed load generator**
//! ([`gen`]): one `ChaCha8Rng` drives the mix picks, problem sizes, and
//! log-normal pacing, so a scenario is fully described by its
//! [`ScenarioSpec`] — same spec, same schedule, CI-able. Serving adds:
//!
//! * **bounded admission** — a full queue rejects (and counts) instead
//!   of buffering unboundedly or dropping silently;
//! * **small-request batching** — consecutive requests with
//!   `n <= small_n` share one kernel launch (a fork-join tree in a
//!   single pool submission);
//! * a **[`ScenarioReport`]** with p50/p95/p99 latency, queue-wait
//!   percentiles, queue depth over time, throughput, and (on the sim
//!   backend) each request's critical-path breakdown.
//!
//! Two runners implement the same scenario semantics:
//!
//! * [`virt::run_virtual`] (sim) — a discrete-event simulation of the
//!   server in integer virtual time, using a per-shape service oracle
//!   (the kernel's simulated makespan under the scenario policy).
//!   Byte-identical JSON across runs for a fixed seed.
//! * [`server::run_real`] (native) — real client threads, a real
//!   dispatcher, one real [`NativePool`]; wall-clock timings.
//!
//! ```no_run
//! use hbp_serve::{run_scenario, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_env(); // HBP_SERVE_*, HBP_BACKEND, ...
//! let report = run_scenario(&spec);
//! println!("{}", report.to_json());
//! ```
//!
//! [`hbp_core::sched::native::NativePool`]: hbp_core::sched::native::NativePool
//! [`NativePool`]: hbp_core::sched::native::NativePool

pub mod gen;
pub mod report;
pub mod server;
pub mod spec;
pub mod virt;

pub use gen::{build_schedule, per_client, Request};
pub use report::{ClientStats, CpTotals, LatencyStats, RequestRecord, ScenarioReport};
pub use spec::{default_mix, parse_mix, LoadMode, MixEntry, ScenarioSpec};

use hbp_core::Backend;

/// The registry rows the native backend can serve — every row with a
/// `par_*` kernel behind [`hbp_core::native_kernel`]. Scenario
/// validation quotes this list when a mix names something the native
/// backend cannot run (e.g. CC, which has no native kernel yet).
pub const NATIVE_SERVED: &[&str] = &[
    "Scans (M-Sum)",
    "Scans (PS)",
    "MT",
    "Strassen",
    "FFT",
    "LR",
    "Sort (SPMS)",
    "Sort (merge std-in)",
];

/// Run a scenario on the backend it names: [`virt::run_virtual`] on
/// sim, [`server::run_real`] on native. Validates the spec first
/// (fail-loud registry resolution, see [`ScenarioSpec::validate`]).
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioReport {
    spec.validate();
    match spec.backend {
        Backend::Sim => virt::run_virtual(spec),
        Backend::Native => server::run_real(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbp_core::{has_native_kernel, lookup};

    #[test]
    fn native_served_list_matches_the_kernel_table() {
        // Every advertised row resolves and has a kernel; every registry
        // row with a kernel is advertised.
        for name in NATIVE_SERVED {
            assert_eq!(lookup(name).name, *name);
            assert!(has_native_kernel(name), "{name} advertised but unserved");
        }
        for row in hbp_core::registry() {
            assert_eq!(
                NATIVE_SERVED.contains(&row.name),
                has_native_kernel(row.name),
                "{} in NATIVE_SERVED iff it has a native kernel",
                row.name
            );
        }
    }
}
