//! The scenario report: per-request records, latency percentiles, queue
//! depth over time — and a *stable* hand-rolled JSON writer, so a
//! fixed-seed sim scenario serializes byte-identically across runs.

use crate::spec::ScenarioSpec;

/// Critical-path totals of one request's kernel execution (virtual time
/// units; sim backend only — wall-clock traces cannot be back-chained
/// exactly, see `hbp_trace::critical`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpTotals {
    /// End-to-end path length (== the kernel's sim makespan).
    pub total: u64,
    /// Executed time on the path.
    pub work: u64,
    /// Steal charges on the path.
    pub steal: u64,
    /// Deque wait on the path.
    pub queue_wait: u64,
}

/// One request's fate, as reported.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Schedule id.
    pub id: u64,
    /// Submitting client.
    pub client: usize,
    /// Canonical algorithm name.
    pub algo: &'static str,
    /// Problem size.
    pub n: usize,
    /// When the request was submitted (ns from scenario start —
    /// virtual units on sim, wall-clock on native).
    pub arrival_ns: u64,
    /// Rejected at admission (queue full). Rejected requests have zero
    /// queue/service/latency and no critical path.
    pub rejected: bool,
    /// Times this request was *deferred* — answered `RetryAfter` and
    /// resubmitted by a pacing client — before completing (or before
    /// the final hard rejection). Always 0 without pacing.
    pub deferrals: u32,
    /// Admission-queue wait: submit → kernel launch.
    pub queue_ns: u64,
    /// Service time: the launch's makespan (shared by batch members).
    pub service_ns: u64,
    /// End-to-end: submit → completion.
    pub latency_ns: u64,
    /// Number of requests sharing the launch (1 = solo).
    pub batch: usize,
    /// Per-request critical-path totals (sim backend only).
    pub cp: Option<CpTotals>,
}

/// Latency distribution summary (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

/// Nearest-rank percentile of an already-sorted sample (`pct` in 1..=100).
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct as usize * sorted.len()).div_ceil(100);
    sorted[rank.max(1) - 1]
}

impl LatencyStats {
    /// Summarize a sample (need not be sorted).
    pub fn of(mut sample: Vec<u64>) -> Self {
        sample.sort_unstable();
        Self {
            p50: percentile(&sample, 50),
            p95: percentile(&sample, 95),
            p99: percentile(&sample, 99),
            max: sample.last().copied().unwrap_or(0),
        }
    }
}

/// One client's (tenant's) share of the scenario, derived entirely from
/// the per-request rows in [`ScenarioReport::assemble`] — *not* from the
/// global metrics registry, so the sim report stays byte-deterministic
/// even when a concurrent job pollutes the process-wide counters.
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// Client (tenant) index.
    pub client: usize,
    /// Requests this client submitted.
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// End-to-end latency percentiles over this client's completed
    /// requests.
    pub latency: LatencyStats,
    /// Admission-queue wait percentiles over this client's completed
    /// requests.
    pub queue_wait: LatencyStats,
}

/// The complete scenario outcome.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Backend label (`sim` / `native`).
    pub backend: &'static str,
    /// Policy label (`pws` / `rws:SEED` / `bsp:LEVELS`).
    pub policy: String,
    /// Pool workers / simulated cores.
    pub workers: usize,
    /// The scenario seed.
    pub seed: u64,
    /// Load mode label.
    pub mode: &'static str,
    /// Generated requests.
    pub requests: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Admission-queue bound.
    pub queue_cap: usize,
    /// Batching knobs.
    pub batch_max: usize,
    pub small_n: usize,
    /// Whether closed-loop clients honored `RetryAfter` pacing hints.
    pub pacing: bool,
    /// Completed (served) requests.
    pub completed: u64,
    /// Rejected (queue-full) requests — counted, never silent.
    pub rejected: u64,
    /// Deferral events: `RetryAfter` answers that pacing clients
    /// honored (slept and resubmitted). Counted separately from
    /// rejections — a deferred request usually still completes.
    pub deferred: u64,
    /// Peak workers the backend engaged: the pool's per-launch
    /// `workers_active` maximum on native, the simulated core count on
    /// sim. Under an autoscale band this is what the scenario *used*,
    /// not what was configured.
    pub workers_active: usize,
    /// Scenario end-to-end time (virtual units on sim, wall ns native).
    pub makespan_ns: u64,
    /// Completed requests per second × 1000 (integer, so the sim report
    /// stays float-free and byte-stable).
    pub throughput_milli_rps: u64,
    /// End-to-end latency percentiles over completed requests.
    pub latency: LatencyStats,
    /// Admission-queue wait percentiles over completed requests.
    pub queue_wait: LatencyStats,
    /// Kernel launches performed, and how many requests rode shared ones.
    pub launches: u64,
    pub batched_requests: u64,
    /// (time, depth) samples of the admission queue, ≤ 64 points.
    pub queue_depth: Vec<(u64, usize)>,
    /// Per-client (tenant) rollups, ascending client index.
    pub clients_stats: Vec<ClientStats>,
    /// Every request, schedule order.
    pub rows: Vec<RequestRecord>,
}

impl ScenarioReport {
    /// Assemble the report from per-request records.
    pub fn assemble(
        spec: &ScenarioSpec,
        backend: &'static str,
        rows: Vec<RequestRecord>,
        makespan_ns: u64,
        queue_depth: Vec<(u64, usize)>,
        workers_active: usize,
    ) -> Self {
        let completed = rows.iter().filter(|r| !r.rejected).count() as u64;
        let rejected = rows.iter().filter(|r| r.rejected).count() as u64;
        let deferred = rows.iter().map(|r| r.deferrals as u64).sum();
        let latencies: Vec<u64> = rows
            .iter()
            .filter(|r| !r.rejected)
            .map(|r| r.latency_ns)
            .collect();
        let waits: Vec<u64> = rows
            .iter()
            .filter(|r| !r.rejected)
            .map(|r| r.queue_ns)
            .collect();
        // Launch count: solo requests count 1 each; a batch of k counts
        // once, so sum over rows of 1/batch = launches.
        let mut launches = 0u64;
        let mut batched = 0u64;
        let mut seen_weight = 0f64;
        for r in rows.iter().filter(|r| !r.rejected) {
            seen_weight += 1.0 / r.batch as f64;
            if r.batch > 1 {
                batched += 1;
            }
        }
        launches += seen_weight.round() as u64;
        let throughput_milli_rps = if makespan_ns == 0 {
            0
        } else {
            (completed as u128 * 1_000_000_000_000u128 / makespan_ns as u128) as u64
        };
        let clients_stats = (0..spec.clients)
            .map(|c| {
                let mine = || rows.iter().filter(move |r| r.client == c);
                ClientStats {
                    client: c,
                    submitted: mine().count() as u64,
                    completed: mine().filter(|r| !r.rejected).count() as u64,
                    rejected: mine().filter(|r| r.rejected).count() as u64,
                    latency: LatencyStats::of(
                        mine()
                            .filter(|r| !r.rejected)
                            .map(|r| r.latency_ns)
                            .collect(),
                    ),
                    queue_wait: LatencyStats::of(
                        mine().filter(|r| !r.rejected).map(|r| r.queue_ns).collect(),
                    ),
                }
            })
            .collect();
        Self {
            backend,
            policy: spec.policy_label(),
            workers: spec.workers,
            seed: spec.seed,
            mode: spec.mode.label(),
            requests: spec.requests,
            clients: spec.clients,
            queue_cap: spec.queue_cap,
            batch_max: spec.batch_max,
            small_n: spec.small_n,
            pacing: spec.pacing,
            completed,
            rejected,
            deferred,
            workers_active,
            makespan_ns,
            throughput_milli_rps,
            latency: LatencyStats::of(latencies),
            queue_wait: LatencyStats::of(waits),
            launches,
            batched_requests: batched,
            queue_depth: compress_depth(queue_depth),
            clients_stats,
            rows,
        }
    }

    /// Serialize to JSON with a fixed key order and integer-only values
    /// — byte-identical for identical runs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096 + self.rows.len() * 160);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"scenario\": {{\"backend\": \"{}\", \"policy\": \"{}\", \"workers\": {}, \"seed\": {}, \"mode\": \"{}\", \"requests\": {}, \"clients\": {}, \"queue_cap\": {}, \"batch_max\": {}, \"small_n\": {}, \"pacing\": {}}},\n",
            self.backend, esc(&self.policy), self.workers, self.seed, self.mode,
            self.requests, self.clients, self.queue_cap, self.batch_max, self.small_n,
            self.pacing
        ));
        s.push_str(&format!(
            "  \"totals\": {{\"completed\": {}, \"rejected\": {}, \"deferred\": {}, \"workers_active\": {}, \"makespan_ns\": {}, \"throughput_milli_rps\": {}, \"launches\": {}, \"batched_requests\": {}}},\n",
            self.completed, self.rejected, self.deferred, self.workers_active,
            self.makespan_ns, self.throughput_milli_rps,
            self.launches, self.batched_requests
        ));
        s.push_str(&format!(
            "  \"latency_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n",
            self.latency.p50, self.latency.p95, self.latency.p99, self.latency.max
        ));
        s.push_str(&format!(
            "  \"queue_wait_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n",
            self.queue_wait.p50, self.queue_wait.p95, self.queue_wait.p99, self.queue_wait.max
        ));
        s.push_str("  \"queue_depth\": [");
        for (i, (t, d)) in self.queue_depth.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("[{t}, {d}]"));
        }
        s.push_str("],\n");
        s.push_str("  \"clients\": [\n");
        for (i, c) in self.clients_stats.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"client\": {}, \"submitted\": {}, \"completed\": {}, \"rejected\": {}, \"latency_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \"queue_wait_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}}}{}\n",
                c.client, c.submitted, c.completed, c.rejected,
                c.latency.p50, c.latency.p95, c.latency.p99, c.latency.max,
                c.queue_wait.p50, c.queue_wait.p95, c.queue_wait.p99, c.queue_wait.max,
                if i + 1 < self.clients_stats.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"requests\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"client\": {}, \"algo\": \"{}\", \"n\": {}, \"arrival_ns\": {}, \"rejected\": {}, \"deferrals\": {}, \"queue_ns\": {}, \"service_ns\": {}, \"latency_ns\": {}, \"batch\": {}, \"cp\": {}}}{}\n",
                r.id,
                r.client,
                esc(r.algo),
                r.n,
                r.arrival_ns,
                r.rejected,
                r.deferrals,
                r.queue_ns,
                r.service_ns,
                r.latency_ns,
                r.batch,
                match &r.cp {
                    Some(cp) => format!(
                        "{{\"total\": {}, \"work\": {}, \"steal\": {}, \"queue_wait\": {}}}",
                        cp.total, cp.work, cp.steal, cp.queue_wait
                    ),
                    None => "null".to_string(),
                },
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Keep the queue-depth timeline readable: at most 64 evenly-strided
/// samples (first and last always kept).
fn compress_depth(samples: Vec<(u64, usize)>) -> Vec<(u64, usize)> {
    const MAX: usize = 64;
    if samples.len() <= MAX {
        return samples;
    }
    let last = *samples.last().expect("non-empty");
    let stride = samples.len().div_ceil(MAX);
    let mut out: Vec<(u64, usize)> = samples.into_iter().step_by(stride).collect();
    if out.last() != Some(&last) {
        out.push(last);
    }
    out
}

/// Minimal JSON string escaping (quotes/backslash/control).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 95), 95);
        assert_eq!(percentile(&sorted, 99), 99);
        assert_eq!(percentile(&sorted, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[], 99), 0);
        // Small samples: rank rounds up, never out of bounds.
        assert_eq!(percentile(&[1, 2], 99), 2);
        assert_eq!(percentile(&[1, 2], 1), 1);
    }

    #[test]
    fn depth_compression_bounds_points_and_keeps_endpoints() {
        let samples: Vec<(u64, usize)> = (0..1000).map(|i| (i, (i % 7) as usize)).collect();
        let out = compress_depth(samples.clone());
        assert!(out.len() <= 65, "got {}", out.len());
        assert_eq!(out.first(), samples.first());
        assert_eq!(out.last(), samples.last());
        let short: Vec<(u64, usize)> = (0..10).map(|i| (i, 1)).collect();
        assert_eq!(compress_depth(short.clone()), short);
    }

    #[test]
    fn json_escapes_and_is_stable() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("Sort (SPMS)"), "Sort (SPMS)");
    }
}
