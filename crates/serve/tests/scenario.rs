//! End-to-end scenario acceptance tests for the job server.

use hbp_core::{Backend, Policy};
use hbp_serve::{run_scenario, LoadMode, MixEntry, ScenarioSpec};

/// A small-kernel mix that exercises every served family without
/// dominating test wall-clock.
fn tiny_mix() -> Vec<MixEntry> {
    vec![
        MixEntry {
            algo: "Sort (SPMS)".into(),
            weight: 2,
            sizes: vec![256, 512],
        },
        MixEntry {
            algo: "Scans (M-Sum)".into(),
            weight: 3,
            sizes: vec![512, 1024],
        },
        MixEntry {
            algo: "LR".into(),
            weight: 2,
            sizes: vec![256, 512],
        },
        MixEntry {
            algo: "FFT".into(),
            weight: 1,
            sizes: vec![256],
        },
    ]
}

#[test]
fn one_pool_serves_a_thousand_mixed_requests_from_four_clients() {
    let spec = ScenarioSpec {
        seed: 42,
        requests: 1000,
        clients: 4,
        mode: LoadMode::Closed,
        queue_cap: 1024,
        batch_max: 8,
        small_n: 4096,
        think_mean_ns: 0,
        mix: tiny_mix(),
        backend: Backend::Native,
        policy: Policy::Rws { seed: 1 },
        workers: 2,
        pacing: false,
        native: hbp_core::sched::native::NativeConfig::default(),
    };
    let report = run_scenario(&spec);
    assert_eq!(report.completed, 1000, "every request is served");
    assert_eq!(report.rejected, 0, "roomy queue admits everything");
    assert_eq!(report.rows.len(), 1000);
    assert!(report.latency.p99 >= report.latency.p95);
    assert!(report.latency.p95 >= report.latency.p50);
    assert!(report.throughput_milli_rps > 0);
    // With four closed-loop clients hammering small kernels, the
    // dispatcher must have shared at least some launches.
    assert!(report.batched_requests > 0, "batching never engaged");
    assert!(report.launches < report.completed);
}

#[test]
fn fixed_seed_sim_scenario_reports_are_byte_identical() {
    let spec = ScenarioSpec {
        seed: 42,
        requests: 120,
        clients: 4,
        mode: LoadMode::Closed,
        queue_cap: 64,
        batch_max: 8,
        small_n: 4096,
        think_mean_ns: 20_000,
        mix: tiny_mix(),
        backend: Backend::Sim,
        policy: Policy::Pws,
        workers: 4,
        pacing: false,
        native: hbp_core::sched::native::NativeConfig::default(),
    };
    let a = run_scenario(&spec).to_json();
    let b = run_scenario(&spec).to_json();
    assert_eq!(a, b, "same seed must serialize to the same bytes");
    // The report carries the per-request critical-path breakdown on sim.
    assert!(a.contains("\"cp\": {\"total\":"));
    assert!(a.contains("\"latency_ns\": {\"p50\":"));
}

#[test]
fn default_env_spec_parses_and_validates() {
    // No HBP_* variables set in the test environment: the default
    // scenario must parse, validate, and target the sim backend.
    let spec = ScenarioSpec::try_from_env().expect("default scenario is valid");
    assert_eq!(spec.backend, Backend::Sim);
    assert_eq!(spec.requests, 120);
    assert_eq!(spec.clients, 4);
    assert!(spec.queue_cap >= spec.clients);
    assert!(!spec.mix.is_empty());
}
