//! **W1b — real-machine false sharing** (criterion): the §1 phenomenon on
//! actual silicon.
//!
//! * `counters/adjacent` vs `counters/padded`: two threads incrementing
//!   counters that share (or don't share) a cache line;
//! * `writes/interleaved` vs `writes/blocked`: two threads writing
//!   word-interleaved vs block-partitioned halves of one array.
//!
//! ```text
//! cargo bench -p hbp-bench --bench false_sharing
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

#[repr(align(128))]
struct Padded(AtomicU64);

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("counters");
    g.sample_size(20);
    let iters = 200_000u64;

    g.bench_function("adjacent", |b| {
        b.iter(|| {
            let slots = [AtomicU64::new(0), AtomicU64::new(0)];
            std::thread::scope(|s| {
                for t in 0..2 {
                    let slot = &slots[t];
                    s.spawn(move || {
                        for _ in 0..iters {
                            slot.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            black_box(slots[0].load(Ordering::Relaxed))
        })
    });

    g.bench_function("padded", |b| {
        b.iter(|| {
            let slots = [Padded(AtomicU64::new(0)), Padded(AtomicU64::new(0))];
            std::thread::scope(|s| {
                for t in 0..2 {
                    let slot = &slots[t].0;
                    s.spawn(move || {
                        for _ in 0..iters {
                            slot.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            black_box(slots[0].0.load(Ordering::Relaxed))
        })
    });
    g.finish();
}

fn bench_array_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("writes");
    g.sample_size(20);
    let n = 1 << 16;

    // Word-interleaved halves: every block is shared between the threads.
    g.bench_function("interleaved", |b| {
        b.iter(|| {
            let arr: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            std::thread::scope(|s| {
                for t in 0..2usize {
                    let arr = &arr;
                    s.spawn(move || {
                        let mut i = t;
                        while i < n {
                            arr[i].store(i as u64, Ordering::Relaxed);
                            i += 2;
                        }
                    });
                }
            });
            black_box(arr[0].load(Ordering::Relaxed))
        })
    });

    // Block-partitioned halves: no block is ever shared (HBP-style).
    g.bench_function("blocked", |b| {
        b.iter(|| {
            let arr: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            std::thread::scope(|s| {
                for t in 0..2usize {
                    let arr = &arr;
                    s.spawn(move || {
                        let (lo, hi) = if t == 0 { (0, n / 2) } else { (n / 2, n) };
                        for i in lo..hi {
                            arr[i].store(i as u64, Ordering::Relaxed);
                        }
                    });
                }
            });
            black_box(arr[0].load(Ordering::Relaxed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_counters, bench_array_writes);
criterion_main!(benches);
