//! **W1 — real-machine wall clock** (criterion): rayon implementations of
//! the paper's algorithms vs their sequential counterparts.
//!
//! NB while the offline `vendor/rayon` shim is in use, only `rayon::join`
//! call sites (transpose, Strassen, mergesort) actually run in parallel;
//! the parallel-iterator lanes (sum, prefix, FFT rows, list ranking)
//! execute sequentially, so their "rayon" numbers measure the same work as
//! "seq" plus wrapper overhead. Re-baseline when swapping in real rayon.
//!
//! ```text
//! cargo bench -p hbp-bench --bench wallclock
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hbp_core::algos::{gen, layout, oracle, par};
use hbp_core::model::Cx;

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    g.sample_size(20);
    let data = gen::random_u64s(1 << 20, 1 << 40, 1);
    g.bench_function(BenchmarkId::new("sum", "seq"), |b| {
        b.iter(|| oracle::sum(black_box(&data)))
    });
    g.bench_function(BenchmarkId::new("sum", "rayon"), |b| {
        b.iter(|| par::par_sum(black_box(&data)))
    });
    g.bench_function(BenchmarkId::new("prefix", "seq"), |b| {
        b.iter(|| oracle::prefix_sums(black_box(&data)))
    });
    g.bench_function(BenchmarkId::new("prefix", "rayon"), |b| {
        b.iter(|| par::par_prefix(black_box(&data)))
    });
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut g = c.benchmark_group("mt");
    g.sample_size(20);
    let n = 512;
    let mut bi = vec![0.0f64; n * n];
    for r in 0..n {
        for cc in 0..n {
            bi[layout::morton(r as u64, cc as u64) as usize] = (r * n + cc) as f64;
        }
    }
    g.bench_function(BenchmarkId::new("bi", "rayon"), |b| {
        b.iter(|| {
            let mut m = bi.clone();
            par::par_transpose_bi(&mut m, n);
            black_box(m)
        })
    });
    let rm: Vec<f64> = (0..n * n).map(|x| x as f64).collect();
    g.bench_function(BenchmarkId::new("rm", "seq"), |b| {
        b.iter(|| oracle::transpose_rm(black_box(&rm), n))
    });
    g.finish();
}

fn bench_strassen(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(10);
    let n = 128;
    let a = gen::random_matrix(n, 1);
    let bm = gen::random_matrix(n, 2);
    let mut abi = vec![0.0; n * n];
    let mut bbi = vec![0.0; n * n];
    for r in 0..n {
        for cc in 0..n {
            abi[layout::morton(r as u64, cc as u64) as usize] = a[r * n + cc];
            bbi[layout::morton(r as u64, cc as u64) as usize] = bm[r * n + cc];
        }
    }
    g.bench_function(BenchmarkId::new("naive", "seq"), |b| {
        b.iter(|| oracle::matmul_rm(black_box(&a), black_box(&bm), n))
    });
    g.bench_function(BenchmarkId::new("strassen-bi", "rayon"), |b| {
        b.iter(|| par::par_strassen_bi(black_box(&abi), black_box(&bbi), n))
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    g.sample_size(20);
    let n = 1 << 14;
    let x: Vec<Cx> = (0..n)
        .map(|i| Cx::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
        .collect();
    g.bench_function(BenchmarkId::new("six-step", "rayon"), |b| {
        b.iter(|| {
            let mut y = x.clone();
            par::par_fft(&mut y);
            black_box(y)
        })
    });
    g.finish();
}

fn bench_sort_and_lr(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_lr");
    g.sample_size(10);
    let keys = gen::random_u64s(1 << 18, u64::MAX / 2, 7);
    let pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 1)).collect();
    g.bench_function(BenchmarkId::new("mergesort", "rayon"), |b| {
        b.iter(|| {
            let mut d = pairs.clone();
            par::par_mergesort(&mut d);
            black_box(d)
        })
    });
    g.bench_function(BenchmarkId::new("sort", "std-seq"), |b| {
        b.iter(|| {
            let mut d = pairs.clone();
            d.sort_by_key(|p| p.0);
            black_box(d)
        })
    });
    let succ = gen::random_list(1 << 16, 5);
    g.bench_function(BenchmarkId::new("listrank", "rayon-jump"), |b| {
        b.iter(|| par::par_list_rank(black_box(&succ)))
    });
    g.bench_function(BenchmarkId::new("listrank", "seq"), |b| {
        b.iter(|| oracle::list_rank(black_box(&succ)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scans,
    bench_transpose,
    bench_strassen,
    bench_fft,
    bench_sort_and_lr
);
criterion_main!(benches);
