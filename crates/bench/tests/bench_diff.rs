//! Behavioural tests of the `bench_diff` binary: clear errors, never
//! panics, correct exit statuses for row-set mismatches.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_tmp(name: &str, content: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hbp_bench_diff_{}_{name}", std::process::id()));
    std::fs::write(&p, content).expect("write temp BENCH file");
    p
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("spawn bench_diff")
}

fn text(o: &Output) -> String {
    format!(
        "{}{}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    )
}

const BASE: &str = r#"{"table1": [
  {"algorithm": "FFT", "q_misses": 100, "f_excess": 2},
  {"algorithm": "LR", "q_misses": 50, "f_excess": 1}
]}"#;

#[test]
fn equal_records_pass() {
    let a = write_tmp("eq_a.json", BASE);
    let b = write_tmp("eq_b.json", BASE);
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(o.status.success(), "{}", text(&o));
    assert!(text(&o).contains("ok: no regression"), "{}", text(&o));
}

#[test]
fn row_only_in_old_is_a_clear_regression_not_a_panic() {
    let a = write_tmp("old_only_a.json", BASE);
    let b = write_tmp(
        "old_only_b.json",
        r#"{"table1": [{"algorithm": "FFT", "q_misses": 100, "f_excess": 2}]}"#,
    );
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let t = text(&o);
    assert_eq!(o.status.code(), Some(1), "{t}");
    assert!(t.contains("REGRESSION LR"), "{t}");
    assert!(t.contains("present only in"), "names the file: {t}");
    assert!(!t.contains("panicked"), "{t}");
}

#[test]
fn row_only_in_new_is_noted_and_passes() {
    let a = write_tmp(
        "new_only_a.json",
        r#"{"table1": [{"algorithm": "FFT", "q_misses": 100, "f_excess": 2}]}"#,
    );
    let b = write_tmp("new_only_b.json", BASE);
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let t = text(&o);
    assert!(o.status.success(), "{t}");
    assert!(t.contains("note: row LR present only in"), "{t}");
}

#[test]
fn regressed_metric_fails_with_the_delta() {
    let a = write_tmp("reg_a.json", BASE);
    let b = write_tmp(
        "reg_b.json",
        r#"{"table1": [
  {"algorithm": "FFT", "q_misses": 150, "f_excess": 2},
  {"algorithm": "LR", "q_misses": 50, "f_excess": 1}
]}"#,
    );
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let t = text(&o);
    assert_eq!(o.status.code(), Some(1), "{t}");
    assert!(t.contains("REGRESSION FFT.q_misses: 100 -> 150"), "{t}");
    // The same delta passes under a 60% threshold.
    let o = run(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--threshold",
        "0.6",
    ]);
    assert!(o.status.success(), "{}", text(&o));
}

#[test]
fn unusable_inputs_exit_2_with_named_file_and_no_panic() {
    let good = write_tmp("usable.json", BASE);
    let bad_json = write_tmp("bad.json", "{ not json");
    let no_table = write_tmp("no_table.json", r#"{"other": 1}"#);
    let bad_row = write_tmp("bad_row.json", r#"{"table1": [{"q_misses": 3}]}"#);
    for bad in [&bad_json, &no_table, &bad_row] {
        for order in [
            [good.to_str().unwrap(), bad.to_str().unwrap()],
            [bad.to_str().unwrap(), good.to_str().unwrap()],
        ] {
            let o = run(&order);
            let t = text(&o);
            assert_eq!(o.status.code(), Some(2), "{order:?}: {t}");
            assert!(t.contains("bench_diff: error:"), "{t}");
            assert!(
                t.contains(bad.file_name().unwrap().to_str().unwrap()),
                "error names the offending file: {t}"
            );
            assert!(!t.contains("panicked"), "{t}");
        }
    }
    let o = run(&[good.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(2), "missing second path is usage");
}

#[test]
fn rename_maps_old_row_onto_new_name() {
    // The renamed row must diff metric-by-metric under its new name
    // (here: with a regression, to prove it is actually compared).
    let a = write_tmp("ren_a.json", BASE);
    let b = write_tmp(
        "ren_b.json",
        r#"{"table1": [
  {"algorithm": "FFT (six-step)", "q_misses": 150, "f_excess": 2},
  {"algorithm": "LR", "q_misses": 50, "f_excess": 1}
]}"#,
    );
    let o = run(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--rename",
        "FFT=FFT (six-step)",
    ]);
    let t = text(&o);
    assert_eq!(o.status.code(), Some(1), "{t}");
    assert!(t.contains("rename"), "{t}");
    assert!(
        t.contains("REGRESSION FFT (six-step).q_misses: 100 -> 150"),
        "renamed row is compared: {t}"
    );
    assert!(
        !t.contains("present only in"),
        "no lost-coverage noise: {t}"
    );

    // Same records, equal metrics: rename alone passes clean.
    let c = write_tmp(
        "ren_c.json",
        r#"{"table1": [
  {"algorithm": "FFT (six-step)", "q_misses": 100, "f_excess": 2},
  {"algorithm": "LR", "q_misses": 50, "f_excess": 1}
]}"#,
    );
    let o = run(&[
        a.to_str().unwrap(),
        c.to_str().unwrap(),
        "--rename",
        "FFT=FFT (six-step)",
    ]);
    assert!(o.status.success(), "{}", text(&o));
}

#[test]
fn expect_waives_growth_but_not_coverage() {
    let a = write_tmp("exp_a.json", BASE);
    let b = write_tmp(
        "exp_b.json",
        r#"{"table1": [
  {"algorithm": "FFT", "q_misses": 300, "f_excess": 2},
  {"algorithm": "LR", "q_misses": 50, "f_excess": 1}
]}"#,
    );
    // Without --expect: the tripled metric is a regression.
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(1), "{}", text(&o));
    // With --expect FFT: reported as an expected change, exit 0.
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap(), "--expect", "FFT"]);
    let t = text(&o);
    assert!(o.status.success(), "{t}");
    assert!(t.contains("changed (expected) FFT.q_misses"), "{t}");
    assert!(!t.contains("REGRESSION"), "{t}");
    // An undeclared row still gates: LR regressing alongside fails.
    let c = write_tmp(
        "exp_c.json",
        r#"{"table1": [
  {"algorithm": "FFT", "q_misses": 300, "f_excess": 2},
  {"algorithm": "LR", "q_misses": 90, "f_excess": 1}
]}"#,
    );
    let o = run(&[a.to_str().unwrap(), c.to_str().unwrap(), "--expect", "FFT"]);
    let t = text(&o);
    assert_eq!(o.status.code(), Some(1), "{t}");
    assert!(t.contains("REGRESSION LR.q_misses"), "{t}");
    // --expect of a row missing from either side is a usage error.
    let o = run(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--expect",
        "NoSuchRow",
    ]);
    assert_eq!(o.status.code(), Some(2), "{}", text(&o));
}

#[test]
fn rename_of_a_missing_row_is_a_usage_error() {
    let a = write_tmp("ren_miss_a.json", BASE);
    let b = write_tmp("ren_miss_b.json", BASE);
    let o = run(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--rename",
        "NoSuchRow=Whatever",
    ]);
    let t = text(&o);
    assert_eq!(o.status.code(), Some(2), "{t}");
    assert!(t.contains("NoSuchRow"), "{t}");
    let o = run(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--rename",
        "missing-equals-sign",
    ]);
    assert_eq!(o.status.code(), Some(2), "{}", text(&o));
}

#[test]
fn differing_host_cpus_warns_loudly_but_does_not_fail() {
    let a = write_tmp(
        "cpus_a.json",
        r#"{"host_cpus": 1, "table1": [{"algorithm": "FFT", "q_misses": 100}]}"#,
    );
    let b = write_tmp(
        "cpus_b.json",
        r#"{"host_cpus": 8, "table1": [{"algorithm": "FFT", "q_misses": 100}]}"#,
    );
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let t = text(&o);
    assert!(
        o.status.success(),
        "different hosts alone must not gate: {t}"
    );
    assert!(t.contains("WARNING: host_cpus differ"), "{t}");
    assert!(t.contains("NOT comparable"), "{t}");
    // Loud = on stderr too, so CI log scanners catch it even when
    // stdout is folded away.
    assert!(
        String::from_utf8_lossy(&o.stderr).contains("host_cpus differ"),
        "{t}"
    );
    assert!(t.contains("ok: no regression"), "{t}");
}

#[test]
fn matching_or_absent_host_cpus_stays_quiet() {
    let a = write_tmp(
        "cpus_same_a.json",
        r#"{"host_cpus": 4, "table1": [{"algorithm": "FFT", "q_misses": 100}]}"#,
    );
    let b = write_tmp(
        "cpus_same_b.json",
        r#"{"host_cpus": 4, "table1": [{"algorithm": "FFT", "q_misses": 100}]}"#,
    );
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let t = text(&o);
    assert!(o.status.success(), "{t}");
    assert!(!t.contains("WARNING"), "{t}");
    // Records predating the field note the skip instead of guessing.
    let c = write_tmp("cpus_none.json", BASE);
    let o = run(&[c.to_str().unwrap(), c.to_str().unwrap()]);
    let t = text(&o);
    assert!(o.status.success(), "{t}");
    assert!(t.contains("no host_cpus"), "{t}");
    assert!(!t.contains("WARNING"), "{t}");
}

#[test]
fn committed_records_still_compare_clean() {
    // The real CI gates: PR 3 -> PR 4 unchanged, and PR 4 -> PR 5 with
    // the sort-row rename (the SPMS stand-in became "Sort (merge
    // std-in)" when the real SPMS row landed).
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let pr3 = root.join("BENCH_pr3.json");
    let pr4 = root.join("BENCH_pr4.json");
    let pr5 = root.join("BENCH_pr5.json");
    if pr3.exists() && pr4.exists() {
        let o = run(&[pr3.to_str().unwrap(), pr4.to_str().unwrap()]);
        assert!(o.status.success(), "{}", text(&o));
    }
    if pr4.exists() && pr5.exists() {
        // LR and CC are declared changes in PR 5: both now sort through
        // the real SPMS (LR routes its predecessor scatter through a
        // sort; CC swapped the mergesort stand-in out).
        let o = run(&[
            pr4.to_str().unwrap(),
            pr5.to_str().unwrap(),
            "--rename",
            "Sort (SPMS std-in)=Sort (merge std-in)",
            "--expect",
            "LR",
            "--expect",
            "CC",
        ]);
        assert!(o.status.success(), "{}", text(&o));
    }
}
