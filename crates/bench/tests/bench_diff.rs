//! Behavioural tests of the `bench_diff` binary: clear errors, never
//! panics, correct exit statuses for row-set mismatches.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_tmp(name: &str, content: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hbp_bench_diff_{}_{name}", std::process::id()));
    std::fs::write(&p, content).expect("write temp BENCH file");
    p
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("spawn bench_diff")
}

fn text(o: &Output) -> String {
    format!(
        "{}{}",
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    )
}

const BASE: &str = r#"{"table1": [
  {"algorithm": "FFT", "q_misses": 100, "f_excess": 2},
  {"algorithm": "LR", "q_misses": 50, "f_excess": 1}
]}"#;

#[test]
fn equal_records_pass() {
    let a = write_tmp("eq_a.json", BASE);
    let b = write_tmp("eq_b.json", BASE);
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(o.status.success(), "{}", text(&o));
    assert!(text(&o).contains("ok: no regression"), "{}", text(&o));
}

#[test]
fn row_only_in_old_is_a_clear_regression_not_a_panic() {
    let a = write_tmp("old_only_a.json", BASE);
    let b = write_tmp(
        "old_only_b.json",
        r#"{"table1": [{"algorithm": "FFT", "q_misses": 100, "f_excess": 2}]}"#,
    );
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let t = text(&o);
    assert_eq!(o.status.code(), Some(1), "{t}");
    assert!(t.contains("REGRESSION LR"), "{t}");
    assert!(t.contains("present only in"), "names the file: {t}");
    assert!(!t.contains("panicked"), "{t}");
}

#[test]
fn row_only_in_new_is_noted_and_passes() {
    let a = write_tmp(
        "new_only_a.json",
        r#"{"table1": [{"algorithm": "FFT", "q_misses": 100, "f_excess": 2}]}"#,
    );
    let b = write_tmp("new_only_b.json", BASE);
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let t = text(&o);
    assert!(o.status.success(), "{t}");
    assert!(t.contains("note: row LR present only in"), "{t}");
}

#[test]
fn regressed_metric_fails_with_the_delta() {
    let a = write_tmp("reg_a.json", BASE);
    let b = write_tmp(
        "reg_b.json",
        r#"{"table1": [
  {"algorithm": "FFT", "q_misses": 150, "f_excess": 2},
  {"algorithm": "LR", "q_misses": 50, "f_excess": 1}
]}"#,
    );
    let o = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    let t = text(&o);
    assert_eq!(o.status.code(), Some(1), "{t}");
    assert!(t.contains("REGRESSION FFT.q_misses: 100 -> 150"), "{t}");
    // The same delta passes under a 60% threshold.
    let o = run(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--threshold",
        "0.6",
    ]);
    assert!(o.status.success(), "{}", text(&o));
}

#[test]
fn unusable_inputs_exit_2_with_named_file_and_no_panic() {
    let good = write_tmp("usable.json", BASE);
    let bad_json = write_tmp("bad.json", "{ not json");
    let no_table = write_tmp("no_table.json", r#"{"other": 1}"#);
    let bad_row = write_tmp("bad_row.json", r#"{"table1": [{"q_misses": 3}]}"#);
    for bad in [&bad_json, &no_table, &bad_row] {
        for order in [
            [good.to_str().unwrap(), bad.to_str().unwrap()],
            [bad.to_str().unwrap(), good.to_str().unwrap()],
        ] {
            let o = run(&order);
            let t = text(&o);
            assert_eq!(o.status.code(), Some(2), "{order:?}: {t}");
            assert!(t.contains("bench_diff: error:"), "{t}");
            assert!(
                t.contains(bad.file_name().unwrap().to_str().unwrap()),
                "error names the offending file: {t}"
            );
            assert!(!t.contains("panicked"), "{t}");
        }
    }
    let o = run(&[good.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(2), "missing second path is usage");
}

#[test]
fn committed_records_still_compare_clean() {
    // The real CI gate: the committed PR 3 -> PR 4 records must diff
    // clean from the repo root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let old = root.join("BENCH_pr3.json");
    let new = root.join("BENCH_pr4.json");
    if !old.exists() || !new.exists() {
        return; // records are committed at the repo root only
    }
    let o = run(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(o.status.success(), "{}", text(&o));
}
