//! Shared helpers for the experiment binaries (`src/bin/*`): growth-rate
//! fitting, standard machine grids, and table formatting.
//!
//! Each binary regenerates one table/figure of the paper (see DESIGN.md §3
//! and EXPERIMENTS.md for the index).

use hbp_core::prelude::*;

/// Log-log slope between two measurements — the measured growth exponent.
pub fn growth_exponent(n1: f64, w1: f64, n2: f64, w2: f64) -> f64 {
    (w2 / w1).ln() / (n2 / n1).ln()
}

/// The default experiment machine (p = 8, M = 2¹⁴, B = 32, tall).
pub fn default_machine() -> MachineConfig {
    MachineConfig::default_machine()
}

/// Problem size for the native-backend figure paths: the figure's
/// default, unless `HBP_FIG_N` overrides it (the CI smoke step uses this
/// to run the native paths on tiny inputs). Rounded *down* to a power of
/// two, which the FFT (and the matrix-side derivation) require — a
/// figure run must not abort mid-table on an odd override.
pub fn fig_size(default: usize) -> usize {
    let n = match std::env::var("HBP_FIG_N") {
        Ok(s) => match s.parse() {
            Ok(n) if n >= 1 => n,
            _ => panic!("HBP_FIG_N must be a positive integer, got {s:?}"),
        },
        Err(_) => default,
    };
    if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() / 2
    }
}

/// Matrix side matching a linear problem size `n`: the power of two
/// nearest to `√n` from below, at least 16 (so the matrix kernels and
/// the linear kernels move comparable data volumes in the native runs).
pub fn matrix_side_for(n: usize) -> usize {
    let mut side = 16usize;
    while side * side * 4 <= n.max(1) {
        side *= 2;
    }
    side
}

/// Run one computation under PWS + sequentially; return `(seq, par)`.
pub fn measure(comp: &Computation, cfg: MachineConfig) -> (SeqReport, ExecReport) {
    (run_sequential(comp, cfg), run(comp, cfg, Policy::Pws))
}

/// Average the RWS results over `seeds` for a fair randomized baseline.
pub fn rws_avg(comp: &Computation, cfg: MachineConfig, seeds: &[u64]) -> RwsSummary {
    let mut s = RwsSummary::default();
    for &seed in seeds {
        let r = run(comp, cfg, Policy::Rws { seed });
        s.makespan += r.makespan as f64;
        s.plain_misses += r.plain_misses() as f64;
        s.block_misses += r.block_misses() as f64;
        s.steals += r.steals as f64;
        s.attempts += r.steal_attempts as f64;
    }
    let k = seeds.len() as f64;
    s.makespan /= k;
    s.plain_misses /= k;
    s.block_misses /= k;
    s.steals /= k;
    s.attempts /= k;
    s
}

/// Averaged RWS metrics.
#[derive(Debug, Default, Clone, Copy)]
pub struct RwsSummary {
    /// Mean makespan.
    pub makespan: f64,
    /// Mean plain (cold+capacity) misses.
    pub plain_misses: f64,
    /// Mean coherence (block) misses.
    pub block_misses: f64,
    /// Mean successful steals.
    pub steals: f64,
    /// Mean steal attempts.
    pub attempts: f64,
}

/// Print a rule line matching a header width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_quadratic_is_two() {
        let e = growth_exponent(8.0, 64.0, 16.0, 256.0);
        assert!((e - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fig_size_rounds_down_to_a_power_of_two() {
        // Robust to an ambient HBP_FIG_N: every value this helper returns
        // must be a power of two (the native FFT path's precondition).
        for default in [1usize, 7, 1000, 1 << 14, (1 << 14) + 1] {
            let n = fig_size(default);
            assert!(n.is_power_of_two(), "fig_size({default}) = {n}");
            if std::env::var("HBP_FIG_N").is_err() {
                assert!(n <= default && default < 2 * n);
            }
        }
    }

    #[test]
    fn matrix_side_is_a_power_of_two_floor() {
        assert_eq!(matrix_side_for(1), 16);
        assert_eq!(matrix_side_for(1 << 10), 32);
        assert_eq!(matrix_side_for(1 << 18), 512);
        assert!(matrix_side_for(1 << 20).is_power_of_two());
    }

    #[test]
    fn rws_avg_runs() {
        let data: Vec<u64> = (0..256).collect();
        let (comp, _) = hbp_core::algos::scan::m_sum(&data, BuildConfig::default());
        let s = rws_avg(&comp, MachineConfig::new(4, 1 << 10, 32), &[1, 2]);
        assert!(s.makespan > 0.0);
    }
}
