//! Shared helpers for the experiment binaries (`src/bin/*`): growth-rate
//! fitting, standard machine grids, and table formatting.
//!
//! Each binary regenerates one table/figure of the paper (see DESIGN.md §3
//! and EXPERIMENTS.md for the index).

use hbp_core::prelude::*;

/// Log-log slope between two measurements — the measured growth exponent.
pub fn growth_exponent(n1: f64, w1: f64, n2: f64, w2: f64) -> f64 {
    (w2 / w1).ln() / (n2 / n1).ln()
}

/// The default experiment machine (p = 8, M = 2¹⁴, B = 32, tall).
pub fn default_machine() -> MachineConfig {
    MachineConfig::default_machine()
}

/// Run one computation under PWS + sequentially; return `(seq, par)`.
pub fn measure(comp: &Computation, cfg: MachineConfig) -> (SeqReport, ExecReport) {
    (run_sequential(comp, cfg), run(comp, cfg, Policy::Pws))
}

/// Average the RWS results over `seeds` for a fair randomized baseline.
pub fn rws_avg(comp: &Computation, cfg: MachineConfig, seeds: &[u64]) -> RwsSummary {
    let mut s = RwsSummary::default();
    for &seed in seeds {
        let r = run(comp, cfg, Policy::Rws { seed });
        s.makespan += r.makespan as f64;
        s.plain_misses += r.plain_misses() as f64;
        s.block_misses += r.block_misses() as f64;
        s.steals += r.steals as f64;
        s.attempts += r.steal_attempts as f64;
    }
    let k = seeds.len() as f64;
    s.makespan /= k;
    s.plain_misses /= k;
    s.block_misses /= k;
    s.steals /= k;
    s.attempts /= k;
    s
}

/// Averaged RWS metrics.
#[derive(Debug, Default, Clone, Copy)]
pub struct RwsSummary {
    /// Mean makespan.
    pub makespan: f64,
    /// Mean plain (cold+capacity) misses.
    pub plain_misses: f64,
    /// Mean coherence (block) misses.
    pub block_misses: f64,
    /// Mean successful steals.
    pub steals: f64,
    /// Mean steal attempts.
    pub attempts: f64,
}

/// Print a rule line matching a header width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_quadratic_is_two() {
        let e = growth_exponent(8.0, 64.0, 16.0, 256.0);
        assert!((e - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rws_avg_runs() {
        let data: Vec<u64> = (0..256).collect();
        let (comp, _) = hbp_core::algos::scan::m_sum(&data, BuildConfig::default());
        let s = rws_avg(&comp, MachineConfig::new(4, 1 << 10, 32), &[1, 2]);
        assert!(s.makespan > 0.0);
    }
}
