//! **bench_diff** — compare two `BENCH_*.json` records and fail on
//! regressions in the `table1` metrics.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin bench_diff -- OLD.json NEW.json \
//!     [--threshold 0.10] [--rename "OLD NAME=NEW NAME"]...
//! ```
//!
//! For every algorithm row present in both files, each numeric metric
//! (`q_misses`, `f_excess`, `l_max`, `w_exp`, `t_exp`, …) is compared;
//! a metric that **grew by more than the threshold** (default 10%) is a
//! regression — all of these count cost or growth, so larger is worse.
//! A kernel row present in only one of the two files is reported as a
//! clear per-row error (never a panic): missing from the *new* file is
//! a regression (lost coverage), present only in the new file is noted.
//! `--rename OLD=NEW` (repeatable) maps a row that was renamed between
//! the two records, so a registry rename still diffs metric-by-metric
//! instead of tripping the lost-coverage check.
//! `--expect ROW` (repeatable) declares a row whose *algorithm*
//! intentionally changed between the records: its metric growths are
//! printed as `changed (expected)` notes instead of regressions — a
//! reviewable allowlist that lives in the CI workflow, not a silent
//! bypass (the row must still exist in both files, and every
//! undeclared row keeps the full gate).
//! Exit status: 0 clean, 1 when any regression was found, 2 on unusable
//! input (unreadable file, invalid JSON, no `table1` array, malformed
//! row) — with a message naming the file and the problem.

use hbp_core::trace::json::{parse, Json};

/// Metrics ignored when diffing a row (identity, not cost).
const SKIP: &[&str] = &["algorithm", "hbp_type", "claims"];

/// Report an input problem and exit with the usage status (2). Input
/// errors are never panics: CI logs get one actionable line instead of
/// a backtrace.
fn fail(msg: String) -> ! {
    eprintln!("bench_diff: error: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    parse(&text).unwrap_or_else(|e| fail(format!("{path} is not valid JSON: {e}")))
}

/// `table1` rows keyed by algorithm name; every row must be an object
/// with a string `algorithm` field.
fn table1_rows<'a>(doc: &'a Json, path: &str) -> Vec<(String, &'a Json)> {
    let rows = doc
        .get("table1")
        .and_then(|t| t.as_array())
        .unwrap_or_else(|| fail(format!("{path} has no table1 array")));
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            if !matches!(row, Json::Obj(_)) {
                fail(format!("{path}: table1 row {i} is not an object"));
            }
            let name = row
                .get("algorithm")
                .and_then(|a| a.as_str())
                .unwrap_or_else(|| fail(format!("{path}: table1 row {i} has no algorithm name")))
                .to_string();
            (name, row)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.10f64;
    let mut renames: Vec<(String, String)> = Vec::new();
    let mut expected: Vec<String> = Vec::new();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let v = it
                .next()
                .unwrap_or_else(|| fail("--threshold needs a value".to_string()));
            threshold = v
                .parse()
                .unwrap_or_else(|_| fail(format!("bad threshold {v:?} (want e.g. 0.10)")));
        } else if a == "--rename" {
            let v = it
                .next()
                .unwrap_or_else(|| fail("--rename needs OLD=NEW".to_string()));
            let Some((from, to)) = v.split_once('=') else {
                fail(format!("bad rename {v:?} (want OLD=NEW)"));
            };
            if from.is_empty() || to.is_empty() {
                fail(format!("bad rename {v:?} (empty side)"));
            }
            renames.push((from.to_string(), to.to_string()));
        } else if a == "--expect" {
            let v = it
                .next()
                .unwrap_or_else(|| fail("--expect needs a row name".to_string()));
            expected.push(v.clone());
        } else {
            paths.push(a);
        }
    }
    let [old_path, new_path] = paths[..] else {
        eprintln!(
            "usage: bench_diff OLD.json NEW.json [--threshold 0.10] \
             [--rename \"OLD=NEW\"]... [--expect ROW]..."
        );
        std::process::exit(2);
    };

    let old_doc = load(old_path);
    let new_doc = load(new_path);
    let mut old_rows = table1_rows(&old_doc, old_path);
    let new_rows = table1_rows(&new_doc, new_path);

    println!(
        "bench_diff: {old_path} -> {new_path} (threshold {:.0}%)",
        threshold * 100.0
    );
    // Differing host_cpus is loud but NOT a failure: the table1 metrics
    // this tool gates are simulator counts (host-independent and still
    // exactly comparable); only wall-clock sections of the records lose
    // cross-host meaning, and those are not diffed here.
    let cpus = |doc: &Json| doc.get("host_cpus").and_then(|v| v.as_f64());
    match (cpus(&old_doc), cpus(&new_doc)) {
        (Some(a), Some(b)) if a != b => {
            let warn = format!(
                "  WARNING: host_cpus differ ({old_path}: {a}, {new_path}: {b}) — \
                 the records come from different hosts. Sim metrics below stay \
                 exact; any wall-clock numbers in the records are NOT comparable."
            );
            println!("{warn}");
            eprintln!("{warn}");
        }
        (a, b) => {
            if let Some(missing) = [(a, old_path), (b, new_path)]
                .iter()
                .find_map(|(v, p)| v.is_none().then_some(p))
            {
                println!("  note: {missing} records no host_cpus (cross-host check skipped)");
            }
        }
    }
    // Apply renames to the OLD side so matching happens on NEW names.
    for (from, to) in &renames {
        let Some(row) = old_rows.iter_mut().find(|(n, _)| n == from) else {
            fail(format!("--rename {from:?}: no such row in {old_path}"));
        };
        println!("  (rename: {from:?} in {old_path} diffs as {to:?})");
        row.0 = to.clone();
    }
    // An expected-change row must still exist on both sides — --expect
    // waives the growth check, never the coverage check.
    for name in &expected {
        if !old_rows.iter().any(|(n, _)| n == name) || !new_rows.iter().any(|(n, _)| n == name) {
            fail(format!(
                "--expect {name:?}: row not present in both records"
            ));
        }
        println!("  (expected change: {name:?} — growths noted, not gated)");
    }
    let mut regressions = 0u32;
    let mut compared = 0u32;
    for (name, old_row) in &old_rows {
        let Some((_, new_row)) = new_rows.iter().find(|(n, _)| n == name) else {
            println!(
                "  REGRESSION {name}: row present only in {old_path} (missing from {new_path})"
            );
            regressions += 1;
            continue;
        };
        let Json::Obj(fields) = old_row else {
            unreachable!("table1_rows validated row shapes")
        };
        for (key, old_val) in fields {
            if SKIP.contains(&key.as_str()) {
                continue;
            }
            let Some(old_num) = old_val.as_f64() else {
                continue;
            };
            let Some(new_num) = new_row.get(key).and_then(|v| v.as_f64()) else {
                println!("  REGRESSION {name}.{key}: metric missing from {new_path}");
                regressions += 1;
                continue;
            };
            compared += 1;
            // All table1 metrics count cost/growth: larger is worse. The
            // threshold is relative; for a zero baseline any increase
            // trips it.
            let worse = new_num > old_num * (1.0 + threshold) && new_num > old_num;
            if worse {
                let pct = if old_num == 0.0 {
                    f64::INFINITY
                } else {
                    (new_num / old_num - 1.0) * 100.0
                };
                if expected.contains(name) {
                    println!(
                        "  changed (expected) {name}.{key}: {old_num} -> {new_num} (+{pct:.1}%)"
                    );
                } else {
                    println!("  REGRESSION {name}.{key}: {old_num} -> {new_num} (+{pct:.1}%)");
                    regressions += 1;
                }
            }
        }
    }
    for (name, _) in &new_rows {
        if !old_rows.iter().any(|(n, _)| n == name) {
            println!("  note: row {name} present only in {new_path} (new coverage, not compared)");
        }
    }
    if regressions > 0 {
        println!("{regressions} regression(s) across {compared} compared metrics");
        std::process::exit(1);
    }
    println!("ok: no regression across {compared} compared metrics");
}
