//! **F4 — the headline comparison**: PWS vs randomized work stealing on
//! the same simulated machine, for the main algorithm families.
//!
//! The paper's claim (§1, §4.5): PWS's priority rounds steal only the
//! largest available tasks, so it incurs (a) fewer steals, (b) fewer
//! cache-miss excess reads, and (c) far fewer **block misses** than RWS,
//! which freely steals small, block-sharing tasks. RWS numbers are averaged
//! over 5 seeds.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_pws_vs_rws
//! ```
//!
//! With `HBP_BACKEND=native` the same algorithm families run as real
//! `par_*` kernels on the native work-stealing thread pool instead:
//! wall-clock makespan, executed tasks, and steal counters per worker
//! count (`HBP_WORKERS` sets the pool size, `HBP_FIG_N` the linear
//! problem size).

use hbp_bench::rws_avg;
use hbp_core::prelude::*;

// Canonical registry names, resolved through the fail-loud `lookup` so a
// registry rename can never silently drop a row from this figure. Both
// sort rows run: SPMS (the paper's) and the mergesort stand-in (A/B).
const ALGOS: [&str; 8] = [
    "Scans (PS)",
    "MT",
    "Strassen",
    "FFT",
    "Sort (SPMS)",
    "Sort (merge std-in)",
    "LR",
    "Depth-n-MM",
];

fn main() {
    match Config::from_env().backend {
        Backend::Sim => sim_main(),
        Backend::Native => native_main(),
    }
}

fn sim_main() {
    let seeds = [11u64, 22, 33, 44, 55];
    println!("F4: PWS vs RWS (RWS averaged over {} seeds)\n", seeds.len());
    println!(
        "{:<20} {:>3} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>9} | {:>7} {:>7}",
        "algorithm",
        "p",
        "PWS miss",
        "PWS blk",
        "PWS stl",
        "RWS miss",
        "RWS blk",
        "RWS stl",
        "blk x",
        "stl x"
    );
    hbp_bench::rule(112);
    for name in ALGOS {
        let spec = lookup(name);
        let n = match spec.size {
            SizeKind::Linear => 1 << 12,
            SizeKind::MatrixSide => 32,
        };
        let comp = (spec.build)(n, BuildConfig::with_block(32), 42);
        for p in [4usize, 8, 16] {
            let cfg = MachineConfig::new(p, 1 << 12, 32);
            let pws = run(&comp, cfg, Policy::Pws);
            let rws = rws_avg(&comp, cfg, &seeds);
            println!(
                "{:<20} {:>3} | {:>9} {:>9} {:>7} | {:>9.0} {:>9.0} {:>9.0} | {:>7.2} {:>7.2}",
                spec.name,
                p,
                pws.plain_misses(),
                pws.block_misses(),
                pws.steals,
                rws.plain_misses,
                rws.block_misses,
                rws.steals,
                rws.block_misses / pws.block_misses().max(1) as f64,
                rws.steals / pws.steals.max(1) as f64,
            );
        }
    }
    println!("\nblk x / stl x: RWS-to-PWS ratios — above 1.0 means PWS wins.");
}

fn native_main() {
    let linear = hbp_bench::fig_size(1 << 18);
    let side = hbp_bench::matrix_side_for(linear);
    let ex = NativeExecutor::from_config(&Config::from_env(), 0);
    let solo = NativeExecutor { workers: 1, ..ex };
    println!(
        "F4 (native backend): randomized work stealing on real threads, \
         {} workers vs 1\n",
        ex.workers
    );
    println!(
        "{:<20} {:>8} | {:>10} {:>10} {:>6} | {:>7} {:>7} {:>7} {:>5}",
        "algorithm", "n", "1w ms", "ms", "spdup", "tasks", "steals", "probes", "busy#"
    );
    hbp_bench::rule(96);
    for name in ALGOS {
        let spec = lookup(name);
        let n = match spec.size {
            SizeKind::Linear => linear,
            SizeKind::MatrixSide => side,
        };
        let job = ExecJob::new(spec.name, n, 42);
        let Some(par) = ex.execute(&job) else {
            println!("{:<20} {:>8} | (no native kernel — skipped)", spec.name, n);
            continue;
        };
        let seq = solo.execute(&job).expect("supported above");
        let busy_workers = par.busy.iter().filter(|&&b| b > 0).count();
        println!(
            "{:<20} {:>8} | {:>10.2} {:>10.2} {:>6.2} | {:>7} {:>7} {:>7} {:>5}",
            spec.name,
            n,
            seq.makespan as f64 / 1e6,
            par.makespan as f64 / 1e6,
            seq.makespan as f64 / par.makespan.max(1) as f64,
            par.work,
            par.steals,
            par.steal_attempts - par.steals,
            busy_workers,
        );
    }
    println!(
        "\nms = wall-clock; tasks = root + forked branches executed; busy# =\n\
         workers with non-zero busy time. Speedup above 1 needs real cores —\n\
         on a single-CPU host expect ≈ 1 with non-zero steals (the point is\n\
         that the work moved between workers, not that it got faster)."
    );
}
