//! **F4 — the headline comparison**: PWS vs randomized work stealing on
//! the same simulated machine, for the main algorithm families.
//!
//! The paper's claim (§1, §4.5): PWS's priority rounds steal only the
//! largest available tasks, so it incurs (a) fewer steals, (b) fewer
//! cache-miss excess reads, and (c) far fewer **block misses** than RWS,
//! which freely steals small, block-sharing tasks. RWS numbers are averaged
//! over 5 seeds.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_pws_vs_rws
//! ```

use hbp_bench::rws_avg;
use hbp_core::prelude::*;

fn main() {
    let seeds = [11u64, 22, 33, 44, 55];
    println!("F4: PWS vs RWS (RWS averaged over {} seeds)\n", seeds.len());
    println!(
        "{:<20} {:>3} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>9} | {:>7} {:>7}",
        "algorithm",
        "p",
        "PWS miss",
        "PWS blk",
        "PWS stl",
        "RWS miss",
        "RWS blk",
        "RWS stl",
        "blk x",
        "stl x"
    );
    hbp_bench::rule(112);
    for name in [
        "Scans (PS)",
        "MT",
        "Strassen",
        "FFT",
        "Sort",
        "LR",
        "Depth-n-MM",
    ] {
        let spec = find(name).expect("registry entry");
        let n = match spec.size {
            SizeKind::Linear => 1 << 12,
            SizeKind::MatrixSide => 32,
        };
        let comp = (spec.build)(n, BuildConfig::with_block(32), 42);
        for p in [4usize, 8, 16] {
            let cfg = MachineConfig::new(p, 1 << 12, 32);
            let pws = run(&comp, cfg, Policy::Pws);
            let rws = rws_avg(&comp, cfg, &seeds);
            println!(
                "{:<20} {:>3} | {:>9} {:>9} {:>7} | {:>9.0} {:>9.0} {:>9.0} | {:>7.2} {:>7.2}",
                spec.name,
                p,
                pws.plain_misses(),
                pws.block_misses(),
                pws.steals,
                rws.plain_misses,
                rws.block_misses,
                rws.steals,
                rws.block_misses / pws.block_misses().max(1) as f64,
                rws.steals / pws.steals.max(1) as f64,
            );
        }
    }
    println!("\nblk x / stl x: RWS-to-PWS ratios — above 1.0 means PWS wins.");
}
