//! **F11 — §5.3 bulk-synchronous mapping**: PWS vs the BSP-style static
//! distribution (unravel the recursion for `⌈log₂p⌉ + 1` levels, hand the
//! `≥ p` subtrees out, and never steal below them).
//!
//! The paper observes balanced HBP computations map efficiently onto
//! bulk-synchronous execution. The flip side our engine exposes: on
//! *irregular* computations (LR, Sort with data-dependent merges) static
//! distribution loses to PWS because nothing rebalances the lower levels.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_bsp
//! ```

use hbp_core::prelude::*;

fn main() {
    println!("F11: PWS vs BSP-style static distribution (p=8, M=2^12, B=32)\n");
    println!(
        "{:<20} {:>10} {:>10} {:>7} | {:>8} {:>8} | {:>9} {:>9}",
        "algorithm",
        "PWS time",
        "BSP time",
        "BSP/PWS",
        "PWS stl",
        "BSP stl",
        "PWS idle",
        "BSP idle"
    );
    hbp_bench::rule(96);
    let cfg = MachineConfig::new(8, 1 << 12, 32);
    let levels = 4; // ceil(log2 8) + 1
    for name in ["Scans (PS)", "MT", "Strassen", "FFT", "Sort (SPMS)", "LR"] {
        let spec = lookup(name);
        let n = match spec.size {
            SizeKind::Linear => 1 << 12,
            SizeKind::MatrixSide => 32,
        };
        let comp = (spec.build)(n, BuildConfig::with_block(32), 42);
        let pws = run(&comp, cfg, Policy::Pws);
        let bsp = run(
            &comp,
            cfg,
            Policy::Bsp {
                prefix_levels: levels,
            },
        );
        println!(
            "{:<20} {:>10} {:>10} {:>7.2} | {:>8} {:>8} | {:>9} {:>9}",
            spec.name,
            pws.makespan,
            bsp.makespan,
            bsp.makespan as f64 / pws.makespan as f64,
            pws.steals,
            bsp.steals,
            pws.idle.iter().sum::<u64>(),
            bsp.idle.iter().sum::<u64>(),
        );
    }
    println!(
        "\nBSP/PWS ≈ 1 on balanced computations (the paper's §5.3 point);\n\
         > 1 with more idle time on irregular ones, where only work\n\
         stealing rebalances."
    );
}
