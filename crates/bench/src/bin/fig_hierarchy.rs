//! **F10 — §5.2 cache hierarchy**: the paper's `d = 2` configuration —
//! private L1s under one L2 of `M₂ > p·M₁` words — in two flavors:
//!
//! * **partitioned** L2 (the paper's "simple but non-optimal" scheme):
//!   each core owns an `M₂/p` segment that behaves like a private second
//!   level (and is invalidated by coherence like one);
//! * **shared** L2: one copy; coherence-invalidated L1 lines refill from
//!   L2 at the cheap cost, so *block misses get cheaper* even though their
//!   count is unchanged.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_hierarchy
//! ```

use hbp_core::prelude::*;

fn main() {
    println!("F10: flat vs partitioned-L2 vs shared-L2 (p=8, M1=2^8, M2=2^15, B=32)\n");
    println!(
        "{:<20} {:<12} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "algorithm", "machine", "makespan", "L1 miss", "L2 hit", "blk miss", "speedup"
    );
    hbp_bench::rule(84);
    for name in ["Scans (PS)", "MT", "FFT", "Sort (SPMS)"] {
        let spec = lookup(name);
        let n = match spec.size {
            SizeKind::Linear => 1 << 13,
            SizeKind::MatrixSide => 64,
        };
        let comp = (spec.build)(n, BuildConfig::with_block(32), 42);
        let flat = MachineConfig::new(8, 1 << 8, 32);
        let machines = [
            ("flat (no L2)", flat),
            ("partitioned L2", flat.with_l2(1 << 15, true)),
            ("shared L2", flat.with_l2(1 << 15, false)),
        ];
        let base = run(&comp, flat, Policy::Pws).makespan;
        for (mname, m) in machines {
            let r = run(&comp, m, Policy::Pws);
            let t = r.machine.total();
            println!(
                "{:<20} {:<12} {:>10} {:>9} {:>9} {:>9} {:>8.2}",
                spec.name,
                mname,
                r.makespan,
                t.misses(),
                t.l2_hits,
                r.block_misses(),
                base as f64 / r.makespan as f64
            );
        }
        println!();
    }
    println!(
        "shared L2 ≥ partitioned ≥ flat in speedup; the shared L2 also\n\
         absorbs coherence refills (block-miss *cost* drops even though the\n\
         invalidation *count* is protocol-determined)."
    );
}
