//! **F10 — §5.2 cache hierarchy**: the paper's `d = 2` configuration —
//! private L1s under one L2 of `M₂ > p·M₁` words — in two flavors:
//!
//! * **partitioned** L2 (the paper's "simple but non-optimal" scheme):
//!   each core owns an `M₂/p` segment that behaves like a private second
//!   level (and is invalidated by coherence like one);
//! * **shared** L2: one copy; coherence-invalidated L1 lines refill from
//!   L2 at the cheap cost, so *block misses get cheaper* even though their
//!   count is unchanged.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_hierarchy
//! ```
//!
//! With `HBP_BACKEND=native` the bin instead runs the same algorithms
//! on the real pool and prints the *measured* hierarchy: the steal-
//! locality table from the metrics registry under the configured
//! `HBP_DOMAINS` / `HBP_CROSS_DEPTH` — the native twin of the simulated
//! figure, and the probe CI's `domain-matrix` job drives.

use hbp_core::prelude::*;

/// `HBP_BACKEND=native`: run each algorithm once on the native pool and
/// print how many committed steals stayed inside a cache domain.
fn native_locality() {
    let m = hbp_core::metrics::global();
    m.set_enabled(true);
    let ex = NativeExecutor::from_config(&Config::from_env(), 0);
    let (map, two_level) = ex.domains.resolve(ex.workers);
    println!(
        "F10 (native): steal locality under domains={} two_level={} workers={} policy={}\n",
        map.domains(),
        two_level,
        ex.workers,
        hbp_core::sched::policy::native_facet(ex.policy).name(),
    );
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "algorithm", "domains", "steals", "local", "cross", "local-share"
    );
    hbp_bench::rule(70);
    for name in ["Scans (PS)", "MT", "FFT", "Sort (SPMS)"] {
        let spec = lookup(name);
        let n = match spec.size {
            SizeKind::Linear => 1 << 16,
            SizeKind::MatrixSide => 256,
        };
        m.reset();
        ex.execute(&ExecJob::new(name, n, 42))
            .unwrap_or_else(|| panic!("{name} has a native kernel"));
        let snap = m.snapshot();
        let (committed, _) = snap.total_steals();
        let (local, cross) = snap.total_steal_locality();
        println!(
            "{:<20} {:>8} {:>8} {:>8} {:>8} {:>12}",
            spec.name,
            map.domains(),
            committed,
            local,
            cross,
            if committed == 0 {
                "n/a".to_string()
            } else {
                format!("{:.1}%", 100.0 * local as f64 / committed as f64)
            }
        );
    }
    println!(
        "\ntwo-level stealing (HBP_DOMAINS=<k>) probes domain-local victims\n\
         first and admits cross-domain steals only above the fork-depth\n\
         floor (HBP_CROSS_DEPTH); tag:<k> classifies the same locality\n\
         while stealing flat — the A/B control."
    );
}

fn main() {
    if Config::from_env().backend == Backend::Native {
        native_locality();
        return;
    }
    println!("F10: flat vs partitioned-L2 vs shared-L2 (p=8, M1=2^8, M2=2^15, B=32)\n");
    println!(
        "{:<20} {:<12} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "algorithm", "machine", "makespan", "L1 miss", "L2 hit", "blk miss", "speedup"
    );
    hbp_bench::rule(84);
    for name in ["Scans (PS)", "MT", "FFT", "Sort (SPMS)"] {
        let spec = lookup(name);
        let n = match spec.size {
            SizeKind::Linear => 1 << 13,
            SizeKind::MatrixSide => 64,
        };
        let comp = (spec.build)(n, BuildConfig::with_block(32), 42);
        let flat = MachineConfig::new(8, 1 << 8, 32);
        let machines = [
            ("flat (no L2)", flat),
            ("partitioned L2", flat.with_l2(1 << 15, true)),
            ("shared L2", flat.with_l2(1 << 15, false)),
        ];
        let base = run(&comp, flat, Policy::Pws).makespan;
        for (mname, m) in machines {
            let r = run(&comp, m, Policy::Pws);
            let t = r.machine.total();
            println!(
                "{:<20} {:<12} {:>10} {:>9} {:>9} {:>9} {:>8.2}",
                spec.name,
                mname,
                r.makespan,
                t.misses(),
                t.l2_hits,
                r.block_misses(),
                base as f64 / r.makespan as f64
            );
        }
        println!();
    }
    println!(
        "shared L2 ≥ partitioned ≥ flat in speedup; the shared L2 also\n\
         absorbs coherence refills (block-miss *cost* drops even though the\n\
         invalidation *count* is protocol-determined)."
    );
}
