//! **F2 — Lemma 4.2**: PWS block-miss excess for the three HBP shapes:
//!
//! * `c = 1` (scans/PS):        `O(p·B·log B · s*(n))`
//! * `c = 2, s(n) = √n` (FFT):  `O(p·B·log n·log log B)`
//! * `c = 2, s(n) = n/4` (MM):  `O(p·B·√n)`
//!
//! Measured block misses are printed against the corresponding envelope;
//! the ratio column should stay bounded (constant-ish) as `p` and `B` grow.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_block_excess
//! ```

use hbp_core::prelude::*;

use hbp_core::algos::{fft, gen, layout, mm, scan};

fn main() {
    println!("F2: PWS block-miss excess envelopes (Lemma 4.2)\n");

    // --- c = 1: prefix sums ------------------------------------------------
    println!("c=1 (PS, n=2^14): envelope pB·log B");
    println!(
        "{:>3} {:>4} {:>10} {:>10} {:>8}",
        "p", "B", "block miss", "envelope", "ratio"
    );
    hbp_bench::rule(40);
    let data = gen::random_u64s(1 << 14, 1 << 30, 1);
    for bw in [16u64, 32, 64] {
        let (comp, _) = scan::prefix_sums(&data, BuildConfig::with_block(bw));
        for p in [2usize, 4, 8, 16] {
            let cfg = MachineConfig::new(p, (bw * bw * 8).max(1 << 12), bw);
            let r = run(&comp, cfg, Policy::Pws);
            let logb = (64 - (bw - 1).leading_zeros()) as u64;
            let env = p as u64 * bw * logb;
            println!(
                "{:>3} {:>4} {:>10} {:>10} {:>8.3}",
                p,
                bw,
                r.block_misses(),
                env,
                r.block_misses() as f64 / env as f64
            );
        }
    }

    // --- c = 2, s = √n: FFT -------------------------------------------------
    println!("\nc=2, s=√n (FFT, n=2^12): envelope pB·log n·loglog B");
    println!(
        "{:>3} {:>4} {:>10} {:>10} {:>8}",
        "p", "B", "block miss", "envelope", "ratio"
    );
    hbp_bench::rule(40);
    let x: Vec<Cx> = (0..1 << 12)
        .map(|i| Cx::new((i as f64).sin(), 0.0))
        .collect();
    for bw in [16u64, 32] {
        let (comp, _) = fft::fft(&x, BuildConfig::with_block(bw));
        for p in [2usize, 4, 8, 16] {
            let cfg = MachineConfig::new(p, (bw * bw * 8).max(1 << 12), bw);
            let r = run(&comp, cfg, Policy::Pws);
            let logn = 12u64;
            let loglogb = (64 - (bw - 1).leading_zeros()).ilog2() as u64 + 1;
            let env = p as u64 * bw * logn * loglogb;
            println!(
                "{:>3} {:>4} {:>10} {:>10} {:>8.3}",
                p,
                bw,
                r.block_misses(),
                env,
                r.block_misses() as f64 / env as f64
            );
        }
    }

    // --- c = 2, s = n/4: Depth-n-MM -----------------------------------------
    println!("\nc=2, s=n/4 (Depth-n-MM, 32x32): envelope pB·√(n²)");
    println!(
        "{:>3} {:>4} {:>10} {:>10} {:>8}",
        "p", "B", "block miss", "envelope", "ratio"
    );
    hbp_bench::rule(40);
    let n = 32;
    let rm = gen::random_matrix(n, 7);
    let mut bi = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            bi[layout::morton(r as u64, c as u64) as usize] = rm[r * n + c];
        }
    }
    for bw in [16u64, 32] {
        let (comp, _) = mm::depth_n_mm(&bi, &bi, n, BuildConfig::with_block(bw));
        for p in [2usize, 4, 8, 16] {
            let cfg = MachineConfig::new(p, (bw * bw * 8).max(1 << 12), bw);
            let r = run(&comp, cfg, Policy::Pws);
            let env = p as u64 * bw * n as u64; // √(n²) = n
            println!(
                "{:>3} {:>4} {:>10} {:>10} {:>8.3}",
                p,
                bw,
                r.block_misses(),
                env,
                r.block_misses() as f64 / env as f64
            );
        }
    }
    println!("\nratios bounded by a small constant across p and B = the lemma's shape holds");
}
