//! **F6 — §4.7 padding ablation**: padded vs unpadded BP/HBP computations.
//!
//! Padded computations (Def 3.3) insert a `⌈√|τ|⌉`-word pad before every
//! stack frame, separating frames of successive nodes so that thief cores
//! joining at a parent frame do not share blocks with unrelated frames.
//! The paper (§4.7): with padding the block wait cost of steals drops to
//! `O(1)` per steal at heights ≥ log B, making the PWS steal overhead
//! `O(b log p)` instead of `O(b(B + log p))`.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_padding
//! ```

use hbp_core::prelude::*;

use hbp_core::algos::{gen, scan, sort, spms, strassen};

fn main() {
    println!("F6: stack block misses, plain vs padded (Def 3.3)\n");
    println!(
        "{:<16} {:>3} {:>4} | {:>11} {:>11} {:>8}",
        "algorithm", "p", "B", "plain stack", "padded stack", "ratio"
    );
    hbp_bench::rule(64);

    type BuildFn = Box<dyn Fn(BuildConfig) -> Computation>;
    let data = gen::random_u64s(1 << 13, 1 << 30, 1);
    let keys: Vec<(u64, u64)> = gen::random_u64s(1 << 10, 1 << 40, 2)
        .into_iter()
        .map(|k| (k, 1))
        .collect();
    let bi: Vec<f64> = (0..32 * 32).map(|x| (x % 7) as f64).collect();
    let builds: Vec<(&str, BuildFn)> = vec![
        ("M-Sum 2^13", Box::new(move |c| scan::m_sum(&data, c).0)),
        {
            let keys = keys.clone();
            (
                "SPMS 2^10",
                Box::new(move |c| spms::spms(&keys, c).0) as BuildFn,
            )
        },
        ("Merge 2^10", Box::new(move |c| sort::mergesort(&keys, c).0)),
        (
            "Strassen 32",
            Box::new(move |c| strassen::strassen_bi(&bi, &bi, 32, c).0),
        ),
    ];

    for (name, build) in &builds {
        for p in [8usize, 16] {
            for bw in [16u64, 32] {
                let plain = build(BuildConfig::with_block(bw));
                let padded = build(BuildConfig::with_block(bw).padded());
                let cfg = MachineConfig::new(p, 1 << 12, bw);
                let rp = run(&plain, cfg, Policy::Pws);
                let rq = run(&padded, cfg, Policy::Pws);
                println!(
                    "{:<16} {:>3} {:>4} | {:>11} {:>11} {:>8.2}",
                    name,
                    p,
                    bw,
                    rp.stack_block_misses,
                    rq.stack_block_misses,
                    rp.stack_block_misses as f64 / rq.stack_block_misses.max(1) as f64
                );
            }
        }
    }
    println!("\nratio > 1: padding removed that fraction of stack block misses.");
}
