//! **T1 — Table 1**: regenerate the paper's table of structural parameters
//! for every algorithm: HBP type, measured work growth `W(n)`, measured
//! span growth `T∞(n)`, measured `Q(n, M, B)`, and the measured
//! cache-friendliness / block-sharing behaviour versus the claims.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin table1
//! ```
//!
//! With `HBP_TRACE=1`, each algorithm's smaller instance is additionally
//! run under the `HBP_POLICY` discipline (PWS by default, so PWS-vs-RWS
//! trace exports are one env var apart) with a structured-event
//! recorder, and all traces are exported into one Chrome-trace JSON
//! (`HBP_TRACE_OUT`, default `table1_trace.json`) — one process lane per
//! algorithm, viewable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. CI smokes this path and uploads the file
//! as an artifact. The printed table itself is policy-independent
//! (sequential replays + structural estimators), so its numbers are
//! byte-stable across `HBP_POLICY` values.

use hbp_bench::growth_exponent;
use hbp_core::prelude::*;
use hbp_core::trace::{chrome_trace_multi, Trace};

fn main() {
    let machine = hbp_bench::default_machine();
    let env = Config::from_env();
    let tracing = env.trace;
    let trace_policy = env.policy;
    let mut traces: Vec<(String, Trace)> = Vec::new();
    println!(
        "Table 1 (measured) — machine: p={}, M={}, B={}\n",
        machine.p, machine.cache_words, machine.block_words
    );
    println!(
        "{:<20} {:>4} | {:>6} {:>6} | {:>8} {:>9} | {:>7} {:>7} | {:<28}",
        "algorithm",
        "type",
        "W-exp",
        "T-exp",
        "Q(n,M,B)",
        "Q/(n/B)",
        "f-exc",
        "L-max",
        "claims (f, L, W, T)"
    );
    hbp_bench::rule(130);

    for spec in registry() {
        let (n1, n2) = match spec.size {
            SizeKind::Linear => (1usize << 11, 1usize << 13),
            SizeKind::MatrixSide => (16usize, 32usize),
        };
        let c1 = (spec.build)(n1, BuildConfig::with_block(machine.block_words), 42);
        let c2 = (spec.build)(n2, BuildConfig::with_block(machine.block_words), 42);
        let e1 = spec.elements(n1) as f64;
        let e2 = spec.elements(n2) as f64;
        let w_exp = growth_exponent(e1, c1.work() as f64, e2, c2.work() as f64);
        let t_exp = growth_exponent(
            e1,
            analysis::span(&c1) as f64,
            e2,
            analysis::span(&c2) as f64,
        );
        let seq = run_sequential(&c2, machine);
        let scan_bound = (c2.work() as f64) / machine.block_words as f64;
        // f and L estimates on the smaller instance (the estimators are
        // quadratic-ish in computation size).
        let f_exc = analysis::f_estimate(&c1, machine.block_words)
            .iter()
            .map(|r| r.blocks.saturating_sub(r.accesses / machine.block_words))
            .max()
            .unwrap_or(0);
        let l_max = analysis::l_estimate(&c1, machine.block_words)
            .iter()
            .map(|r| r.shared_blocks)
            .max()
            .unwrap_or(0);
        if tracing {
            // A dedicated small instance: the export is a CI artifact,
            // and the structure (lanes, steals, miss counters) is what
            // the trace is for — not volume.
            let nt = match spec.size {
                SizeKind::Linear => 512,
                SizeKind::MatrixSide => 16,
            };
            let ct = (spec.build)(nt, BuildConfig::with_block(machine.block_words), 42);
            let sink = TraceSink::new(machine.p, ClockDomain::Virtual);
            let _ = run_traced(&ct, machine, trace_policy, &sink);
            traces.push((spec.name.to_string(), sink.collect()));
        }
        println!(
            "{:<20} {:>4} | {:>6.2} {:>6.2} | {:>8} {:>9.3} | {:>7} {:>7} | f={}, L={}, W={}, T={}",
            spec.name,
            spec.hbp_type,
            w_exp,
            t_exp,
            seq.q_misses,
            seq.q_misses as f64 / scan_bound,
            f_exc,
            l_max,
            spec.f_claim,
            spec.l_claim,
            spec.w_claim,
            spec.t_claim,
        );
    }
    println!(
        "\nW-exp / T-exp: measured growth exponents of work and span in the\n\
         input size (elements); e.g. scans expect W-exp = 1, Strassen 1.40\n\
         (= log4 7 in n² elements), Depth-n-MM 1.5, MT/conversions 1.0.\n\
         T-exp near 0 = polylog depth; Depth-n-MM expects 0.5 (T∞ = n = √(n²)).\n\
         Q/(n/B): sequential misses normalized by the scan bound.\n\
         f-exc: max over tasks of blocks touched beyond r/B (0/O(1) = cache\n\
         friendly; grows with task size = √r-friendly).\n\
         L-max: max blocks a steal-candidate shares with its sibling subtree."
    );
    if tracing {
        let path =
            std::env::var("HBP_TRACE_OUT").unwrap_or_else(|_| "table1_trace.json".to_string());
        let json = chrome_trace_multi(traces.iter().map(|(n, t)| (n.as_str(), t)));
        std::fs::write(&path, &json)
            .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
        println!(
            "\nHBP_TRACE=1: wrote Chrome trace of {} {trace_policy:?} runs ({} bytes) to {path}\n\
             (open in chrome://tracing or https://ui.perfetto.dev)",
            traces.len(),
            json.len()
        );
    }
}
