//! **F5 — §3.2 gapping ablation**: Direct BI→RM (`L(r) = √r`) vs
//! BI-RM (gap RM) vs BI-RM for FFT (`L(r) = O(1)`).
//!
//! Two views:
//! 1. *structural*: maximum written-blocks shared between sibling tasks
//!    (the `L` estimator) — gapping should collapse it;
//! 2. *dynamic*: block misses under PWS with many cores, where small
//!    stolen tasks write into shared blocks.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_gapping
//! ```

use hbp_core::prelude::*;

use hbp_core::algos::{gen, layout};

fn bi_data(n: usize, seed: u64) -> Vec<u64> {
    let rm = gen::random_u64s(n * n, 1 << 40, seed);
    let mut bi = vec![0u64; n * n];
    for r in 0..n {
        for c in 0..n {
            bi[layout::morton(r as u64, c as u64) as usize] = rm[r * n + c];
        }
    }
    bi
}

fn main() {
    println!("F5: BI->RM conversion ablation (direct vs gap RM vs for-FFT)\n");

    // Structural: sibling write-sharing, small blocks so misalignment shows.
    println!("max sibling-shared written blocks (L estimator), B=4:");
    println!(
        "{:>5} {:>10} {:>10} {:>10}",
        "n", "direct", "gap RM", "for FFT"
    );
    hbp_bench::rule(40);
    for n in [16usize, 32, 64] {
        let bi = bi_data(n, 1);
        let bw = 4u64;
        let l = |comp: &Computation| {
            analysis::l_estimate(comp, bw)
                .iter()
                .map(|r| r.shared_blocks)
                .max()
                .unwrap_or(0)
        };
        let (cd, _) = layout::bi_to_rm_direct(&bi, n, BuildConfig::with_block(bw));
        let (cg, _) = layout::bi_to_rm_gap(&bi, n, BuildConfig::with_block(bw));
        let (cf, _) = layout::bi_to_rm_fft(&bi, n, BuildConfig::with_block(bw));
        println!("{:>5} {:>10} {:>10} {:>10}", n, l(&cd), l(&cg), l(&cf));
    }

    // Dynamic: block misses with p=16 and B=8. Under PWS small tasks are
    // rarely stolen (that is the scheduler's contribution); under RWS they
    // are stolen constantly, which is exactly where L(r) = √r hurts — so we
    // show both schedulers (RWS averaged over 3 seeds).
    println!("\nheap block misses, p=16, B=8, M=4096 (PWS | RWS avg of 3 seeds):");
    println!(
        "{:>5} | {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9} {:>11}",
        "n", "direct", "gap", "fft", "direct", "gap", "fft", "RWS dir/gap"
    );
    hbp_bench::rule(84);
    for n in [32usize, 64, 128] {
        let bi = bi_data(n, 2);
        let bw = 8u64;
        let cfg = MachineConfig::new(16, 4096, bw);
        let pws = |comp: &Computation| run(comp, cfg, Policy::Pws).heap_block_misses;
        let rws = |comp: &Computation| {
            let seeds = [5u64, 6, 7];
            seeds
                .iter()
                .map(|&s| run(comp, cfg, Policy::Rws { seed: s }).heap_block_misses)
                .sum::<u64>() as f64
                / seeds.len() as f64
        };
        let (cd, _) = layout::bi_to_rm_direct(&bi, n, BuildConfig::with_block(bw));
        let (cg, _) = layout::bi_to_rm_gap(&bi, n, BuildConfig::with_block(bw));
        let (cf, _) = layout::bi_to_rm_fft(&bi, n, BuildConfig::with_block(bw));
        let (rd, rg, rf) = (rws(&cd), rws(&cg), rws(&cf));
        println!(
            "{:>5} | {:>8} {:>8} {:>8} | {:>9.1} {:>9.1} {:>9.1} {:>11.2}",
            n,
            pws(&cd),
            pws(&cg),
            pws(&cf),
            rd,
            rg,
            rf,
            rd / rg.max(1.0)
        );
    }
    println!(
        "\ngap RM trades 2x work (write gapped + compact) for near-zero\n\
         write-sharing at task sizes >= (B log^2 B)^2; for-FFT keeps L = O(1)\n\
         at every size via the sqrt-decomposition."
    );
}
