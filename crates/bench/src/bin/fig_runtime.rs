//! **F7 — Lemma 4.12 / §4.5 runtime decomposition**: the paper's running
//! time form is
//!
//! ```text
//! T ≈ (W(n) + b·Q(n,M,B)) / p + sP·T∞(n)
//! ```
//!
//! For every algorithm we compare the measured PWS makespan against this
//! model; the ratio should be a bounded constant (≥ 1 because the model
//! drops block misses and idle time; ≈ 1 for the scan-like algorithms).
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_runtime
//! ```

use hbp_core::prelude::*;

fn main() {
    let machine = hbp_bench::default_machine();
    let (p, b, sp) = (machine.p as u64, machine.miss_cost, machine.steal_cost);
    println!("F7: makespan vs (W + b·Q)/p + sP·T∞   (p={p}, b={b}, sP={sp})\n");
    println!(
        "{:<20} {:>9} {:>9} {:>7} | {:>10} {:>10} {:>7}",
        "algorithm", "W", "Q", "T∞", "model", "measured", "ratio"
    );
    hbp_bench::rule(82);
    for spec in registry() {
        let n = match spec.size {
            SizeKind::Linear => 1 << 13,
            SizeKind::MatrixSide => 32,
        };
        let comp = (spec.build)(n, BuildConfig::with_block(machine.block_words), 42);
        let seq = run_sequential(&comp, machine);
        let par = run(&comp, machine, Policy::Pws);
        let span = analysis::span(&comp);
        let model = (comp.work() + b * seq.q_misses) / p + sp * span;
        println!(
            "{:<20} {:>9} {:>9} {:>7} | {:>10} {:>10} {:>7.2}",
            spec.name,
            comp.work(),
            seq.q_misses,
            span,
            model,
            par.makespan,
            par.makespan as f64 / model as f64
        );
    }
    println!(
        "\nratio ≈ O(1): the measured makespan tracks the paper's runtime\n\
         form; values above 1 come from block misses and join idling, which\n\
         the two-term model intentionally omits."
    );
}
