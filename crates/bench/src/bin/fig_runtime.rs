//! **F7 — Lemma 4.12 / §4.5 runtime decomposition**: the paper's running
//! time form is
//!
//! ```text
//! T ≈ (W(n) + b·Q(n,M,B)) / p + sP·T∞(n)
//! ```
//!
//! For every algorithm we compare the measured PWS makespan against this
//! model; the ratio should be a bounded constant (≥ 1 because the model
//! drops block misses and idle time; ≈ 1 for the scan-like algorithms).
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_runtime
//! ```
//!
//! With `HBP_BACKEND=native` the supported kernels instead run on the
//! real-threads pool over a sweep of worker counts, reporting wall-clock
//! makespan and steal counters (`HBP_FIG_N` scales the input,
//! `HBP_WORKERS` caps the sweep).

use hbp_core::prelude::*;

fn main() {
    match Config::from_env().backend {
        Backend::Sim => sim_main(),
        Backend::Native => native_main(),
    }
}

fn sim_main() {
    let machine = hbp_bench::default_machine();
    let (p, b, sp) = (machine.p as u64, machine.miss_cost, machine.steal_cost);
    println!("F7: makespan vs (W + b·Q)/p + sP·T∞   (p={p}, b={b}, sP={sp})\n");
    println!(
        "{:<20} {:>9} {:>9} {:>7} | {:>10} {:>10} {:>7}",
        "algorithm", "W", "Q", "T∞", "model", "measured", "ratio"
    );
    hbp_bench::rule(82);
    for spec in registry() {
        let n = match spec.size {
            SizeKind::Linear => 1 << 13,
            SizeKind::MatrixSide => 32,
        };
        let comp = (spec.build)(n, BuildConfig::with_block(machine.block_words), 42);
        let seq = run_sequential(&comp, machine);
        let par = run(&comp, machine, Policy::Pws);
        let span = analysis::span(&comp);
        let model = (comp.work() + b * seq.q_misses) / p + sp * span;
        println!(
            "{:<20} {:>9} {:>9} {:>7} | {:>10} {:>10} {:>7.2}",
            spec.name,
            comp.work(),
            seq.q_misses,
            span,
            model,
            par.makespan,
            par.makespan as f64 / model as f64
        );
    }
    println!(
        "\nratio ≈ O(1): the measured makespan tracks the paper's runtime\n\
         form; values above 1 come from block misses and join idling, which\n\
         the two-term model intentionally omits."
    );
}

fn native_main() {
    let linear = hbp_bench::fig_size(1 << 18);
    let side = hbp_bench::matrix_side_for(linear);
    let base = NativeExecutor::from_config(&Config::from_env(), 0);
    let max_workers = base.workers;
    let mut sweep: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&w| w < max_workers)
        .collect();
    // Always measure the configured parallelism itself, even when it is
    // not a power of two (e.g. HBP_WORKERS=6).
    sweep.push(max_workers);
    println!(
        "F7 (native backend): wall-clock makespan over worker counts {sweep:?}\n\
         (times in ms; steals/probes are pool-wide totals)\n"
    );
    println!(
        "{:<20} {:>8} {:>3} | {:>10} {:>7} {:>7} | {:>10} {:>10}",
        "algorithm", "n", "w", "ms", "steals", "probes", "busy ms", "idle ms"
    );
    hbp_bench::rule(90);
    for spec in registry() {
        let n = match spec.size {
            SizeKind::Linear => linear,
            SizeKind::MatrixSide => side,
        };
        let job = ExecJob::new(spec.name, n, 42);
        for &w in &sweep {
            let ex = NativeExecutor { workers: w, ..base };
            let Some(r) = ex.execute(&job) else {
                continue; // no native kernel for this row
            };
            let busy: u64 = r.busy.iter().sum();
            let idle: u64 = r.idle.iter().sum();
            println!(
                "{:<20} {:>8} {:>3} | {:>10.2} {:>7} {:>7} | {:>10.2} {:>10.2}",
                spec.name,
                n,
                w,
                r.makespan as f64 / 1e6,
                r.steals,
                r.steal_attempts - r.steals,
                busy as f64 / 1e6,
                idle as f64 / 1e6,
            );
        }
    }
    println!(
        "\nOn a host with real cores the ms column should fall as w grows\n\
         until memory bandwidth dominates; per-worker busy/idle expose the\n\
         load balance the simulated figures measure in virtual time."
    );
}
