//! **F1 — Lemma 4.1 / 4.4**: PWS cache-miss excess vs `p`, `M`, `B`.
//!
//! The paper: for `f(r) = O(√r)` computations with a tall cache, the PWS
//! cache-miss excess over the sequential `Q(n, M, B)` is `O(p·M/B)` —
//! i.e. *zero* once the input exceeds the combined cache capacity. The
//! measured excess divided by `pM/B` should be bounded by a small constant
//! across the sweep.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_cache_excess
//! ```

use hbp_core::prelude::*;

use hbp_core::algos::{gen, layout, mt, scan, strassen};

fn bi(n: usize, seed: u64) -> Vec<f64> {
    let rm = gen::random_matrix(n, seed);
    let mut out = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            out[layout::morton(r as u64, c as u64) as usize] = rm[r * n + c];
        }
    }
    out
}

fn main() {
    let bw = 32u64;
    let m = 1u64 << 12;
    let builds: Vec<(&str, Computation)> = vec![
        (
            "PS n=2^15",
            scan::prefix_sums(
                &gen::random_u64s(1 << 15, 1 << 30, 1),
                BuildConfig::with_block(bw),
            )
            .0,
        ),
        (
            "MT 64x64",
            mt::transpose_bi(&bi(64, 2), 64, BuildConfig::with_block(bw)).0,
        ),
        (
            "Strassen 32x32",
            strassen::strassen_bi(&bi(32, 3), &bi(32, 4), 32, BuildConfig::with_block(bw)).0,
        ),
    ];

    println!("F1: PWS cache-miss excess vs p  (M={m}, B={bw}; bound O(pM/B))\n");
    println!(
        "{:<16} {:>3} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "algorithm", "p", "Q(seq)", "PWS miss", "excess", "pM/B", "excess/(pM/B)"
    );
    hbp_bench::rule(72);
    for (name, comp) in &builds {
        let seq = run_sequential(comp, MachineConfig::new(1, m, bw));
        for p in [2usize, 4, 8, 16, 32] {
            let cfg = MachineConfig::new(p, m, bw);
            let par = run(comp, cfg, Policy::Pws);
            let excess = par.plain_misses().saturating_sub(seq.q_misses);
            let bound = p as u64 * m / bw;
            println!(
                "{:<16} {:>3} {:>9} {:>9} {:>9} {:>8} {:>10.3}",
                name,
                p,
                seq.q_misses,
                par.plain_misses(),
                excess,
                bound,
                excess as f64 / bound as f64
            );
        }
        println!();
    }

    println!("excess vs M at p=8, B={bw} (each row should stay ~flat per M):");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>12}",
        "algorithm", "M", "Q(seq)", "excess", "excess/(pM/B)"
    );
    hbp_bench::rule(60);
    for (name, comp) in &builds {
        for mm in [1u64 << 11, 1 << 12, 1 << 13, 1 << 14] {
            let cfg = MachineConfig::new(8, mm, bw);
            let seq = run_sequential(comp, cfg);
            let par = run(comp, cfg, Policy::Pws);
            let excess = par.plain_misses().saturating_sub(seq.q_misses);
            println!(
                "{:<16} {:>8} {:>9} {:>9} {:>12.3}",
                name,
                mm,
                seq.q_misses,
                excess,
                excess as f64 / (8.0 * mm as f64 / bw as f64)
            );
        }
        println!();
    }
}
