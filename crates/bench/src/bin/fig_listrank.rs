//! **F8 — §3.2/§4.6 list-ranking gapping**: block misses with and without
//! the gapped storage of contracted lists.
//!
//! The paper: writing the size-`n/x²` contracted list into space `n/x`
//! (every `x`-th slot) means that once the list has ≤ `n/B²` elements,
//! every element occupies its own block and deep-recursion block misses
//! vanish. We sweep the list size and compare gapped vs dense storage.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_listrank
//! ```

use hbp_core::prelude::*;

use hbp_core::algos::{gen, listrank};

fn main() {
    let bw = 16u64;
    println!("F8: list ranking, gapped vs dense contracted lists (B={bw})\n");
    println!(
        "{:>6} {:>3} | {:>10} {:>10} | {:>10} {:>10} | {:>9}",
        "n", "p", "gap blk", "dense blk", "gap span", "dense span", "gap heap×"
    );
    hbp_bench::rule(74);
    for n in [1usize << 11, 1 << 12, 1 << 13] {
        let succ = gen::random_list(n, 9);
        let (cg, _) = listrank::list_rank(&succ, BuildConfig::with_block(bw), true);
        let (cd, _) = listrank::list_rank(&succ, BuildConfig::with_block(bw), false);
        for p in [8usize, 16] {
            let cfg = MachineConfig::new(p, 1 << 12, bw);
            let rg = run(&cg, cfg, Policy::Pws);
            let rd = run(&cd, cfg, Policy::Pws);
            println!(
                "{:>6} {:>3} | {:>10} {:>10} | {:>10} {:>10} | {:>9.2}",
                n,
                p,
                rg.heap_block_misses,
                rd.heap_block_misses,
                rg.makespan,
                rd.makespan,
                cg.heap_words as f64 / cd.heap_words as f64,
            );
        }
    }
    println!(
        "\ngap heap×: space overhead of gapping (paper: bounded, since the\n\
         gapped level of size r uses √(n·r) ≤ n words)."
    );
}
