//! **F3 — Obs 4.3 + Cor 4.1**: PWS steals per priority and total steal
//! attempts, across the whole registry and a `p` sweep.
//!
//! Claims: at most `p − 1` tasks of any priority are stolen; total attempts
//! (successful + failed-round pairs) are at most `2·p·D'`.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_steals
//! ```

use hbp_core::prelude::*;

fn main() {
    println!("F3: steals per priority (bound p-1) and attempts (bound 2pD')\n");
    println!(
        "{:<20} {:>3} {:>5} {:>9} {:>6} {:>9} {:>9} {:>6}",
        "algorithm", "p", "D'", "steals", "max/pri", "attempts", "2pD'", "ok"
    );
    hbp_bench::rule(78);
    for spec in registry() {
        let n = match spec.size {
            SizeKind::Linear => 1 << 12,
            SizeKind::MatrixSide => 32,
        };
        let comp = (spec.build)(n, BuildConfig::with_block(32), 42);
        for p in [4usize, 8, 16] {
            let cfg = MachineConfig::new(p, 1 << 12, 32);
            let r = run(&comp, cfg, Policy::Pws);
            let bound = 2 * p as u64 * (comp.n_priorities as u64 + 1);
            let ok = r.max_steals_per_priority() <= (p - 1) as u64 && r.steal_attempts <= bound;
            println!(
                "{:<20} {:>3} {:>5} {:>9} {:>6} {:>9} {:>9} {:>6}",
                spec.name,
                p,
                comp.n_priorities,
                r.steals,
                r.max_steals_per_priority(),
                r.steal_attempts,
                bound,
                if ok { "yes" } else { "VIOLATED" }
            );
            assert!(ok, "{} violated the steal bounds", spec.name);
        }
    }
    println!("\nall rows satisfy Obs 4.3 and Cor 4.1");
}
