//! **F9 — Lemma 2.1 + §4.1**: the size distribution of stolen tasks under
//! PWS vs RWS.
//!
//! PWS steals in decreasing priority (≈ size) order, so its steal sequence
//! is front-loaded with the biggest tasks, and stolen tasks of size ≥ 2M
//! incur zero cache-miss excess (Lemma 2.1). RWS steals whatever sits at a
//! random victim's deque top, including tiny block-sharing tasks.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin fig_steal_sizes
//! ```

use hbp_core::prelude::*;

use hbp_core::algos::{gen, scan};

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q) as usize]
}

fn main() {
    let n = 1 << 15;
    let data = gen::random_u64s(n, 1 << 30, 3);
    let (comp, _) = scan::prefix_sums(&data, BuildConfig::with_block(32));
    let cfg = MachineConfig::new(8, 1 << 12, 32);

    println!("F9: stolen-task sizes, PS n=2^15, p=8, M=2^12, B=32\n");
    println!(
        "{:<8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>11} {:>10}",
        "sched", "steals", "min", "p25", "median", "max", "tiny (<B)", "big (>=2M)"
    );
    hbp_bench::rule(80);

    let pws = run(&comp, cfg, Policy::Pws);
    let mut runs: Vec<(String, Vec<u64>)> = vec![("PWS".into(), pws.stolen_sizes.clone())];
    for seed in [1u64, 2, 3] {
        let r = run(&comp, cfg, Policy::Rws { seed });
        runs.push((format!("RWS#{seed}"), r.stolen_sizes.clone()));
    }
    for (name, mut sizes) in runs {
        let raw = sizes.clone();
        sizes.sort();
        let tiny = sizes.iter().filter(|&&s| s < 32).count();
        let big = sizes.iter().filter(|&&s| s >= 2 * (1 << 12)).count();
        println!(
            "{:<8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>11} {:>10}",
            name,
            sizes.len(),
            sizes.first().copied().unwrap_or(0),
            percentile(&sizes, 0.25),
            percentile(&sizes, 0.5),
            sizes.last().copied().unwrap_or(0),
            tiny,
            big
        );
        if name == "PWS" {
            // PWS steal sequence is (weakly) size-decreasing round by round:
            // verify the first steal is the biggest.
            assert_eq!(
                raw.first().copied(),
                sizes.last().copied(),
                "PWS must steal the largest task first"
            );
        }
    }
    println!(
        "\nPWS's first steal is the largest task (priority order); RWS's\n\
         median stolen size is far smaller, which is exactly where block\n\
         sharing bites."
    );
}
