//! **trace_diff** — run one registry kernel on the simulator under two
//! scheduling configurations, align the traces by task id, and report
//! where the critical paths diverge.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin trace_diff -- <algo-prefix> [n] [policy-a] [policy-b]
//! ```
//!
//! * `algo-prefix` — registry lookup, as in `hbp_core::find` (default
//!   `FFT`); `n` as in `trace_report` (defaults 4096 / 32).
//! * `policy-a` / `policy-b` — `HBP_POLICY` syntax
//!   (`pws`, `rws[:seed]`, `bsp[:levels]`); defaults `pws` vs `rws:1`.
//!
//! Where `bench_diff` *detects* an aggregate regression, this pinpoints
//! it: sim task ids are the recorded computation's node ids, so two runs
//! of the same kernel share an id space and the first hop at which the
//! two critical paths part ways names the exact task (and worker) where
//! scheduling started to differ. Exit status: 0 when the two traces are
//! structurally equal (same task set — always true for two correct
//! schedulers of one kernel), 1 when they are not, 2 on usage errors.

use hbp_core::prelude::*;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: trace_diff <algo-prefix> [n] [policy-a] [policy-b]");
    std::process::exit(2);
}

fn parse_policy(s: &str) -> Policy {
    Policy::parse(Some(s)).unwrap_or_else(|e| usage(&e))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algo = args.first().map(String::as_str).unwrap_or("FFT");
    let Some(spec) = find(algo) else {
        usage(&format!("no registry algorithm matches {algo:?}"));
    };
    let n: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| usage(&format!("n must be a positive integer, got {s:?}"))),
        None => match spec.size {
            SizeKind::Linear => 4096,
            SizeKind::MatrixSide => 32,
        },
    };
    let pol_a = args.get(2).map_or(Policy::Pws, |s| parse_policy(s));
    let pol_b = args
        .get(3)
        .map_or(Policy::Rws { seed: 1 }, |s| parse_policy(s));

    let machine = hbp_bench::default_machine();
    let trace_of = |policy: Policy| -> Trace {
        let ex = SimExecutor { machine, policy };
        let sink = std::sync::Arc::new(TraceSink::new(ex.workers(), ex.clock_domain()));
        ex.execute_traced(&ExecJob::new(spec.name, n, 42), &sink)
            .expect("every registry algorithm runs on the simulator");
        sink.collect()
    };
    let (ta, tb) = (trace_of(pol_a), trace_of(pol_b));
    let d = hbp_core::trace::diff(&ta, &tb);

    println!(
        "trace diff — {} (n = {n}, sim p = {})\n  A = {pol_a:?}\n  B = {pol_b:?}\n",
        spec.name, machine.p
    );
    print!("{d}");
    if d.structurally_equal() {
        println!("\nstructurally equal: both schedules execute the same task DAG");
    } else {
        println!("\nSTRUCTURAL MISMATCH: the two runs did not execute the same task DAG");
        std::process::exit(1);
    }
}
