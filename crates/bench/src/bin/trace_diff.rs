//! **trace_diff** — run one registry kernel under two scheduling
//! configurations, align the traces, and report where they diverge.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin trace_diff -- <algo-prefix> [n] [side-a] [side-b]
//! ```
//!
//! * `algo-prefix` — registry lookup, as in `hbp_core::find` (default
//!   `FFT`); `n` as in `trace_report` (defaults 4096 / 32).
//! * `side-a` / `side-b` — `[backend:]policy`, where `backend` is `sim`
//!   (default) or `native` and `policy` uses the `HBP_POLICY` syntax
//!   (`pws`, `rws[:seed]`, `bsp[:levels]`). Defaults `pws` vs `rws:1`,
//!   both sim.
//!
//! **Same backend on both sides** (the classic mode): task ids share an
//! id space, so the diff checks *structural equality* — same task set,
//! same fork/begin/end tallies — and pinpoints the first critical-path
//! hop where the schedules part ways. Exit 1 on structural mismatch.
//!
//! **Mixed sim vs native**: sim ids are the recorded computation's node
//! ids while native ids are scheduling-dependent fork ordinals, so
//! cross-backend id alignment is meaningless. The diff degrades to each
//! side's *completeness* (every begun task ended, nothing dropped) and
//! prints the model-predicted vs hardware-observed miss totals side by
//! side — the model-vs-hardware loop the `MissDelta` counter sampling
//! exists for. Exit 1 when either side is incomplete.
//!
//! Exit status: 0 clean, 1 mismatch/incomplete, 2 usage errors.

use hbp_core::prelude::*;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: trace_diff <algo-prefix> [n] [side-a] [side-b]");
    eprintln!("       side = [sim:|native:]policy   (policy = pws | rws[:seed] | bsp[:levels])");
    std::process::exit(2);
}

/// One side of the diff: which backend runs the kernel, under which
/// policy.
#[derive(Debug, Clone, Copy)]
struct Side {
    backend: Backend,
    policy: Policy,
}

fn parse_side(s: &str) -> Side {
    let (backend, policy) = match s.split_once(':') {
        Some(("sim", rest)) => (Backend::Sim, rest),
        Some(("native", rest)) => (Backend::Native, rest),
        _ => (Backend::Sim, s),
    };
    Side {
        backend,
        policy: Policy::parse(Some(policy)).unwrap_or_else(|e| usage(&e)),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algo = args.first().map(String::as_str).unwrap_or("FFT");
    let Some(spec) = find(algo) else {
        // The exact-lookup error lists every known row.
        usage(&try_lookup(algo).map(|s| s.name.to_string()).unwrap_err());
    };
    let n: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| usage(&format!("n must be a positive integer, got {s:?}"))),
        None => match spec.size {
            SizeKind::Linear => 4096,
            SizeKind::MatrixSide => 32,
        },
    };
    let side_a = args.get(2).map_or(
        Side {
            backend: Backend::Sim,
            policy: Policy::Pws,
        },
        |s| parse_side(s),
    );
    let side_b = args.get(3).map_or(
        Side {
            backend: Backend::Sim,
            policy: Policy::Rws { seed: 1 },
        },
        |s| parse_side(s),
    );

    let machine = hbp_bench::default_machine();
    let trace_of = |side: Side| -> Trace {
        let ex: Box<dyn Executor> = match side.backend {
            Backend::Sim => Box::new(SimExecutor {
                machine,
                policy: side.policy,
            }),
            Backend::Native => {
                let seed = match side.policy {
                    Policy::Rws { seed } => seed,
                    Policy::Pws | Policy::Bsp { .. } => 0,
                };
                Box::new(NativeExecutor::from_config(
                    &Config::from_env().policy(side.policy),
                    seed,
                ))
            }
        };
        let sink = std::sync::Arc::new(TraceSink::new(ex.workers(), ex.clock_domain()));
        ex.execute_traced(&ExecJob::new(spec.name, n, 42), &sink)
            .unwrap_or_else(|| {
                usage(&format!(
                    "{} has no kernel on the {} backend",
                    spec.name,
                    ex.name()
                ))
            });
        sink.collect()
    };
    let (ta, tb) = (trace_of(side_a), trace_of(side_b));
    let d = hbp_core::trace::diff(&ta, &tb);

    println!(
        "trace diff — {} (n = {n})\n  A = {:?} on {:?}\n  B = {:?} on {:?}\n",
        spec.name, side_a.policy, side_a.backend, side_b.policy, side_b.backend
    );
    print!("{d}");

    if side_a.backend == side_b.backend {
        if d.structurally_equal() {
            println!("\nstructurally equal: both schedules execute the same task DAG");
        } else {
            println!("\nSTRUCTURAL MISMATCH: the two runs did not execute the same task DAG");
            std::process::exit(1);
        }
    } else {
        // Cross-backend: id spaces differ by construction (node ids vs
        // fork ordinals), so alignment degrades to per-side completeness
        // plus the predicted-vs-measured miss totals printed above.
        let (sim_m, nat_m) = if side_a.backend == Backend::Sim {
            (d.a.misses, d.b.misses)
        } else {
            (d.b.misses, d.a.misses)
        };
        println!(
            "\ncross-backend: sim predicts {}/{}/{} (heap/stack/plain) block misses; \
             native measured {}/{}/{} via {}",
            sim_m.0,
            sim_m.1,
            sim_m.2,
            nat_m.0,
            nat_m.1,
            nat_m.2,
            hbp_core::sched::perf::realized().unwrap_or("no counter source"),
        );
        let mut bad = false;
        for (name, shape) in [("A", &d.a), ("B", &d.b)] {
            if !shape.complete() {
                println!(
                    "side {name} INCOMPLETE: {} begins vs {} ends, {} dropped",
                    shape.begins, shape.ends, shape.dropped
                );
                bad = true;
            }
        }
        if bad {
            std::process::exit(1);
        }
        println!("both sides complete: every begun task ended, nothing dropped");
    }
}
