//! **trace_report** — record a structured trace of one registry kernel
//! on either backend and print the paper-style breakdown: work, span
//! (critical path), steals, block misses, per-worker utilization, and
//! the fork→steal latency histogram.
//!
//! ```text
//! cargo run --release -p hbp-bench --bin trace_report [-- <algo-prefix> [n]]
//! ```
//!
//! * `algo-prefix` — registry lookup, as in `hbp_core::find` (default
//!   `FFT`); `n` is elements for linear kernels, the matrix side for
//!   matrix kernels (defaults 4096 / 32).
//! * `HBP_BACKEND=sim|native` picks the backend (sim default);
//!   `HBP_WORKERS` sizes the native pool; `HBP_POLICY=pws|rws[:seed]|bsp[:levels]`
//!   picks the discipline **on either backend** (the native pool runs
//!   the policy's `NativeStealPolicy` facet); `HBP_DEQUE=cl|mutex`
//!   selects the native pool's deque implementation (lock-free
//!   Chase-Lev default — compare the fork→steal latency histograms).
//! * `HBP_TRACE_OUT=<path>` additionally writes the Chrome-trace JSON
//!   (open in `chrome://tracing` or <https://ui.perfetto.dev>). With
//!   `HBP_METRICS=1` the export also carries registry counter tracks
//!   (queue depth, pool backlog) sampled at `HBP_METRICS_INTERVAL` ms.
//! * `HBP_COUNTERS=auto|perf|stub|off` picks the native task-boundary
//!   counter source ([`hbp_core::sched::perf`]); the report names which
//!   source actually realized.
//! * `HBP_TRACE_STRICT=1` turns ring overflow (dropped events) into a
//!   nonzero exit, so CI cannot silently analyze a truncated trace.

use hbp_core::prelude::*;
use hbp_core::trace::{chrome_trace_with_tracks, summarize, CounterTrack, CpError, HopVia};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algo = args.first().map(String::as_str).unwrap_or("FFT");
    let spec = find(algo).unwrap_or_else(|| {
        // No prefix match either: the exact-lookup error lists every
        // known row, so a typo is a usage error, not a panic.
        eprintln!(
            "error: {}",
            try_lookup(algo).map(|s| s.name.to_string()).unwrap_err()
        );
        std::process::exit(2);
    });
    let n: usize = match args.get(1) {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("n must be a positive integer, got {s:?}")),
        None => match spec.size {
            SizeKind::Linear => 4096,
            SizeKind::MatrixSide => 32,
        },
    };

    let machine = hbp_bench::default_machine();
    let cfg = Config::from_env().apply();
    let policy = cfg.policy;
    let ex = executor_from_env(machine, policy);
    let unit = match ex.clock_domain() {
        ClockDomain::Virtual => "u",
        ClockDomain::WallNs => "ns",
    };
    println!(
        "trace report — {} (n = {n}, backend = {}, workers = {}, policy = {policy:?})",
        spec.name,
        ex.name(),
        ex.workers()
    );

    // With metrics on, sample the registry during the run so the Chrome
    // export can carry queue-depth / backlog counter tracks.
    let metrics = hbp_core::metrics::global();
    let sample_every = cfg
        .metrics_interval
        .unwrap_or(hbp_core::metrics::DEFAULT_INTERVAL);
    let sampler = metrics
        .on()
        .then(|| hbp_core::metrics::Sampler::start(metrics, sample_every));

    let sink = std::sync::Arc::new(TraceSink::new(ex.workers(), ex.clock_domain()));
    let job = ExecJob::new(spec.name, n, 42);
    let report = ex
        .execute_traced(&job, &sink)
        .unwrap_or_else(|| panic!("{} has no kernel on the {} backend", spec.name, ex.name()));
    let trace = sink.collect();
    let timeline = sampler.map(hbp_core::metrics::Sampler::stop);
    let s = summarize(&trace);

    println!("\n== paper-style breakdown ({unit} = {:?}) ==", s.clock);
    println!("  makespan         = {} {unit}", s.makespan);
    println!(
        "  work (busy)      = {} {unit} across {} workers ({} segments, {} tasks)",
        s.busy_total, s.workers, s.segments, s.tasks
    );
    match hbp_core::trace::critical_path(&trace) {
        Ok(cp) => {
            let spine_steals = cp
                .hops
                .iter()
                .filter(|h| matches!(h.via, HopVia::Steal { .. }))
                .count();
            println!(
                "  critical path    = {} {unit} (work {} + steal {} + deque wait {}; {} hops, {} stolen)",
                cp.total, cp.work, cp.steal, cp.queue_wait, cp.hops.len(), spine_steals
            );
            println!(
                "  parallelism      = {:.2} (work / critical path)",
                s.busy_total as f64 / cp.total.max(1) as f64
            );
        }
        Err(CpError::WallClockTrace) => {
            println!("  critical path    = n/a (wall-clock trace; run HBP_BACKEND=sim for the exact span)");
        }
        Err(e) => println!("  critical path    = unavailable: {e}"),
    }
    println!(
        "  steals           = {} committed covering {} tasks, {} failed attempts (report: {} / {})",
        s.steals, s.stolen_tasks, s.steal_fails, report.steals, report.steal_attempts
    );
    let (hb, sb, sp) = s.misses;
    if hb + sb + sp > 0 || ex.name() == "sim" {
        println!(
            "  block misses     = heap {hb}, stack {sb} (+ stack plain {sp}) — report: {} / {}",
            report.heap_block_misses, report.stack_block_misses
        );
    }
    if ex.name() == "native" {
        println!(
            "  counter source   = {} (HBP_COUNTERS; miss deltas above are {})",
            hbp_core::sched::perf::realized().unwrap_or("unopened"),
            match hbp_core::sched::perf::realized() {
                Some("perf") => "hardware perf-event readings",
                Some("stub") => "the deterministic stub's synthetic values",
                _ => "absent",
            }
        );
    }
    let util: Vec<String> = s
        .workers_util
        .iter()
        .enumerate()
        .map(|(w, u)| format!("w{w} {:.2}", u.utilization))
        .collect();
    println!("  utilization      = {}", util.join("  "));
    println!("  steal latency    = {}", s.steal_latency.render(unit));
    if trace.dropped > 0 {
        println!(
            "  (ring overflow: {} events dropped — raise HBP_TRACE_BUF)",
            trace.dropped
        );
    }

    if let Ok(path) = std::env::var("HBP_TRACE_OUT") {
        let tracks = timeline
            .map(|tl| metric_tracks(tl, sample_every.as_nanos() as u64))
            .unwrap_or_default();
        let json = chrome_trace_with_tracks(spec.name, &trace, &tracks);
        std::fs::write(&path, &json)
            .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
        println!(
            "\nwrote Chrome trace ({} bytes, {} counter tracks) to {path} — open in chrome://tracing or https://ui.perfetto.dev",
            json.len(),
            tracks.len()
        );
    }

    // Strict mode: a truncated trace means every number above is a
    // lower bound — CI must not treat that as a clean run.
    if trace.dropped > 0 && cfg.trace_strict {
        eprintln!(
            "trace_report: HBP_TRACE_STRICT=1 and {} events were dropped (ring overflow)",
            trace.dropped
        );
        std::process::exit(2);
    }
}

/// Registry snapshot timeline → Chrome counter tracks. Snapshots carry
/// no timestamps (determinism), so sample `i` is stamped at
/// `i × interval_ns` (the sampling interval) in the trace's nanosecond
/// clock.
fn metric_tracks(
    timeline: Vec<hbp_core::metrics::Snapshot>,
    interval_ns: u64,
) -> Vec<CounterTrack> {
    let workers = timeline.iter().map(|s| s.workers.len()).max().unwrap_or(0);
    let mut depth = CounterTrack::new(
        "queue depth",
        (0..workers).map(|w| format!("w{w}")).collect(),
    );
    let mut backlog = CounterTrack::new("pool backlog", vec!["jobs".into()]);
    for (i, snap) in timeline.iter().enumerate() {
        let t = i as u64 * interval_ns;
        depth.push(
            t,
            (0..workers)
                .map(|w| snap.workers.get(w).map_or(0, |ws| ws.queue_depth))
                .collect(),
        );
        backlog.push(t, vec![snap.pool_backlog]);
    }
    vec![depth, backlog]
}
