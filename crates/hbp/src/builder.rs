//! The trace builder: algorithms run against it once, producing both real
//! output values and the full [`Computation`] DAG + access trace.

use std::collections::HashMap;
use std::marker::PhantomData;

use hbp_machine::{BlockAllocator, Word};

use crate::comp::{Access, Computation, Item, NodeId, Segment, TNode, Target};
use crate::priority::assign_priorities;
use crate::value::Wordable;

/// Build-time options.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Block size used for global allocation alignment (§2.2's system
    /// property). This is machine knowledge used by the *system allocator*,
    /// not by the algorithms, which remain resource-oblivious.
    pub block_words: u64,
    /// Build a *padded* computation (Def 3.3): each node's frame is preceded
    /// by a `⌈√|τ|⌉`-word pad.
    pub padded: bool,
    /// Track per-word write/access counts for the limited-access checker
    /// (Def 2.4). Adds memory overhead; enable in tests and diagnostics.
    pub track_access_counts: bool,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            block_words: 32,
            padded: false,
            track_access_counts: false,
        }
    }
}

impl BuildConfig {
    /// Config with the given block size, unpadded, no tracking.
    pub fn with_block(block_words: u64) -> Self {
        Self {
            block_words,
            ..Self::default()
        }
    }

    /// Enable padding (Def 3.3).
    pub fn padded(mut self) -> Self {
        self.padded = true;
        self
    }

    /// Enable limited-access tracking.
    pub fn tracked(mut self) -> Self {
        self.track_access_counts = true;
        self
    }
}

/// A typed global array living in the simulated heap. Allocation is
/// block-aligned, so distinct arrays never share a block.
#[derive(Debug)]
pub struct GArray<T: Wordable> {
    base: Word,
    len: usize,
    _t: PhantomData<T>,
}

// Manual Clone/Copy: derive would bound T: Clone unnecessarily.
impl<T: Wordable> Clone for GArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Wordable> Copy for GArray<T> {}

impl<T: Wordable> GArray<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base word address (for diagnostics / block accounting).
    pub fn base(&self) -> Word {
        self.base
    }

    /// Word address of element `i`.
    pub fn addr(&self, i: usize) -> Word {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base + (i * T::WORDS) as Word
    }

    /// Word address one past the last element.
    pub fn end_addr(&self) -> Word {
        self.base + (self.len * T::WORDS) as Word
    }
}

/// A typed local (execution-stack) variable of some task node.
#[derive(Debug)]
pub struct Local<T: Wordable> {
    node: NodeId,
    off: u32,
    _t: PhantomData<T>,
}

impl<T: Wordable> Clone for Local<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Wordable> Copy for Local<T> {}

/// A typed local *array* on some task node's stack frame (e.g. Strassen's
/// temporaries — the paper's "variables (arrays) declared at the start of
/// the calling procedure", Def 3.4, made exactly-linear-space-bounded by
/// Def 3.6).
#[derive(Debug)]
pub struct LArray<T: Wordable> {
    node: NodeId,
    off: u32,
    len: usize,
    _t: PhantomData<T>,
}

impl<T: Wordable> Clone for LArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Wordable> Copy for LArray<T> {}

impl<T: Wordable> LArray<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-word access counting for the limited-access checker.
#[derive(Debug, Default, Clone)]
struct AccessCounts {
    writes: HashMap<Word, u32>,
    touches: HashMap<Word, u32>,
}

/// Records an algorithm's execution as a [`Computation`].
///
/// The builder maintains a stack of *open* task nodes; accesses are appended
/// to the innermost one. [`Builder::fork`] closes the current access segment,
/// builds the two children, and records the fork.
pub struct Builder {
    cfg: BuildConfig,
    nodes: Vec<TNode>,
    arena: Vec<Access>,
    /// Build-time value store for each node's frame.
    frames: Vec<Vec<u64>>,
    heap: Vec<u64>,
    alloc: BlockAllocator,
    open: Vec<NodeId>,
    seg_start: u32,
    counts: Option<AccessCounts>,
}

impl Builder {
    fn new(cfg: BuildConfig) -> Self {
        Self {
            cfg,
            nodes: Vec::new(),
            arena: Vec::new(),
            frames: Vec::new(),
            heap: Vec::new(),
            alloc: BlockAllocator::new(cfg.block_words),
            open: Vec::new(),
            seg_start: 0,
            counts: cfg.track_access_counts.then(AccessCounts::default),
        }
    }

    /// Record a whole computation: creates the root task of declared size
    /// `root_size`, runs `f`, assigns priorities, and returns the result.
    pub fn build(cfg: BuildConfig, root_size: u64, f: impl FnOnce(&mut Builder)) -> Computation {
        let mut b = Builder::new(cfg);
        let root = b.push_node(root_size);
        b.open.push(root);
        b.seg_start = 0;
        f(&mut b);
        b.flush_seg();
        b.open.pop();
        assert!(b.open.is_empty(), "unbalanced node stack at end of build");
        let mut comp = Computation {
            nodes: b.nodes,
            arena: b.arena,
            root,
            heap_words: b.alloc.watermark(),
            block_words: cfg.block_words,
            n_priorities: 0,
            heap: b.heap,
        };
        assign_priorities(&mut comp);
        comp
    }

    fn push_node(&mut self, size: u64) -> NodeId {
        assert!(size >= 1, "task size must be a positive integer (Def 3.2)");
        let id = NodeId(self.nodes.len() as u32);
        let pad = if self.cfg.padded {
            (size as f64).sqrt().ceil() as u32
        } else {
            0
        };
        self.nodes.push(TNode {
            size,
            items: Vec::new(),
            frame_words: 0,
            pad_words: pad,
        });
        self.frames.push(Vec::new());
        id
    }

    fn cur(&self) -> NodeId {
        *self.open.last().expect("an open node")
    }

    fn flush_seg(&mut self) {
        let end = self.arena.len() as u32;
        if end > self.seg_start {
            let seg = Segment {
                start: self.seg_start,
                end,
            };
            let cur = self.cur();
            self.nodes[cur.idx()].items.push(Item::Seg(seg));
        }
        self.seg_start = self.arena.len() as u32;
    }

    /// Fork two child tasks of declared sizes `lsize` / `rsize`, built by
    /// `lf` / `rf`. The right child is the steal candidate at run time.
    pub fn fork(
        &mut self,
        lsize: u64,
        rsize: u64,
        lf: impl FnOnce(&mut Builder),
        rf: impl FnOnce(&mut Builder),
    ) {
        self.flush_seg();
        let left = self.build_child(lsize, lf);
        let right = self.build_child(rsize, rf);
        let cur = self.cur();
        self.nodes[cur.idx()].items.push(Item::Fork {
            left,
            right,
            priority: 0,
        });
        self.seg_start = self.arena.len() as u32;
    }

    /// Like [`Builder::fork`], but with a single closure invoked twice —
    /// `f(b, false)` builds the left child, `f(b, true)` the right. Useful
    /// when both children share captured mutable state.
    pub fn fork_with(&mut self, lsize: u64, rsize: u64, mut f: impl FnMut(&mut Builder, bool)) {
        self.flush_seg();
        let left = self.build_child(lsize, |b| f(b, false));
        let right = self.build_child(rsize, |b| f(b, true));
        let cur = self.cur();
        self.nodes[cur.idx()].items.push(Item::Fork {
            left,
            right,
            priority: 0,
        });
        self.seg_start = self.arena.len() as u32;
    }

    fn build_child(&mut self, size: u64, f: impl FnOnce(&mut Builder)) -> NodeId {
        let id = self.push_node(size);
        self.open.push(id);
        self.seg_start = self.arena.len() as u32;
        f(self);
        self.flush_seg();
        self.open.pop();
        id
    }

    // ---- global arrays ------------------------------------------------

    /// Allocate a zeroed global array of `len` elements (block-aligned).
    pub fn alloc<T: Wordable>(&mut self, len: usize) -> GArray<T> {
        let words = (len * T::WORDS) as u64;
        let base = self.alloc.alloc(words);
        let end = (base + words.max(1)) as usize;
        if self.heap.len() < end {
            self.heap.resize(end, 0);
        }
        GArray {
            base,
            len,
            _t: PhantomData,
        }
    }

    /// Allocate and fill a global array from a slice, *without* recording
    /// accesses (input initialization is not part of the computation).
    pub fn input<T: Wordable>(&mut self, data: &[T]) -> GArray<T> {
        let a = self.alloc::<T>(data.len());
        for (i, &v) in data.iter().enumerate() {
            self.poke(a, i, v);
        }
        a
    }

    /// Write `a[i] = v` silently (no access recorded). For initialization
    /// and test scaffolding only.
    pub fn poke<T: Wordable>(&mut self, a: GArray<T>, i: usize, v: T) {
        let addr = a.addr(i) as usize;
        v.to_words(&mut self.heap[addr..addr + T::WORDS]);
    }

    /// Read `a[i]` silently (no access recorded). For oracles/tests.
    pub fn peek<T: Wordable>(&self, a: GArray<T>, i: usize) -> T {
        let addr = a.addr(i) as usize;
        T::from_words(&self.heap[addr..addr + T::WORDS])
    }

    fn record(&mut self, target: Target, write: bool) {
        self.arena.push(Access { target, write });
        if let Some(c) = &mut self.counts {
            if let Target::Global(w) = target {
                *c.touches.entry(w).or_insert(0) += 1;
                if write {
                    *c.writes.entry(w).or_insert(0) += 1;
                }
            }
        }
    }

    /// Read `a[i]`, recording one access per word.
    pub fn read<T: Wordable>(&mut self, a: GArray<T>, i: usize) -> T {
        let addr = a.addr(i);
        for w in 0..T::WORDS {
            self.record(Target::Global(addr + w as Word), false);
        }
        T::from_words(&self.heap[addr as usize..addr as usize + T::WORDS])
    }

    /// Write `a[i] = v`, recording one access per word.
    pub fn write<T: Wordable>(&mut self, a: GArray<T>, i: usize, v: T) {
        let addr = a.addr(i);
        for w in 0..T::WORDS {
            self.record(Target::Global(addr + w as Word), true);
        }
        v.to_words(&mut self.heap[addr as usize..addr as usize + T::WORDS]);
    }

    /// Read a raw global word address (layout algorithms use this).
    pub fn read_addr(&mut self, addr: Word) -> u64 {
        self.record(Target::Global(addr), false);
        self.heap[addr as usize]
    }

    /// Write a raw global word address.
    pub fn write_addr(&mut self, addr: Word, v: u64) {
        self.record(Target::Global(addr), true);
        if self.heap.len() <= addr as usize {
            self.heap.resize(addr as usize + 1, 0);
        }
        self.heap[addr as usize] = v;
    }

    // ---- execution-stack locals ---------------------------------------

    /// Declare a local variable on the current node's frame, initialized to
    /// `v` (the initializing write is recorded: task heads do O(1) work).
    pub fn local<T: Wordable>(&mut self, v: T) -> Local<T> {
        let node = self.cur();
        let l = self.local_uninit::<T>();
        self.wloc(l, v);
        debug_assert_eq!(l.node, node);
        l
    }

    /// Declare a local without initializing (no access recorded).
    pub fn local_uninit<T: Wordable>(&mut self) -> Local<T> {
        let node = self.cur();
        let tn = &mut self.nodes[node.idx()];
        let off = tn.frame_words;
        tn.frame_words += T::WORDS as u32;
        self.frames[node.idx()].resize(tn.frame_words as usize, 0);
        Local {
            node,
            off,
            _t: PhantomData,
        }
    }

    /// Declare a zeroed local array of `len` elements on the current frame
    /// (allocation itself records no accesses, like a real stack pointer
    /// bump).
    pub fn local_array<T: Wordable>(&mut self, len: usize) -> LArray<T> {
        let node = self.cur();
        let tn = &mut self.nodes[node.idx()];
        let off = tn.frame_words;
        tn.frame_words += (len * T::WORDS) as u32;
        self.frames[node.idx()].resize(tn.frame_words as usize, 0);
        LArray {
            node,
            off,
            len,
            _t: PhantomData,
        }
    }

    /// Read a local variable (possibly of an ancestor node).
    pub fn rloc<T: Wordable>(&mut self, l: Local<T>) -> T {
        for w in 0..T::WORDS {
            self.record(
                Target::Local {
                    node: l.node,
                    off: l.off + w as u32,
                },
                false,
            );
        }
        let f = &self.frames[l.node.idx()];
        T::from_words(&f[l.off as usize..l.off as usize + T::WORDS])
    }

    /// Write a local variable (possibly of an ancestor node).
    pub fn wloc<T: Wordable>(&mut self, l: Local<T>, v: T) {
        for w in 0..T::WORDS {
            self.record(
                Target::Local {
                    node: l.node,
                    off: l.off + w as u32,
                },
                true,
            );
        }
        let f = &mut self.frames[l.node.idx()];
        v.to_words(&mut f[l.off as usize..l.off as usize + T::WORDS]);
    }

    /// Read element `i` of a local array silently (no access recorded).
    /// Build-time planning only (e.g. SPMS splitter selection) — the
    /// mirror of [`Builder::peek`] for stack arrays.
    pub fn peek_arr<T: Wordable>(&self, a: LArray<T>, i: usize) -> T {
        debug_assert!(i < a.len);
        let base = (a.off + (i * T::WORDS) as u32) as usize;
        let f = &self.frames[a.node.idx()];
        T::from_words(&f[base..base + T::WORDS])
    }

    /// Read element `i` of a local array.
    pub fn rarr<T: Wordable>(&mut self, a: LArray<T>, i: usize) -> T {
        debug_assert!(i < a.len);
        let base = a.off + (i * T::WORDS) as u32;
        for w in 0..T::WORDS {
            self.record(
                Target::Local {
                    node: a.node,
                    off: base + w as u32,
                },
                false,
            );
        }
        let f = &self.frames[a.node.idx()];
        T::from_words(&f[base as usize..base as usize + T::WORDS])
    }

    /// Write element `i` of a local array.
    pub fn warr<T: Wordable>(&mut self, a: LArray<T>, i: usize, v: T) {
        debug_assert!(i < a.len);
        let base = a.off + (i * T::WORDS) as u32;
        for w in 0..T::WORDS {
            self.record(
                Target::Local {
                    node: a.node,
                    off: base + w as u32,
                },
                true,
            );
        }
        let f = &mut self.frames[a.node.idx()];
        v.to_words(&mut f[base as usize..base as usize + T::WORDS]);
    }

    /// The block size (in words) the system allocator aligns to — machine
    /// knowledge exposed to *layout decisions* (e.g. SPMS's block-aligned
    /// output gaps), not to algorithmic control flow.
    pub fn block_words(&self) -> u64 {
        self.cfg.block_words
    }

    // ---- diagnostics ---------------------------------------------------

    /// Maximum number of writes to any single global word so far
    /// (limited-access, Def 2.4). Requires `track_access_counts`.
    pub fn max_writes_per_word(&self) -> u32 {
        self.counts
            .as_ref()
            .expect("enable BuildConfig::track_access_counts")
            .writes
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of accesses to any *written* global word so far.
    pub fn max_accesses_per_written_word(&self) -> u32 {
        let c = self
            .counts
            .as_ref()
            .expect("enable BuildConfig::track_access_counts");
        c.writes
            .keys()
            .map(|w| c.touches.get(w).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }
}

/// Build a BP-like binary fan-out over `count` leaves (the paper's mechanism
/// for forking `v(n)` parallel recursive subproblems, §3.1). `per_size` is
/// the declared size of each leaf subproblem; internal tasks get the sum of
/// their leaves' sizes, keeping the tree balanced with `α = 1/2`.
pub fn fanout_uniform(
    b: &mut Builder,
    count: usize,
    per_size: u64,
    leaf: &mut impl FnMut(&mut Builder, usize),
) {
    fn rec(
        b: &mut Builder,
        lo: usize,
        hi: usize,
        per: u64,
        leaf: &mut impl FnMut(&mut Builder, usize),
    ) {
        debug_assert!(hi > lo);
        if hi - lo == 1 {
            leaf(b, lo);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        b.fork_with(
            (mid - lo) as u64 * per,
            (hi - mid) as u64 * per,
            |b, right| {
                if right {
                    rec(b, mid, hi, per, leaf)
                } else {
                    rec(b, lo, mid, per, leaf)
                }
            },
        );
    }
    assert!(count >= 1);
    rec(b, 0, count, per_size, leaf);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's M-Sum over 8 inputs and sanity-check the structure.
    fn msum(n: usize) -> (Computation, Word) {
        let data: Vec<u64> = (1..=n as u64).collect();
        let mut out_base = 0;
        let comp = Builder::build(BuildConfig::default().tracked(), n as u64, |b| {
            let a = b.input(&data);
            let out = b.alloc::<u64>(1);
            out_base = out.base();
            fn rec(b: &mut Builder, a: GArray<u64>, lo: usize, hi: usize, dst: Local<u64>) {
                if hi - lo == 1 {
                    let v = b.read(a, lo);
                    b.wloc(dst, v);
                    return;
                }
                let mid = lo + (hi - lo) / 2;
                let (s1, s2) = {
                    // parent declares result slots for the children
                    (b.local(0u64), b.local(0u64))
                };
                b.fork(
                    (mid - lo) as u64,
                    (hi - mid) as u64,
                    |b| rec(b, a, lo, mid, s1),
                    |b| rec(b, a, mid, hi, s2),
                );
                let v1 = b.rloc(s1);
                let v2 = b.rloc(s2);
                b.wloc(dst, v1 + v2);
            }
            let total = b.local(0u64);
            rec(b, a, 0, n, total);
            let v = b.rloc(total);
            b.write(out, 0, v);
        });
        (comp, out_base)
    }

    #[test]
    fn msum_computes_and_records() {
        let n = 8;
        let (comp, out) = msum(n);
        // sum 1..=8 = 36
        assert_eq!(comp.heap[out as usize], 36);
        // 7 forks for 8 leaves
        assert_eq!(comp.forks().count(), n - 1);
        // every access present; work = Θ(n)
        assert!(comp.work() >= 2 * n as u64);
        assert!(comp.n_priorities > 0);
    }

    #[test]
    fn priorities_strictly_decrease_on_paths() {
        let (comp, _) = msum(16);
        // For each fork, every fork inside the children must have a smaller
        // priority.
        fn max_child_pri(c: &Computation, node: NodeId) -> Option<u32> {
            c.nodes[node.idx()]
                .items
                .iter()
                .filter_map(|it| match *it {
                    Item::Fork {
                        left,
                        right,
                        priority,
                    } => {
                        let mut m = priority;
                        if let Some(x) = max_child_pri(c, left) {
                            m = m.max(x);
                        }
                        if let Some(x) = max_child_pri(c, right) {
                            m = m.max(x);
                        }
                        Some(m)
                    }
                    _ => None,
                })
                .max()
        }
        for (_, _, l, r, pri) in comp.forks() {
            for child in [l, r] {
                if let Some(m) = max_child_pri(&comp, child) {
                    assert!(m < pri, "child fork priority {m} !< parent {pri}");
                }
            }
        }
    }

    #[test]
    fn same_priority_same_size() {
        let (comp, _) = msum(32);
        let mut by_pri: std::collections::HashMap<u32, Vec<u64>> = Default::default();
        for (_, _, l, r, pri) in comp.forks() {
            by_pri
                .entry(pri)
                .or_default()
                .extend([comp.nodes[l.idx()].size, comp.nodes[r.idx()].size]);
        }
        for (pri, sizes) in by_pri {
            let mn = *sizes.iter().min().unwrap();
            let mx = *sizes.iter().max().unwrap();
            assert!(mx <= 2 * mn, "priority {pri}: sizes {mn}..{mx} unbalanced");
        }
    }

    #[test]
    fn limited_access_holds_for_msum() {
        let n = 16;
        let data: Vec<u64> = vec![1; n];
        let mut max_writes = 0;
        let _ = Builder::build(BuildConfig::default().tracked(), n as u64, |b| {
            let a = b.input(&data);
            let out = b.alloc::<u64>(1);
            let mut total = 0;
            for i in 0..n {
                total += b.read(a, i);
            }
            b.write(out, 0, total);
            max_writes = b.max_writes_per_word();
        });
        assert_eq!(max_writes, 1);
    }

    #[test]
    fn arrays_are_block_disjoint() {
        let comp = Builder::build(BuildConfig::with_block(16), 4, |b| {
            let a = b.alloc::<u64>(3);
            let c = b.alloc::<u64>(3);
            assert!(c.base() >= a.base() + 16);
            b.write(a, 0, 1);
            b.write(c, 0, 2);
        });
        assert_eq!(comp.block_words, 16);
    }

    #[test]
    fn locals_live_on_frames() {
        let comp = Builder::build(BuildConfig::default(), 8, |b| {
            let x = b.local(7u64);
            b.fork(
                4,
                4,
                |b| {
                    let v = b.rloc(x); // child reads parent's local
                    let y = b.local(v * 2);
                    let _ = b.rloc(y);
                },
                |b| {
                    let _ = b.local(1u64);
                },
            );
            let v = b.rloc(x);
            assert_eq!(v, 7);
        });
        assert_eq!(comp.nodes[comp.root.idx()].frame_words, 1);
        // children declared one local each
        let (_, _, l, r, _) = comp.forks().next().unwrap();
        assert_eq!(comp.nodes[l.idx()].frame_words, 1);
        assert_eq!(comp.nodes[r.idx()].frame_words, 1);
    }

    #[test]
    fn padding_adds_sqrt_size_words() {
        let comp = Builder::build(BuildConfig::default().padded(), 100, |b| {
            b.fork(50, 50, |_| {}, |_| {});
        });
        assert_eq!(comp.nodes[comp.root.idx()].pad_words, 10);
        let (_, _, l, _, _) = comp.forks().next().unwrap();
        assert_eq!(comp.nodes[l.idx()].pad_words, 8); // ceil(sqrt(50)) = 8
    }

    #[test]
    fn fanout_builds_balanced_tree() {
        let mut seen = Vec::new();
        let comp = Builder::build(BuildConfig::default(), 10, |b| {
            fanout_uniform(b, 10, 1, &mut |b, i| {
                seen.push(i);
                let l = b.local(i as u64);
                let _ = b.rloc(l);
            });
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(comp.forks().count(), 9);
    }

    #[test]
    fn local_array_roundtrip() {
        Builder::build(BuildConfig::default(), 4, |b| {
            let a = b.local_array::<f64>(4);
            b.warr(a, 2, 2.5);
            assert_eq!(b.rarr(a, 2), 2.5);
            assert_eq!(b.rarr(a, 0), 0.0);
        });
    }
}
