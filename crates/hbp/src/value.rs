//! Word-encodable values: the element types algorithms store in simulated
//! memory. Every element is a fixed number of 64-bit words; each word touched
//! counts as one access in the trace, matching the paper's word-level
//! accounting of task sizes.

/// A value representable as a fixed number of machine words.
pub trait Wordable: Copy {
    /// Number of 64-bit words per value.
    const WORDS: usize;
    /// Encode into exactly `Self::WORDS` words.
    fn to_words(self, out: &mut [u64]);
    /// Decode from exactly `Self::WORDS` words.
    fn from_words(w: &[u64]) -> Self;
}

impl Wordable for u64 {
    const WORDS: usize = 1;
    fn to_words(self, out: &mut [u64]) {
        out[0] = self;
    }
    fn from_words(w: &[u64]) -> Self {
        w[0]
    }
}

impl Wordable for i64 {
    const WORDS: usize = 1;
    fn to_words(self, out: &mut [u64]) {
        out[0] = self as u64;
    }
    fn from_words(w: &[u64]) -> Self {
        w[0] as i64
    }
}

impl Wordable for f64 {
    const WORDS: usize = 1;
    fn to_words(self, out: &mut [u64]) {
        out[0] = self.to_bits();
    }
    fn from_words(w: &[u64]) -> Self {
        f64::from_bits(w[0])
    }
}

impl Wordable for (u64, u64) {
    const WORDS: usize = 2;
    fn to_words(self, out: &mut [u64]) {
        out[0] = self.0;
        out[1] = self.1;
    }
    fn from_words(w: &[u64]) -> Self {
        (w[0], w[1])
    }
}

impl Wordable for (u64, u64, u64) {
    const WORDS: usize = 3;
    fn to_words(self, out: &mut [u64]) {
        out[0] = self.0;
        out[1] = self.1;
        out[2] = self.2;
    }
    fn from_words(w: &[u64]) -> Self {
        (w[0], w[1], w[2])
    }
}

/// Complex double — the FFT element type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cx {
    /// `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::ops::Add for Cx {
    type Output = Cx;
    fn add(self, o: Cx) -> Cx {
        Cx::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Cx {
    type Output = Cx;
    fn sub(self, o: Cx) -> Cx {
        Cx::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Cx {
    type Output = Cx;
    fn mul(self, o: Cx) -> Cx {
        Cx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Wordable for Cx {
    const WORDS: usize = 2;
    fn to_words(self, out: &mut [u64]) {
        out[0] = self.re.to_bits();
        out[1] = self.im.to_bits();
    }
    fn from_words(w: &[u64]) -> Self {
        Cx::new(f64::from_bits(w[0]), f64::from_bits(w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wordable + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u64; T::WORDS];
        v.to_words(&mut buf);
        assert_eq!(T::from_words(&buf), v);
    }

    #[test]
    fn roundtrips() {
        roundtrip(42u64);
        roundtrip(-7i64);
        roundtrip(3.5f64);
        roundtrip((1u64, 2u64));
        roundtrip((1u64, 2u64, 3u64));
        roundtrip(Cx::new(1.25, -2.5));
    }

    #[test]
    fn complex_arithmetic() {
        let i = Cx::new(0.0, 1.0);
        assert_eq!(i * i, Cx::new(-1.0, 0.0));
        let w = Cx::cis(std::f64::consts::PI);
        assert!((w.re + 1.0).abs() < 1e-12 && w.im.abs() < 1e-12);
        assert!((Cx::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        assert_eq!(Cx::new(1.0, 2.0) + Cx::new(3.0, 4.0), Cx::new(4.0, 6.0));
        assert_eq!(Cx::new(1.0, 2.0) - Cx::new(3.0, 5.0), Cx::new(-2.0, -3.0));
    }
}
