//! Task-priority assignment (paper §4.1, §4.2.1).
//!
//! PWS requires integer priorities that strictly decrease along every
//! root→leaf path of the computation tree, with all tasks of a given
//! priority having (nearly) the same size. We assign each node a contiguous
//! *band* of priorities sized to its own priority depth:
//!
//! * the two children of a fork get priority one below the band cursor;
//! * sequenced forks inside one node get disjoint, decreasing sub-bands.
//!
//! For balanced HBP computations the recursive structure is symmetric across
//! parallel siblings, so same-priority tasks automatically fall in the same
//! size band — exactly the property §4.1 needs.

use crate::comp::{Computation, Item, NodeId};

/// Number of priority levels needed below `node` (its "priority depth").
fn priority_depth(comp: &Computation, memo: &mut [u32], node: NodeId) -> u32 {
    let cached = memo[node.idx()];
    if cached != u32::MAX {
        return cached;
    }
    let mut cur = 0u32;
    // Collect child pairs first to appease the borrow checker.
    let forks: Vec<(NodeId, NodeId)> = comp.nodes[node.idx()]
        .items
        .iter()
        .filter_map(|it| match *it {
            Item::Fork { left, right, .. } => Some((left, right)),
            _ => None,
        })
        .collect();
    for (l, r) in forks {
        let dl = priority_depth(comp, memo, l);
        let dr = priority_depth(comp, memo, r);
        cur += 1 + dl.max(dr);
    }
    memo[node.idx()] = cur;
    cur
}

fn assign(comp: &mut Computation, memo: &[u32], node: NodeId, top: u32) {
    let mut cur = top;
    let n_items = comp.nodes[node.idx()].items.len();
    for ii in 0..n_items {
        let (l, r) = match comp.nodes[node.idx()].items[ii] {
            Item::Fork { left, right, .. } => (left, right),
            _ => continue,
        };
        let band = 1 + memo[l.idx()].max(memo[r.idx()]);
        debug_assert!(cur >= band, "priority band underflow");
        let pri = cur;
        if let Item::Fork { priority, .. } = &mut comp.nodes[node.idx()].items[ii] {
            *priority = pri;
        }
        assign(comp, memo, l, pri - 1);
        assign(comp, memo, r, pri - 1);
        cur -= band;
    }
}

/// Assign priorities to every fork of `comp` and set
/// [`Computation::n_priorities`] to the number of distinct levels `D'`.
pub fn assign_priorities(comp: &mut Computation) {
    let mut memo = vec![u32::MAX; comp.nodes.len()];
    let d = priority_depth(comp, &mut memo, comp.root);
    assign(comp, &memo, comp.root, d);
    comp.n_priorities = d;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildConfig, Builder};

    /// Two sequenced BP phases must occupy disjoint priority bands: every
    /// priority in phase 2 is strictly below every priority in phase 1.
    #[test]
    fn sequenced_phases_get_disjoint_bands() {
        let comp = Builder::build(BuildConfig::default(), 8, |b| {
            // phase 1: depth-2 BP
            b.fork(
                4,
                4,
                |b| b.fork(2, 2, |_| {}, |_| {}),
                |b| b.fork(2, 2, |_| {}, |_| {}),
            );
            // phase 2: depth-1 BP
            b.fork(4, 4, |_| {}, |_| {});
        });
        let root_forks: Vec<u32> = comp.nodes[comp.root.idx()]
            .items
            .iter()
            .filter_map(|it| match it {
                Item::Fork { priority, .. } => Some(*priority),
                _ => None,
            })
            .collect();
        assert_eq!(root_forks.len(), 2);
        let all: Vec<(u32, u64)> = comp
            .forks()
            .map(|(_, _, l, _, p)| (p, comp.nodes[l.idx()].size))
            .collect();
        // phase-1 band: priorities > root_forks[1]; phase 2: <= root_forks[1]
        let phase1_min = all
            .iter()
            .filter(|(p, _)| *p > root_forks[1])
            .map(|(p, _)| *p)
            .min()
            .unwrap();
        assert!(phase1_min > root_forks[1]);
        assert_eq!(comp.n_priorities, 3); // 2 levels phase 1 + 1 level phase 2
    }

    #[test]
    fn n_priorities_matches_bp_depth() {
        // A BP tree over 2^k leaves has k priority levels.
        for k in 1..=6u32 {
            let n = 1u64 << k;
            let comp = Builder::build(BuildConfig::default(), n, |b| {
                fn rec(b: &mut Builder, size: u64) {
                    if size == 1 {
                        return;
                    }
                    b.fork(
                        size / 2,
                        size / 2,
                        |b| rec(b, size / 2),
                        |b| rec(b, size / 2),
                    );
                }
                rec(b, n);
            });
            assert_eq!(comp.n_priorities, k);
        }
    }
}
