//! # hbp-model — the HBP computation model
//!
//! This crate implements §2–§3 of Cole & Ramachandran (IPDPS 2012 /
//! arXiv:1103.4071): multithreaded computations that expose parallelism by
//! **binary forking**, structured as **Balanced Parallel (BP)** computations
//! and their hierarchical composition, **HBP** computations.
//!
//! A computation is represented as a *series-parallel task DAG* recorded by a
//! [`Builder`]: algorithms are written once, against typed global arrays and
//! execution-stack locals; running the algorithm through the builder both
//! *computes real values* (so outputs can be checked against sequential
//! oracles) and *records the exact word-level access trace* of every task.
//! The recorded [`Computation`] is then executed by `hbp-sched` under PWS or
//! RWS on the simulated machine from `hbp-machine`.
//!
//! Structural features of the paper captured here:
//!
//! * **task sizes** `|τ|` and the BP *balance condition* (Def 3.2 vi);
//! * **priorities** that strictly decrease along every root→leaf path, with
//!   all tasks of one priority having the same size band (§4.1);
//! * **limited-access** writes (Def 2.4) — checkable per computation;
//! * **execution-stack locals** (Def 3.1) with symbolic addresses resolved
//!   at schedule time, so stack-block sharing between a stolen task and its
//!   ancestors is modeled faithfully (§3.3);
//! * **padded** BP/HBP computations (Def 3.3): a `⌈√|τ|⌉`-word pad per frame;
//! * estimators for the **cache-friendliness** `f(r)` (Def 2.1) and the
//!   **block-sharing** function `L(r)` (Def 2.3).

pub mod analysis;
pub mod builder;
pub mod comp;
pub mod priority;
pub mod value;

pub use builder::{BuildConfig, Builder, GArray, LArray, Local};
pub use comp::{Access, Computation, Item, NodeId, Segment, TNode, Target};
pub use value::{Cx, Wordable};

pub use hbp_machine::Word;
