//! Structural analysis of recorded computations: work `W`, critical path
//! `T∞`, balance, limited access, and the paper's `f(r)` (cache
//! friendliness, Def 2.1) and `L(r)` (block sharing, Def 2.3) estimators.

use std::collections::HashMap;

use hbp_machine::Word;

use crate::comp::{Computation, Item, NodeId, Target};

/// Critical-path length `T∞` in access units: the longest chain of accesses
/// through the series-parallel DAG (each fork/join adds one unit of O(1)
/// bookkeeping).
pub fn span(comp: &Computation) -> u64 {
    fn rec(comp: &Computation, node: NodeId) -> u64 {
        let mut total = 0u64;
        for it in &comp.nodes[node.idx()].items {
            match *it {
                Item::Seg(s) => total += s.len() as u64,
                Item::Fork { left, right, .. } => {
                    total += 1 + rec(comp, left).max(rec(comp, right)) + 1;
                }
            }
        }
        total
    }
    rec(comp, comp.root)
}

/// Depth of the fork tree (number of forks on the deepest path).
pub fn fork_depth(comp: &Computation) -> u32 {
    fn rec(comp: &Computation, node: NodeId) -> u32 {
        let mut total = 0;
        for it in &comp.nodes[node.idx()].items {
            if let Item::Fork { left, right, .. } = *it {
                total += 1 + rec(comp, left).max(rec(comp, right));
            }
        }
        total
    }
    rec(comp, comp.root)
}

/// Verify the balance property used by PWS (§4.1): all tasks with the same
/// priority have sizes within a factor `ratio`. Returns the worst ratio seen.
pub fn priority_size_ratio(comp: &Computation) -> f64 {
    let mut by_pri: HashMap<u32, (u64, u64)> = HashMap::new();
    for (_, _, l, r, pri) in comp.forks() {
        for sz in [comp.nodes[l.idx()].size, comp.nodes[r.idx()].size] {
            let e = by_pri.entry(pri).or_insert((u64::MAX, 0));
            e.0 = e.0.min(sz);
            e.1 = e.1.max(sz);
        }
    }
    by_pri
        .values()
        .map(|&(mn, mx)| mx as f64 / mn as f64)
        .fold(1.0, f64::max)
}

/// Check the BP balance condition (Def 3.2 vi) on fork children: each child
/// size must lie in `[c1·α·|parent|, c2·α·|parent|]` for `α = 1/2` and the
/// given constants. Returns the number of violating forks.
pub fn balance_violations(comp: &Computation, c1: f64, c2: f64) -> usize {
    let mut parent_size = vec![0u64; comp.nodes.len()];
    parent_size[comp.root.idx()] = comp.nodes[comp.root.idx()].size;
    let mut bad = 0;
    for (parent, _, l, r, _) in comp.forks() {
        let ps = comp.nodes[parent.idx()].size as f64;
        for ch in [l, r] {
            let cs = comp.nodes[ch.idx()].size as f64;
            if cs < c1 * 0.5 * ps - 1e-9 || cs > c2 * 0.5 * ps + 1e-9 {
                bad += 1;
            }
        }
    }
    bad
}

/// Per-word write counts over the whole computation — the limited-access
/// checker (Def 2.4). Returns `(max_writes_per_global_word,
/// max_writes_per_local_word)`.
pub fn write_counts(comp: &Computation) -> (u32, u32) {
    let mut glob: HashMap<Word, u32> = HashMap::new();
    let mut loc: HashMap<(NodeId, u32), u32> = HashMap::new();
    for a in &comp.arena {
        if !a.write {
            continue;
        }
        match a.target {
            Target::Global(w) => *glob.entry(w).or_insert(0) += 1,
            Target::Local { node, off } => *loc.entry((node, off)).or_insert(0) += 1,
        }
    }
    (
        glob.values().copied().max().unwrap_or(0),
        loc.values().copied().max().unwrap_or(0),
    )
}

/// Result row of the `f(r)` estimator for one task.
#[derive(Debug, Clone, Copy)]
pub struct FRow {
    /// Declared task size `r`.
    pub size: u64,
    /// Number of accesses in the task's subtree.
    pub accesses: u64,
    /// Distinct global blocks touched by the subtree.
    pub blocks: u64,
}

/// Estimate `f(r)` per task: for every node, the number of distinct global
/// blocks its subtree accesses. Definition 2.1 says a task of size `r` in an
/// `f`-friendly computation touches `O(r/B + f(r))` blocks; tests compare
/// `blocks - accesses/B` against the claimed `f`.
///
/// Intended for diagnostic/test use on small inputs (cost is
/// O(total accesses · depth) in the worst case).
pub fn f_estimate(comp: &Computation, block_words: u64) -> Vec<FRow> {
    // Bottom-up: each node's sorted, deduped block list.
    fn rec(
        comp: &Computation,
        block_words: u64,
        node: NodeId,
        out: &mut Vec<FRow>,
    ) -> (Vec<u64>, u64) {
        let mut blocks: Vec<u64> = Vec::new();
        let mut acc = 0u64;
        for it in &comp.nodes[node.idx()].items {
            match *it {
                Item::Seg(s) => {
                    for a in &comp.arena[s.start as usize..s.end as usize] {
                        if let Target::Global(w) = a.target {
                            blocks.push(w / block_words);
                        }
                        acc += 1;
                    }
                }
                Item::Fork { left, right, .. } => {
                    for ch in [left, right] {
                        let (mut cb, ca) = rec(comp, block_words, ch, out);
                        blocks.append(&mut cb);
                        acc += ca;
                    }
                }
            }
        }
        blocks.sort_unstable();
        blocks.dedup();
        out.push(FRow {
            size: comp.nodes[node.idx()].size,
            accesses: acc,
            blocks: blocks.len() as u64,
        });
        (blocks, acc)
    }
    let mut out = Vec::new();
    rec(comp, block_words, comp.root, &mut out);
    out
}

/// Result row of the `L(r)` estimator for one steal-candidate task.
#[derive(Debug, Clone, Copy)]
pub struct LRow {
    /// Declared task size `r`.
    pub size: u64,
    /// Global blocks shared with the sibling subtree, counting only blocks
    /// *written* by at least one side (read-shared blocks never ping-pong).
    pub shared_blocks: u64,
}

/// Estimate the block-sharing function `L(r)` (Def 2.3) at sibling level:
/// for every fork, the number of global blocks accessed by both children
/// with at least one side writing. Sibling-level sharing captures the
/// dominant parallel sharing in balanced HBP computations (ancestor-level
/// parallel tasks access supersets partitioned the same way).
pub fn l_estimate(comp: &Computation, block_words: u64) -> Vec<LRow> {
    use std::collections::HashSet;

    // Per node: (blocks read, blocks written) for the subtree.
    fn collect(
        comp: &Computation,
        bw: u64,
        node: NodeId,
        rows: &mut Vec<LRow>,
    ) -> (HashSet<u64>, HashSet<u64>) {
        let mut reads = HashSet::new();
        let mut writes = HashSet::new();
        for it in &comp.nodes[node.idx()].items {
            match *it {
                Item::Seg(s) => {
                    for a in &comp.arena[s.start as usize..s.end as usize] {
                        if let Target::Global(w) = a.target {
                            if a.write {
                                writes.insert(w / bw);
                            } else {
                                reads.insert(w / bw);
                            }
                        }
                    }
                }
                Item::Fork { left, right, .. } => {
                    let (lr, lw) = collect(comp, bw, left, rows);
                    let (rr, rw) = collect(comp, bw, right, rows);
                    // shared = (touched_l ∩ touched_r) with a write on
                    // either side
                    let mut shared = 0u64;
                    let touched_l: HashSet<u64> = lr.union(&lw).copied().collect();
                    for b in rr.union(&rw) {
                        if touched_l.contains(b) && (lw.contains(b) || rw.contains(b)) {
                            shared += 1;
                        }
                    }
                    rows.push(LRow {
                        size: comp.nodes[left.idx()]
                            .size
                            .max(comp.nodes[right.idx()].size),
                        shared_blocks: shared,
                    });
                    reads.extend(lr);
                    reads.extend(rr);
                    writes.extend(lw);
                    writes.extend(rw);
                }
            }
        }
        (reads, writes)
    }
    let mut rows = Vec::new();
    collect(comp, block_words, comp.root, &mut rows);
    rows
}

/// Summary of a computation's structural parameters — one Table-1 row.
#[derive(Debug, Clone, Copy)]
pub struct StructuralSummary {
    /// Work: total recorded accesses.
    pub work: u64,
    /// Critical path in access units.
    pub span: u64,
    /// Fork-tree depth.
    pub fork_depth: u32,
    /// Number of distinct priorities `D'`.
    pub n_priorities: u32,
    /// Number of task nodes.
    pub n_nodes: usize,
    /// Max writes to any global word.
    pub max_global_writes: u32,
    /// Max writes to any local word.
    pub max_local_writes: u32,
}

/// Compute the structural summary of a computation.
pub fn summarize(comp: &Computation) -> StructuralSummary {
    let (g, l) = write_counts(comp);
    StructuralSummary {
        work: comp.work(),
        span: span(comp),
        fork_depth: fork_depth(comp),
        n_priorities: comp.n_priorities,
        n_nodes: comp.n_nodes(),
        max_global_writes: g,
        max_local_writes: l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildConfig, Builder, GArray};

    /// BP tree sum with the paper's in-order up-tree output layout (§3.3):
    /// leaf `i`'s value lives at `out[2i]`, the internal node over `[lo,hi)`
    /// (midpoint `mid`) at `out[2·mid - 1]`. Every slot is written exactly
    /// once (limited access) and each subtree's slots are contiguous
    /// (f(r) = O(1), sibling sharing ≤ 1 boundary block).
    fn bp_sum(n: usize) -> Computation {
        let data: Vec<u64> = vec![1; n];
        Builder::build(BuildConfig::default(), n as u64, |b| {
            let a = b.input(&data);
            let out = b.alloc::<u64>(2 * n - 1);
            // slot of the subtree over [lo, hi)
            fn slot(lo: usize, hi: usize) -> usize {
                if hi - lo == 1 {
                    2 * lo
                } else {
                    2 * (lo + (hi - lo) / 2) - 1
                }
            }
            fn rec(b: &mut Builder, a: GArray<u64>, out: GArray<u64>, lo: usize, hi: usize) {
                if hi - lo == 1 {
                    let v = b.read(a, lo);
                    b.write(out, slot(lo, hi), v);
                    return;
                }
                let mid = lo + (hi - lo) / 2;
                b.fork(
                    (mid - lo) as u64,
                    (hi - mid) as u64,
                    |b| rec(b, a, out, lo, mid),
                    |b| rec(b, a, out, mid, hi),
                );
                let v1 = b.read(out, slot(lo, mid));
                let v2 = b.read(out, slot(mid, hi));
                b.write(out, slot(lo, hi), v1 + v2);
            }
            rec(b, a, out, 0, n);
        })
    }

    #[test]
    fn span_is_logarithmic_for_bp() {
        let c64 = bp_sum(64);
        let c256 = bp_sum(256);
        assert!(span(&c256) < 2 * span(&c64) + 64); // O(log n) growth
        assert_eq!(fork_depth(&c64), 6);
        assert_eq!(fork_depth(&c256), 8);
    }

    #[test]
    fn work_is_linear_for_bp() {
        let c = bp_sum(128);
        assert!(c.work() >= 2 * 128);
        assert!(c.work() <= 16 * 128);
    }

    #[test]
    fn balance_holds_for_power_of_two_bp() {
        let c = bp_sum(128);
        assert_eq!(balance_violations(&c, 0.9, 1.1), 0);
        assert!(priority_size_ratio(&c) <= 1.0 + 1e-9);
    }

    #[test]
    fn limited_access_bp_sum() {
        let c = bp_sum(64);
        let (g, l) = write_counts(&c);
        assert_eq!(g, 1, "each output word written exactly once");
        assert_eq!(l, 0);
    }

    #[test]
    fn f_estimate_scan_is_cache_friendly() {
        // A contiguous scan has f(r) = O(1): blocks ≈ accesses/B + O(1).
        let c = bp_sum(256);
        for row in f_estimate(&c, 32) {
            assert!(
                row.blocks <= row.accesses / 32 + 4,
                "size {} touched {} blocks for {} accesses",
                row.size,
                row.blocks,
                row.accesses
            );
        }
    }

    #[test]
    fn l_estimate_scan_is_o1() {
        // Sibling tasks in a scan share at most the boundary block(s).
        let c = bp_sum(256);
        for row in l_estimate(&c, 32) {
            assert!(
                row.shared_blocks <= 2,
                "size {} shares {} blocks",
                row.size,
                row.shared_blocks
            );
        }
    }

    #[test]
    fn summary_is_consistent() {
        let c = bp_sum(64);
        let s = summarize(&c);
        assert_eq!(s.work, c.work());
        assert_eq!(s.n_nodes, c.n_nodes());
        assert_eq!(s.n_priorities, 6);
    }
}
