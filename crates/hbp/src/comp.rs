//! The recorded computation: a series-parallel DAG of tasks with word-level
//! access traces.

use hbp_machine::Word;

/// Index of a task node in [`Computation::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// What an access refers to: a fixed global address, or a slot in some task
/// node's execution-stack frame (Def 3.1's local variables). Local targets
/// are resolved to physical addresses at schedule time, because where a
/// frame lives depends on which kernel (original or stolen task) executes
/// the node (§3.3, Lemma 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Absolute word address in the global heap.
    Global(Word),
    /// Word `off` of `node`'s stack frame.
    Local {
        /// The node whose frame is referenced (may be an ancestor).
        node: NodeId,
        /// Word offset within that frame.
        off: u32,
    },
}

/// One word-level memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// What is accessed.
    pub target: Target,
    /// `true` for a write.
    pub write: bool,
}

/// A contiguous range of accesses in [`Computation::arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Start index (inclusive).
    pub start: u32,
    /// End index (exclusive).
    pub end: u32,
}

impl Segment {
    /// Number of accesses in the segment.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// One step in a task node's body: straight-line accesses, or a binary fork
/// whose right child is the steal candidate.
#[derive(Debug, Clone, Copy)]
pub enum Item {
    /// Straight-line accesses.
    Seg(Segment),
    /// Fork two child tasks; the parent resumes after both complete.
    Fork {
        /// Child executed in place by the forking core.
        left: NodeId,
        /// Child pushed on the deque (the steal candidate).
        right: NodeId,
        /// Task priority of the two children (filled by
        /// [`crate::priority::assign_priorities`]). Strictly smaller than
        /// the priority of the fork that created this node.
        priority: u32,
    },
}

/// A task node: the unit of stealing and of stack-frame allocation.
#[derive(Debug, Clone, Default)]
pub struct TNode {
    /// Declared task size `|τ|` (the paper's size = words accessed; we use
    /// the algorithm's natural size parameter, e.g. subarray length).
    pub size: u64,
    /// Body: segments and forks, executed in order (series composition).
    pub items: Vec<Item>,
    /// Words of local variables (and local arrays) declared by this node.
    pub frame_words: u32,
    /// Extra pad words prepended to the frame (padded computations, Def 3.3).
    pub pad_words: u32,
}

impl TNode {
    /// Total stack words this node pushes when it starts.
    pub fn stack_words(&self) -> u64 {
        self.frame_words as u64 + self.pad_words as u64
    }
}

/// A complete recorded computation, ready for scheduling.
#[derive(Debug, Clone)]
pub struct Computation {
    /// All task nodes; `nodes[root.idx()]` is the root task.
    pub nodes: Vec<TNode>,
    /// Flat arena of all accesses; nodes reference it via [`Segment`]s.
    pub arena: Vec<Access>,
    /// The root task.
    pub root: NodeId,
    /// Global-heap high-water mark, in words. Execution stacks are placed
    /// above this by the scheduler.
    pub heap_words: u64,
    /// Block size the heap was allocated against.
    pub block_words: u64,
    /// Number of distinct task priorities `D'` (Cor 4.1). 0 until assigned.
    pub n_priorities: u32,
    /// Final heap contents after the (build-time) execution; used to check
    /// outputs against sequential oracles.
    pub heap: Vec<u64>,
}

impl Computation {
    /// Total number of recorded accesses — our measure of work `W`.
    pub fn work(&self) -> u64 {
        self.arena.len() as u64
    }

    /// Number of task nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Read back `count` words of the final heap starting at `base`.
    pub fn heap_words_at(&self, base: Word, count: usize) -> &[u64] {
        &self.heap[base as usize..base as usize + count]
    }

    /// Iterate over all forks: `(parent, item index, left, right, priority)`.
    pub fn forks(&self) -> impl Iterator<Item = (NodeId, usize, NodeId, NodeId, u32)> + '_ {
        self.nodes.iter().enumerate().flat_map(|(ni, n)| {
            n.items.iter().enumerate().filter_map(move |(ii, it)| {
                if let Item::Fork {
                    left,
                    right,
                    priority,
                } = *it
                {
                    Some((NodeId(ni as u32), ii, left, right, priority))
                } else {
                    None
                }
            })
        })
    }
}
