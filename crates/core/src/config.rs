//! [`Config`]: the one typed construction path for executors, pools and
//! sessions — and the **only** place the `HBP_*` environment variables
//! are parsed.
//!
//! Every knob the runtime exposes is a field here, settable three ways:
//!
//! 1. **builder** — `Config::new().workers(8).policy(Policy::Pws)…`;
//! 2. **environment** — [`Config::from_env`] /
//!    [`Config::try_from_env`], which read the full `HBP_*` family in
//!    one pass and report *every* invalid variable in one error (no
//!    first-wins panics: a CI job with two typos sees both);
//! 3. **struct literal** over [`Config::default`].
//!
//! Downstream layers never read the environment themselves: the pure
//! `parse` functions stay on their owning types (`Policy::parse`,
//! `DequeKind::parse`, …), but the `std::env::var` calls live in this
//! module alone — a grep-enforced property (`HBP_*` reads outside this
//! file fail CI), so adding a knob forces the loud-error aggregation and
//! the README table to stay in sync.
//!
//! | Variable | Field | Default |
//! |---|---|---|
//! | `HBP_BACKEND` | [`Config::backend`] | `sim` |
//! | `HBP_POLICY` | [`Config::policy`] | `pws` |
//! | `HBP_WORKERS` | [`Config::workers`] | hardware threads (min 4) |
//! | `HBP_DEQUE` | [`Config::deque`] | `chase-lev` |
//! | `HBP_STEAL_BATCH` | [`Config::steal_batch`] | `policy` |
//! | `HBP_DOMAINS` | [`Config::domains`] | `auto` |
//! | `HBP_CROSS_DEPTH` | [`Config::cross_depth`] | `3` |
//! | `HBP_COUNTERS` | [`Config::counters`] | `auto` |
//! | `HBP_AUTOSCALE` | [`Config::autoscale`] | off (fixed pool) |
//! | `HBP_TRACE` | [`Config::trace`] | off |
//! | `HBP_TRACE_BUF` | [`Config::trace_buf`] | 2^20 events/worker |
//! | `HBP_TRACE_STRICT` | [`Config::trace_strict`] | off |
//! | `HBP_METRICS` | [`Config::metrics`] | off |
//! | `HBP_METRICS_INTERVAL` | [`Config::metrics_interval`] | off (no sampler) |

use std::sync::Arc;
use std::time::Duration;

use hbp_sched::native::{DequeKind, NativeConfig, StealBatch};
use hbp_sched::topology::parse_cross_depth;
use hbp_sched::{CounterMode, DomainSpec, Policy};
use hbp_trace::{ClockDomain, TraceSink};

use crate::executor::{parse_workers, Backend, Executor, NativeExecutor, SimExecutor};

/// Parse an `HBP_AUTOSCALE` value: `None` (unset), the empty string or
/// `off` → no autoscaling; `min..max` (both positive, `min <= max`) →
/// the elastic band. Anything else is an error naming the variable, the
/// offending value, and the accepted forms.
pub fn parse_autoscale(value: Option<&str>) -> Result<Option<(usize, usize)>, String> {
    let err = |other: &str| {
        Err(format!(
            "HBP_AUTOSCALE must be `off` or `min..max` with 1 <= min <= max, got {other:?}"
        ))
    };
    match value {
        None | Some("") | Some("off") | Some("0") => Ok(None),
        Some(other) => {
            let Some((lo, hi)) = other.split_once("..") else {
                return err(other);
            };
            match (lo.parse::<usize>(), hi.parse::<usize>()) {
                (Ok(min), Ok(max)) if min >= 1 && min <= max => Ok(Some((min, max))),
                _ => err(other),
            }
        }
    }
}

/// Parse a boolean-ish `HBP_*` switch: unset/empty/`0`/`off`/`false` →
/// false; `1`/`on`/`true`/`yes` → true; anything else errors, naming
/// `var`.
fn parse_switch(var: &str, value: Option<&str>) -> Result<bool, String> {
    match value {
        None | Some("") | Some("0") | Some("off") | Some("false") => Ok(false),
        Some("1") | Some("on") | Some("true") | Some("yes") => Ok(true),
        Some(other) => Err(format!(
            "{var} must be `1`/`on`/`true` or `0`/`off`/`false`, got {other:?}"
        )),
    }
}

/// Parse an `HBP_TRACE_BUF` value: unset/empty → [`hbp_trace::DEFAULT_CAPACITY`];
/// a positive integer → that many events per worker ring.
fn parse_trace_buf(value: Option<&str>) -> Result<usize, String> {
    match value {
        None | Some("") => Ok(hbp_trace::DEFAULT_CAPACITY),
        Some(s) => s
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("HBP_TRACE_BUF must be a positive integer, got {s:?}")),
    }
}

/// Parse an `HBP_METRICS_INTERVAL` value (milliseconds): unset, the
/// empty string or `off` → no background sampler; a positive integer →
/// a sampler at that period. The sampler paces on wall-clock time (its
/// sample count is nondeterministic), which is why it is opt-in.
fn parse_metrics_interval(value: Option<&str>) -> Result<Option<Duration>, String> {
    match value {
        None | Some("") | Some("off") => Ok(None),
        Some(s) => s
            .parse::<u64>()
            .ok()
            .filter(|&ms| ms >= 1)
            .map(|ms| Some(Duration::from_millis(ms)))
            .ok_or_else(|| {
                format!("HBP_METRICS_INTERVAL must be a positive integer (milliseconds), got {s:?}")
            }),
    }
}

/// The full runtime configuration (see the module docs for the env
/// table). Construct with [`Config::new`] and the builder methods, or
/// [`Config::from_env`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Execution backend (`HBP_BACKEND`).
    pub backend: Backend,
    /// Stealing discipline, shared by both backends (`HBP_POLICY`).
    pub policy: Policy,
    /// Native worker threads / trace-sink width (`HBP_WORKERS`).
    pub workers: usize,
    /// Per-worker deque implementation (`HBP_DEQUE`).
    pub deque: DequeKind,
    /// Steal-batching mode (`HBP_STEAL_BATCH`).
    pub steal_batch: StealBatch,
    /// Cache-domain sharding (`HBP_DOMAINS`).
    pub domains: DomainSpec,
    /// Fork-depth floor for cross-domain steals (`HBP_CROSS_DEPTH`).
    pub cross_depth: u32,
    /// Task-boundary counter sampling for traced jobs (`HBP_COUNTERS`).
    pub counters: CounterMode,
    /// Elastic worker band (`HBP_AUTOSCALE=min..max`; `None` = fixed
    /// pool). See `NativeConfig::autoscale` for the semantics.
    pub autoscale: Option<(usize, usize)>,
    /// Structured event tracing on/off (`HBP_TRACE`).
    pub trace: bool,
    /// Per-worker trace ring capacity, events (`HBP_TRACE_BUF`).
    pub trace_buf: usize,
    /// Fail loudly on truncated traces instead of degrading
    /// (`HBP_TRACE_STRICT`; consulted by the trace-report tooling).
    pub trace_strict: bool,
    /// Metrics registry publishing on/off (`HBP_METRICS`).
    pub metrics: bool,
    /// Background sampler period (`HBP_METRICS_INTERVAL`, milliseconds;
    /// `None` = no sampler — it paces on wall-clock time, so runs that
    /// need deterministic output leave it off).
    pub metrics_interval: Option<Duration>,
}

impl Default for Config {
    fn default() -> Self {
        let native = NativeConfig::default();
        Self {
            backend: Backend::Sim,
            policy: Policy::Pws,
            workers: native.workers,
            deque: native.deque,
            steal_batch: native.batch,
            domains: native.domains,
            cross_depth: native.cross_depth,
            counters: native.counters,
            autoscale: None,
            trace: false,
            trace_buf: hbp_trace::DEFAULT_CAPACITY,
            trace_strict: false,
            metrics: false,
            metrics_interval: None,
        }
    }
}

impl Config {
    /// The defaults: sim backend, PWS, one worker per hardware thread
    /// (min 4), Chase-Lev deques, no tracing, no metrics, no autoscale.
    pub fn new() -> Self {
        Self::default()
    }

    // --- builder methods ---------------------------------------------------

    /// Select the execution backend.
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = b;
        self
    }

    /// Select the stealing discipline.
    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }

    /// Set the native worker count (≥ 1).
    pub fn workers(mut self, w: usize) -> Self {
        self.workers = w;
        self
    }

    /// Select the per-worker deque implementation.
    pub fn deque(mut self, d: DequeKind) -> Self {
        self.deque = d;
        self
    }

    /// Set the steal-batching mode.
    pub fn steal_batch(mut self, b: StealBatch) -> Self {
        self.steal_batch = b;
        self
    }

    /// Set the cache-domain sharding.
    pub fn domains(mut self, d: DomainSpec) -> Self {
        self.domains = d;
        self
    }

    /// Set the cross-domain steal depth floor.
    pub fn cross_depth(mut self, d: u32) -> Self {
        self.cross_depth = d;
        self
    }

    /// Set the counter-sampling mode.
    pub fn counters(mut self, c: CounterMode) -> Self {
        self.counters = c;
        self
    }

    /// Enable elastic autoscaling inside `[min, max]` workers.
    pub fn autoscale(mut self, min: usize, max: usize) -> Self {
        self.autoscale = Some((min, max));
        self
    }

    /// Turn structured event tracing on or off.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Set the per-worker trace ring capacity (events).
    pub fn trace_buf(mut self, events: usize) -> Self {
        self.trace_buf = events;
        self
    }

    /// Fail loudly on truncated traces.
    pub fn trace_strict(mut self, on: bool) -> Self {
        self.trace_strict = on;
        self
    }

    /// Turn metrics publishing on or off (effective via
    /// [`Config::apply`]).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Run a background metrics sampler at this period
    /// ([`hbp_metrics::DEFAULT_INTERVAL`] is the conventional choice).
    pub fn metrics_interval(mut self, every: Duration) -> Self {
        self.metrics_interval = Some(every);
        self
    }

    // --- environment -------------------------------------------------------

    /// Read the whole `HBP_*` family from the environment. Unset
    /// variables keep their defaults; **every** invalid variable is
    /// reported in the single returned error (one line each), so a job
    /// with several typos fixes them all in one round trip.
    pub fn try_from_env() -> Result<Self, String> {
        Self::from_lookup(|var| std::env::var(var).ok())
    }

    /// [`Config::try_from_env`] against an explicit variable lookup
    /// (tests feed a map; the env wrapper feeds `std::env::var`).
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut errors: Vec<String> = Vec::new();
        macro_rules! set {
            ($field:expr, $parsed:expr) => {
                match $parsed {
                    Ok(v) => $field = v,
                    Err(e) => errors.push(e),
                }
            };
        }
        set!(cfg.backend, Backend::parse(get("HBP_BACKEND").as_deref()));
        set!(cfg.policy, Policy::parse(get("HBP_POLICY").as_deref()));
        set!(cfg.workers, parse_workers(get("HBP_WORKERS").as_deref()));
        set!(cfg.deque, DequeKind::parse(get("HBP_DEQUE").as_deref()));
        set!(
            cfg.steal_batch,
            StealBatch::parse(get("HBP_STEAL_BATCH").as_deref())
        );
        set!(
            cfg.domains,
            DomainSpec::parse(get("HBP_DOMAINS").as_deref())
        );
        set!(
            cfg.cross_depth,
            parse_cross_depth(get("HBP_CROSS_DEPTH").as_deref())
        );
        set!(
            cfg.counters,
            CounterMode::parse(get("HBP_COUNTERS").as_deref())
        );
        set!(
            cfg.autoscale,
            parse_autoscale(get("HBP_AUTOSCALE").as_deref())
        );
        set!(
            cfg.trace,
            parse_switch("HBP_TRACE", get("HBP_TRACE").as_deref())
        );
        set!(
            cfg.trace_buf,
            parse_trace_buf(get("HBP_TRACE_BUF").as_deref())
        );
        set!(
            cfg.trace_strict,
            parse_switch("HBP_TRACE_STRICT", get("HBP_TRACE_STRICT").as_deref())
        );
        set!(
            cfg.metrics,
            parse_switch("HBP_METRICS", get("HBP_METRICS").as_deref())
        );
        set!(
            cfg.metrics_interval,
            parse_metrics_interval(get("HBP_METRICS_INTERVAL").as_deref())
        );
        if errors.is_empty() {
            Ok(cfg)
        } else {
            Err(format!(
                "invalid HBP_* environment ({} problem{}):\n  - {}",
                errors.len(),
                if errors.len() == 1 { "" } else { "s" },
                errors.join("\n  - ")
            ))
        }
    }

    /// [`Config::try_from_env`], panicking with the aggregated error
    /// (typos must not silently fall back in CI).
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    // --- consumers ---------------------------------------------------------

    /// Push the configuration's process-global effects: metrics registry
    /// enablement (the registry itself never reads the environment).
    /// Idempotent; returns `self` for chaining.
    pub fn apply(self) -> Self {
        hbp_metrics::global().set_enabled(self.metrics);
        self
    }

    /// The native-pool slice of this configuration, with `seed` feeding
    /// the victim-selection RNG streams.
    pub fn native_config(&self, seed: u64) -> NativeConfig {
        NativeConfig {
            workers: self.workers,
            seed,
            policy: self.policy,
            deque: self.deque,
            batch: self.steal_batch,
            counters: self.counters,
            domains: self.domains,
            cross_depth: self.cross_depth,
            autoscale: self.autoscale,
        }
    }

    /// The configured [`Executor`]: [`SimExecutor`] on `machine` for
    /// [`Backend::Sim`], a [`NativeExecutor`] for [`Backend::Native`]
    /// (an RWS policy seed additionally feeds the workers' RNG streams;
    /// `machine` is a simulator-only knob).
    pub fn executor(&self, machine: hbp_machine::MachineConfig) -> Box<dyn Executor> {
        match self.backend {
            Backend::Sim => Box::new(SimExecutor {
                machine,
                policy: self.policy,
            }),
            Backend::Native => {
                let seed = match self.policy {
                    Policy::Rws { seed } => seed,
                    Policy::Pws | Policy::Bsp { .. } => 0,
                };
                Box::new(NativeExecutor::from_config(self, seed))
            }
        }
    }

    /// A trace sink sized for `workers` at the configured ring capacity
    /// — `None` when tracing is off, so call sites read
    /// `cfg.sink(…)`/`is_some` instead of consulting the env.
    pub fn sink(&self, workers: usize, clock: ClockDomain) -> Option<Arc<TraceSink>> {
        self.trace
            .then(|| Arc::new(TraceSink::with_capacity(workers, clock, self.trace_buf)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_defaults_hold() {
        let cfg = Config::new()
            .backend(Backend::Native)
            .policy(Policy::Rws { seed: 7 })
            .workers(3)
            .deque(DequeKind::Mutex)
            .autoscale(1, 4)
            .metrics(true);
        assert_eq!(cfg.backend, Backend::Native);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.autoscale, Some((1, 4)));
        assert!(cfg.metrics);
        // Untouched fields keep their defaults.
        assert_eq!(cfg.cross_depth, Config::default().cross_depth);
        assert!(!cfg.trace);
        let native = cfg.native_config(5);
        assert_eq!(native.workers, 3);
        assert_eq!(native.seed, 5);
        assert_eq!(native.autoscale, Some((1, 4)));
    }

    #[test]
    fn autoscale_parse_accepts_bands_and_rejects_garbage() {
        assert_eq!(parse_autoscale(None), Ok(None));
        assert_eq!(parse_autoscale(Some("")), Ok(None));
        assert_eq!(parse_autoscale(Some("off")), Ok(None));
        assert_eq!(parse_autoscale(Some("1..4")), Ok(Some((1, 4))));
        assert_eq!(parse_autoscale(Some("2..2")), Ok(Some((2, 2))));
        for bad in ["4..1", "0..3", "1-4", "many", "..", "3.."] {
            let err = parse_autoscale(Some(bad)).expect_err(bad);
            assert!(err.contains("HBP_AUTOSCALE"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn from_lookup_reports_every_invalid_var_at_once() {
        let vars = [
            ("HBP_BACKEND", "quantum"),
            ("HBP_POLICY", "pws"),
            ("HBP_WORKERS", "zero"),
            ("HBP_AUTOSCALE", "4..1"),
            ("HBP_METRICS", "1"),
        ];
        let err = Config::from_lookup(|v| {
            vars.iter()
                .find(|(k, _)| *k == v)
                .map(|(_, val)| val.to_string())
        })
        .expect_err("three invalid vars");
        for var in ["HBP_BACKEND", "HBP_WORKERS", "HBP_AUTOSCALE"] {
            assert!(err.contains(var), "error must name {var}: {err}");
        }
        for val in ["quantum", "zero", "4..1"] {
            assert!(err.contains(val), "error must echo {val}: {err}");
        }
        assert!(err.contains("3 problems"), "{err}");
        // Valid vars still parse when the invalid ones are fixed.
        let ok = Config::from_lookup(|v| match v {
            "HBP_POLICY" => Some("rws:9".into()),
            "HBP_AUTOSCALE" => Some("1..4".into()),
            "HBP_METRICS" => Some("1".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(ok.policy, Policy::Rws { seed: 9 });
        assert_eq!(ok.autoscale, Some((1, 4)));
        assert!(ok.metrics);
    }

    #[test]
    fn switch_and_size_parsers_reject_garbage() {
        assert_eq!(parse_switch("HBP_TRACE", Some("on")), Ok(true));
        assert_eq!(parse_switch("HBP_TRACE", None), Ok(false));
        assert!(parse_switch("HBP_TRACE", Some("maybe"))
            .unwrap_err()
            .contains("HBP_TRACE"));
        assert_eq!(parse_trace_buf(None), Ok(hbp_trace::DEFAULT_CAPACITY));
        assert_eq!(parse_trace_buf(Some("64")), Ok(64));
        assert!(parse_trace_buf(Some("0")).is_err());
        assert_eq!(
            parse_metrics_interval(Some("5")),
            Ok(Some(Duration::from_millis(5)))
        );
        assert_eq!(parse_metrics_interval(None), Ok(None));
        assert_eq!(parse_metrics_interval(Some("off")), Ok(None));
        assert!(parse_metrics_interval(Some("fast")).is_err());
    }
}
