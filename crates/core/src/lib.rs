//! # hbp-core — resource-oblivious multicore algorithms with false sharing
//!
//! Facade crate for the reproduction of Cole & Ramachandran, *"Efficient
//! Resource Oblivious Algorithms for Multicores with False Sharing"*
//! (IPDPS 2012; full version arXiv:1103.4071).
//!
//! The library lets you:
//!
//! 1. **record** an HBP computation (fork-join algorithm with task sizes,
//!    execution-stack locals, limited-access writes) via
//!    [`model::Builder`], or use one of the paper's algorithms from
//!    [`algos`];
//! 2. **schedule** it with the deterministic PWS scheduler (or the RWS
//!    baseline) on a simulated multicore — `p` cores, private LRU caches of
//!    `M` words, `B`-word blocks, write-invalidate coherence — via
//!    [`sched::run`];
//! 3. **measure** exactly what the paper's lemmas bound: cache misses,
//!    **block misses (false sharing)**, steals per priority, usurpations,
//!    idle time, and the excess of each over the sequential cache
//!    complexity `Q(n, M, B)`.
//!
//! ```
//! use hbp_core::prelude::*;
//!
//! // Record the paper's M-Sum over 1024 elements.
//! let data: Vec<u64> = (0..1024).collect();
//! let (comp, _out) = hbp_core::algos::scan::m_sum(&data, BuildConfig::default());
//!
//! // Sequential baseline Q(n, M, B), then PWS on 8 cores.
//! let machine = MachineConfig::new(8, 1 << 12, 32);
//! let seq = run_sequential(&comp, machine);
//! let par = run(&comp, machine, Policy::Pws);
//!
//! assert_eq!(par.work, comp.work());
//! assert!(par.max_steals_per_priority() <= 7); // Obs 4.3: ≤ p − 1
//! let excess = par.excess_vs(&seq);
//! assert!(excess.q_sequential > 0);
//! ```

pub mod config;
pub mod executor;
pub mod registry;
pub mod session;

/// The paper's algorithm suite (paper §3.2) + rayon counterparts.
pub use hbp_algos as algos;
/// The simulated machine: caches, blocks, coherence (paper §1–§2).
pub use hbp_machine as machine;
/// Lock-free runtime metrics: per-worker counters, gauges and
/// histograms with Prometheus-text / JSON exposition (`HBP_METRICS=1`).
pub use hbp_metrics as metrics;
/// The HBP computation model (paper §2–§3).
pub use hbp_model as model;
/// PWS / RWS scheduling on the simulated machine (paper §4).
pub use hbp_sched as sched;
/// Structured event tracing for both backends (Chrome export, critical
/// path, utilization — see the `hbp-trace` crate docs).
pub use hbp_trace as trace;

pub use config::{parse_autoscale, Config};
pub use executor::{
    execute_with_env_trace, executor_from_env, has_native_kernel, native_kernel, parse_workers,
    Backend, ExecJob, Executor, NativeExecutor, SimExecutor, TracedRun,
};
pub use hbp_machine::{MachineConfig, MemSystem};
pub use hbp_model::{BuildConfig, Builder, Computation};
pub use hbp_sched::native::SubmitError;
pub use hbp_sched::{run, run_sequential, run_traced, ExecReport, Policy, SeqReport};
pub use registry::{find, lookup, registry, try_lookup, AlgoSpec, SizeKind};
pub use session::{ExecHandle, ExecSession, JobError};

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use crate::config::Config;
    pub use crate::executor::{
        execute_with_env_trace, executor_from_env, parse_workers, Backend, ExecJob, Executor,
        NativeExecutor, SimExecutor, TracedRun,
    };
    pub use crate::registry::{find, lookup, registry, try_lookup, AlgoSpec, SizeKind};
    pub use crate::session::{ExecHandle, ExecSession, JobError};
    pub use hbp_machine::{MachineConfig, MemSystem};
    pub use hbp_model::analysis;
    pub use hbp_model::{BuildConfig, Builder, Computation, Cx, GArray};
    pub use hbp_sched::native::SubmitError;
    pub use hbp_sched::{run, run_sequential, run_traced, ExecReport, Policy, SeqReport};
    pub use hbp_trace::{ClockDomain, Trace, TraceSink};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn doc_example_flow_works() {
        let data: Vec<u64> = (0..256).collect();
        let (comp, _) = crate::algos::scan::m_sum(&data, BuildConfig::default());
        let machine = MachineConfig::new(4, 1 << 10, 32);
        let seq = run_sequential(&comp, machine);
        let par = run(&comp, machine, Policy::Pws);
        assert_eq!(par.work, comp.work());
        assert!(par.max_steals_per_priority() <= 3);
        assert!(par.excess_vs(&seq).q_sequential > 0);
    }
}
