//! Execution backends: one job description, two ways to run it.
//!
//! An [`ExecJob`] names an algorithm from the [`registry`](crate::registry)
//! plus a problem size and seed. An [`Executor`] turns it into an
//! [`ExecReport`]:
//!
//! * [`SimExecutor`] builds the recorded computation and replays it on the
//!   simulated machine under a [`Policy`] — deterministic, unit-cost
//!   virtual time, full cache/steal accounting;
//! * [`NativeExecutor`] runs the corresponding `hbp_algos::par_*` kernel
//!   on real `std::thread` workers via
//!   [`hbp_sched::native::NativePool`] — wall-clock nanoseconds,
//!   per-worker busy/steal counters, no cache simulation.
//!
//! The backend is usually chosen by the `HBP_BACKEND` environment
//! variable (`sim`, the default, or `native`) through
//! [`crate::Config::from_env`] — [`executor_from_env`] is the one-call
//! convenience the fig binaries and examples are wired through.
//!
//! ## Tracing
//!
//! Every executor can record a structured event trace (`hbp-trace`):
//! [`Executor::execute_traced`] takes a [`TraceSink`] sized via
//! [`Executor::workers`] in the backend's [`Executor::clock_domain`],
//! and [`execute_with_env_trace`] packages the common flow — when
//! `HBP_TRACE=1` is set the returned [`TracedRun`] carries the collected
//! [`Trace`] next to the report; otherwise it runs untraced at zero
//! cost.

use std::sync::Arc;

use hbp_algos::{gen, par};
use hbp_machine::MachineConfig;
use hbp_model::{BuildConfig, Cx};
use hbp_sched::native::{DequeKind, NativeConfig, NativePool, StealBatch};
use hbp_sched::{run, run_traced, ExecReport, Policy};
use hbp_sched::{CounterMode, DomainSpec};
use hbp_trace::{ClockDomain, Trace, TraceSink};

use crate::registry::{bi_matrix, find, sort_input};

/// Which execution backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The discrete-event simulator (default).
    Sim,
    /// Real threads with randomized work stealing.
    Native,
}

impl Backend {
    /// Parse an `HBP_BACKEND` value: `None` (unset) or `sim` →
    /// [`Backend::Sim`], `native` → [`Backend::Native`]; anything else
    /// is an error naming the variable, the offending value, and the
    /// accepted ones.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("") | Some("sim") => Ok(Backend::Sim),
            Some("native") => Ok(Backend::Native),
            Some(other) => Err(format!(
                "HBP_BACKEND must be `sim` or `native`, got {other:?}"
            )),
        }
    }
}

/// Parse an `HBP_WORKERS` value: a positive integer, or `None` (unset)
/// for the [`NativeConfig`] default (one per hardware thread, min 4).
pub fn parse_workers(value: Option<&str>) -> Result<usize, String> {
    match value {
        None | Some("") => Ok(NativeConfig::default().workers),
        Some(s) => s
            .parse()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("HBP_WORKERS must be a positive integer, got {s:?}")),
    }
}

/// One schedulable unit of work: a registry algorithm at a problem size.
#[derive(Debug, Clone)]
pub struct ExecJob {
    /// Registry name (prefix match, as in [`find`]).
    pub algo: String,
    /// Problem size, with the registry entry's size semantics
    /// (element count or matrix side).
    pub n: usize,
    /// Input seed (and, for randomized backends, the scheduling seed).
    pub seed: u64,
}

impl ExecJob {
    /// Convenience constructor.
    pub fn new(algo: &str, n: usize, seed: u64) -> Self {
        Self {
            algo: algo.to_string(),
            n,
            seed,
        }
    }
}

/// A backend that can execute [`ExecJob`]s into [`ExecReport`]s.
pub trait Executor {
    /// Short backend name for table headers (`"sim"` / `"native"`).
    fn name(&self) -> &'static str;

    /// Workers a [`TraceSink`] for this backend must be sized for
    /// (simulated cores / pool threads).
    fn workers(&self) -> usize;

    /// The clock domain this backend's traces are stamped in.
    fn clock_domain(&self) -> ClockDomain;

    /// Execute `job`, or `None` when this backend has no implementation
    /// for the algorithm (e.g. layout conversions have no native kernel).
    fn execute(&self, job: &ExecJob) -> Option<ExecReport>;

    /// Like [`Executor::execute`], recording structured events into
    /// `trace` (sized for [`Executor::workers`] in
    /// [`Executor::clock_domain`]). Tracing is observational: the report
    /// is the same as an untraced run's (bit-identical on the sim
    /// backend).
    fn execute_traced(&self, job: &ExecJob, trace: &Arc<TraceSink>) -> Option<ExecReport>;

    /// Open a submission session: on the native backend this spawns one
    /// persistent worker pool that serves every
    /// [`ExecSession::submit`](crate::session::ExecSession::submit)
    /// until the session drops; on the sim backend submissions execute
    /// deterministically at submit time. [`Executor::execute`] is the
    /// one-shot convenience over this.
    fn open(&self) -> crate::session::ExecSession;
}

/// The simulator backend: records the computation, replays it under a
/// scheduling [`Policy`] on a simulated [`MachineConfig`].
#[derive(Debug, Clone, Copy)]
pub struct SimExecutor {
    /// Simulated machine geometry.
    pub machine: MachineConfig,
    /// Scheduling discipline.
    pub policy: Policy,
}

impl SimExecutor {
    fn build(&self, job: &ExecJob) -> Option<hbp_model::Computation> {
        let spec = find(&job.algo)?;
        Some((spec.build)(
            job.n,
            BuildConfig::with_block(self.machine.block_words),
            job.seed,
        ))
    }
}

/// Fold one finished sim run into the global metrics registry.
///
/// The simulator's event loop has no live per-worker publish points (it
/// is single-threaded and deterministic — instrumenting the loop would
/// buy nothing), so the executor folds the *report* in after the fact:
/// task/steal tallies land on worker shard 0, job latency is the
/// virtual-time makespan. Every quantity derives from the deterministic
/// report, so under a fixed seed two runs publish identical snapshots —
/// the property the registry-determinism test and the serve scenario
/// byte-comparison rely on.
fn publish_sim_metrics(nodes: u64, r: &ExecReport) {
    let m = hbp_metrics::global();
    if !m.on() {
        return;
    }
    m.jobs_submitted.inc();
    m.jobs_completed.inc();
    m.job_latency_ns.observe(r.makespan);
    let s0 = m.shard(0);
    s0.tasks_executed.add(nodes);
    s0.steals_committed.add(r.steals);
    // The simulated machine is one cache domain: every steal is local.
    s0.steals_local.add(r.steals);
    s0.steals_failed
        .add(r.steal_attempts.saturating_sub(r.steals));
    // Sim steals move exactly one task per claiming sequence.
    s0.steal_batch.observe_n(1, r.steals);
}

impl Executor for SimExecutor {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn workers(&self) -> usize {
        self.machine.p
    }

    fn clock_domain(&self) -> ClockDomain {
        ClockDomain::Virtual
    }

    fn execute(&self, job: &ExecJob) -> Option<ExecReport> {
        let comp = self.build(job)?;
        let r = run(&comp, self.machine, self.policy);
        publish_sim_metrics(comp.n_nodes() as u64, &r);
        Some(r)
    }

    fn execute_traced(&self, job: &ExecJob, trace: &Arc<TraceSink>) -> Option<ExecReport> {
        let comp = self.build(job)?;
        let r = run_traced(&comp, self.machine, self.policy, trace);
        publish_sim_metrics(comp.n_nodes() as u64, &r);
        Some(r)
    }

    fn open(&self) -> crate::session::ExecSession {
        crate::session::ExecSession::sim(*self)
    }
}

/// The real-threads backend: runs the algorithm's `par_*` kernel on a
/// native work-stealing pool (input generation is *outside* the timed
/// region).
#[derive(Debug, Clone, Copy)]
pub struct NativeExecutor {
    /// Number of worker threads.
    pub workers: usize,
    /// Victim-selection RNG seed (input seeds come from the job).
    pub seed: u64,
    /// Stealing discipline — the pool runs its native facet (victim
    /// order, §5.3 admission, backoff). `HBP_POLICY` selects it via
    /// [`crate::Config`].
    pub policy: Policy,
    /// Per-worker deque implementation (`HBP_DEQUE`: lock-free
    /// Chase-Lev by default, the legacy mutex ring for A/B runs).
    pub deque: DequeKind,
    /// Idle-loop batch stealing (`HBP_STEAL_BATCH`: policy default cap
    /// unless disabled with `0`/`off` or overridden with an explicit
    /// cap ≥ 2).
    pub batch: StealBatch,
    /// Task-boundary counter sampling for traced jobs (`HBP_COUNTERS`:
    /// real perf fds, the deterministic stub, or off — see
    /// [`hbp_sched::perf`]).
    pub counters: CounterMode,
    /// Cache-domain sharding for two-level stealing (`HBP_DOMAINS`:
    /// `auto` detects the LLC topology from sysfs, `<k>` simulates `k`
    /// balanced domains, `tag:<k>` labels locality without changing
    /// victim order).
    pub domains: DomainSpec,
    /// Fork-depth floor for cross-domain steal admission
    /// (`HBP_CROSS_DEPTH`; only consulted when the pool resolves to
    /// more than one domain).
    pub cross_depth: u32,
    /// Elastic worker band (`HBP_AUTOSCALE=min..max`; `None` = fixed
    /// pool) — see `NativeConfig::autoscale`.
    pub autoscale: Option<(usize, usize)>,
}

impl NativeExecutor {
    /// A pool of `workers` threads with randomized stealing on
    /// Chase-Lev deques — the pre-policy-plumbing configuration.
    pub fn new(workers: usize, seed: u64) -> Self {
        Self {
            workers,
            seed,
            policy: Policy::Rws { seed: 0 },
            deque: DequeKind::ChaseLev,
            batch: StealBatch::Policy,
            counters: CounterMode::Auto,
            domains: DomainSpec::Auto,
            cross_depth: hbp_sched::topology::DEFAULT_CROSS_DEPTH,
            autoscale: None,
        }
    }

    /// The native slice of a [`crate::Config`], with `seed` feeding the
    /// victim-selection RNG streams — the replacement for the removed
    /// per-variable env constructors (env parsing now lives in
    /// [`crate::Config::from_env`] alone).
    pub fn from_config(cfg: &crate::Config, seed: u64) -> Self {
        Self {
            workers: cfg.workers,
            seed,
            policy: cfg.policy,
            deque: cfg.deque,
            batch: cfg.steal_batch,
            counters: cfg.counters,
            domains: cfg.domains,
            cross_depth: cfg.cross_depth,
            autoscale: cfg.autoscale,
        }
    }

    /// Run `job`'s kernel on a one-shot pool, tracing into `trace` if
    /// given (the session path shares the same kernel table but keeps
    /// one [`hbp_sched::native::NativePool`] across jobs).
    fn run_kernel(&self, job: &ExecJob, trace: Option<Arc<TraceSink>>) -> Option<ExecReport> {
        let cfg = NativeConfig {
            workers: self.workers,
            seed: self.seed ^ job.seed,
            policy: self.policy,
            deque: self.deque,
            batch: self.batch,
            counters: self.counters,
            domains: self.domains,
            cross_depth: self.cross_depth,
            autoscale: self.autoscale,
        };
        let spec = find(&job.algo)?;
        let kernel = native_kernel(spec.name, job.n, job.seed)?;
        Some(NativePool::run_traced(cfg, trace, kernel).1)
    }
}

/// The native kernel table, keyed by the registry's *canonical* names:
/// build the job's input (outside the timed region — buffers are moved
/// into the returned closure) and wrap the matching `hbp_algos::par_*`
/// kernel as a submittable root closure. `None` for rows with no native
/// kernel (e.g. layout conversions).
///
/// Shared by the one-shot [`NativeExecutor::execute`] path, the
/// persistent-pool [`crate::session::ExecSession`] path, and the
/// `hbp-serve` job server (which batches several small kernels into one
/// launch), so they can never drift apart on which algorithms the
/// native backend serves.
pub fn native_kernel(
    name: &str,
    n: usize,
    seed: u64,
) -> Option<Box<dyn FnOnce() + Send + 'static>> {
    Some(match name {
        "Scans (M-Sum)" => {
            let a = gen::random_u64s(n, 1 << 30, seed);
            Box::new(move || {
                par::par_sum(&a);
            })
        }
        "Scans (PS)" => {
            let a = gen::random_u64s(n, 1 << 30, seed);
            Box::new(move || {
                par::par_prefix(&a);
            })
        }
        "MT" => {
            let mut m = bi_matrix(n, seed);
            Box::new(move || {
                par::par_transpose_bi(&mut m, n);
            })
        }
        "Strassen" => {
            let a = bi_matrix(n, seed);
            let b = bi_matrix(n, seed + 1);
            Box::new(move || {
                par::par_strassen_bi(&a, &b, n);
            })
        }
        "FFT" => {
            let mut x: Vec<Cx> = gen::random_u64s(2 * n, 1 << 20, seed)
                .chunks(2)
                .map(|w| Cx::new(w[0] as f64 / 1e6, w[1] as f64 / 1e6))
                .collect();
            Box::new(move || {
                par::par_fft(&mut x);
            })
        }
        "LR" => {
            let succ = gen::random_list(n, seed);
            Box::new(move || {
                par::par_list_rank(&succ);
            })
        }
        "Sort (SPMS)" => {
            let mut data = sort_input(n, seed);
            Box::new(move || {
                par::par_spms(&mut data);
            })
        }
        "Sort (merge std-in)" => {
            let mut data = sort_input(n, seed);
            Box::new(move || {
                par::par_mergesort(&mut data);
            })
        }
        _ => return None,
    })
}

/// Whether the native backend has a kernel for registry row `name`
/// (canonical name, as [`native_kernel`] expects). Lets callers — e.g.
/// `hbp-serve` scenario validation — fail loudly *before* serving
/// traffic instead of resolving to `None` per request.
pub fn has_native_kernel(name: &str) -> bool {
    // n = 2 builds a trivial input; the closure is dropped unrun.
    native_kernel(name, 2, 0).is_some()
}

impl Executor for NativeExecutor {
    fn name(&self) -> &'static str {
        "native"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn clock_domain(&self) -> ClockDomain {
        ClockDomain::WallNs
    }

    fn execute(&self, job: &ExecJob) -> Option<ExecReport> {
        self.run_kernel(job, None)
    }

    fn execute_traced(&self, job: &ExecJob, trace: &Arc<TraceSink>) -> Option<ExecReport> {
        self.run_kernel(job, Some(Arc::clone(trace)))
    }

    fn open(&self) -> crate::session::ExecSession {
        crate::session::ExecSession::native(self)
    }
}

/// An execution report plus (when tracing was on) its collected trace.
#[derive(Debug)]
pub struct TracedRun {
    /// The backend's report, exactly as an untraced run would return it.
    pub report: ExecReport,
    /// The structured event trace (`Some` iff tracing was enabled).
    pub trace: Option<Trace>,
}

/// Execute `job`, honouring `HBP_TRACE` (via [`crate::Config::from_env`]):
/// when tracing is on, record a structured trace (sink sized by
/// [`Executor::workers`], ring capacity from the configured
/// `trace_buf`) and return it alongside the report; when off, run
/// exactly as [`Executor::execute`] — no sink, no per-event cost.
/// `None` when the backend has no kernel for the algorithm.
pub fn execute_with_env_trace(ex: &dyn Executor, job: &ExecJob) -> Option<TracedRun> {
    match crate::Config::from_env().sink(ex.workers(), ex.clock_domain()) {
        Some(sink) => {
            let report = ex.execute_traced(job, &sink)?;
            Some(TracedRun {
                report,
                trace: Some(sink.collect()),
            })
        }
        None => Some(TracedRun {
            report: ex.execute(job)?,
            trace: None,
        }),
    }
}

/// The executor `HBP_BACKEND` selects: [`SimExecutor`] with the given
/// machine and policy, or [`NativeExecutor`] sized from the environment
/// ([`crate::Config::from_env`] with the policy overridden by the
/// caller's — the fig binaries choose their own disciplines per run).
///
/// `machine` is a simulator-only knob (real threads have no simulated
/// geometry); `policy` carries over to the native backend whole — the
/// pool runs its native facet ([`hbp_sched::policy::NativeStealPolicy`]),
/// with an [`Policy::Rws`] seed additionally feeding the workers'
/// victim-selection RNG streams.
pub fn executor_from_env(machine: MachineConfig, policy: Policy) -> Box<dyn Executor> {
    crate::Config::from_env().policy(policy).executor(machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_from_env_honours_backend_and_rws_seed() {
        // Robust to an ambient HBP_BACKEND: whatever is (or isn't) set
        // decides which executor we must get back.
        let machine = MachineConfig::new(2, 1 << 10, 32);
        let ex = executor_from_env(machine, Policy::Rws { seed: 9 });
        match crate::Config::from_env().backend {
            Backend::Sim => assert_eq!(ex.name(), "sim"),
            Backend::Native => assert_eq!(ex.name(), "native"),
        }
        // Both backends execute a registry job end-to-end.
        let r = ex
            .execute(&ExecJob::new("Scans (M-Sum)", 512, 3))
            .expect("M-Sum runs on every backend");
        assert!(r.makespan > 0);
    }

    #[test]
    fn sim_executor_matches_direct_run() {
        let machine = MachineConfig::new(4, 1 << 10, 32);
        let ex = SimExecutor {
            machine,
            policy: Policy::Pws,
        };
        let job = ExecJob::new("Scans (M-Sum)", 256, 42);
        let r = ex.execute(&job).expect("sim supports every registry row");
        let spec = find("Scans (M-Sum)").unwrap();
        let comp = (spec.build)(256, BuildConfig::with_block(32), 42);
        let direct = run(&comp, machine, Policy::Pws);
        assert_eq!(r.makespan, direct.makespan);
        assert_eq!(r.steals, direct.steals);
    }

    #[test]
    fn native_executor_runs_supported_kernels() {
        let ex = NativeExecutor::new(2, 1);
        for algo in ["Scans (M-Sum)", "FFT", "Sort (SPMS)", "Sort (merge std-in)"] {
            let r = ex
                .execute(&ExecJob::new(algo, 1 << 12, 7))
                .unwrap_or_else(|| panic!("{algo} should have a native kernel"));
            assert!(r.makespan > 0, "{algo}");
            assert!(r.work >= 1, "{algo}");
            assert_eq!(r.p, 2, "{algo}");
        }
    }

    #[test]
    fn native_executor_declines_unmapped_algorithms() {
        let ex = NativeExecutor::new(2, 1);
        assert!(ex.execute(&ExecJob::new("RM to BI", 16, 1)).is_none());
        assert!(ex.execute(&ExecJob::new("no such algo", 16, 1)).is_none());
    }

    #[test]
    fn unknown_algo_is_none_not_panic() {
        let machine = MachineConfig::new(2, 1 << 10, 32);
        let ex = SimExecutor {
            machine,
            policy: Policy::Pws,
        };
        assert!(ex
            .execute(&ExecJob::new("definitely-missing", 8, 0))
            .is_none());
    }

    #[test]
    fn backend_parse_accepts_valid_and_rejects_typos() {
        assert_eq!(Backend::parse(None), Ok(Backend::Sim));
        assert_eq!(Backend::parse(Some("")), Ok(Backend::Sim));
        assert_eq!(Backend::parse(Some("sim")), Ok(Backend::Sim));
        assert_eq!(Backend::parse(Some("native")), Ok(Backend::Native));
        for bad in ["nativ", "SIM", "threads", "1"] {
            let err = Backend::parse(Some(bad)).expect_err(bad);
            assert!(
                err.contains("HBP_BACKEND"),
                "error names the variable: {err}"
            );
            assert!(err.contains(bad), "error echoes the value: {err}");
            assert!(
                err.contains("sim") && err.contains("native"),
                "error lists the accepted values: {err}"
            );
        }
    }

    #[test]
    fn workers_parse_rejects_zero_and_garbage_with_clear_errors() {
        assert_eq!(
            parse_workers(None),
            Ok(NativeConfig::default().workers),
            "unset means the pool default"
        );
        assert_eq!(parse_workers(Some("3")), Ok(3));
        for bad in ["0", "-2", "abc", "1.5"] {
            let err = parse_workers(Some(bad)).expect_err(bad);
            assert!(
                err.contains("HBP_WORKERS"),
                "error names the variable: {err}"
            );
            assert!(
                err.contains("positive integer"),
                "error says what is accepted: {err}"
            );
            assert!(err.contains(bad), "error echoes the value: {err}");
        }
    }

    #[test]
    fn sim_execute_traced_report_is_bit_identical_and_trace_nonempty() {
        let machine = MachineConfig::new(4, 1 << 10, 32);
        let ex = SimExecutor {
            machine,
            policy: Policy::Pws,
        };
        let job = ExecJob::new("Scans (M-Sum)", 512, 11);
        let plain = ex.execute(&job).unwrap();
        let sink = Arc::new(TraceSink::new(ex.workers(), ex.clock_domain()));
        let traced = ex.execute_traced(&job, &sink).unwrap();
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.steals, traced.steals);
        assert_eq!(plain.busy, traced.busy);
        let trace = sink.collect();
        assert!(trace.events.len() > 2, "events recorded");
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn native_execute_traced_records_balanced_tasks() {
        let ex = NativeExecutor::new(2, 5);
        let sink = Arc::new(TraceSink::new(2, ClockDomain::WallNs));
        let r = ex
            .execute_traced(&ExecJob::new("Scans (M-Sum)", 1 << 12, 3), &sink)
            .expect("M-Sum has a native kernel");
        assert!(r.makespan > 0);
        let trace = sink.collect();
        let begins = trace.count(|k| matches!(k, hbp_trace::EventKind::TaskBegin { .. }));
        let ends = trace.count(|k| matches!(k, hbp_trace::EventKind::TaskEnd { .. }));
        assert_eq!(begins, ends, "every begun task ends");
        assert!(begins >= 1);
        assert_eq!(trace.segments().unclosed, 0);
    }
}
