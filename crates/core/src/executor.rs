//! Execution backends: one job description, two ways to run it.
//!
//! An [`ExecJob`] names an algorithm from the [`registry`](crate::registry)
//! plus a problem size and seed. An [`Executor`] turns it into an
//! [`ExecReport`]:
//!
//! * [`SimExecutor`] builds the recorded computation and replays it on the
//!   simulated machine under a [`Policy`] — deterministic, unit-cost
//!   virtual time, full cache/steal accounting;
//! * [`NativeExecutor`] runs the corresponding `hbp_algos::par_*` kernel
//!   on real `std::thread` workers via
//!   [`hbp_sched::native::run_native`] — wall-clock nanoseconds,
//!   per-worker busy/steal counters, no cache simulation.
//!
//! The backend is usually chosen by the `HBP_BACKEND` environment
//! variable (`sim`, the default, or `native`) through
//! [`Backend::from_env`] / [`executor_from_env`]; the fig binaries and
//! examples are wired through that switch.

use hbp_algos::{gen, par};
use hbp_machine::MachineConfig;
use hbp_model::{BuildConfig, Cx};
use hbp_sched::native::{run_native, NativeConfig};
use hbp_sched::{run, ExecReport, Policy};

use crate::registry::{bi_matrix, find};

/// Which execution backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The discrete-event simulator (default).
    Sim,
    /// Real threads with randomized work stealing.
    Native,
}

impl Backend {
    /// Read `HBP_BACKEND`: unset or `sim` → [`Backend::Sim`], `native` →
    /// [`Backend::Native`]; anything else panics (typos should not
    /// silently fall back in CI).
    pub fn from_env() -> Self {
        match std::env::var("HBP_BACKEND") {
            Err(_) => Backend::Sim,
            Ok(s) => match s.as_str() {
                "" | "sim" => Backend::Sim,
                "native" => Backend::Native,
                other => panic!("HBP_BACKEND must be `sim` or `native`, got {other:?}"),
            },
        }
    }
}

/// One schedulable unit of work: a registry algorithm at a problem size.
#[derive(Debug, Clone)]
pub struct ExecJob {
    /// Registry name (prefix match, as in [`find`]).
    pub algo: String,
    /// Problem size, with the registry entry's size semantics
    /// (element count or matrix side).
    pub n: usize,
    /// Input seed (and, for randomized backends, the scheduling seed).
    pub seed: u64,
}

impl ExecJob {
    /// Convenience constructor.
    pub fn new(algo: &str, n: usize, seed: u64) -> Self {
        Self {
            algo: algo.to_string(),
            n,
            seed,
        }
    }
}

/// A backend that can execute [`ExecJob`]s into [`ExecReport`]s.
pub trait Executor {
    /// Short backend name for table headers (`"sim"` / `"native"`).
    fn name(&self) -> &'static str;

    /// Execute `job`, or `None` when this backend has no implementation
    /// for the algorithm (e.g. layout conversions have no native kernel).
    fn execute(&self, job: &ExecJob) -> Option<ExecReport>;
}

/// The simulator backend: records the computation, replays it under a
/// scheduling [`Policy`] on a simulated [`MachineConfig`].
#[derive(Debug, Clone, Copy)]
pub struct SimExecutor {
    /// Simulated machine geometry.
    pub machine: MachineConfig,
    /// Scheduling discipline.
    pub policy: Policy,
}

impl Executor for SimExecutor {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn execute(&self, job: &ExecJob) -> Option<ExecReport> {
        let spec = find(&job.algo)?;
        let comp = (spec.build)(
            job.n,
            BuildConfig::with_block(self.machine.block_words),
            job.seed,
        );
        Some(run(&comp, self.machine, self.policy))
    }
}

/// The real-threads backend: runs the algorithm's `par_*` kernel on a
/// native work-stealing pool (input generation is *outside* the timed
/// region).
#[derive(Debug, Clone, Copy)]
pub struct NativeExecutor {
    /// Number of worker threads.
    pub workers: usize,
    /// Victim-selection RNG seed (input seeds come from the job).
    pub seed: u64,
}

impl NativeExecutor {
    /// `workers` from `HBP_WORKERS` if set, else one per hardware thread
    /// but at least 4 (so stealing exists even on small hosts).
    pub fn from_env(seed: u64) -> Self {
        let workers = match std::env::var("HBP_WORKERS") {
            Ok(s) => s
                .parse()
                .ok()
                .filter(|&w| w >= 1)
                .unwrap_or_else(|| panic!("HBP_WORKERS must be a positive integer, got {s:?}")),
            Err(_) => NativeConfig::default().workers,
        };
        Self { workers, seed }
    }
}

impl Executor for NativeExecutor {
    fn name(&self) -> &'static str {
        "native"
    }

    fn execute(&self, job: &ExecJob) -> Option<ExecReport> {
        let cfg = NativeConfig {
            workers: self.workers,
            seed: self.seed ^ job.seed,
        };
        let spec = find(&job.algo)?;
        let (n, seed) = (job.n, job.seed);
        // Kernels keyed by the registry's canonical names.
        let report = match spec.name {
            "Scans (M-Sum)" => {
                let a = gen::random_u64s(n, 1 << 30, seed);
                run_native(cfg, || par::par_sum(&a)).1
            }
            "Scans (PS)" => {
                let a = gen::random_u64s(n, 1 << 30, seed);
                run_native(cfg, || par::par_prefix(&a)).1
            }
            "MT" => {
                let mut m = bi_matrix(n, seed);
                run_native(cfg, || par::par_transpose_bi(&mut m, n)).1
            }
            "Strassen" => {
                let a = bi_matrix(n, seed);
                let b = bi_matrix(n, seed + 1);
                run_native(cfg, || par::par_strassen_bi(&a, &b, n)).1
            }
            "FFT" => {
                let mut x: Vec<Cx> = gen::random_u64s(2 * n, 1 << 20, seed)
                    .chunks(2)
                    .map(|w| Cx::new(w[0] as f64 / 1e6, w[1] as f64 / 1e6))
                    .collect();
                run_native(cfg, || par::par_fft(&mut x)).1
            }
            "LR" => {
                let succ = gen::random_list(n, seed);
                run_native(cfg, || par::par_list_rank(&succ)).1
            }
            "Sort (SPMS std-in)" => {
                let keys = gen::random_u64s(n, u64::MAX / 2, seed);
                let mut data: Vec<(u64, u64)> = keys
                    .into_iter()
                    .enumerate()
                    .map(|(i, k)| (k, i as u64))
                    .collect();
                run_native(cfg, || par::par_mergesort(&mut data)).1
            }
            _ => return None,
        };
        Some(report)
    }
}

/// The executor `HBP_BACKEND` selects: [`SimExecutor`] with the given
/// machine and policy, or [`NativeExecutor`] sized from the environment.
///
/// `machine` is a simulator-only knob (real threads have no simulated
/// geometry); `policy` carries over to the native backend as far as it
/// can — an [`Policy::Rws`] seed becomes the pool's victim-selection
/// seed, while PWS/BSP have no native analogue and map to seed 0.
pub fn executor_from_env(machine: MachineConfig, policy: Policy) -> Box<dyn Executor> {
    match Backend::from_env() {
        Backend::Sim => Box::new(SimExecutor { machine, policy }),
        Backend::Native => {
            let seed = match policy {
                Policy::Rws { seed } => seed,
                Policy::Pws | Policy::Bsp { .. } => 0,
            };
            Box::new(NativeExecutor::from_env(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_from_env_honours_backend_and_rws_seed() {
        // Robust to an ambient HBP_BACKEND: whatever is (or isn't) set
        // decides which executor we must get back.
        let machine = MachineConfig::new(2, 1 << 10, 32);
        let ex = executor_from_env(machine, Policy::Rws { seed: 9 });
        match Backend::from_env() {
            Backend::Sim => assert_eq!(ex.name(), "sim"),
            Backend::Native => assert_eq!(ex.name(), "native"),
        }
        // Both backends execute a registry job end-to-end.
        let r = ex
            .execute(&ExecJob::new("Scans (M-Sum)", 512, 3))
            .expect("M-Sum runs on every backend");
        assert!(r.makespan > 0);
    }

    #[test]
    fn sim_executor_matches_direct_run() {
        let machine = MachineConfig::new(4, 1 << 10, 32);
        let ex = SimExecutor {
            machine,
            policy: Policy::Pws,
        };
        let job = ExecJob::new("Scans (M-Sum)", 256, 42);
        let r = ex.execute(&job).expect("sim supports every registry row");
        let spec = find("Scans (M-Sum)").unwrap();
        let comp = (spec.build)(256, BuildConfig::with_block(32), 42);
        let direct = run(&comp, machine, Policy::Pws);
        assert_eq!(r.makespan, direct.makespan);
        assert_eq!(r.steals, direct.steals);
    }

    #[test]
    fn native_executor_runs_supported_kernels() {
        let ex = NativeExecutor {
            workers: 2,
            seed: 1,
        };
        for algo in ["Scans (M-Sum)", "FFT", "Sort (SPMS std-in)"] {
            let r = ex
                .execute(&ExecJob::new(algo, 1 << 12, 7))
                .unwrap_or_else(|| panic!("{algo} should have a native kernel"));
            assert!(r.makespan > 0, "{algo}");
            assert!(r.work >= 1, "{algo}");
            assert_eq!(r.p, 2, "{algo}");
        }
    }

    #[test]
    fn native_executor_declines_unmapped_algorithms() {
        let ex = NativeExecutor {
            workers: 2,
            seed: 1,
        };
        assert!(ex.execute(&ExecJob::new("RM to BI", 16, 1)).is_none());
        assert!(ex.execute(&ExecJob::new("no such algo", 16, 1)).is_none());
    }

    #[test]
    fn unknown_algo_is_none_not_panic() {
        let machine = MachineConfig::new(2, 1 << 10, 32);
        let ex = SimExecutor {
            machine,
            policy: Policy::Pws,
        };
        assert!(ex
            .execute(&ExecJob::new("definitely-missing", 8, 0))
            .is_none());
    }
}
