//! The Table-1 algorithm registry: one entry per row of the paper's
//! Table 1, with the claimed structural parameters and a builder that
//! produces the recorded computation for a given problem size.
//!
//! Used by the experiment harness (`hbp-bench`) to regenerate the table and
//! by the figures that sweep over algorithms.

use hbp_algos::{cc, fft, gen, layout, listrank, mm, mt, scan, sort, spms, strassen};
use hbp_model::{BuildConfig, Computation, Cx};

/// How an algorithm's "input size n" maps to elements processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeKind {
    /// `n` is the element count.
    Linear,
    /// `n` is the matrix side; the input has `n²` elements.
    MatrixSide,
}

/// One row of Table 1.
pub struct AlgoSpec {
    /// Paper's name for the algorithm.
    pub name: &'static str,
    /// HBP type (Table 1 column "Type").
    pub hbp_type: u8,
    /// Claimed cache-friendliness `f(r)`.
    pub f_claim: &'static str,
    /// Claimed block-sharing `L(r)`.
    pub l_claim: &'static str,
    /// Claimed work `W(n)`.
    pub w_claim: &'static str,
    /// Claimed depth `T∞(n)`.
    pub t_claim: &'static str,
    /// Claimed sequential cache complexity `Q(n, M, B)`.
    pub q_claim: &'static str,
    /// Input-size semantics.
    pub size: SizeKind,
    /// Build the recorded computation for problem size `n` (elements or
    /// matrix side per [`AlgoSpec::size`]), block size from `cfg`.
    pub build: fn(n: usize, cfg: BuildConfig, seed: u64) -> Computation,
}

impl AlgoSpec {
    /// Number of input elements for problem size `n`.
    pub fn elements(&self, n: usize) -> usize {
        match self.size {
            SizeKind::Linear => n,
            SizeKind::MatrixSide => n * n,
        }
    }
}

/// BI-layout random matrix of side `n` (also the input builder for the
/// native executor, so recorded and native runs see identical data).
pub(crate) fn bi_matrix(n: usize, seed: u64) -> Vec<f64> {
    let rm = gen::random_matrix(n, seed);
    let mut bi = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            bi[layout::morton(r as u64, c as u64) as usize] = rm[r * n + c];
        }
    }
    bi
}

fn bi_matrix_u64(n: usize, seed: u64) -> Vec<u64> {
    let rm = gen::random_u64s(n * n, 1 << 40, seed);
    let mut bi = vec![0u64; n * n];
    for r in 0..n {
        for c in 0..n {
            bi[layout::morton(r as u64, c as u64) as usize] = rm[r * n + c];
        }
    }
    bi
}

/// All Table-1 rows. The Sort row is the real SPMS
/// (`hbp_algos::spms`); the earlier mergesort stand-in survives as the
/// extra "Sort (merge std-in)" row for A/B comparisons.
pub fn registry() -> Vec<AlgoSpec> {
    vec![
        AlgoSpec {
            name: "Scans (M-Sum)",
            hbp_type: 1,
            f_claim: "1",
            l_claim: "1",
            w_claim: "n",
            t_claim: "log n",
            q_claim: "n/B",
            size: SizeKind::Linear,
            build: |n, cfg, seed| scan::m_sum(&gen::random_u64s(n, 1 << 30, seed), cfg).0,
        },
        AlgoSpec {
            name: "Scans (PS)",
            hbp_type: 1,
            f_claim: "1",
            l_claim: "1",
            w_claim: "n",
            t_claim: "log n",
            q_claim: "n/B",
            size: SizeKind::Linear,
            build: |n, cfg, seed| scan::prefix_sums(&gen::random_u64s(n, 1 << 30, seed), cfg).0,
        },
        AlgoSpec {
            name: "MT",
            hbp_type: 1,
            f_claim: "1",
            l_claim: "1",
            w_claim: "n^2",
            t_claim: "log n",
            q_claim: "n^2/B",
            size: SizeKind::MatrixSide,
            build: |n, cfg, seed| mt::transpose_bi(&bi_matrix(n, seed), n, cfg).0,
        },
        AlgoSpec {
            name: "Strassen",
            hbp_type: 2,
            f_claim: "1",
            l_claim: "1",
            w_claim: "n^2.807",
            t_claim: "log^2 n",
            q_claim: "n^l/(B M^(l/2-1))",
            size: SizeKind::MatrixSide,
            build: |n, cfg, seed| {
                strassen::strassen_bi(&bi_matrix(n, seed), &bi_matrix(n, seed + 1), n, cfg).0
            },
        },
        AlgoSpec {
            name: "RM to BI",
            hbp_type: 1,
            f_claim: "sqrt(r)",
            l_claim: "1",
            w_claim: "n^2",
            t_claim: "log n",
            q_claim: "n^2/B",
            size: SizeKind::MatrixSide,
            build: |n, cfg, seed| {
                layout::rm_to_bi(&gen::random_u64s(n * n, 1 << 40, seed), n, cfg).0
            },
        },
        AlgoSpec {
            name: "Direct BI to RM",
            hbp_type: 1,
            f_claim: "sqrt(r)",
            l_claim: "sqrt(r)",
            w_claim: "n^2",
            t_claim: "log n",
            q_claim: "n^2/B",
            size: SizeKind::MatrixSide,
            build: |n, cfg, seed| layout::bi_to_rm_direct(&bi_matrix_u64(n, seed), n, cfg).0,
        },
        AlgoSpec {
            name: "BI-RM (gap RM)",
            hbp_type: 1,
            f_claim: "sqrt(r)",
            l_claim: "gap",
            w_claim: "n^2",
            t_claim: "log n",
            q_claim: "n^2/B",
            size: SizeKind::MatrixSide,
            build: |n, cfg, seed| layout::bi_to_rm_gap(&bi_matrix_u64(n, seed), n, cfg).0,
        },
        AlgoSpec {
            name: "BI-RM for FFT",
            hbp_type: 2,
            f_claim: "sqrt(r)",
            l_claim: "1",
            w_claim: "n^2 loglog n",
            t_claim: "log n",
            q_claim: "(n^2/B) log_M n",
            size: SizeKind::MatrixSide,
            build: |n, cfg, seed| layout::bi_to_rm_fft(&bi_matrix_u64(n, seed), n, cfg).0,
        },
        AlgoSpec {
            name: "FFT",
            hbp_type: 2,
            f_claim: "sqrt(r)",
            l_claim: "1",
            w_claim: "n log n",
            t_claim: "log n loglog n",
            q_claim: "(n/B) log_M n",
            size: SizeKind::Linear,
            build: |n, cfg, seed| {
                let x: Vec<Cx> = gen::random_u64s(2 * n, 1 << 20, seed)
                    .chunks(2)
                    .map(|w| Cx::new(w[0] as f64 / 1e6, w[1] as f64 / 1e6))
                    .collect();
                fft::fft(&x, cfg).0
            },
        },
        AlgoSpec {
            name: "LR",
            hbp_type: 3,
            f_claim: "sqrt(r)",
            l_claim: "gap",
            w_claim: "n log n",
            t_claim: "log^2 n loglog n",
            q_claim: "(n/B) log_M n",
            size: SizeKind::Linear,
            build: |n, cfg, seed| listrank::list_rank(&gen::random_list(n, seed), cfg, true).0,
        },
        AlgoSpec {
            name: "CC",
            hbp_type: 4,
            f_claim: "sqrt(r)",
            l_claim: "gap",
            w_claim: "n log^2 n",
            t_claim: "log^3 n loglog n",
            q_claim: "(n/B) log_M n log n",
            size: SizeKind::Linear,
            build: |n, cfg, seed| {
                let m = 2 * n;
                cc::connected_components(n, &gen::random_graph(n, m, seed), cfg).0
            },
        },
        AlgoSpec {
            name: "Depth-n-MM",
            hbp_type: 2,
            f_claim: "1",
            l_claim: "1",
            w_claim: "n^3",
            t_claim: "n",
            q_claim: "n^3/(B sqrt(M))",
            size: SizeKind::MatrixSide,
            build: |n, cfg, seed| {
                mm::depth_n_mm(&bi_matrix(n, seed), &bi_matrix(n, seed + 1), n, cfg).0
            },
        },
        AlgoSpec {
            name: "Sort (SPMS)",
            hbp_type: 2,
            f_claim: "sqrt(r)",
            l_claim: "1",
            w_claim: "n log n",
            t_claim: "log n loglog n",
            q_claim: "(n/B) log_M n",
            size: SizeKind::Linear,
            build: |n, cfg, seed| spms::spms(&sort_input(n, seed), cfg).0,
        },
        AlgoSpec {
            name: "Sort (merge std-in)",
            hbp_type: 2,
            f_claim: "sqrt(r)",
            l_claim: "1",
            w_claim: "n log^2 n",
            t_claim: "log^3 n",
            q_claim: "(n/B) log n",
            size: SizeKind::Linear,
            build: |n, cfg, seed| sort::mergesort(&sort_input(n, seed), cfg).0,
        },
    ]
}

/// The shared sort workload: random keys with their input position as
/// payload, so both sort rows (and their native kernels) see identical
/// data and stability is observable.
pub(crate) fn sort_input(n: usize, seed: u64) -> Vec<(u64, u64)> {
    gen::random_u64s(n, u64::MAX / 2, seed)
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

/// Look up a registry entry by (case-insensitive prefix of) name.
/// An *exact* match wins over a prefix match, so "Sort (SPMS)" is never
/// shadowed by another row starting with the same words.
pub fn find(name: &str) -> Option<AlgoSpec> {
    let needle = name.to_lowercase();
    registry()
        .into_iter()
        .find(|a| a.name.to_lowercase() == needle)
        .or_else(|| {
            registry()
                .into_iter()
                .find(|a| a.name.to_lowercase().starts_with(&needle))
        })
}

/// Look up a registry entry by its **exact** (case-insensitive) name;
/// a miss returns an error message listing every known row. Binaries
/// that take algorithm names from the command line route through this
/// so a typo prints the menu and exits instead of panicking with a
/// backtrace.
pub fn try_lookup(name: &str) -> Result<AlgoSpec, String> {
    let needle = name.to_lowercase();
    registry()
        .into_iter()
        .find(|a| a.name.to_lowercase() == needle)
        .ok_or_else(|| {
            let known: Vec<&str> = registry().iter().map(|a| a.name).collect();
            format!("no registry row named {name:?}; known rows: {known:?}")
        })
}

/// [`try_lookup`], panicking on a miss. The figure binaries name their
/// rows through this, so renaming a registry row can never silently
/// drop it from a figure — the run fails loudly instead.
pub fn lookup(name: &str) -> AlgoSpec {
    try_lookup(name).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_table1_rows() {
        let r = registry();
        // 12 paper rows + M-Sum/PS split + the mergesort A/B row
        assert_eq!(r.len(), 14);
        let names: Vec<&str> = r.iter().map(|a| a.name).collect();
        for want in [
            "MT",
            "Strassen",
            "FFT",
            "LR",
            "CC",
            "Depth-n-MM",
            "Sort (SPMS)",
            "Sort (merge std-in)",
        ] {
            assert!(names.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn every_entry_builds_and_has_positive_work() {
        for spec in registry() {
            let n = match spec.size {
                SizeKind::Linear => 64,
                SizeKind::MatrixSide => 8,
            };
            let comp = (spec.build)(n, BuildConfig::default(), 42);
            assert!(comp.work() > 0, "{} built empty", spec.name);
            assert!(comp.n_priorities > 0, "{} has no priorities", spec.name);
        }
    }

    #[test]
    fn find_by_prefix() {
        assert!(find("strassen").is_some());
        assert!(find("fft").is_some());
        assert!(find("nonexistent").is_none());
        // Prefix "Sort" resolves to the SPMS row (registry order), and
        // exact names always win over prefixes.
        assert_eq!(find("Sort").unwrap().name, "Sort (SPMS)");
        assert_eq!(
            find("sort (merge std-in)").unwrap().name,
            "Sort (merge std-in)"
        );
    }

    #[test]
    fn lookup_is_exact_and_fails_loudly() {
        assert_eq!(lookup("Sort (SPMS)").name, "Sort (SPMS)");
        assert_eq!(lookup("fft").name, "FFT");
        let err = std::panic::catch_unwind(|| lookup("Sort").name).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(msg.contains("no registry row named"), "{msg}");
        assert!(
            msg.contains("Sort (SPMS)") && msg.contains("Sort (merge std-in)"),
            "panic lists the known rows: {msg}"
        );
    }

    #[test]
    fn both_sort_rows_sort_the_same_input() {
        // The two rows must be the same workload (A/B comparable): same
        // input builder, same sorted key sequence out.
        let n = 128;
        let data = sort_input(n, 9);
        let (cs, hs) = spms::spms(&data, BuildConfig::default());
        let (cm, hm) = sort::mergesort(&data, BuildConfig::default());
        let ks: Vec<u64> = hbp_algos::util::read_out(&cs, hs)
            .iter()
            .map(|p| p.0)
            .collect();
        let km: Vec<u64> = hbp_algos::util::read_out(&cm, hm)
            .iter()
            .map(|p| p.0)
            .collect();
        assert_eq!(ks, km);
        assert!(
            cs.work() < cm.work(),
            "SPMS ({}) must do less recorded work than the stand-in ({})",
            cs.work(),
            cm.work()
        );
    }
}
