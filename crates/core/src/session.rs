//! The session model: submit many jobs to one long-lived backend.
//!
//! [`Executor::execute`] is run-once: on the native backend it spawns a
//! pool, runs one kernel, and tears the pool down. A server cannot
//! afford that per request, so the session model splits *backend
//! lifetime* from *job execution*:
//!
//! ```text
//! Executor::open() ─→ ExecSession ─ submit(job) ─→ ExecHandle ─ wait() ─→ ExecReport
//!                          │                          (one per job,
//!                          └ native: one NativePool    delivered exactly once)
//!                            spawned once, parked
//!                            between jobs
//! ```
//!
//! Both backends share the API:
//!
//! * **native** — the session owns one
//!   [`NativePool`](hbp_sched::native::NativePool): workers spawn at
//!   [`Executor::open`], successive submissions queue onto it, idle
//!   workers park between jobs, and the pool shuts down when the
//!   session drops. Inputs are generated on the *submitting* thread
//!   (outside the timed region), so the report's makespan covers the
//!   kernel alone;
//! * **sim** — submissions execute synchronously at [`ExecSession::submit`]
//!   on the calling thread (the simulator is single-threaded and
//!   deterministic; an async queue would add nondeterminism for no
//!   benefit) and the handle is born resolved. Same seed ⇒ bit-identical
//!   reports, which is what makes serve scenarios CI-able.
//!
//! Per-request tracing goes through the same path:
//! [`ExecSession::submit_traced`] attaches a per-job
//! [`TraceSink`], so a server can compute each request's critical path
//! for latency attribution without tracing unrelated requests.

use std::sync::Arc;

use hbp_sched::native::{NativePool, PoolHandle, SubmitError};
use hbp_sched::ExecReport;
use hbp_trace::{ClockDomain, TraceSink};

use crate::executor::{native_kernel, ExecJob, Executor, NativeExecutor, SimExecutor};
use crate::registry::find;

/// Why a submitted job produced no report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The backend has no kernel for the algorithm (e.g. layout
    /// conversions on the native backend, or a name the registry does
    /// not know).
    Unmapped {
        /// The algorithm name as submitted.
        algo: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Unmapped { algo } => {
                write!(f, "backend has no kernel for algorithm {algo:?}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// A long-lived submission session over one backend — obtained from
/// [`Executor::open`], dropped to release the backend (on native, this
/// shuts the pool down and joins its workers).
pub struct ExecSession {
    inner: Inner,
}

enum Inner {
    /// Sim jobs run at submit time; the executor is all the state needed.
    Sim(SimExecutor),
    /// Native jobs queue onto one persistent pool.
    Native { pool: NativePool },
}

impl ExecSession {
    pub(crate) fn sim(ex: SimExecutor) -> Self {
        Self {
            inner: Inner::Sim(ex),
        }
    }

    pub(crate) fn native(ex: &NativeExecutor) -> Self {
        let cfg = hbp_sched::native::NativeConfig {
            workers: ex.workers,
            seed: ex.seed,
            policy: ex.policy,
            deque: ex.deque,
            batch: ex.batch,
            counters: ex.counters,
            domains: ex.domains,
            cross_depth: ex.cross_depth,
            autoscale: ex.autoscale,
        };
        Self {
            inner: Inner::Native {
                pool: NativePool::new(cfg),
            },
        }
    }

    /// Short backend name (`"sim"` / `"native"`).
    pub fn backend(&self) -> &'static str {
        match &self.inner {
            Inner::Sim(_) => "sim",
            Inner::Native { .. } => "native",
        }
    }

    /// Workers a per-job [`TraceSink`] must be sized for.
    pub fn workers(&self) -> usize {
        match &self.inner {
            Inner::Sim(ex) => ex.workers(),
            Inner::Native { pool } => pool.workers(),
        }
    }

    /// The clock domain of this session's traces.
    pub fn clock_domain(&self) -> ClockDomain {
        match &self.inner {
            Inner::Sim(_) => ClockDomain::Virtual,
            Inner::Native { .. } => ClockDomain::WallNs,
        }
    }

    /// Jobs accepted but not yet started (always 0 on sim, where
    /// submission *is* execution).
    pub fn queue_depth(&self) -> usize {
        match &self.inner {
            Inner::Sim(_) => 0,
            Inner::Native { pool } => pool.queue_depth(),
        }
    }

    /// Submit `job`. `Ok` carries the handle that resolves to the job's
    /// [`ExecReport`] (or to [`JobError::Unmapped`] when the backend has
    /// no kernel for the algorithm); `Err` is an admission refusal —
    /// the sim backend admits everything deterministically, the native
    /// backend refuses after shutdown ([`SubmitError::ShutDown`]) or,
    /// behind a bounded admission layer, with a pacing hint
    /// ([`SubmitError::RetryAfter`]).
    pub fn submit(&self, job: &ExecJob) -> Result<ExecHandle, SubmitError> {
        self.submit_inner(job, None)
    }

    /// [`ExecSession::submit`] with a per-job trace sink (sized for
    /// [`ExecSession::workers`] in [`ExecSession::clock_domain`]); the
    /// sink records exactly this job's events — collect it after the
    /// handle resolves.
    pub fn submit_traced(
        &self,
        job: &ExecJob,
        trace: &Arc<TraceSink>,
    ) -> Result<ExecHandle, SubmitError> {
        self.submit_inner(job, Some(Arc::clone(trace)))
    }

    fn submit_inner(
        &self,
        job: &ExecJob,
        trace: Option<Arc<TraceSink>>,
    ) -> Result<ExecHandle, SubmitError> {
        match &self.inner {
            Inner::Sim(ex) => Ok(ExecHandle {
                inner: HandleInner::Ready(
                    match &trace {
                        Some(tr) => ex.execute_traced(job, tr),
                        None => ex.execute(job),
                    }
                    .map(Box::new)
                    .ok_or_else(|| JobError::Unmapped {
                        algo: job.algo.clone(),
                    }),
                ),
            }),
            Inner::Native { pool } => {
                let Some(kernel) =
                    find(&job.algo).and_then(|spec| native_kernel(spec.name, job.n, job.seed))
                else {
                    return Ok(ExecHandle {
                        inner: HandleInner::Ready(Err(JobError::Unmapped {
                            algo: job.algo.clone(),
                        })),
                    });
                };
                let handle = pool.submit_traced(trace, kernel)?;
                Ok(ExecHandle {
                    inner: HandleInner::Pool(handle),
                })
            }
        }
    }
}

/// The waitable result of one [`ExecSession::submit`]. Consuming it is
/// the only way to observe the job's report, so each report is
/// delivered exactly once.
pub struct ExecHandle {
    inner: HandleInner,
}

enum HandleInner {
    /// Resolved at submit time (sim, or an algorithm with no kernel on
    /// this backend). Boxed: an `ExecReport` is an order of magnitude
    /// larger than the pool handle.
    Ready(Result<Box<ExecReport>, JobError>),
    /// Pending on the native pool.
    Pool(PoolHandle<()>),
}

impl ExecHandle {
    /// Block until the job completed;
    /// [`JobError::Unmapped`] when the backend had no kernel for the
    /// algorithm. A kernel panic is re-raised here, naming the worker
    /// that caught it (same contract as [`Executor::execute`]).
    pub fn wait(self) -> Result<ExecReport, JobError> {
        match self.inner {
            HandleInner::Ready(r) => r.map(|b| *b),
            HandleInner::Pool(h) => Ok(h.wait().1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbp_machine::MachineConfig;
    use hbp_sched::Policy;

    fn sim_ex() -> SimExecutor {
        SimExecutor {
            machine: MachineConfig::new(4, 1 << 10, 32),
            policy: Policy::Pws,
        }
    }

    #[test]
    fn sim_session_matches_one_shot_execute() {
        let ex = sim_ex();
        let job = ExecJob::new("Scans (M-Sum)", 512, 7);
        let direct = ex.execute(&job).unwrap();
        let session = ex.open();
        let via_session = session.submit(&job).unwrap().wait().unwrap();
        assert_eq!(direct.makespan, via_session.makespan);
        assert_eq!(direct.steals, via_session.steals);
        assert_eq!(direct.busy, via_session.busy);
    }

    #[test]
    fn native_session_serves_multiple_jobs_on_one_pool() {
        let ex = NativeExecutor::new(2, 3);
        let session = ex.open();
        assert_eq!(session.backend(), "native");
        for (algo, n) in [
            ("Scans (M-Sum)", 1 << 12),
            ("Sort (merge std-in)", 1 << 10),
            ("Scans (PS)", 1 << 11),
        ] {
            let r = session
                .submit(&ExecJob::new(algo, n, 5))
                .expect("live session admits")
                .wait()
                .unwrap_or_else(|e| panic!("{algo} has a native kernel: {e}"));
            assert!(r.makespan > 0, "{algo}");
            assert_eq!(r.p, 2, "{algo}");
        }
    }

    #[test]
    fn unmapped_algorithms_resolve_to_job_errors_on_native_sessions() {
        let ex = NativeExecutor::new(2, 1);
        let session = ex.open();
        for algo in ["RM to BI", "no such algo"] {
            // Admission succeeds (the session is live); resolution fails.
            let err = session
                .submit(&ExecJob::new(algo, 16, 1))
                .expect("live session admits")
                .wait()
                .expect_err(algo);
            assert_eq!(
                err,
                JobError::Unmapped {
                    algo: algo.to_string()
                }
            );
            assert!(err.to_string().contains(algo), "{err}");
        }
    }

    #[test]
    fn traced_session_submission_isolates_the_jobs_events() {
        let ex = NativeExecutor::new(2, 9);
        let session = ex.open();
        // An untraced job first; its tasks must not appear in the sink.
        session
            .submit(&ExecJob::new("Scans (M-Sum)", 1 << 12, 1))
            .unwrap()
            .wait()
            .unwrap();
        let sink = Arc::new(TraceSink::new(session.workers(), session.clock_domain()));
        let r = session
            .submit_traced(&ExecJob::new("Scans (M-Sum)", 1 << 12, 2), &sink)
            .unwrap()
            .wait()
            .unwrap();
        let trace = sink.collect();
        let begins = trace.count(|k| matches!(k, hbp_trace::EventKind::TaskBegin { .. }));
        assert_eq!(begins, r.work, "sink holds exactly the traced job's tasks");
        assert_eq!(trace.segments().unclosed, 0);
    }
}
