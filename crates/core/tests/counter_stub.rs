//! Stub counter-source parity: a native run with `CounterMode::Stub`
//! must emit `MissDelta` events whose per-worker totals carry the
//! stub's exact arithmetic signature, and the trace must align against
//! a sim run of the same kernel under the cross-backend completeness
//! check.
//!
//! The stub's k-th read on worker `w` is `k·(w+1)·[17, 5, 2]`, so every
//! delta (over any number of intervening reads — nested task windows
//! span more than one) is `x·(w+1)·[17, 5, 2]` for some integer `x`.
//! The per-worker totals therefore keep the components in exact
//! `17 : 5 : 2` ratio — the parity signature this test asserts.

use std::sync::Arc;

use hbp_core::prelude::*;
use hbp_core::sched::perf::stub_task_delta;
use hbp_core::sched::CounterMode;
use hbp_core::trace::EventKind;

fn stub_executor(workers: usize) -> NativeExecutor {
    NativeExecutor {
        counters: CounterMode::Stub,
        ..NativeExecutor::new(workers, 7)
    }
}

fn miss_totals(trace: &hbp_core::trace::Trace) -> Vec<(u64, u64, u64)> {
    let mut tot = vec![(0u64, 0u64, 0u64); trace.workers];
    for ev in &trace.events {
        if let EventKind::MissDelta {
            heap_block,
            stack_block,
            stack_plain,
        } = ev.kind
        {
            let t = &mut tot[ev.worker as usize];
            t.0 += heap_block;
            t.1 += stack_block;
            t.2 += stack_plain;
        }
    }
    tot
}

#[test]
fn stub_deltas_carry_the_stub_signature_per_worker() {
    let ex = stub_executor(2);
    let sink = Arc::new(TraceSink::new(2, ClockDomain::WallNs));
    ex.execute_traced(&ExecJob::new("Sort (SPMS)", 1 << 12, 3), &sink)
        .expect("SPMS has a native kernel");
    let trace = sink.collect();
    assert_eq!(trace.dropped, 0);

    let totals = miss_totals(&trace);
    let mut nonzero = 0;
    for (w, t) in totals.iter().enumerate() {
        if *t == (0, 0, 0) {
            continue; // this worker executed no traced task
        }
        nonzero += 1;
        let base = stub_task_delta(w);
        assert_eq!(
            base,
            [17 * (w as u64 + 1), 5 * (w as u64 + 1), 2 * (w as u64 + 1)]
        );
        assert_eq!(t.0 % base[0], 0, "worker {w} heap total {t:?}");
        let x = t.0 / base[0];
        assert!(x > 0, "worker {w}");
        assert_eq!(t.1, x * base[1], "worker {w} stack total {t:?}");
        assert_eq!(t.2, x * base[2], "worker {w} plain total {t:?}");
    }
    assert!(nonzero >= 1, "worker 0 runs the root task: {totals:?}");
    assert_ne!(totals[0], (0, 0, 0), "root worker always samples");
}

#[test]
fn stub_native_trace_aligns_against_sim_cross_backend() {
    let job = ExecJob::new("Sort (SPMS)", 1 << 12, 42);

    let sim = SimExecutor {
        machine: MachineConfig::new(4, 1 << 12, 32),
        policy: Policy::Pws,
    };
    let sim_sink = Arc::new(TraceSink::new(sim.workers(), ClockDomain::Virtual));
    sim.execute_traced(&job, &sim_sink).expect("sim runs SPMS");

    let nat = stub_executor(2);
    let nat_sink = Arc::new(TraceSink::new(2, ClockDomain::WallNs));
    nat.execute_traced(&job, &nat_sink)
        .expect("SPMS has a native kernel");

    let d = hbp_core::trace::diff(&sim_sink.collect(), &nat_sink.collect());
    // Cross-backend: id spaces differ (node ids vs fork ordinals), so the
    // contract is per-side completeness plus miss totals on both sides.
    assert!(d.a.complete(), "sim side complete: {d}");
    assert!(d.b.complete(), "native side complete: {d}");
    assert!(
        d.a.misses.0 + d.a.misses.1 + d.a.misses.2 > 0,
        "sim predicts misses: {d}"
    );
    assert!(
        d.b.misses.0 + d.b.misses.1 + d.b.misses.2 > 0,
        "stub source measures misses: {d}"
    );
}

#[test]
fn counters_off_means_no_miss_deltas() {
    let ex = NativeExecutor {
        counters: CounterMode::Off,
        ..NativeExecutor::new(2, 7)
    };
    let sink = Arc::new(TraceSink::new(2, ClockDomain::WallNs));
    ex.execute_traced(&ExecJob::new("Scans (M-Sum)", 1 << 12, 3), &sink)
        .expect("M-Sum has a native kernel");
    let trace = sink.collect();
    assert_eq!(
        trace.count(|k| matches!(k, EventKind::MissDelta { .. })),
        0,
        "Off must sample nothing"
    );
}
