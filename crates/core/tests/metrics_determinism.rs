//! Registry snapshot determinism on the sim backend: a fixed-seed sim
//! job folds report-derived tallies into the registry, and the report
//! is deterministic — so reset → run → expose must render byte-identical
//! Prometheus-text and JSON documents on every repetition.
//!
//! Lives in its own integration-test binary (own process) so no other
//! test's native pool can publish into the global registry mid-window.

use std::sync::Mutex;

use hbp_core::metrics::{json, prometheus_text};
use hbp_core::prelude::*;

/// Both tests mutate the process-global registry; run them one at a
/// time (the test harness threads them in parallel by default).
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn run_once(ex: &SimExecutor, job: &ExecJob) -> (String, String) {
    let m = hbp_core::metrics::global();
    m.set_enabled(true);
    m.reset();
    ex.execute(job).expect("sim runs every registry row");
    let snap = m.snapshot();
    (prometheus_text(&snap), json(&snap))
}

#[test]
fn sim_registry_exposition_is_byte_deterministic() {
    let _g = REGISTRY_LOCK.lock().unwrap();
    let ex = SimExecutor {
        machine: MachineConfig::new(4, 1 << 12, 32),
        policy: Policy::Pws,
    };
    let job = ExecJob::new("Sort (SPMS)", 1 << 12, 42);

    let (prom_a, json_a) = run_once(&ex, &job);
    let (prom_b, json_b) = run_once(&ex, &job);

    assert_eq!(prom_a, prom_b, "Prometheus text must not drift");
    assert_eq!(json_a, json_b, "JSON snapshot must not drift");

    // And the folded tallies are real: tasks and steals both nonzero.
    assert!(
        prom_a.contains("hbp_tasks_executed_total"),
        "task family present"
    );
    let m = hbp_core::metrics::global();
    let snap = m.snapshot();
    assert!(snap.total_tasks() > 0, "sim folds task counts in");
    assert!(snap.jobs_completed == 1, "one job per window");
    m.set_enabled(false);
}

#[test]
fn disabled_registry_publishes_nothing() {
    let _g = REGISTRY_LOCK.lock().unwrap();
    let ex = SimExecutor {
        machine: MachineConfig::new(2, 1 << 10, 32),
        policy: Policy::Pws,
    };
    let m = hbp_core::metrics::global();
    m.set_enabled(false);
    m.reset();
    ex.execute(&ExecJob::new("Scans (M-Sum)", 512, 3))
        .expect("sim runs M-Sum");
    let snap = m.snapshot();
    assert_eq!(snap.total_tasks(), 0);
    assert_eq!(snap.jobs_completed, 0);
}
