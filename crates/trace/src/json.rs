//! A minimal, dependency-free JSON reader.
//!
//! The build environment has no `serde_json`, but two tools need to
//! *read* JSON: the Chrome-trace smoke validation (CI re-parses the
//! exported file) and `bench_diff` (comparing `BENCH_*.json` records).
//! This is a strict recursive-descent parser for that purpose — it
//! accepts exactly the JSON this repo writes plus standard escapes, and
//! reports the byte offset of the first error.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            fields.push((key, self.value()?));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.i
                            ))
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#)
            .expect("valid json");
        assert_eq!(
            doc.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(|c| c.as_str()),
            Some("x\ny")
        );
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let doc = parse(r#""\u0041\u00e9 é""#).expect("valid");
        assert_eq!(doc.as_str(), Some("Aé é"));
    }
}
