//! Chrome-trace (a.k.a. Trace Event Format) JSON export.
//!
//! The output loads in `chrome://tracing` and <https://ui.perfetto.dev>:
//! one *process* per exported trace (so a multi-algorithm run like
//! `HBP_TRACE=1 table1` renders as parallel process lanes), one *thread*
//! per worker, complete (`"ph":"X"`) events for execution segments,
//! instant events for steals / failed probes / region attaches, and
//! counter tracks for the cache-miss deltas.
//!
//! Timestamps: Chrome expects microseconds. Virtual-time traces export
//! one virtual unit as one microsecond; wall-clock traces divide
//! nanoseconds by 1000 (keeping sub-µs precision as fractions).

use crate::event::{ClockDomain, EventKind};
use crate::trace::Trace;

/// Export one trace as Chrome-trace JSON.
pub fn chrome_trace(trace: &Trace) -> String {
    chrome_trace_multi([("hbp", trace)])
}

/// An extra counter track to render alongside a trace's task lanes:
/// named sample series (queue depth, steal rate, registry snapshots…)
/// that Perfetto draws as a stacked area chart from `"ph":"C"` events.
///
/// Timestamps are in the companion trace's clock domain and are
/// converted exactly like event timestamps on export.
#[derive(Debug, Clone)]
pub struct CounterTrack {
    /// Track name (the counter lane's label).
    pub name: String,
    /// Series names — the keys of each sample's `args` object.
    pub series: Vec<String>,
    /// `(t, values)` samples; `values` aligns with `series` (shorter
    /// rows are padded with zeros on export).
    pub samples: Vec<(u64, Vec<i64>)>,
}

impl CounterTrack {
    pub fn new(name: impl Into<String>, series: Vec<String>) -> Self {
        CounterTrack {
            name: name.into(),
            series,
            samples: Vec::new(),
        }
    }

    /// Append one sample row.
    pub fn push(&mut self, t: u64, values: Vec<i64>) {
        self.samples.push((t, values));
    }
}

/// [`chrome_trace`] plus extra [`CounterTrack`]s (process lane `name`,
/// one `"ph":"C"` event per sample, all on the trace's process id).
pub fn chrome_trace_with_tracks(name: &str, trace: &Trace, tracks: &[CounterTrack]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    emit_process(&mut out, &mut first, 1, name, trace);
    for track in tracks {
        emit_counter_track(&mut out, &mut first, 1, trace.clock, track);
    }
    out.push_str("\n]}\n");
    out
}

fn emit_counter_track(
    out: &mut String,
    first: &mut bool,
    pid: usize,
    clock: ClockDomain,
    track: &CounterTrack,
) {
    let ts = |t: u64| -> String {
        match clock {
            ClockDomain::Virtual => format!("{t}"),
            ClockDomain::WallNs => format!("{:.3}", t as f64 / 1000.0),
        }
    };
    for (t, values) in &track.samples {
        let args = track
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("\"{}\":{}", escape(s), values.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(",");
        let line = format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"name\":\"{}\",\"args\":{{{args}}}}}",
            ts(*t),
            escape(&track.name)
        );
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    }
}

/// Export several named traces into one Chrome-trace JSON document,
/// one process lane per entry.
pub fn chrome_trace_multi<'a>(entries: impl IntoIterator<Item = (&'a str, &'a Trace)>) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (pid0, (name, trace)) in entries.into_iter().enumerate() {
        let pid = pid0 + 1;
        emit_process(&mut out, &mut first, pid, name, trace);
    }
    out.push_str("\n]}\n");
    out
}

fn emit_process(out: &mut String, first: &mut bool, pid: usize, name: &str, trace: &Trace) {
    let ts = |t: u64| -> String {
        match trace.clock {
            ClockDomain::Virtual => format!("{t}"),
            ClockDomain::WallNs => format!("{:.3}", t as f64 / 1000.0),
        }
    };
    let mut push = |line: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    push(format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    ));
    push(format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_sort_index\",\"args\":{{\"sort_index\":{pid}}}}}"
    ));
    for w in 0..trace.workers {
        // Domain-sharded pools annotate their lanes so locality is
        // visible at a glance; flat traces keep the plain name.
        let lane = match trace.domains.get(w) {
            Some(d) => format!("worker {w} (dom {d})"),
            None => format!("worker {w}"),
        };
        push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{w},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(&lane)
        ));
    }

    // Execution segments as complete events.
    for s in &trace.segments().segs {
        let misses = if s.heap_block + s.stack_block + s.stack_plain > 0 {
            format!(
                ",\"heap_block\":{},\"stack_block\":{},\"stack_plain\":{}",
                s.heap_block, s.stack_block, s.stack_plain
            )
        } else {
            String::new()
        };
        push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"task {}\",\"cat\":\"task\",\"args\":{{\"task\":{}{}}}}}",
            s.worker,
            ts(s.start),
            ts(s.end - s.start),
            s.task,
            s.task,
            misses
        ));
    }

    // Instant events and miss counters.
    let mut cum = vec![(0u64, 0u64, 0u64); trace.workers];
    for ev in &trace.events {
        let w = ev.worker;
        match ev.kind {
            EventKind::StealCommit { task, victim, count, cross_domain } => {
                let xdom = if cross_domain { " [x-dom]" } else { "" };
                push(format!(
                    "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{w},\"ts\":{},\"s\":\"t\",\"name\":\"steal task {task} (x{count}) <- w{victim}{xdom}\",\"cat\":\"steal\"}}",
                    ts(ev.t)
                ))
            }
            EventKind::StealFail => push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{w},\"ts\":{},\"s\":\"t\",\"name\":\"steal fail\",\"cat\":\"steal\"}}",
                ts(ev.t)
            )),
            EventKind::RegionAttach { task, region } => push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{w},\"ts\":{},\"s\":\"t\",\"name\":\"region {region} for task {task}\",\"cat\":\"region\"}}",
                ts(ev.t)
            )),
            EventKind::MissDelta { heap_block, stack_block, stack_plain } => {
                let c = &mut cum[w as usize];
                c.0 += heap_block;
                c.1 += stack_block;
                c.2 += stack_plain;
                push(format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{w},\"ts\":{},\"name\":\"misses w{w}\",\"args\":{{\"heap_block\":{},\"stack_block\":{},\"stack_plain\":{}}}}}",
                    ts(ev.t), c.0, c.1, c.2
                ));
            }
            _ => {}
        }
    }
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::sink::TraceSink;

    #[test]
    fn export_parses_and_has_segment_and_steal_events() {
        let sink = TraceSink::with_capacity(2, ClockDomain::Virtual, 64);
        sink.push(0, 0, EventKind::TaskBegin { task: 0 });
        sink.push(
            0,
            4,
            EventKind::Fork {
                parent: 0,
                left: 1,
                right: 2,
            },
        );
        sink.push(0, 4, EventKind::TaskBegin { task: 1 });
        sink.push(
            1,
            6,
            EventKind::StealCommit {
                task: 2,
                victim: 0,
                count: 1,
                cross_domain: false,
            },
        );
        sink.push(1, 10, EventKind::TaskBegin { task: 2 });
        sink.push(
            1,
            12,
            EventKind::MissDelta {
                heap_block: 3,
                stack_block: 1,
                stack_plain: 0,
            },
        );
        sink.push(1, 12, EventKind::TaskEnd { task: 2 });
        sink.push(0, 13, EventKind::TaskEnd { task: 1 });
        let json = chrome_trace(&sink.collect());
        let doc = json::parse(&json).expect("exported chrome trace must parse");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(events.len() >= 6);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert!(phases.contains(&"X"), "segment events present");
        assert!(phases.contains(&"i"), "instant events present");
        assert!(phases.contains(&"C"), "counter events present");
        assert!(phases.contains(&"M"), "metadata events present");
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn counter_tracks_export_alongside_the_trace() {
        let sink = TraceSink::with_capacity(1, ClockDomain::Virtual, 16);
        sink.push(0, 0, EventKind::TaskBegin { task: 0 });
        sink.push(0, 10, EventKind::TaskEnd { task: 0 });
        let mut track = CounterTrack::new("queue depth", vec!["w0".into(), "w1".into()]);
        track.push(0, vec![2, 0]);
        track.push(5, vec![1]); // short row: w1 pads to 0
        let out = chrome_trace_with_tracks("run", &sink.collect(), &[track]);
        let doc = json::parse(&out).expect("export parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let counters: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
                    && e.get("name").and_then(|n| n.as_str()) == Some("queue depth")
            })
            .collect();
        assert_eq!(counters.len(), 2);
        let a0 = counters[0].get("args").expect("args");
        assert_eq!(a0.get("w0").and_then(|v| v.as_f64()), Some(2.0));
        let a1 = counters[1].get("args").expect("args");
        assert_eq!(a1.get("w1").and_then(|v| v.as_f64()), Some(0.0), "padded");
    }
}
