//! [`Trace`]: a collected event stream, and its segment reconstruction.

use crate::event::{ClockDomain, EventKind, TraceEvent};

/// A merged, seq-sorted recording of one execution.
#[derive(Debug, Clone)]
pub struct Trace {
    /// What the timestamps count.
    pub clock: ClockDomain,
    /// Number of workers the sink was sized for.
    pub workers: usize,
    /// All events, sorted by [`TraceEvent::seq`].
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow (0 for a complete trace).
    pub dropped: u64,
    /// Per-worker cache-domain labels (`domains[w]` = worker `w`'s
    /// domain), when the recording pool was domain-sharded or
    /// `tag:`-labelled. Empty for the sim backend and flat pools —
    /// analyses must treat empty as "everything is one domain".
    pub domains: Vec<u32>,
}

impl Trace {
    /// Largest timestamp in the trace (the recorded end of execution).
    pub fn makespan(&self) -> u64 {
        self.events.iter().map(|e| e.t).max().unwrap_or(0)
    }

    /// Count of events matching `pred`.
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> u64 {
        self.events.iter().filter(|e| pred(&e.kind)).count() as u64
    }

    /// Reconstruct execution segments (see [`Segment`]). Unclosed opens
    /// (possible on truncated traces) are dropped and counted in
    /// [`Segments::unclosed`].
    pub fn segments(&self) -> Segments {
        let mut stacks: Vec<Vec<Segment>> = vec![Vec::new(); self.workers];
        let mut segs: Vec<Segment> = Vec::new();
        let mut mismatched = 0u64;
        for ev in &self.events {
            let w = ev.worker as usize;
            match ev.kind {
                EventKind::TaskBegin { task } | EventKind::JoinResume { task } => {
                    let depth = stacks[w].len() as u32;
                    stacks[w].push(Segment {
                        worker: ev.worker,
                        task,
                        start: ev.t,
                        end: ev.t,
                        depth,
                        open_seq: ev.seq,
                        close_seq: ev.seq,
                        resumed: matches!(ev.kind, EventKind::JoinResume { .. }),
                        heap_block: 0,
                        stack_block: 0,
                        stack_plain: 0,
                    });
                }
                // On the sim backend a fork closes the parent's segment
                // (the left child's TaskBegin follows); on the native
                // backend the worker keeps running inside the current
                // segment, so the fork is only a marker.
                EventKind::Fork { parent, .. } if self.clock == ClockDomain::Virtual => {
                    match stacks[w].pop() {
                        Some(mut s) if s.task == parent => {
                            s.end = ev.t;
                            s.close_seq = ev.seq;
                            segs.push(s);
                        }
                        Some(s) => {
                            mismatched += 1;
                            stacks[w].push(s);
                        }
                        None => mismatched += 1,
                    }
                }
                EventKind::TaskEnd { task } => match stacks[w].pop() {
                    Some(mut s) if s.task == task => {
                        s.end = ev.t;
                        s.close_seq = ev.seq;
                        segs.push(s);
                    }
                    Some(s) => {
                        mismatched += 1;
                        stacks[w].push(s);
                    }
                    None => mismatched += 1,
                },
                EventKind::MissDelta {
                    heap_block,
                    stack_block,
                    stack_plain,
                } => {
                    if let Some(s) = stacks[w].last_mut() {
                        s.heap_block += heap_block;
                        s.stack_block += stack_block;
                        s.stack_plain += stack_plain;
                    }
                }
                _ => {}
            }
        }
        let unclosed = stacks.iter().map(|s| s.len() as u64).sum::<u64>() + mismatched;
        Segments { segs, unclosed }
    }
}

/// One contiguous run of a task on one worker.
///
/// On the sim backend segments are flat (`depth == 0`) and a task has
/// one segment per fork gap: `[begin..fork]`, `[resume..fork]`, …,
/// `[resume..end]`. On the native backend segments nest: a task stolen
/// during a join-wait executes at `depth + 1` inside the waiting
/// segment.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Executing worker.
    pub worker: u32,
    /// Task id (backend-scoped).
    pub task: u32,
    /// Open timestamp.
    pub start: u64,
    /// Close timestamp.
    pub end: u64,
    /// Nesting depth at open (0 = top-level).
    pub depth: u32,
    /// Seq of the opening event ([`EventKind::TaskBegin`] / [`EventKind::JoinResume`]).
    pub open_seq: u64,
    /// Seq of the closing event ([`EventKind::Fork`] on sim, or [`EventKind::TaskEnd`]).
    pub close_seq: u64,
    /// Whether the segment was opened by a [`EventKind::JoinResume`].
    pub resumed: bool,
    /// Heap block misses charged to this segment (sim).
    pub heap_block: u64,
    /// Stack block misses charged to this segment (sim).
    pub stack_block: u64,
    /// Stack plain misses charged to this segment (sim).
    pub stack_plain: u64,
}

impl Segment {
    /// Segment duration in the trace's clock domain.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// Result of [`Trace::segments`].
#[derive(Debug, Clone)]
pub struct Segments {
    /// Closed segments, in close order per worker.
    pub segs: Vec<Segment>,
    /// Opens without a matching close (0 for a complete trace).
    pub unclosed: u64,
}
