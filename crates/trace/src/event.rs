//! The backend-agnostic trace event model.
//!
//! Both execution backends — the discrete-event simulator
//! (`hbp-sched`'s `sim`) and the real-threads pool (`native`) — emit the
//! same [`EventKind`]s, so every analysis in this crate (segments,
//! critical path, utilization, Chrome export) is written once against
//! this model. The only difference between backends is the
//! [`ClockDomain`] of the timestamps: simulated virtual units versus
//! wall-clock nanoseconds.

/// What the `t` field of a [`TraceEvent`] counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Simulated virtual time units (the sim backend). Deterministic;
    /// the trace's critical path equals the simulator's makespan.
    Virtual,
    /// Wall-clock nanoseconds since the pool epoch (the native backend).
    WallNs,
}

/// One structured trace event.
///
/// `seq` is a globally unique sequence number assigned at emission. It
/// is causally consistent: events emitted by the same worker are
/// seq-ordered, and an event that observes another worker's effect
/// (e.g. a steal of a forked task) has a larger `seq` than the event it
/// observed (the synchronization that published the effect also orders
/// the counter updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global emission sequence number (total order, causally consistent).
    pub seq: u64,
    /// Timestamp in the trace's [`ClockDomain`].
    pub t: u64,
    /// Worker (native) / core (sim) that emitted the event.
    pub worker: u32,
    /// The event payload.
    pub kind: EventKind,
}

/// The event vocabulary shared by both backends.
///
/// Task identifiers are backend-scoped: the simulator uses the recorded
/// computation's node ids; the native pool numbers the root `0` and each
/// forked branch with a fresh id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task segment starts executing on the emitting worker. On the
    /// sim backend this opens a flat segment (one per worker at a time);
    /// on the native backend segments nest (a stolen task executes
    /// inside the join-wait of the enclosing one).
    TaskBegin {
        /// Task id in the backend's scope.
        task: u32,
    },
    /// The task finished on the emitting worker; closes the segment
    /// opened by the matching [`EventKind::TaskBegin`] /
    /// [`EventKind::JoinResume`].
    TaskEnd {
        /// Task id in the backend's scope.
        task: u32,
    },
    /// (sim) The last-finishing child resumes its parent past the join:
    /// opens a new segment for `task` on the emitting worker — the
    /// usurpation edge of Def 4.1 when the worker differs from the
    /// parent's previous executor.
    JoinResume {
        /// The resumed (parent) task.
        task: u32,
    },
    /// A fork: `parent` suspends, `right` is published for stealing.
    /// On the sim backend this closes the parent's segment and `left`
    /// begins immediately on the same worker; on the native backend the
    /// emitting worker simply continues into the left branch inside the
    /// current segment (`left == parent` there).
    Fork {
        /// Forking task.
        parent: u32,
        /// Branch the emitting worker continues with.
        left: u32,
        /// Branch pushed on the deque (the steal candidate).
        right: u32,
    },
    /// The emitting worker (the thief) took `task` from `victim`'s
    /// deque. On the sim backend the matching [`EventKind::TaskBegin`]
    /// follows `steal_cost` units later; on the native backend it
    /// follows immediately. A batched steal (native, Chase-Lev
    /// `steal_batch_with`) claims `count` tasks in one claiming
    /// sequence and emits a single commit with `task` = the first task
    /// taken; unbatched steals and the sim always emit `count == 1`.
    StealCommit {
        /// The first stolen task of the claimed run.
        task: u32,
        /// The worker it was stolen from.
        victim: u32,
        /// How many tasks this commit claimed (>= 1).
        count: u32,
        /// Whether thief and victim sit in different cache domains
        /// (native, domain-sharded or `tag:`-labelled pools; always
        /// false on the sim backend and on flat pools).
        cross_domain: bool,
    },
    /// An unsuccessful steal attempt by the emitting worker: a failed
    /// random probe (RWS / native) or a newly observed failed priority
    /// round (PWS, deduplicated like Cor 4.1's attempt accounting).
    StealFail,
    /// (sim) A fresh §3.3 stack region was attached for `task` — the
    /// root, or a stolen task opening its own region.
    RegionAttach {
        /// Task that owns the new region.
        task: u32,
        /// Region id from the stack allocator.
        region: u32,
    },
    /// (sim) Cache misses charged to the segment currently open on the
    /// emitting worker, emitted just before the segment closes. Summing
    /// deltas over a trace reproduces the `ExecReport` counters.
    MissDelta {
        /// Coherence (block) misses on global-heap addresses.
        heap_block: u64,
        /// Coherence (block) misses on execution-stack addresses.
        stack_block: u64,
        /// Plain (cold + capacity) misses on execution-stack addresses.
        stack_plain: u64,
    },
}

impl EventKind {
    /// Short kind tag for display and Chrome-trace categories.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::TaskBegin { .. } => "begin",
            EventKind::TaskEnd { .. } => "end",
            EventKind::JoinResume { .. } => "resume",
            EventKind::Fork { .. } => "fork",
            EventKind::StealCommit { .. } => "steal",
            EventKind::StealFail => "steal-fail",
            EventKind::RegionAttach { .. } => "region",
            EventKind::MissDelta { .. } => "misses",
        }
    }
}
