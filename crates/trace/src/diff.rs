//! Structural trace diffing: align two traces of the same kernel and
//! report where they diverge.
//!
//! `bench_diff` gates *aggregate* table1 metrics; this module pinpoints
//! *scheduling* changes. Two traces of the same computation are aligned
//! **by task id**: on the sim backend task ids are the recorded
//! computation's node ids, so two runs of the same kernel under
//! different policies (or before/after a scheduler change) share an id
//! space and their critical paths can be compared hop by hop. On the
//! native backend ids are fork-ordinals — scheduling-dependent names —
//! so the per-id alignment degrades gracefully to the structural
//! checks: same task-id *set*, same fork/steal/segment accounting, every
//! begun task ended. That weaker comparison is exactly what the
//! mutex-vs-Chase-Lev regression test needs: two pools executing the
//! same kernel must produce structurally identical traces even though
//! every timestamp differs.

use std::collections::BTreeSet;

use crate::critical::{critical_path_of, CriticalPath};
use crate::event::EventKind;
use crate::trace::Trace;

/// Per-trace structural tallies (one side of a [`TraceDiff`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceShape {
    /// Distinct task ids with a `TaskBegin`.
    pub tasks: u64,
    /// `Fork` events.
    pub forks: u64,
    /// `TaskBegin` events.
    pub begins: u64,
    /// `TaskEnd` events.
    pub ends: u64,
    /// Committed steals (claiming sequences — a batched steal that
    /// moves k tasks counts once).
    pub steals: u64,
    /// Tasks moved by committed steals (sum of `StealCommit::count`).
    /// One batched commit of k tasks and k unbatched commits tally the
    /// same here, which is why structural equality never compares raw
    /// `steals`.
    pub stolen_tasks: u64,
    /// Committed steals whose thief and victim sat in different cache
    /// domains (`StealCommit::cross_domain`; 0 for sim traces and flat
    /// pools). Display-only locality telemetry — structural equality
    /// never compares it, since domain sharding is a scheduling choice.
    pub steals_cross: u64,
    /// Failed steal attempts.
    pub steal_fails: u64,
    /// Trace makespan (clock-domain units).
    pub makespan: u64,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Summed `MissDelta` payloads: (heap block, stack block, stack
    /// plain). Sim traces carry model-predicted misses here; native
    /// traces carry whatever the realized counter source measured — the
    /// cross-backend `trace_diff` mode reports both side by side rather
    /// than comparing them for equality.
    pub misses: (u64, u64, u64),
}

impl TraceShape {
    fn of(t: &Trace) -> Self {
        let mut s = TraceShape {
            makespan: t.makespan(),
            dropped: t.dropped,
            ..TraceShape::default()
        };
        let mut ids = BTreeSet::new();
        for ev in &t.events {
            match ev.kind {
                EventKind::TaskBegin { task } => {
                    ids.insert(task);
                    s.begins += 1;
                }
                EventKind::TaskEnd { .. } => s.ends += 1,
                EventKind::Fork { .. } => s.forks += 1,
                EventKind::StealCommit {
                    count,
                    cross_domain,
                    ..
                } => {
                    s.steals += 1;
                    s.stolen_tasks += u64::from(count);
                    s.steals_cross += u64::from(cross_domain);
                }
                EventKind::StealFail => s.steal_fails += 1,
                EventKind::MissDelta {
                    heap_block,
                    stack_block,
                    stack_plain,
                } => {
                    s.misses.0 += heap_block;
                    s.misses.1 += stack_block;
                    s.misses.2 += stack_plain;
                }
                _ => {}
            }
        }
        s.tasks = ids.len() as u64;
        s
    }

    /// Whether this side on its own is a complete record: every begun
    /// task ended and no events were lost to ring overflow. This is the
    /// per-side check the cross-backend `trace_diff` mode falls back to
    /// when the two sides' task-id spaces don't align (sim node ids vs
    /// native fork ordinals).
    pub fn complete(&self) -> bool {
        self.begins == self.ends && self.dropped == 0
    }
}

/// First hop index at which two critical paths part ways.
#[derive(Debug, Clone)]
pub struct CpDivergence {
    /// Index into both hop lists (root-start = 0).
    pub hop: usize,
    /// `(task, worker)` of the hop in trace A (`None` when A's path is
    /// a strict prefix of B's).
    pub a: Option<(u32, u32)>,
    /// `(task, worker)` of the hop in trace B (`None` symmetric).
    pub b: Option<(u32, u32)>,
}

/// The result of [`diff`]: shapes, id-set alignment, and (for sim
/// traces) the critical-path comparison.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Structural tallies of trace A.
    pub a: TraceShape,
    /// Structural tallies of trace B.
    pub b: TraceShape,
    /// Task ids begun in A but not in B (alignment leftovers; capped at
    /// [`TraceDiff::ID_CAP`] entries, `only_a_total` is the real count).
    pub only_a: Vec<u32>,
    /// Total ids only in A.
    pub only_a_total: u64,
    /// Task ids begun in B but not in A (same cap).
    pub only_b: Vec<u32>,
    /// Total ids only in B.
    pub only_b_total: u64,
    /// Critical path of A (sim traces only).
    pub cp_a: Option<CriticalPath>,
    /// Critical path of B (sim traces only).
    pub cp_b: Option<CriticalPath>,
    /// Where the two critical paths first diverge (`None` when either
    /// path is unavailable, or when they visit identical
    /// task-on-worker hops).
    pub divergence: Option<CpDivergence>,
}

impl TraceDiff {
    /// Listing cap for the `only_*` id vectors.
    pub const ID_CAP: usize = 16;

    /// Whether the two traces execute the same task structure: same
    /// task-id set, same fork/begin/end tallies, both balanced and
    /// complete. Timestamps, workers, and steal counts may differ
    /// freely — this is the invariant two *correct* schedulers of the
    /// same kernel must share.
    pub fn structurally_equal(&self) -> bool {
        self.only_a_total == 0
            && self.only_b_total == 0
            && self.a.tasks == self.b.tasks
            && self.a.forks == self.b.forks
            && self.a.begins == self.a.ends
            && self.b.begins == self.b.ends
            && self.a.dropped == 0
            && self.b.dropped == 0
    }
}

/// Align `a` and `b` by task id and compare (see module docs).
pub fn diff(a: &Trace, b: &Trace) -> TraceDiff {
    let begun = |t: &Trace| -> BTreeSet<u32> {
        t.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::TaskBegin { task } => Some(task),
                _ => None,
            })
            .collect()
    };
    let (ids_a, ids_b) = (begun(a), begun(b));
    let only_a_all: Vec<u32> = ids_a.difference(&ids_b).copied().collect();
    let only_b_all: Vec<u32> = ids_b.difference(&ids_a).copied().collect();

    let cp_a = critical_path_of(a, &a.segments()).ok();
    let cp_b = critical_path_of(b, &b.segments()).ok();
    let divergence = match (&cp_a, &cp_b) {
        (Some(pa), Some(pb)) => {
            let key = |p: &CriticalPath, i: usize| p.hops.get(i).map(|h| (h.task, h.worker));
            (0..pa.hops.len().max(pb.hops.len()))
                .find(|&i| key(pa, i) != key(pb, i))
                .map(|i| CpDivergence {
                    hop: i,
                    a: key(pa, i),
                    b: key(pb, i),
                })
        }
        _ => None,
    };

    TraceDiff {
        a: TraceShape::of(a),
        b: TraceShape::of(b),
        only_a_total: only_a_all.len() as u64,
        only_a: only_a_all.into_iter().take(TraceDiff::ID_CAP).collect(),
        only_b_total: only_b_all.len() as u64,
        only_b: only_b_all.into_iter().take(TraceDiff::ID_CAP).collect(),
        cp_a,
        cp_b,
        divergence,
    }
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let row = |f: &mut std::fmt::Formatter<'_>, name: &str, a: u64, b: u64| {
            let mark = if a == b { " " } else { "≠" };
            writeln!(f, "  {name:<14} {a:>12} {b:>12}  {mark}")
        };
        writeln!(f, "  {:<14} {:>12} {:>12}", "", "A", "B")?;
        row(f, "tasks", self.a.tasks, self.b.tasks)?;
        row(f, "forks", self.a.forks, self.b.forks)?;
        row(f, "begins", self.a.begins, self.b.begins)?;
        row(f, "ends", self.a.ends, self.b.ends)?;
        row(f, "steals", self.a.steals, self.b.steals)?;
        row(f, "stolen tasks", self.a.stolen_tasks, self.b.stolen_tasks)?;
        if self.a.steals_cross + self.b.steals_cross > 0 {
            row(f, "cross-domain", self.a.steals_cross, self.b.steals_cross)?;
        }
        row(f, "steal fails", self.a.steal_fails, self.b.steal_fails)?;
        row(f, "makespan", self.a.makespan, self.b.makespan)?;
        row(f, "dropped", self.a.dropped, self.b.dropped)?;
        let miss_sum = |m: (u64, u64, u64)| m.0 + m.1 + m.2;
        if miss_sum(self.a.misses) + miss_sum(self.b.misses) > 0 {
            writeln!(
                f,
                "  {:<14} {:>12} {:>12}   (heap block / stack block / stack plain; \
                 predicted vs measured — not compared)",
                "misses",
                format!(
                    "{}/{}/{}",
                    self.a.misses.0, self.a.misses.1, self.a.misses.2
                ),
                format!(
                    "{}/{}/{}",
                    self.b.misses.0, self.b.misses.1, self.b.misses.2
                ),
            )?;
        }
        if self.only_a_total + self.only_b_total > 0 {
            writeln!(
                f,
                "  id alignment: {} task(s) only in A {:?}, {} only in B {:?}",
                self.only_a_total, self.only_a, self.only_b_total, self.only_b
            )?;
        } else {
            writeln!(f, "  id alignment: identical task-id sets")?;
        }
        match (&self.cp_a, &self.cp_b) {
            (Some(pa), Some(pb)) => {
                writeln!(
                    f,
                    "  critical path: A = {} (work {} + steal {} + wait {}, {} hops) | \
                     B = {} (work {} + steal {} + wait {}, {} hops)",
                    pa.total,
                    pa.work,
                    pa.steal,
                    pa.queue_wait,
                    pa.hops.len(),
                    pb.total,
                    pb.work,
                    pb.steal,
                    pb.queue_wait,
                    pb.hops.len()
                )?;
                match &self.divergence {
                    None => writeln!(f, "  critical paths visit identical hops")?,
                    Some(d) => {
                        let side = |s: &Option<(u32, u32)>| match s {
                            Some((t, w)) => format!("task {t} on worker {w}"),
                            None => "path already ended".to_string(),
                        };
                        writeln!(
                            f,
                            "  critical paths diverge at hop {}: A runs {}, B runs {}",
                            d.hop,
                            side(&d.a),
                            side(&d.b)
                        )?;
                    }
                }
            }
            _ => writeln!(
                f,
                "  critical path: unavailable on at least one side (wall-clock or truncated trace)"
            )?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockDomain, TraceEvent};

    fn ev(seq: u64, t: u64, worker: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            t,
            worker,
            kind,
        }
    }

    /// A tiny two-worker sim-style trace: root forks task 1, worker 1
    /// steals it; both run to completion.
    fn steal_trace(stolen_by: u32) -> Trace {
        Trace {
            clock: ClockDomain::Virtual,
            workers: 2,
            events: vec![
                ev(1, 0, 0, EventKind::TaskBegin { task: 0 }),
                ev(
                    2,
                    2,
                    0,
                    EventKind::Fork {
                        parent: 0,
                        left: 2,
                        right: 1,
                    },
                ),
                ev(3, 2, 0, EventKind::TaskBegin { task: 2 }),
                ev(4, 4, 0, EventKind::TaskEnd { task: 2 }),
                ev(
                    5,
                    3,
                    stolen_by,
                    EventKind::StealCommit {
                        task: 1,
                        victim: 0,
                        count: 1,
                        cross_domain: false,
                    },
                ),
                ev(6, 4, stolen_by, EventKind::TaskBegin { task: 1 }),
                ev(7, 6, stolen_by, EventKind::TaskEnd { task: 1 }),
                ev(8, 6, stolen_by, EventKind::JoinResume { task: 0 }),
                ev(9, 7, stolen_by, EventKind::TaskEnd { task: 0 }),
            ],
            dropped: 0,
            domains: Vec::new(),
        }
    }

    #[test]
    fn identical_traces_diff_clean() {
        let t = steal_trace(1);
        let d = diff(&t, &t);
        assert!(d.structurally_equal());
        assert_eq!(d.only_a_total + d.only_b_total, 0);
        assert!(d.divergence.is_none(), "{:?}", d.divergence);
        assert_eq!(d.a, d.b);
        let text = d.to_string();
        assert!(text.contains("identical task-id sets"), "{text}");
        assert!(text.contains("identical hops"), "{text}");
    }

    #[test]
    fn different_thief_diverges_on_the_critical_path_but_not_structure() {
        // Same computation, same task ids — only the executing worker
        // of the stolen task changes (a scheduling difference).
        let d = diff(&steal_trace(1), &steal_trace(0));
        assert!(
            d.structurally_equal(),
            "structure is worker-independent: {d}"
        );
        let div = d.divergence.clone().expect("paths visit different workers");
        assert_eq!(div.a.map(|(t, _)| t), div.b.map(|(t, _)| t));
        assert_ne!(div.a.map(|(_, w)| w), div.b.map(|(_, w)| w));
        assert!(d.to_string().contains("diverge at hop"), "{d}");
    }

    /// A native-style trace where worker 0 forks tasks 1..=3 and worker
    /// 1 takes all three — either in one batched claiming sequence
    /// (`batched = true`: a single `StealCommit` with `count: 3`) or as
    /// three separate commits. Task structure is identical either way.
    fn batch_trace(batched: bool) -> Trace {
        let mut events = vec![ev(1, 0, 0, EventKind::TaskBegin { task: 0 })];
        let mut seq = 2;
        for t in 1..=3u32 {
            events.push(ev(
                seq,
                seq,
                0,
                EventKind::Fork {
                    parent: 0,
                    left: 0,
                    right: t,
                },
            ));
            seq += 1;
        }
        if batched {
            events.push(ev(
                seq,
                seq,
                1,
                EventKind::StealCommit {
                    task: 1,
                    victim: 0,
                    count: 3,
                    cross_domain: false,
                },
            ));
            seq += 1;
        } else {
            for t in 1..=3u32 {
                events.push(ev(
                    seq,
                    seq,
                    1,
                    EventKind::StealCommit {
                        task: t,
                        victim: 0,
                        count: 1,
                        cross_domain: false,
                    },
                ));
                seq += 1;
            }
        }
        for t in 1..=3u32 {
            events.push(ev(seq, seq, 1, EventKind::TaskBegin { task: t }));
            events.push(ev(seq + 1, seq + 1, 1, EventKind::TaskEnd { task: t }));
            seq += 2;
        }
        events.push(ev(seq, seq, 0, EventKind::TaskEnd { task: 0 }));
        Trace {
            clock: ClockDomain::WallNs,
            workers: 2,
            events,
            dropped: 0,
            domains: Vec::new(),
        }
    }

    #[test]
    fn batched_steals_do_not_break_structural_equality() {
        // Regression: one StealCommit covering k tasks must compare
        // structurally equal to k single-task commits — batching is a
        // scheduling choice, not a change to the computation.
        let d = diff(&batch_trace(true), &batch_trace(false));
        assert!(d.structurally_equal(), "batched steal flagged: {d}");
        assert_eq!(d.a.stolen_tasks, 3);
        assert_eq!(d.b.stolen_tasks, 3);
        assert_eq!(d.a.steals, 1, "one claiming sequence on the batched side");
        assert_eq!(d.b.steals, 3);
        let text = d.to_string();
        assert!(text.contains("stolen tasks"), "{text}");
    }

    #[test]
    fn miss_deltas_tally_per_side_without_breaking_equality() {
        // A sim trace predicting misses vs a native-style trace
        // measuring different ones: the totals surface side by side but
        // never participate in structural equality.
        let a = steal_trace(1);
        let mut b = steal_trace(1);
        b.events.push(ev(
            10,
            6,
            1,
            EventKind::MissDelta {
                heap_block: 7,
                stack_block: 3,
                stack_plain: 1,
            },
        ));
        let d = diff(&a, &b);
        assert!(d.structurally_equal(), "miss deltas are advisory: {d}");
        assert_eq!(d.a.misses, (0, 0, 0));
        assert_eq!(d.b.misses, (7, 3, 1));
        assert!(d.a.complete() && d.b.complete());
        assert!(d.to_string().contains("7/3/1"), "{d}");
    }

    #[test]
    fn incomplete_side_fails_the_per_side_check() {
        let mut t = steal_trace(1);
        t.events
            .retain(|e| !matches!(e.kind, EventKind::TaskEnd { task: 2 }));
        let d = diff(&t, &t);
        assert!(!d.a.complete(), "unended task must fail completeness");
        let mut dr = steal_trace(1);
        dr.dropped = 5;
        let d2 = diff(&dr, &dr);
        assert!(!d2.a.complete(), "dropped events must fail completeness");
        assert!(d2.to_string().contains("dropped"), "{d2}");
    }

    #[test]
    fn missing_task_breaks_alignment() {
        let a = steal_trace(1);
        let mut b = steal_trace(1);
        // Drop task 2's begin/end from B: the id sets no longer align.
        b.events.retain(|e| {
            !matches!(
                e.kind,
                EventKind::TaskBegin { task: 2 } | EventKind::TaskEnd { task: 2 }
            )
        });
        let d = diff(&a, &b);
        assert!(!d.structurally_equal());
        assert_eq!(d.only_a, vec![2]);
        assert_eq!(d.only_b_total, 0);
        assert!(d.to_string().contains("only in A"), "{d}");
    }
}
