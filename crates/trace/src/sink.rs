//! [`TraceSink`]: per-worker lock-free-append ring buffers.
//!
//! Each worker appends only to its own buffer, so an append is one
//! relaxed index load, one slot write, and one release index store — no
//! locks, no CAS, no cross-worker contention beyond the global sequence
//! counter (`fetch_add`, relaxed). The buffers are fixed-capacity rings:
//! when a worker outruns its capacity the oldest events are overwritten
//! and the overflow is reported as [`Trace::dropped`] (analyses that
//! need a complete trace, like the critical path, refuse truncated
//! traces instead of silently miscounting).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::event::{ClockDomain, EventKind, TraceEvent};
use crate::trace::Trace;

/// Default per-worker capacity (events). Overridable per sink with
/// [`TraceSink::with_capacity`]; the `HBP_TRACE_BUF` env knob is parsed
/// by `hbp_core::Config`, which passes the resolved capacity here.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// One worker's ring. Only the owning worker writes; `len` is the total
/// number of events ever appended (the ring holds the last `cap`).
struct WorkerBuf {
    cap: usize,
    len: AtomicUsize,
    slots: UnsafeCell<Vec<TraceEvent>>,
}

// SAFETY: the append contract (below) guarantees at most one thread
// writes a given buffer at a time, and readers observe `len` with
// Acquire after the writer's Release store, so every slot a reader
// dereferences was fully written first.
unsafe impl Sync for WorkerBuf {}

impl WorkerBuf {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            len: AtomicUsize::new(0),
            slots: UnsafeCell::new(Vec::with_capacity(cap.min(1 << 12))),
        }
    }

    /// Owner-only append (see [`TraceSink::push`] for the contract).
    fn push(&self, ev: TraceEvent) {
        let n = self.len.load(Ordering::Relaxed);
        // SAFETY: only the owning worker writes this buffer (the sink's
        // push contract), so the &mut is unique; readers wait for the
        // Release store below.
        let slots = unsafe { &mut *self.slots.get() };
        if n < self.cap {
            slots.push(ev);
        } else {
            slots[n % self.cap] = ev;
        }
        self.len.store(n + 1, Ordering::Release);
    }

    /// Snapshot: `(events present, total appended)`.
    fn snapshot(&self) -> (Vec<TraceEvent>, usize) {
        let n = self.len.load(Ordering::Acquire);
        // SAFETY: quiescence contract of `TraceSink::collect` — no
        // concurrent appends while collecting.
        let slots = unsafe { &*self.slots.get() };
        (slots.clone(), n)
    }
}

/// The shared recording endpoint both backends write into.
///
/// # Contract
///
/// * [`TraceSink::push`] for a given `worker` index must be called by at
///   most one thread at a time (each native worker owns its index; the
///   single-threaded simulator owns all of them).
/// * [`TraceSink::collect`] must only run while no pushes are in flight
///   (after the pool scope joined / the sim run returned).
pub struct TraceSink {
    clock: ClockDomain,
    seq: AtomicU64,
    bufs: Vec<WorkerBuf>,
    /// Per-worker cache-domain labels ([`TraceSink::set_domains`]); unset
    /// sinks collect with an empty `Trace::domains`.
    domains: OnceLock<Vec<u32>>,
}

impl TraceSink {
    /// A sink for `workers` workers at the default per-worker capacity
    /// ([`DEFAULT_CAPACITY`]; use [`TraceSink::with_capacity`] — or the
    /// `HBP_TRACE_BUF` knob via `hbp_core::Config` — to size it).
    pub fn new(workers: usize, clock: ClockDomain) -> Self {
        Self::with_capacity(workers, clock, DEFAULT_CAPACITY)
    }

    /// A sink with an explicit per-worker ring capacity (events).
    pub fn with_capacity(workers: usize, clock: ClockDomain, cap: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(cap >= 1, "ring capacity must be positive");
        Self {
            clock,
            seq: AtomicU64::new(0),
            bufs: (0..workers).map(|_| WorkerBuf::new(cap)).collect(),
            domains: OnceLock::new(),
        }
    }

    /// Annotate the sink's worker lanes with cache-domain labels
    /// (`labels[w]` = worker `w`'s domain). Recording pools call this
    /// once, before the traced job starts; repeat calls with the same
    /// pool topology are no-ops.
    pub fn set_domains(&self, labels: &[u32]) {
        let _ = self.domains.set(labels.to_vec());
    }

    /// Number of worker buffers.
    pub fn workers(&self) -> usize {
        self.bufs.len()
    }

    /// The clock domain events are stamped in.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Append an event to `worker`'s ring (see the sink contract).
    #[inline]
    pub fn push(&self, worker: usize, t: u64, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.bufs[worker].push(TraceEvent {
            seq,
            t,
            worker: worker as u32,
            kind,
        });
    }

    /// Merge all worker rings into one seq-sorted [`Trace`]. Call only
    /// after the traced run has completed (quiescence contract).
    pub fn collect(&self) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for buf in &self.bufs {
            let (evs, total) = buf.snapshot();
            dropped += total.saturating_sub(evs.len()) as u64;
            events.extend(evs);
        }
        events.sort_by_key(|e| e.seq);
        Trace {
            clock: self.clock,
            workers: self.bufs.len(),
            events,
            dropped,
            domains: self.domains.get().cloned().unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_collect_roundtrip_is_seq_sorted() {
        let sink = TraceSink::with_capacity(2, ClockDomain::Virtual, 16);
        sink.push(1, 5, EventKind::StealFail);
        sink.push(0, 0, EventKind::TaskBegin { task: 7 });
        sink.push(0, 9, EventKind::TaskEnd { task: 7 });
        let tr = sink.collect();
        assert_eq!(tr.workers, 2);
        assert_eq!(tr.dropped, 0);
        let seqs: Vec<u64> = tr.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(tr.events[1].worker, 0);
        assert_eq!(tr.events[1].kind, EventKind::TaskBegin { task: 7 });
    }

    #[test]
    fn ring_overflow_reports_dropped_and_keeps_latest() {
        let sink = TraceSink::with_capacity(1, ClockDomain::WallNs, 4);
        for i in 0..10 {
            sink.push(0, i, EventKind::StealFail);
        }
        let tr = sink.collect();
        assert_eq!(tr.dropped, 6);
        assert_eq!(tr.events.len(), 4);
        // The survivors are the newest four, in seq order.
        let ts: Vec<u64> = tr.events.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_owner_appends_are_race_free() {
        let sink = std::sync::Arc::new(TraceSink::with_capacity(4, ClockDomain::WallNs, 1 << 12));
        std::thread::scope(|s| {
            for w in 0..4 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..1000 {
                        sink.push(w, i, EventKind::TaskBegin { task: i as u32 });
                    }
                });
            }
        });
        let tr = sink.collect();
        assert_eq!(tr.events.len(), 4000);
        assert_eq!(tr.dropped, 0);
        // seqs are unique.
        let mut seqs: Vec<u64> = tr.events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000);
    }
}
