//! # hbp-trace — structured event tracing for both execution backends
//!
//! The paper's results are statements about *where time goes*: block
//! (false-sharing) misses, steal delays, and the critical path under
//! PWS/RWS. Aggregate counters (the `ExecReport`) say *how much*;
//! this crate records *when and on which worker*, for the simulator's
//! virtual time and the native pool's wall clock alike, and turns the
//! recording into analyses:
//!
//! * [`event`] — the backend-agnostic model: task begin/end, fork,
//!   join-resume, steal commit/fail, stack-region attach, cache-miss
//!   deltas, each stamped with a [`ClockDomain`] timestamp and a
//!   causally consistent sequence number;
//! * [`sink`] — [`TraceSink`]: per-worker lock-free-append ring buffers
//!   (one relaxed load + slot write + release store per event; no locks,
//!   no CAS). Enabled and sized by configuration (`hbp_core::Config`
//!   parses `HBP_TRACE`/`HBP_TRACE_BUF`); overflow is reported, never
//!   silent;
//! * [`trace`] — the collected [`Trace`] and its reconstruction into
//!   execution [`Segment`]s (flat per worker on the sim backend, nested
//!   on the native one);
//! * [`critical`] — [`critical_path`]: exact critical-path extraction
//!   from a sim trace's join DAG, decomposed into work, steal charges,
//!   and deque queue-wait. Its `total` equals the simulator's
//!   virtual-time makespan *exactly* (an invariant the integration
//!   tests enforce for PWS and RWS);
//! * [`analyze`] — per-worker utilization, fork→steal latency
//!   histograms, and the paper-style [`TraceSummary`];
//! * [`diff`] — structural trace diffing: align two traces of the same
//!   kernel by task id, compare fork/steal/segment tallies, and report
//!   where the critical paths diverge (the `trace_diff` binary and the
//!   mutex-vs-Chase-Lev regression tests are built on it);
//! * [`chrome`] — Chrome-trace JSON export ([`chrome_trace`] /
//!   [`chrome_trace_multi`]) viewable in `chrome://tracing` or
//!   <https://ui.perfetto.dev>;
//! * [`json`] — a minimal JSON reader used to validate exports and to
//!   diff `BENCH_*.json` records (`bench_diff`).
//!
//! The crate is dependency-free and backend-agnostic: `hbp-sched`
//! pushes events from the sim event loop and the native workers;
//! `hbp-core` wires a sink through its `Executor` trait.

pub mod analyze;
pub mod chrome;
pub mod critical;
pub mod diff;
pub mod event;
pub mod json;
pub mod sink;
pub mod trace;

pub use analyze::{
    steal_latency_histogram, summarize, utilization, utilization_of, Histogram, TraceSummary,
};
pub use chrome::{chrome_trace, chrome_trace_multi, chrome_trace_with_tracks, CounterTrack};
pub use critical::{critical_path, critical_path_of, CpError, CpHop, CriticalPath, HopVia};
pub use diff::{diff, CpDivergence, TraceDiff, TraceShape};
pub use event::{ClockDomain, EventKind, TraceEvent};
pub use sink::{TraceSink, DEFAULT_CAPACITY};
pub use trace::{Segment, Segments, Trace};
