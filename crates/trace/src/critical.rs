//! Critical-path extraction from the recorded join DAG.
//!
//! A simulated execution ends when the root task's final segment closes.
//! Walking *backwards* from that segment, every segment's start is
//! released by exactly one predecessor:
//!
//! * a segment on the **same worker** closing at the same instant — the
//!   fork→left edge, the owner popping the sibling back, or the
//!   last-finishing child resuming the parent past a join;
//! * a **steal**: the thief's `StealCommit` immediately precedes the
//!   stolen task's `TaskBegin`, charging `steal_cost`; the causal
//!   predecessor is the fork that published the task, and the time the
//!   task sat in the victim's deque is *queue wait*.
//!
//! The chain terminates at the root's start (time 0), so the sum of
//! segment durations, steal charges, and queue waits along it equals
//! the virtual-time makespan **exactly** — the invariant
//! `tests/trace_invariants.rs` checks against the simulator's report
//! for every policy. The decomposition is the paper's accounting: work
//! (including miss stalls) versus scheduling delay on the longest chain.

use std::collections::HashMap;

use crate::event::{ClockDomain, EventKind, TraceEvent};
use crate::trace::{Segment, Segments, Trace};

/// Why a critical path could not be extracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpError {
    /// Only virtual-time (sim) traces support exact critical paths; a
    /// wall-clock trace interleaves nested segments non-deterministically.
    WallClockTrace,
    /// The trace lost events to ring overflow; the chain would be wrong.
    Truncated,
    /// The event stream violates the emission protocol (should not
    /// happen for sink-recorded traces; the message says where).
    Malformed(String),
}

impl std::fmt::Display for CpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpError::WallClockTrace => {
                write!(f, "critical path requires a virtual-time (sim) trace")
            }
            CpError::Truncated => write!(
                f,
                "trace lost events to ring overflow (raise HBP_TRACE_BUF)"
            ),
            CpError::Malformed(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

/// How a critical-path hop was released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopVia {
    /// First hop: the root's start at time 0.
    Start,
    /// Released by the same worker's previous segment closing (fork,
    /// sibling pop, or join resume) at the same instant.
    SameWorker,
    /// Released by a steal: committed at `committed`, after the task
    /// was published by a fork at `forked`.
    Steal {
        /// Virtual time the thief committed the steal.
        committed: u64,
        /// Virtual time the fork published the task.
        forked: u64,
    },
}

/// One segment on the critical path (listed root-start → root-end).
#[derive(Debug, Clone, Copy)]
pub struct CpHop {
    /// The segment's task.
    pub task: u32,
    /// The segment's worker.
    pub worker: u32,
    /// Segment open time.
    pub start: u64,
    /// Segment close time.
    pub end: u64,
    /// How the segment's start was released.
    pub via: HopVia,
}

/// The extracted critical path: `total = work + steal + queue_wait`
/// equals the virtual-time makespan of the traced run.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// End-to-end length (== sim makespan).
    pub total: u64,
    /// Executed time on the path (compute + miss stalls).
    pub work: u64,
    /// Steal charges (`steal_cost` per steal hop) on the path.
    pub steal: u64,
    /// Time stolen tasks sat in their victim's deque before the commit.
    pub queue_wait: u64,
    /// Number of steal hops on the path.
    pub steals: u64,
    /// The path's segments, root-start first.
    pub hops: Vec<CpHop>,
}

/// Per-worker back-chaining index entry.
enum WItem {
    /// A segment that closed (`close_seq` keys the sort).
    Closed(usize),
    /// A `StealCommit` event.
    Steal(TraceEvent),
}

/// Extract the critical path of a complete sim trace (see module docs).
pub fn critical_path(trace: &Trace) -> Result<CriticalPath, CpError> {
    critical_path_of(trace, &trace.segments())
}

/// [`critical_path`] over an already-reconstructed segment set — use
/// this when segments are needed anyway (e.g. [`crate::summarize`]) so
/// the O(events) reconstruction runs once.
pub fn critical_path_of(trace: &Trace, segments: &Segments) -> Result<CriticalPath, CpError> {
    if trace.clock != ClockDomain::Virtual {
        return Err(CpError::WallClockTrace);
    }
    if trace.dropped > 0 {
        return Err(CpError::Truncated);
    }
    if segments.unclosed > 0 {
        return Err(CpError::Malformed(format!(
            "{} unmatched segment opens",
            segments.unclosed
        )));
    }
    let segs = &segments.segs;
    if segs.is_empty() {
        return Err(CpError::Malformed("no segments".into()));
    }

    // Per-worker items (closed segments + steal commits) sorted by seq,
    // the fork that published each stolen task, and the segment each
    // fork closed.
    let mut items: Vec<Vec<(u64, WItem)>> = std::iter::repeat_with(Vec::new)
        .take(trace.workers)
        .collect();
    let mut seg_by_close: HashMap<u64, usize> = HashMap::new();
    for (i, s) in segs.iter().enumerate() {
        items[s.worker as usize].push((s.close_seq, WItem::Closed(i)));
        seg_by_close.insert(s.close_seq, i);
    }
    let mut fork_of: HashMap<u32, &TraceEvent> = HashMap::new();
    for ev in &trace.events {
        match ev.kind {
            EventKind::Fork { right, .. } => {
                fork_of.insert(right, ev);
            }
            EventKind::StealCommit { .. } => {
                items[ev.worker as usize].push((ev.seq, WItem::Steal(*ev)));
            }
            _ => {}
        }
    }
    for l in &mut items {
        l.sort_by_key(|&(seq, _)| seq);
    }

    // Start from the segment that closes last (the root's TaskEnd).
    let mut cur = segs
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| (s.end, s.close_seq))
        .map(|(i, _)| i)
        .expect("segments non-empty");

    let (mut work, mut steal, mut queue_wait, mut steals) = (0u64, 0u64, 0u64, 0u64);
    let mut hops: Vec<CpHop> = Vec::new();
    for _ in 0..=segs.len() * 2 {
        let s: Segment = segs[cur];
        work += s.duration();
        // Find the item immediately preceding this segment's open on its
        // worker: the closing event or steal commit that released it.
        let wl = &items[s.worker as usize];
        let pos = wl.partition_point(|&(seq, _)| seq < s.open_seq);
        let pred = if pos > 0 { Some(&wl[pos - 1].1) } else { None };
        match pred {
            None => {
                if s.start != 0 {
                    return Err(CpError::Malformed(format!(
                        "segment of task {} starts at {} with no predecessor",
                        s.task, s.start
                    )));
                }
                hops.push(hop(&s, HopVia::Start));
                hops.reverse();
                let total = work + steal + queue_wait;
                return Ok(CriticalPath {
                    total,
                    work,
                    steal,
                    queue_wait,
                    steals,
                    hops,
                });
            }
            Some(WItem::Steal(ev)) => {
                let EventKind::StealCommit { task, .. } = ev.kind else {
                    unreachable!("WItem::Steal holds a StealCommit");
                };
                if task != s.task {
                    return Err(CpError::Malformed(format!(
                        "steal of task {task} precedes begin of task {}",
                        s.task
                    )));
                }
                let fork = fork_of
                    .get(&task)
                    .ok_or_else(|| CpError::Malformed(format!("stolen task {task} has no fork")))?;
                if s.start < fork.t {
                    return Err(CpError::Malformed(format!(
                        "task {task} begins at {} before its fork at {}",
                        s.start, fork.t
                    )));
                }
                // A sweep already pending at time `now` can steal a task
                // whose fork event is stamped `now + 1` (the fork's unit
                // charge advances the victim's clock past the sweep's
                // timestamp before the push is observed). Clamp the
                // commit instant into `[forked, begin]` so the
                // wait/steal split telescopes exactly.
                let committed = ev.t.clamp(fork.t, s.start);
                steal += s.start - committed;
                queue_wait += committed - fork.t;
                steals += 1;
                hops.push(hop(
                    &s,
                    HopVia::Steal {
                        committed,
                        forked: fork.t,
                    },
                ));
                cur = *seg_by_close.get(&fork.seq).ok_or_else(|| {
                    CpError::Malformed(format!("fork of task {task} closed no segment"))
                })?;
            }
            Some(WItem::Closed(p)) => {
                if segs[*p].end != s.start {
                    return Err(CpError::Malformed(format!(
                        "task {} opens at {} but predecessor closed at {}",
                        s.task, s.start, segs[*p].end
                    )));
                }
                hops.push(hop(&s, HopVia::SameWorker));
                cur = *p;
            }
        }
    }
    Err(CpError::Malformed("back-chain did not terminate".into()))
}

fn hop(s: &Segment, via: HopVia) -> CpHop {
    CpHop {
        task: s.task,
        worker: s.worker,
        start: s.start,
        end: s.end,
        via,
    }
}
