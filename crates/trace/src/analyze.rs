//! Trace analyses beyond the critical path: per-worker utilization,
//! steal-latency histograms, and the paper-style summary the
//! `trace_report` binary prints.

use std::collections::{HashMap, HashSet};

use crate::critical::{critical_path_of, CriticalPath};
use crate::event::{ClockDomain, EventKind};
use crate::trace::{Segments, Trace};

/// One worker's busy accounting over the traced run.
#[derive(Debug, Clone, Copy)]
pub struct WorkerUtil {
    /// Time spent inside top-level (depth-0) segments.
    pub busy: u64,
    /// `busy / makespan` (0 when the trace is empty).
    pub utilization: f64,
}

/// Per-worker top-level busy time and utilization.
///
/// Depth-0 segments only: on the native backend a task stolen during a
/// join-wait nests *inside* the waiting segment, so counting every
/// depth would double-charge the worker.
pub fn utilization(trace: &Trace) -> Vec<WorkerUtil> {
    utilization_of(trace, &trace.segments())
}

/// [`utilization`] over an already-reconstructed segment set (one
/// O(events) reconstruction shared across analyses — see [`summarize`]).
pub fn utilization_of(trace: &Trace, segments: &Segments) -> Vec<WorkerUtil> {
    let makespan = trace.makespan();
    let mut busy = vec![0u64; trace.workers];
    for s in &segments.segs {
        if s.depth == 0 {
            busy[s.worker as usize] += s.duration();
        }
    }
    busy.into_iter()
        .map(|b| WorkerUtil {
            busy: b,
            utilization: if makespan == 0 {
                0.0
            } else {
                b as f64 / makespan as f64
            },
        })
        .collect()
}

/// A log₂ histogram: `counts[i]` holds values in `[2^(i-1), 2^i)`
/// (bucket 0 holds the value 0).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Bucket counts (see type docs for the bucket bounds).
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        };
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Inclusive-exclusive bounds `[lo, hi)` of bucket `i`.
    pub fn bounds(&self, i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), 1u64 << i)
        }
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Render as `[lo,hi) count` pairs, skipping empty buckets.
    pub fn render(&self, unit: &str) -> String {
        if self.total() == 0 {
            return "(empty)".into();
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = self.bounds(i);
                format!("[{lo},{hi}){unit}:{c}")
            })
            .collect::<Vec<_>>()
            .join("  ")
    }
}

/// Steal latencies: for every stolen task, the time from the fork that
/// published it to the thief's `StealCommit` — how long work sat
/// stealable before anyone took it. Works in both clock domains.
pub fn steal_latency_histogram(trace: &Trace) -> Histogram {
    let mut fork_t: HashMap<u32, u64> = HashMap::new();
    let mut h = Histogram::default();
    for ev in &trace.events {
        match ev.kind {
            EventKind::Fork { right, .. } => {
                fork_t.insert(right, ev.t);
            }
            EventKind::StealCommit { task, .. } => {
                if let Some(&ft) = fork_t.get(&task) {
                    h.record(ev.t.saturating_sub(ft));
                }
            }
            _ => {}
        }
    }
    h
}

/// The paper-style breakdown of one traced run: where the time went.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Clock domain of every time quantity below.
    pub clock: ClockDomain,
    /// Workers the sink was sized for.
    pub workers: usize,
    /// Largest timestamp (end of the traced run).
    pub makespan: u64,
    /// Total top-level busy time across workers (work incl. miss stalls).
    pub busy_total: u64,
    /// Distinct task ids observed.
    pub tasks: u64,
    /// Closed execution segments.
    pub segments: u64,
    /// Committed steals (claiming sequences, not tasks: a batched steal
    /// counts once here).
    pub steals: u64,
    /// Tasks moved by committed steals (sum of `StealCommit::count`;
    /// equals `steals` when no steal was batched).
    pub stolen_tasks: u64,
    /// Failed steal attempts (probes / newly-failed rounds).
    pub steal_fails: u64,
    /// Summed miss deltas: (heap block, stack block, stack plain).
    pub misses: (u64, u64, u64),
    /// Events the sink's rings could not hold (see
    /// [`Trace::dropped`](crate::Trace)). Nonzero means every analysis
    /// above ran on a truncated record — `trace_report` surfaces it, and
    /// `HBP_TRACE_STRICT=1` turns it into a nonzero exit.
    pub dropped: u64,
    /// Per-worker utilization.
    pub workers_util: Vec<WorkerUtil>,
    /// Fork→steal latency histogram.
    pub steal_latency: Histogram,
    /// Critical path (sim traces only; `None` on wall-clock traces or
    /// truncated rings).
    pub critical: Option<CriticalPath>,
}

/// Compute the full [`TraceSummary`] of a trace. The segment
/// reconstruction runs once and is shared by every sub-analysis.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let segments = trace.segments();
    let mut tasks: HashSet<u32> = HashSet::new();
    let (mut steals, mut stolen_tasks, mut fails) = (0u64, 0u64, 0u64);
    let mut misses = (0u64, 0u64, 0u64);
    for ev in &trace.events {
        match ev.kind {
            EventKind::TaskBegin { task }
            | EventKind::TaskEnd { task }
            | EventKind::JoinResume { task } => {
                tasks.insert(task);
            }
            EventKind::StealCommit { count, .. } => {
                steals += 1;
                stolen_tasks += u64::from(count);
            }
            EventKind::StealFail => fails += 1,
            EventKind::MissDelta {
                heap_block,
                stack_block,
                stack_plain,
            } => {
                misses.0 += heap_block;
                misses.1 += stack_block;
                misses.2 += stack_plain;
            }
            _ => {}
        }
    }
    let workers_util = utilization_of(trace, &segments);
    TraceSummary {
        clock: trace.clock,
        workers: trace.workers,
        makespan: trace.makespan(),
        busy_total: workers_util.iter().map(|w| w.busy).sum(),
        tasks: tasks.len() as u64,
        segments: segments.segs.len() as u64,
        steals,
        stolen_tasks,
        steal_fails: fails,
        misses,
        dropped: trace.dropped,
        workers_util,
        steal_latency: steal_latency_histogram(trace),
        critical: critical_path_of(trace, &segments).ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.total(), 9);
        assert_eq!(h.counts[0], 1); // the zero
        assert_eq!(h.counts[1], 2); // [1,2)
        assert_eq!(h.counts[2], 2); // [2,4): 2, 3
        assert_eq!(h.counts[3], 2); // [4,8): 4, 7
        assert_eq!(h.counts[4], 1); // [8,16)
        assert_eq!(h.bounds(11), (1024, 2048));
        assert_eq!(h.counts[11], 1);
        assert!(h.render("u").contains("[4,8)u:2"));
    }
}
