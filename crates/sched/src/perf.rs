//! Hardware counter sampling for the native backend: per-worker
//! `perf_event` file descriptors read at task boundaries, so the trace
//! carries *measured* miss deltas in the same [`MissDelta`] vocabulary the
//! simulator fills with *predicted* ones — closing the model-vs-hardware
//! loop the paper's bounds invite.
//!
//! ## Channels
//!
//! Each worker opens three self-monitoring counters (pid 0, any CPU,
//! userspace only) and maps their deltas onto the `MissDelta` fields:
//!
//! | `MissDelta` field | sim meaning              | native counter       |
//! |-------------------|--------------------------|----------------------|
//! | `heap_block`      | heap block misses        | `cache-misses`       |
//! | `stack_block`     | stack block misses       | `LLC-load-misses`    |
//! | `stack_plain`     | plain stack misses       | `context-switches`   |
//!
//! The mapping is deliberate: the paper's block misses are coherence
//! traffic (≈ last-level cache misses), and context switches are the
//! native proxy for "my worker lost the cache through no fault of the
//! algorithm" — `trace_diff` reports totals per side, it never pretends
//! the units match across backends.
//!
//! ## Sources and degradation
//!
//! [`CounterSource::open`] realizes the [`CounterMode`] (env knob
//! `HBP_COUNTERS`):
//!
//! * `perf` — raw `perf_event_open(2)` (no external crates; the syscall is
//!   declared directly). Denied (`perf_event_paranoid`, seccomp, non-Linux,
//!   or the `perf` cargo feature disabled) ⇒ [`CounterSource::Unavailable`].
//! * `stub` — a deterministic per-worker fake: read `k` on worker `w`
//!   returns channel values proportional to `k·(w+1)`, so task-boundary
//!   deltas are reproducible across runs — the CI parity source.
//! * `auto` (default) — try `perf`, fall back to `stub`; the realized kind
//!   is recorded for reporting ([`realized`]).
//! * `off` — no sampling, no events.
//!
//! Sampling happens only while a trace sink is attached; with tracing off
//! this module costs nothing.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

/// How the native pool sources task-boundary counter deltas
/// (`HBP_COUNTERS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterMode {
    /// Try the real perf fds, fall back to the deterministic stub — the
    /// default, so traced native runs always carry `MissDelta`s.
    #[default]
    Auto,
    /// Real perf fds only; sampling silently degrades to
    /// [`CounterSource::Unavailable`] (no events) when denied.
    Perf,
    /// The deterministic fake counter (CI parity runs).
    Stub,
    /// No counter sampling at all.
    Off,
}

impl CounterMode {
    /// Parse an `HBP_COUNTERS` value: `None` (unset), the empty string or
    /// `auto` → [`CounterMode::Auto`]; `perf` → [`CounterMode::Perf`];
    /// `stub` → [`CounterMode::Stub`]; `off`/`0` → [`CounterMode::Off`].
    /// Anything else is an error naming the variable and the accepted
    /// values.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("") | Some("auto") => Ok(CounterMode::Auto),
            Some("perf") => Ok(CounterMode::Perf),
            Some("stub") => Ok(CounterMode::Stub),
            Some("off") | Some("0") => Ok(CounterMode::Off),
            Some(other) => Err(format!(
                "HBP_COUNTERS must be `auto`, `perf`, `stub`, or `off`/`0`, got {other:?}"
            )),
        }
    }
}

/// Cumulative values of the three sampled channels, in the `MissDelta`
/// field order: `[heap_block, stack_block, stack_plain]`.
pub type CounterValues = [u64; 3];

/// One worker's realized counter source (see the module docs).
pub enum CounterSource {
    /// Live `perf_event` fds (closed on drop).
    #[cfg(feature = "perf")]
    Perf(PerfCounters),
    /// The deterministic fake.
    Stub(StubCounter),
    /// Sampling is off or was denied: [`CounterSource::read`] yields
    /// `None` and no `MissDelta` events are emitted.
    Unavailable,
}

impl CounterSource {
    /// Realize `mode` for worker `worker` **on the calling thread** (the
    /// perf fds monitor the opening thread, so workers must open their
    /// own).
    pub fn open(mode: CounterMode, worker: usize) -> CounterSource {
        let src = match mode {
            CounterMode::Off => CounterSource::Unavailable,
            CounterMode::Stub => CounterSource::Stub(StubCounter::new(worker)),
            CounterMode::Perf => Self::try_perf().unwrap_or(CounterSource::Unavailable),
            CounterMode::Auto => {
                Self::try_perf().unwrap_or_else(|| CounterSource::Stub(StubCounter::new(worker)))
            }
        };
        note_realized(&src);
        src
    }

    /// The real-fds source, when the cargo feature is on and the kernel
    /// grants the fds.
    fn try_perf() -> Option<CounterSource> {
        #[cfg(feature = "perf")]
        {
            PerfCounters::open().map(CounterSource::Perf)
        }
        #[cfg(not(feature = "perf"))]
        {
            None
        }
    }

    /// Current cumulative channel values, or `None` when unavailable.
    pub fn read(&mut self) -> Option<CounterValues> {
        match self {
            #[cfg(feature = "perf")]
            CounterSource::Perf(p) => p.read(),
            CounterSource::Stub(s) => Some(s.read()),
            CounterSource::Unavailable => None,
        }
    }

    /// Short name of the realized source (`perf` / `stub` / `none`).
    pub fn kind(&self) -> &'static str {
        match self {
            #[cfg(feature = "perf")]
            CounterSource::Perf(_) => "perf",
            CounterSource::Stub(_) => "stub",
            CounterSource::Unavailable => "none",
        }
    }
}

/// The deterministic fake counter: monotone, reproducible, per-worker.
///
/// Read `k` (1-based) on worker `w` returns
/// `[k·(w+1)·17, k·(w+1)·5, k·(w+1)·2]`, so the delta over any
/// read-bracketed window is `(reads in window)·(w+1)·{17,5,2}` —
/// independent of wall-clock and scheduling, which is what lets CI assert
/// exact `MissDelta` totals.
pub struct StubCounter {
    weight: u64,
    reads: u64,
}

impl StubCounter {
    pub fn new(worker: usize) -> Self {
        StubCounter {
            weight: worker as u64 + 1,
            reads: 0,
        }
    }

    pub fn read(&mut self) -> CounterValues {
        self.reads += 1;
        let k = self.reads * self.weight;
        [k * 17, k * 5, k * 2]
    }
}

/// Per-channel deltas a stub-sourced task window produces on worker `w`
/// (each task is bracketed by exactly two reads, so the window spans one
/// read step at begin and one at end — the delta is one step). Exposed so
/// parity tests can compute expected totals without re-deriving the stub.
pub fn stub_task_delta(worker: usize) -> CounterValues {
    let w = worker as u64 + 1;
    [w * 17, w * 5, w * 2]
}

// ---------------------------------------------------------------------
// Realized-source note (for reporting: "counter source: perf").
// ---------------------------------------------------------------------

const SRC_UNKNOWN: u8 = 0;
const SRC_PERF: u8 = 1;
const SRC_STUB: u8 = 2;
const SRC_NONE: u8 = 3;

static REALIZED: AtomicU8 = AtomicU8::new(SRC_UNKNOWN);

fn note_realized(src: &CounterSource) {
    let v = match src.kind() {
        "perf" => SRC_PERF,
        "stub" => SRC_STUB,
        _ => SRC_NONE,
    };
    // First realization wins; workers of one pool all realize the same
    // mode, and mixed-pool processes still get a truthful first answer.
    let _ = REALIZED.compare_exchange(SRC_UNKNOWN, v, Relaxed, Relaxed);
}

/// What the first opened source in this process realized as, if any —
/// `"perf"`, `"stub"` or `"none"` (reporting only; not a per-worker fact).
pub fn realized() -> Option<&'static str> {
    match REALIZED.load(Relaxed) {
        SRC_PERF => Some("perf"),
        SRC_STUB => Some("stub"),
        SRC_NONE => Some("none"),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Thread-local sampling entry point used by the worker runtime.
// ---------------------------------------------------------------------

thread_local! {
    /// The calling worker thread's realized source, opened on first use
    /// (pool worker threads persist across jobs, so this is one open per
    /// thread per process).
    static SOURCE: RefCell<Option<CounterSource>> = const { RefCell::new(None) };
}

/// Read the calling worker's cumulative counters, opening the source on
/// first call. `None` when `mode` is off or the source is unavailable.
pub(crate) fn sample(mode: CounterMode, worker: usize) -> Option<CounterValues> {
    if matches!(mode, CounterMode::Off) {
        return None;
    }
    SOURCE.with_borrow_mut(|s| {
        s.get_or_insert_with(|| CounterSource::open(mode, worker))
            .read()
    })
}

// ---------------------------------------------------------------------
// Raw perf_event_open plumbing (Linux, feature "perf").
// ---------------------------------------------------------------------

/// Live `perf_event` fds for the three channels, in `MissDelta` order.
#[cfg(feature = "perf")]
pub struct PerfCounters {
    fds: [i32; 3],
}

#[cfg(all(feature = "perf", target_os = "linux"))]
mod sys {
    //! The `perf_event_open(2)` ABI, declared by hand: the container has
    //! no crates.io access, and the std-linked libc already exports
    //! `syscall`/`read`/`close`.

    /// `struct perf_event_attr`, ABI version ≥ 3 prefix — the kernel
    /// accepts any size it knows, and 120 (`PERF_ATTR_SIZE_VER6`) is
    /// ancient enough for every kernel this repo can meet.
    #[repr(C)]
    #[derive(Default)]
    pub struct PerfEventAttr {
        pub type_: u32,
        pub size: u32,
        pub config: u64,
        pub sample_period_or_freq: u64,
        pub sample_type: u64,
        pub read_format: u64,
        /// Bitfield word: bit 0 `disabled`, bit 5 `exclude_kernel`,
        /// bit 6 `exclude_hv`.
        pub flags: u64,
        pub wakeup: u32,
        pub bp_type: u32,
        pub config1: u64,
        pub config2: u64,
        pub branch_sample_type: u64,
        pub sample_regs_user: u64,
        pub sample_stack_user: u32,
        pub clockid: i32,
        pub sample_regs_intr: u64,
        pub aux_watermark: u32,
        pub sample_max_stack: u16,
        pub reserved_2: u16,
        pub aux_sample_size: u32,
        pub reserved_3: u32,
    }

    pub const ATTR_SIZE: u32 = std::mem::size_of::<PerfEventAttr>() as u32;

    pub const EXCLUDE_KERNEL: u64 = 1 << 5;
    pub const EXCLUDE_HV: u64 = 1 << 6;

    pub const PERF_TYPE_HARDWARE: u32 = 0;
    pub const PERF_TYPE_SOFTWARE: u32 = 1;
    pub const PERF_TYPE_HW_CACHE: u32 = 3;
    pub const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;
    pub const PERF_COUNT_SW_CONTEXT_SWITCHES: u64 = 3;
    /// LL cache | read op | miss result. The read-op field is literally
    /// zero in the kernel ABI encoding; spelled out so all three fields
    /// of the cache-event id stay visible.
    #[allow(clippy::identity_op)]
    pub const LLC_LOAD_MISSES: u64 = 2 | (0 << 8) | (1 << 16);

    pub const PERF_FLAG_FD_CLOEXEC: u64 = 8;

    #[cfg(target_arch = "x86_64")]
    pub const SYS_PERF_EVENT_OPEN: i64 = 298;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_PERF_EVENT_OPEN: i64 = 241;

    extern "C" {
        pub fn syscall(num: i64, ...) -> i64;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }

    /// Open one self-monitoring counter on the calling thread, enabled
    /// from the start, counting userspace only. `None` on any refusal
    /// (EPERM/EACCES from `perf_event_paranoid`, ENOENT for an event the
    /// PMU lacks, ENOSYS under seccomp).
    pub fn open_counter(type_: u32, config: u64) -> Option<i32> {
        let attr = PerfEventAttr {
            type_,
            size: ATTR_SIZE,
            config,
            flags: EXCLUDE_KERNEL | EXCLUDE_HV,
            ..Default::default()
        };
        // pid 0 (this thread), cpu -1 (any), no group, close-on-exec.
        let fd = unsafe {
            syscall(
                SYS_PERF_EVENT_OPEN,
                &attr as *const PerfEventAttr,
                0i32,
                -1i32,
                -1i32,
                PERF_FLAG_FD_CLOEXEC,
            )
        };
        (fd >= 0).then_some(fd as i32)
    }
}

#[cfg(feature = "perf")]
impl PerfCounters {
    /// Open the three channels on the calling thread; all-or-nothing
    /// (a host that allows software but not hardware events falls back
    /// to the stub under `auto` rather than reporting lopsided zeros).
    pub fn open() -> Option<PerfCounters> {
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            None
        }
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            let specs = [
                (sys::PERF_TYPE_HARDWARE, sys::PERF_COUNT_HW_CACHE_MISSES),
                (sys::PERF_TYPE_HW_CACHE, sys::LLC_LOAD_MISSES),
                (sys::PERF_TYPE_SOFTWARE, sys::PERF_COUNT_SW_CONTEXT_SWITCHES),
            ];
            let mut fds = [-1i32; 3];
            for (i, &(t, c)) in specs.iter().enumerate() {
                match sys::open_counter(t, c) {
                    Some(fd) => fds[i] = fd,
                    None => {
                        for &fd in &fds[..i] {
                            unsafe { sys::close(fd) };
                        }
                        return None;
                    }
                }
            }
            Some(PerfCounters { fds })
        }
    }

    pub fn read(&mut self) -> Option<CounterValues> {
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            None
        }
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            let mut out = [0u64; 3];
            for (i, &fd) in self.fds.iter().enumerate() {
                let mut buf = [0u8; 8];
                let n = unsafe { sys::read(fd, buf.as_mut_ptr(), 8) };
                if n != 8 {
                    return None;
                }
                out[i] = u64::from_ne_bytes(buf);
            }
            Some(out)
        }
    }
}

#[cfg(all(feature = "perf", target_os = "linux"))]
impl Drop for PerfCounters {
    fn drop(&mut self) {
        for &fd in &self.fds {
            if fd >= 0 {
                unsafe { sys::close(fd) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_accepts_the_documented_values() {
        for v in [None, Some(""), Some("auto")] {
            assert_eq!(CounterMode::parse(v), Ok(CounterMode::Auto), "{v:?}");
        }
        assert_eq!(CounterMode::parse(Some("perf")), Ok(CounterMode::Perf));
        assert_eq!(CounterMode::parse(Some("stub")), Ok(CounterMode::Stub));
        for v in [Some("off"), Some("0")] {
            assert_eq!(CounterMode::parse(v), Ok(CounterMode::Off), "{v:?}");
        }
        let err = CounterMode::parse(Some("nope")).unwrap_err();
        assert!(
            err.contains("HBP_COUNTERS") && err.contains("nope"),
            "{err}"
        );
    }

    #[test]
    fn stub_is_deterministic_and_monotone() {
        let mut a = StubCounter::new(2);
        let mut b = StubCounter::new(2);
        let (r1, r2) = (a.read(), a.read());
        assert_eq!(b.read(), r1);
        assert_eq!(b.read(), r2);
        for ch in 0..3 {
            assert!(r2[ch] > r1[ch]);
            assert_eq!(r2[ch] - r1[ch], stub_task_delta(2)[ch]);
        }
    }

    #[test]
    fn stub_source_reads_and_reports_kind() {
        let mut s = CounterSource::open(CounterMode::Stub, 0);
        assert_eq!(s.kind(), "stub");
        let v = s.read().expect("stub always reads");
        assert_eq!(v, [17, 5, 2]);
    }

    #[test]
    fn off_mode_is_unavailable() {
        let mut s = CounterSource::open(CounterMode::Off, 0);
        assert_eq!(s.kind(), "none");
        assert!(s.read().is_none());
    }

    #[test]
    fn auto_mode_always_yields_a_live_source() {
        // Whether or not the host grants perf fds, auto must land on a
        // source that reads (perf or the stub fallback) — the graceful
        // degradation contract.
        let mut s = CounterSource::open(CounterMode::Auto, 1);
        assert!(s.read().is_some(), "auto realized {:?}", s.kind());
        assert!(matches!(s.kind(), "perf" | "stub"));
    }

    #[cfg(feature = "perf")]
    #[test]
    fn perf_mode_reads_monotone_or_degrades() {
        let mut s = CounterSource::open(CounterMode::Perf, 0);
        match s.kind() {
            "perf" => {
                let a = s.read().expect("open fds read");
                // Burn some cycles so the cycle-adjacent channels move.
                let mut x = 0u64;
                for i in 0..100_000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(x);
                let b = s.read().expect("open fds read");
                for ch in 0..3 {
                    assert!(b[ch] >= a[ch], "channel {ch} went backwards");
                }
            }
            "none" => assert!(s.read().is_none()),
            other => panic!("perf mode realized {other:?}"),
        }
    }
}
