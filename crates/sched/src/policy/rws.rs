//! Seeded randomized work stealing (the baseline of [18, 6] and the
//! companion paper [13]).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::sim::Engine;

use super::StealPolicy;

/// Randomized work stealing: each idle core probes one uniformly random
/// other core per sweep and steals its deque top if present. The RNG is
/// seeded, so runs with equal seeds are identical.
#[derive(Debug, Clone)]
pub struct Rws {
    rng: ChaCha8Rng,
}

impl Rws {
    /// A policy whose probe sequence is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl StealPolicy for Rws {
    fn sweep(&mut self, eng: &mut Engine<'_>, now: u64) {
        for thief in 0..eng.p() {
            if !eng.is_idle(thief) || eng.is_done() {
                continue;
            }
            let mut victim = self.rng.random_range(0..eng.p().max(2) - 1);
            if victim >= thief {
                victim += 1;
            }
            if victim >= eng.p() {
                continue; // p == 1
            }
            if eng.head_pri(victim).is_some() {
                eng.commit_steal(thief, victim, now);
            } else {
                eng.note_failed_probe(thief);
            }
        }
    }
}
