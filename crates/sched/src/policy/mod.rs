//! Steal policies: *who* steals *what* when a sweep fires.
//!
//! The engine core ([`crate::sim::Engine`]) is policy-independent; each
//! scheduling discipline is a [`StealPolicy`] that the event loop invokes
//! on every sweep with the current virtual time. The paper's three
//! disciplines ship as:
//!
//! * [`Pws`] — deterministic Priority Work Stealing (§4): priority
//!   rounds, rank matching, pending-priority flags;
//! * [`Rws`] — seeded randomized work stealing (the baseline of [13]);
//! * [`Bsp`] — the bulk-synchronous mapping (§5.3): PWS restricted to
//!   tasks from the top `prefix_levels` recursion levels.
//!
//! Custom policies can be plugged in through
//! [`run_with_policy`](crate::engine::run_with_policy): implement
//! [`StealPolicy`] against the engine's query/effect API (`head_pri`,
//! `pending_pri`, `commit_steal`, …) and the simulator, reports, and
//! invariant accounting all come for free.
//!
//! Each discipline additionally has a **native facet** ([`native`],
//! [`NativeStealPolicy`]): the same `Pws`/`Rws`/`Bsp` types supply
//! victim selection, steal admission, and idle backoff to the
//! real-threads runtime, so `HBP_POLICY` selects the discipline on both
//! backends. On a domain-sharded pool (`HBP_DOMAINS`) the facet's probe
//! plan becomes **two-level** through one trait default
//! ([`NativeStealPolicy::plan_probes_sharded`]): every victim in the
//! thief's own cache domain precedes any victim outside it, with each
//! discipline's intra-group order preserved, and cross-domain steals
//! additionally pass [`NativeStealPolicy::cross_admit`]'s fork-depth
//! floor.

mod bsp;
pub mod native;
mod pws;
mod rws;

pub use bsp::Bsp;
pub use native::{native_facet, NativeStealPolicy};
pub use pws::Pws;
pub use rws::Rws;

use crate::sim::Engine;

/// A work-stealing discipline driven by the engine's sweep events.
///
/// `sweep` runs once per [`Sweep`](crate::clock::EvKind::Sweep) event at
/// virtual time `now`. Implementations inspect the engine (idle cores,
/// deque heads, pending flags) and apply steals via
/// [`Engine::commit_steal`]; unsuccessful attempts are recorded with
/// [`Engine::note_failed_round`] / [`Engine::note_failed_probe`] so the
/// report's attempt accounting (Cor 4.1) stays meaningful.
pub trait StealPolicy {
    /// Attempt steals for the idle cores at virtual time `now`.
    fn sweep(&mut self, eng: &mut Engine<'_>, now: u64);
}
