//! Bulk-synchronous mapping (paper §5.3).

use crate::sim::Engine;

use super::pws::priority_sweep;
use super::StealPolicy;

/// PWS restricted to the top of the recursion: only tasks of size at
/// least `root_size / 2^prefix_levels` may be stolen — each collection's
/// recursion is unravelled for `prefix_levels` levels, those subtrees are
/// distributed, and everything below runs without further stealing.
#[derive(Debug, Clone, Copy)]
pub struct Bsp {
    prefix_levels: u32,
}

impl Bsp {
    /// Open the top `prefix_levels` recursion levels for stealing (the
    /// paper's `log p` unravelling; pass `⌈log₂p⌉ + 1`).
    pub fn new(prefix_levels: u32) -> Self {
        Self { prefix_levels }
    }

    /// The configured number of stealable recursion levels (the native
    /// facet's admission floor is expressed against this).
    pub fn prefix_levels(&self) -> u32 {
        self.prefix_levels
    }
}

impl StealPolicy for Bsp {
    fn sweep(&mut self, eng: &mut Engine<'_>, now: u64) {
        // §5.3: only subtrees from the top `prefix_levels` levels of
        // unravelling (size ≥ root/2^levels) may move.
        let floor = (eng.root_size() >> self.prefix_levels.min(63)).max(1);
        priority_sweep(eng, now, floor);
    }
}
