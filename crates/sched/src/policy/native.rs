//! The native facet of the policy family: *who* a real-threads worker
//! probes, *what* it may take, and *how* it backs off.
//!
//! The simulator's [`StealPolicy`](super::StealPolicy) is driven by a
//! global sweep with a consistent snapshot of every deque — a luxury OS
//! threads do not have. [`NativeStealPolicy`] is the same policy family
//! re-expressed for the native runtime's reality: each idle worker plans
//! its own probe order, steals are individual lock-free CAS races, and
//! the only cross-worker information is what a Chase-Lev top read
//! provides. The paper's three disciplines keep their identities:
//!
//! * [`Rws`](super::Rws) — uniformly random victim rotation per scan
//!   (the baseline of [13]; the per-worker xorshift streams make victim
//!   sequences reproducible for a fixed pool seed);
//! * [`Pws`](super::Pws) — deterministic index-order probing (the §4.7
//!   rank-matching analogue: thief `i` scans victims in a fixed rotation
//!   starting at `i + 1`, so concurrent thieves fan out instead of
//!   colliding). True global priority rounds need the sweep snapshot and
//!   remain sim-only;
//! * [`Bsp`](super::Bsp) — PWS probing plus the §5.3 admission floor:
//!   only tasks from the top `prefix_levels` fork levels may be stolen,
//!   using the branch's fork depth as the native proxy for task size
//!   (each fork halves the subproblem, so depth `d` ≈ size
//!   `root / 2^d`).
//!
//! [`native_facet`] maps the [`Policy`](crate::engine::Policy) enum —
//! and therefore `HBP_POLICY` — onto these facets; `native::run_native`
//! consumes the boxed trait object.

use crate::engine::Policy;

use super::{Bsp, Pws, Rws};

/// Failed probe scans before an idle worker starts sleeping instead of
/// yielding: long enough that steal latency stays in the microseconds
/// while work is flowing, short enough that persistently idle workers
/// stop contending with the workers doing measured work.
pub const SPIN_PROBES: u32 = 64;

/// The default backoff every built-in facet uses: spin-yield for
/// [`SPIN_PROBES`] consecutive failed scans, then sleep briefly
/// (bounded, so wakeup latency stays small).
pub fn default_backoff(fails: u32) {
    if fails < SPIN_PROBES {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

/// A work-stealing discipline for the native (real-threads) runtime.
///
/// Implementations are shared by every worker (`Send + Sync`) and hold
/// no per-worker state: the worker's xorshift RNG word is threaded
/// through [`plan_probes`](NativeStealPolicy::plan_probes) so victim
/// sequences stay per-worker reproducible.
pub trait NativeStealPolicy: Send + Sync {
    /// Short policy name for reports and logs (`"pws"`, `"rws"`, …).
    fn name(&self) -> &'static str;

    /// Plan one probe scan for `thief` among `p` workers: fill `out`
    /// with the victim indices to probe, in order, excluding `thief`.
    /// `rng` is the thief's private xorshift64* state.
    fn plan_probes(&self, thief: usize, p: usize, rng: &mut u64, out: &mut Vec<usize>);

    /// May a task published at fork depth `depth` be stolen? Consulted
    /// on the thief's side *before* the claiming CAS, so a refused task
    /// stays on its owner's deque (see `ClDeque::steal_with`).
    fn admit(&self, depth: u32) -> bool {
        let _ = depth;
        true
    }

    /// Back off after `fails` consecutive failed probe scans.
    fn backoff(&self, fails: u32) {
        default_backoff(fails);
    }

    /// Largest number of tasks one committed steal may claim from a
    /// victim in a single claiming sequence (`ClDeque::steal_batch_with`
    /// further halves against the victim's observed queue). `1` keeps
    /// the pre-batching behavior; the built-in facets default to
    /// [`DEFAULT_BATCH_CAP`] so fine-grained bucket tasks stop paying a
    /// full probe round each. Overridden globally by `HBP_STEAL_BATCH`.
    fn steal_batch_cap(&self) -> usize {
        DEFAULT_BATCH_CAP
    }

    /// Plan one probe scan given a per-victim depth hint (`hint(v)` =
    /// the shallowest fork depth published on `v`'s deque, `u32::MAX`
    /// when it looks empty). The default ignores the hint; the PWS
    /// facet sorts its rank rotation shallowest-first, approximating the
    /// §4.7 priority rounds without a global sweep.
    fn plan_probes_hinted(
        &self,
        thief: usize,
        p: usize,
        rng: &mut u64,
        hint: &dyn Fn(usize) -> u32,
        out: &mut Vec<usize>,
    ) {
        let _ = hint;
        self.plan_probes(thief, p, rng, out);
    }

    /// Plan one **two-level** probe scan for a domain-sharded pool:
    /// every victim in the thief's own cache domain (`domain_of(v) ==
    /// my_domain`) must appear before any victim outside it. The default
    /// takes the policy's hinted plan and stably partitions it local
    /// victims first, so each policy's *intra-group* order (PWS's
    /// shallowest-then-rank, RWS's random rotation, BSP's rank
    /// rotation) is preserved within both halves — all three disciplines
    /// become domain-aware through this one method.
    fn plan_probes_sharded(
        &self,
        thief: usize,
        p: usize,
        rng: &mut u64,
        hint: &dyn Fn(usize) -> u32,
        domain_of: &dyn Fn(usize) -> usize,
        my_domain: usize,
        out: &mut Vec<usize>,
    ) {
        self.plan_probes_hinted(thief, p, rng, hint, out);
        // Stable: equal keys (both local, or both remote) keep their
        // hinted-plan order.
        out.sort_by_key(|&v| domain_of(v) != my_domain);
    }

    /// May a task published at fork depth `depth` be stolen *across*
    /// cache domains, given the pool's cross-domain depth floor? The
    /// runtime consults this **in addition to**
    /// [`admit`](NativeStealPolicy::admit) when the victim sits in
    /// another domain: shallow branches are the big subproblems (each
    /// fork halves the work), so only they are worth a cross-domain
    /// block transfer — the same reasoning as the §5.3 BSP admission
    /// rule, generalized to every policy. The default is the plain
    /// floor comparison; BSP tightens it against its own prefix.
    fn cross_admit(&self, depth: u32, floor: u32) -> bool {
        depth <= floor
    }
}

/// Default per-steal batch cap of the built-in facets: big enough to
/// absorb a burst of sibling bucket tasks, small enough that ceil-half
/// (not the cap) binds on any deque shorter than 16.
pub const DEFAULT_BATCH_CAP: usize = 8;

/// Index-order probe plan used by the deterministic facets: victims in a
/// fixed rotation starting after the thief.
fn rank_order_probes(thief: usize, p: usize, out: &mut Vec<usize>) {
    out.clear();
    out.extend((1..p).map(|k| (thief + k) % p));
}

/// One xorshift64* step (the workers' victim-selection generator).
fn xorshift(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl NativeStealPolicy for Rws {
    fn name(&self) -> &'static str {
        "rws"
    }

    /// Random rotation: a uniformly random start, then every other
    /// worker once — one full scan per plan, as in the mutex-era loop.
    fn plan_probes(&self, thief: usize, p: usize, rng: &mut u64, out: &mut Vec<usize>) {
        out.clear();
        let start = (xorshift(rng) % (p as u64 - 1)) as usize;
        for k in 0..p - 1 {
            let mut v = (start + k) % (p - 1);
            if v >= thief {
                v += 1;
            }
            out.push(v);
        }
    }
}

impl NativeStealPolicy for Pws {
    fn name(&self) -> &'static str {
        "pws"
    }

    fn plan_probes(&self, thief: usize, p: usize, _rng: &mut u64, out: &mut Vec<usize>) {
        rank_order_probes(thief, p, out);
    }

    /// The shallowest-victim hint: keep the deterministic rank rotation
    /// as the tie-break, but visit victims whose published top depth is
    /// shallower first. Shallow top-of-deque tasks are the biggest
    /// subproblems (each fork halves the work), so this approximates the
    /// §4.7 priority rounds — "steal the highest-priority stealable
    /// task" — using only one relaxed atomic per victim instead of a
    /// global sweep. Stale hints cost at most a reordered scan; the
    /// probe itself re-validates against the live deque.
    fn plan_probes_hinted(
        &self,
        thief: usize,
        p: usize,
        _rng: &mut u64,
        hint: &dyn Fn(usize) -> u32,
        out: &mut Vec<usize>,
    ) {
        rank_order_probes(thief, p, out);
        // Stable by construction: sort_by_key on (depth, rotation rank)
        // where the rotation rank is the pre-sort position.
        out.sort_by_key(|&v| (hint(v), (v + p - thief - 1) % p));
    }
}

impl NativeStealPolicy for Bsp {
    fn name(&self) -> &'static str {
        "bsp"
    }

    fn plan_probes(&self, thief: usize, p: usize, _rng: &mut u64, out: &mut Vec<usize>) {
        rank_order_probes(thief, p, out);
    }

    /// §5.3 on fork depth: only branches from the top `prefix_levels`
    /// levels of the recursion may move between workers.
    fn admit(&self, depth: u32) -> bool {
        depth <= self.prefix_levels()
    }

    /// Cross-domain steals obey *both* floors: the §5.3 prefix (nothing
    /// deeper ever moves between workers at all) and the pool's
    /// cross-domain floor — the stricter one binds.
    fn cross_admit(&self, depth: u32, floor: u32) -> bool {
        depth <= floor.min(self.prefix_levels())
    }
}

/// The native facet the [`Policy`] enum (and thus `HBP_POLICY`) selects.
pub fn native_facet(policy: Policy) -> Box<dyn NativeStealPolicy> {
    match policy {
        Policy::Pws => Box::new(Pws),
        Policy::Rws { .. } => Box::new(Rws::new(0)),
        Policy::Bsp { prefix_levels } => Box::new(Bsp::new(prefix_levels)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facet_of(p: Policy) -> Box<dyn NativeStealPolicy> {
        native_facet(p)
    }

    #[test]
    fn probe_plans_cover_everyone_but_the_thief_exactly_once() {
        for policy in [
            Policy::Pws,
            Policy::Rws { seed: 3 },
            Policy::Bsp { prefix_levels: 2 },
        ] {
            let f = facet_of(policy);
            for p in [2usize, 3, 5, 8] {
                for thief in 0..p {
                    let mut rng = 0x005D_EECE_66D1_u64;
                    let mut out = Vec::new();
                    f.plan_probes(thief, p, &mut rng, &mut out);
                    let mut seen = out.clone();
                    seen.sort_unstable();
                    let want: Vec<usize> = (0..p).filter(|&v| v != thief).collect();
                    assert_eq!(seen, want, "{policy:?} p={p} thief={thief}: {out:?}");
                }
            }
        }
    }

    #[test]
    fn rws_plans_vary_with_the_rng_and_are_reproducible() {
        let f = facet_of(Policy::Rws { seed: 0 });
        let (mut r1, mut r2) = (7u64, 7u64);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        f.plan_probes(0, 8, &mut r1, &mut a);
        f.plan_probes(0, 8, &mut r2, &mut b);
        assert_eq!(a, b, "equal rng state ⇒ equal plan");
        let mut later = Vec::new();
        let mut varied = false;
        for _ in 0..16 {
            f.plan_probes(0, 8, &mut r1, &mut later);
            varied |= later != a;
        }
        assert!(varied, "random rotation eventually picks another start");
    }

    #[test]
    fn pws_plan_is_the_deterministic_rank_rotation() {
        let f = facet_of(Policy::Pws);
        let mut rng = 1u64;
        let mut out = Vec::new();
        f.plan_probes(2, 5, &mut rng, &mut out);
        assert_eq!(out, vec![3, 4, 0, 1]);
        assert!(f.admit(u32::MAX), "PWS admits every depth");
    }

    #[test]
    fn pws_hinted_plan_probes_shallowest_victims_first() {
        let f = facet_of(Policy::Pws);
        let mut rng = 1u64;
        let mut out = Vec::new();
        // Victim depths: w0 = 5, w1 = empty, w3 = 2, w4 = 5 (thief = 2).
        let depth = |v: usize| [5u32, u32::MAX, 0, 2, 5][v];
        f.plan_probes_hinted(2, 5, &mut rng, &depth, &mut out);
        // Shallowest first; equal depths keep the rank rotation (3, 4,
        // 0, 1) as the tie-break; the empty-looking deque goes last.
        assert_eq!(out, vec![3, 4, 0, 1]);
        let depth2 = |v: usize| [1u32, 3, 0, 9, 9][v];
        f.plan_probes_hinted(2, 5, &mut rng, &depth2, &mut out);
        assert_eq!(out, vec![0, 1, 3, 4]);
    }

    #[test]
    fn hinted_plans_still_cover_everyone_but_the_thief() {
        for policy in [
            Policy::Pws,
            Policy::Rws { seed: 3 },
            Policy::Bsp { prefix_levels: 2 },
        ] {
            let f = facet_of(policy);
            for p in [2usize, 3, 5, 8] {
                for thief in 0..p {
                    let mut rng = 0x005D_EECE_66D1_u64;
                    let mut out = Vec::new();
                    f.plan_probes_hinted(thief, p, &mut rng, &|v| (v as u32) % 3, &mut out);
                    let mut seen = out.clone();
                    seen.sort_unstable();
                    let want: Vec<usize> = (0..p).filter(|&v| v != thief).collect();
                    assert_eq!(seen, want, "{policy:?} p={p} thief={thief}: {out:?}");
                }
            }
        }
    }

    #[test]
    fn built_in_facets_expose_a_batch_cap() {
        for policy in [
            Policy::Pws,
            Policy::Rws { seed: 3 },
            Policy::Bsp { prefix_levels: 2 },
        ] {
            let f = facet_of(policy);
            assert_eq!(f.steal_batch_cap(), DEFAULT_BATCH_CAP, "{policy:?}");
        }
    }

    #[test]
    fn bsp_admits_only_the_top_prefix_levels() {
        let f = facet_of(Policy::Bsp { prefix_levels: 3 });
        assert!(f.admit(0) && f.admit(3));
        assert!(!f.admit(4) && !f.admit(u32::MAX));
    }

    #[test]
    fn sharded_plans_visit_every_local_victim_before_any_remote_one() {
        for policy in [
            Policy::Pws,
            Policy::Rws { seed: 3 },
            Policy::Bsp { prefix_levels: 2 },
        ] {
            let f = facet_of(policy);
            for p in [2usize, 4, 5, 8] {
                for k in [1usize, 2, 3] {
                    let dom = |v: usize| (v * k.min(p)) / p;
                    for thief in 0..p {
                        let mut rng = 0x005D_EECE_66D1_u64;
                        let mut out = Vec::new();
                        f.plan_probes_sharded(
                            thief,
                            p,
                            &mut rng,
                            &|v| (v as u32) % 3,
                            &dom,
                            dom(thief),
                            &mut out,
                        );
                        // Coverage: everyone but the thief, once.
                        let mut seen = out.clone();
                        seen.sort_unstable();
                        let want: Vec<usize> = (0..p).filter(|&v| v != thief).collect();
                        assert_eq!(seen, want, "{policy:?} p={p} k={k} thief={thief}");
                        // Two-level order: once the plan leaves the
                        // thief's domain it never comes back.
                        let first_remote = out
                            .iter()
                            .position(|&v| dom(v) != dom(thief))
                            .unwrap_or(out.len());
                        assert!(
                            out[first_remote..].iter().all(|&v| dom(v) != dom(thief)),
                            "{policy:?} p={p} k={k} thief={thief}: {out:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cross_admit_gates_on_the_depth_floor() {
        for policy in [Policy::Pws, Policy::Rws { seed: 3 }] {
            let f = facet_of(policy);
            assert!(f.cross_admit(0, 3) && f.cross_admit(3, 3), "{policy:?}");
            assert!(!f.cross_admit(4, 3), "{policy:?}");
            assert!(f.cross_admit(u32::MAX, u32::MAX), "no floor admits all");
        }
        // BSP: the stricter of its §5.3 prefix and the pool floor binds.
        let bsp = facet_of(Policy::Bsp { prefix_levels: 2 });
        assert!(bsp.cross_admit(2, 5));
        assert!(!bsp.cross_admit(3, 5), "prefix binds below the floor");
        assert!(!bsp.cross_admit(2, 1), "floor binds below the prefix");
    }
}
