//! Deterministic Priority Work Stealing (paper §4, §4.7).

use crate::sim::Engine;

use super::StealPolicy;

/// The paper's PWS scheduler: steals proceed in rounds of decreasing task
/// priority; idle cores are served in index order (the deterministic rank
/// matching of the distributed implementation, §4.7); busy cores with
/// empty deques publish a flagged *pending priority* upper bound that
/// makes thieves wait instead of stealing deeper tasks.
#[derive(Debug, Default, Clone, Copy)]
pub struct Pws;

impl StealPolicy for Pws {
    fn sweep(&mut self, eng: &mut Engine<'_>, now: u64) {
        priority_sweep(eng, now, 0);
    }
}

/// One PWS priority round restricted to tasks of size at least
/// `min_size` (`0` = unrestricted PWS; [`super::Bsp`] passes the §5.3
/// size floor).
pub(crate) fn priority_sweep(eng: &mut Engine<'_>, now: u64, min_size: u64) {
    // Serve idle cores in index order (the deterministic rank matching
    // of the distributed implementation, §4.7).
    for thief in 0..eng.p() {
        if !eng.is_idle(thief) || eng.is_done() {
            continue;
        }
        // Round priority: max over deque heads and pending flags,
        // restricted to the stealable sizes (min_size > 1 under §5.3).
        let mut best_head: Option<(u32, usize)> = None; // (pri, victim)
        for v in 0..eng.p() {
            if let (Some(pri), Some(size)) = (eng.head_pri(v), eng.head_size(v)) {
                if size >= min_size && best_head.is_none_or(|(bp, _)| pri > bp) {
                    best_head = Some((pri, v));
                }
            }
        }
        let max_pending = (0..eng.p())
            .filter(|&v| {
                // a busy core can still generate stealable tasks only
                // while its current node is big enough to fork them
                eng.running_node_size(v)
                    .is_some_and(|size| size / 2 >= min_size)
            })
            .filter_map(|v| eng.pending_pri(v))
            .max();
        match (best_head, max_pending) {
            (Some((pri, victim)), pending) => {
                if pending.is_some_and(|pp| pp > pri) {
                    // A busy core may yet generate a higher-priority
                    // task: wait for it (round has not started).
                    eng.note_failed_round(thief, pending.unwrap());
                    continue;
                }
                eng.commit_steal(thief, victim, now);
            }
            (None, Some(pp)) => {
                eng.note_failed_round(thief, pp);
            }
            (None, None) => {}
        }
    }
}
