//! Cache-domain topology for the native runtime: which workers share a
//! cache domain (socket / CCX / last-level cache), detected from the
//! host or simulated on small machines.
//!
//! The paper's machine model is a cache *hierarchy*; the native pool
//! realizes it by grouping workers into **domains** and stealing in two
//! levels — thieves probe victims inside their own domain first, and
//! cross-domain steals are admitted only for shallow fork depths (big
//! tasks), generalizing the §5.3 BSP admission rule. This module owns
//! the *mapping*: [`DomainSpec`] is the `HBP_DOMAINS` configuration
//! surface, [`DomainMap`] the resolved worker → domain assignment.
//!
//! ## Detection
//!
//! `HBP_DOMAINS=auto` (or unset) groups host CPUs by the
//! `shared_cpu_list` of their *highest-level* cache under
//! `/sys/devices/system/cpu/cpu*/cache/index*` — CPUs sharing a
//! last-level cache form one domain, and worker `w` inherits the domain
//! of CPU `w mod ncpus`. Detection **never panics**: an absent or
//! unreadable `/sys`, a 1-CPU host, or malformed topology files all log
//! the fallback loudly (once, same style as `bench_diff`'s `host_cpus`
//! warning) and resolve to one flat domain — behaviorally identical to
//! the pre-domain pool.
//!
//! ## Simulated domains
//!
//! `HBP_DOMAINS=<k>` partitions the workers into `k` balanced
//! contiguous groups regardless of host topology — the way to exercise
//! two-level stealing on a small host. `HBP_DOMAINS=tag:<k>` assigns
//! the same labels but leaves stealing flat: locality is *classified*
//! (metrics, trace events) without being *preferred*, which is the
//! control arm of the BENCH locality A/B.

use std::path::Path;
use std::sync::Once;

/// Default cross-domain fork-depth floor (`HBP_CROSS_DEPTH` unset):
/// only branches from the top 3 fork levels — the 8 biggest
/// subproblems of a binary recursion — may move between domains.
pub const DEFAULT_CROSS_DEPTH: u32 = 3;

/// The `HBP_DOMAINS` configuration surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DomainSpec {
    /// Detect domains from the host's cache topology (the default);
    /// falls back to one flat domain, loudly, when detection fails.
    #[default]
    Auto,
    /// `k` simulated balanced contiguous domains with two-level
    /// stealing (`k = 1` is exactly the flat pool).
    Count(usize),
    /// `k` simulated domains as *labels only*: steal locality is
    /// classified in metrics and trace events but the victim order and
    /// admission stay flat (the locality A/B's control arm).
    Tag(usize),
}

impl DomainSpec {
    /// Parse an `HBP_DOMAINS` value: `None` (unset), the empty string,
    /// or `auto` → [`DomainSpec::Auto`]; an integer `k ≥ 1` →
    /// [`DomainSpec::Count`]; `tag:<k>` → [`DomainSpec::Tag`]. Anything
    /// else is an error naming the variable, the offending value, and
    /// the accepted ones.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        let err = |other: &str| {
            Err(format!(
                "HBP_DOMAINS must be `auto`, an integer >= 1, or `tag:<k>`, got {other:?}"
            ))
        };
        match value {
            None | Some("") | Some("auto") => Ok(DomainSpec::Auto),
            Some(other) => {
                if let Some(k) = other.strip_prefix("tag:") {
                    return match k.parse::<usize>() {
                        Ok(k) if k >= 1 => Ok(DomainSpec::Tag(k)),
                        _ => err(other),
                    };
                }
                match other.parse::<usize>() {
                    Ok(k) if k >= 1 => Ok(DomainSpec::Count(k)),
                    _ => err(other),
                }
            }
        }
    }

    /// Resolve this spec for a pool of `workers` threads: the worker →
    /// domain map plus whether two-level stealing is on. [`Auto`]
    /// detects from the live `/sys` (falling back flat, loudly, on
    /// failure); [`Count`]/[`Tag`] simulate balanced contiguous
    /// domains. Two-level stealing is off for [`Tag`] by definition and
    /// degenerate (off) whenever only one domain resolves.
    ///
    /// [`Auto`]: DomainSpec::Auto
    /// [`Count`]: DomainSpec::Count
    /// [`Tag`]: DomainSpec::Tag
    pub fn resolve(self, workers: usize) -> (DomainMap, bool) {
        self.resolve_at(Path::new("/sys/devices/system/cpu"), workers)
    }

    /// [`DomainSpec::resolve`] against an explicit sysfs root (tests
    /// point this at an unreadable path to force the fallback).
    pub fn resolve_at(self, sysfs_cpu_root: &Path, workers: usize) -> (DomainMap, bool) {
        match self {
            DomainSpec::Auto => {
                let map = match detect_at(sysfs_cpu_root, workers) {
                    Ok(map) => map,
                    Err(why) => {
                        warn_fallback(&why);
                        DomainMap::flat(workers)
                    }
                };
                let sharded = map.domains() > 1;
                (map, sharded)
            }
            DomainSpec::Count(k) => {
                let map = DomainMap::simulated(workers, k);
                let sharded = map.domains() > 1;
                (map, sharded)
            }
            DomainSpec::Tag(k) => (DomainMap::simulated(workers, k), false),
        }
    }
}

/// A resolved worker → cache-domain assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainMap {
    /// Domain id per worker index.
    of_worker: Vec<u32>,
    /// Number of distinct domains (`max(of_worker) + 1`).
    domains: usize,
}

impl DomainMap {
    /// Every worker in one domain (the flat pool).
    pub fn flat(workers: usize) -> Self {
        Self {
            of_worker: vec![0; workers.max(1)],
            domains: 1,
        }
    }

    /// `k` balanced contiguous domains (clamped to `1..=workers`):
    /// worker `w` lands in domain `w·k / workers`, so group sizes
    /// differ by at most one and neighbors share a domain.
    pub fn simulated(workers: usize, k: usize) -> Self {
        let workers = workers.max(1);
        let k = k.clamp(1, workers);
        Self {
            of_worker: (0..workers).map(|w| ((w * k) / workers) as u32).collect(),
            domains: k,
        }
    }

    /// Build from explicit per-worker labels (detection path; labels
    /// must be `0..domains` with every domain inhabited).
    fn from_labels(of_worker: Vec<u32>) -> Self {
        let domains = of_worker
            .iter()
            .copied()
            .max()
            .map_or(1, |m| m as usize + 1);
        Self { of_worker, domains }
    }

    /// The domain worker `w` belongs to.
    #[inline]
    pub fn domain_of(&self, w: usize) -> usize {
        self.of_worker[w % self.of_worker.len()] as usize
    }

    /// Number of domains (≥ 1).
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Number of workers mapped.
    pub fn workers(&self) -> usize {
        self.of_worker.len()
    }

    /// The per-worker domain labels (for trace lane annotation).
    pub fn labels(&self) -> &[u32] {
        &self.of_worker
    }
}

static WARN_ONCE: Once = Once::new();

/// Log the auto-detection fallback loudly — stderr only, so binaries
/// whose stdout is machine-readable (`serve_scenario` prints JSON)
/// stay parseable — and only once per process (every pool constructed
/// under `HBP_DOMAINS=auto` resolves the same host).
fn warn_fallback(why: &str) {
    WARN_ONCE.call_once(|| {
        eprintln!(
            "  WARNING: HBP_DOMAINS=auto could not shard by cache topology ({why}) — \
             falling back to domains=1 (the flat pool). Set HBP_DOMAINS=<k> to \
             simulate k domains on this host."
        );
    });
}

/// Detect cache domains from `/sys/devices/system/cpu` (see the module
/// docs) for a pool of `workers` threads. [`DomainSpec::resolve`] wraps
/// this with the loud flat fallback; callers wanting the raw outcome
/// (tests, diagnostics) get the failure reason here.
pub fn detect_at(sysfs_cpu_root: &Path, workers: usize) -> Result<DomainMap, String> {
    let entries = std::fs::read_dir(sysfs_cpu_root)
        .map_err(|e| format!("{} unreadable: {e}", sysfs_cpu_root.display()))?;
    // Collect cpuN directories in numeric order.
    let mut cpus: Vec<(usize, std::path::PathBuf)> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name().into_string().ok()?;
            let id: usize = name.strip_prefix("cpu")?.parse().ok()?;
            Some((id, e.path()))
        })
        .collect();
    cpus.sort_by_key(|&(id, _)| id);
    if cpus.is_empty() {
        return Err(format!(
            "no cpu* entries under {}",
            sysfs_cpu_root.display()
        ));
    }
    if cpus.len() == 1 {
        return Err("host has 1 CPU — no domains to shard by".to_string());
    }
    // Key each CPU by the shared_cpu_list of its highest-level
    // (non-instruction) cache; CPUs with equal keys share a domain.
    let mut keys = Vec::with_capacity(cpus.len());
    for (id, path) in &cpus {
        keys.push(
            llc_shared_key(&path.join("cache")).ok_or_else(|| {
                format!("cpu{id} exposes no readable cache/index*/shared_cpu_list")
            })?,
        );
    }
    // Number domains by first appearance in CPU order (deterministic).
    let mut seen: Vec<&str> = Vec::new();
    let mut cpu_dom = Vec::with_capacity(keys.len());
    for key in &keys {
        let dom = match seen.iter().position(|k| k == key) {
            Some(i) => i,
            None => {
                seen.push(key);
                seen.len() - 1
            }
        };
        cpu_dom.push(dom as u32);
    }
    // Worker w inherits the domain of CPU (w mod ncpus) — the natural
    // assignment when the pool is sized to (or oversubscribes) the host.
    let labels = (0..workers.max(1))
        .map(|w| cpu_dom[w % cpu_dom.len()])
        .collect();
    Ok(DomainMap::from_labels(labels))
}

/// The `shared_cpu_list` of the highest-level data/unified cache under
/// one CPU's `cache/` directory, or `None` when nothing is readable.
fn llc_shared_key(cache_dir: &Path) -> Option<String> {
    let entries = std::fs::read_dir(cache_dir).ok()?;
    let mut best: Option<(u32, String)> = None;
    for e in entries.flatten() {
        let name = e.file_name().into_string().ok()?;
        if !name.starts_with("index") {
            continue;
        }
        let path = e.path();
        let read = |f: &str| -> Option<String> {
            std::fs::read_to_string(path.join(f))
                .ok()
                .map(|s| s.trim().to_string())
        };
        // Instruction caches are not sharing domains for data.
        if read("type").is_some_and(|t| t == "Instruction") {
            continue;
        }
        let level: u32 = read("level")?.parse().ok()?;
        let shared = read("shared_cpu_list")?;
        if best.as_ref().is_none_or(|(l, _)| level > *l) {
            best = Some((level, shared));
        }
    }
    best.map(|(_, s)| s)
}

/// Parse an `HBP_CROSS_DEPTH` value — the fork-depth floor above which
/// (deeper than which) steals may not cross domains: `None` (unset) or
/// the empty string → [`DEFAULT_CROSS_DEPTH`]; an integer `d ≥ 0` → `d`
/// (0 restricts crossing to root-level branches); `inf`/`max`/`off` →
/// no floor (every admitted depth may cross). Anything else is an error
/// naming the variable, the value, and the accepted ones.
pub fn parse_cross_depth(value: Option<&str>) -> Result<u32, String> {
    match value {
        None | Some("") => Ok(DEFAULT_CROSS_DEPTH),
        Some("inf") | Some("max") | Some("off") => Ok(u32::MAX),
        Some(other) => other.parse::<u32>().map_err(|_| {
            format!("HBP_CROSS_DEPTH must be an integer >= 0 or `inf`/`max`/`off`, got {other:?}")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_accepts_the_documented_values() {
        for v in [None, Some(""), Some("auto")] {
            assert_eq!(DomainSpec::parse(v), Ok(DomainSpec::Auto), "{v:?}");
        }
        assert_eq!(DomainSpec::parse(Some("1")), Ok(DomainSpec::Count(1)));
        assert_eq!(DomainSpec::parse(Some("4")), Ok(DomainSpec::Count(4)));
        assert_eq!(DomainSpec::parse(Some("tag:2")), Ok(DomainSpec::Tag(2)));
        for bad in ["0", "tag:0", "tag:", "two", "-1", "auto2"] {
            let err = DomainSpec::parse(Some(bad)).expect_err(bad);
            assert!(err.contains("HBP_DOMAINS"), "names the variable: {err}");
            assert!(err.contains(bad), "echoes the value: {err}");
        }
    }

    #[test]
    fn cross_depth_parse_accepts_the_documented_values() {
        assert_eq!(parse_cross_depth(None), Ok(DEFAULT_CROSS_DEPTH));
        assert_eq!(parse_cross_depth(Some("")), Ok(DEFAULT_CROSS_DEPTH));
        assert_eq!(parse_cross_depth(Some("0")), Ok(0));
        assert_eq!(parse_cross_depth(Some("7")), Ok(7));
        for inf in ["inf", "max", "off"] {
            assert_eq!(parse_cross_depth(Some(inf)), Ok(u32::MAX), "{inf}");
        }
        let err = parse_cross_depth(Some("-3")).unwrap_err();
        assert!(
            err.contains("HBP_CROSS_DEPTH") && err.contains("-3"),
            "{err}"
        );
    }

    #[test]
    fn simulated_maps_are_balanced_and_contiguous() {
        let m = DomainMap::simulated(4, 2);
        assert_eq!(m.labels(), &[0, 0, 1, 1]);
        assert_eq!(m.domains(), 2);
        let m = DomainMap::simulated(5, 2);
        assert_eq!(m.labels(), &[0, 0, 0, 1, 1]);
        let m = DomainMap::simulated(8, 4);
        assert_eq!(m.labels(), &[0, 0, 1, 1, 2, 2, 3, 3]);
        // k clamps to the worker count; labels stay dense.
        let m = DomainMap::simulated(3, 9);
        assert_eq!(m.labels(), &[0, 1, 2]);
        assert_eq!(m.domains(), 3);
        // k=1 is the flat pool.
        assert_eq!(DomainMap::simulated(6, 1), DomainMap::flat(6));
    }

    #[test]
    fn unreadable_sysfs_falls_back_flat_without_panicking() {
        // Satellite: detection must fail loudly-but-gracefully when /sys
        // cache info is absent. Point it somewhere that cannot exist.
        let root = Path::new("/definitely/not/a/sysfs/cpu/dir");
        let err = detect_at(root, 4).expect_err("unreadable root must be an Err");
        assert!(err.contains("unreadable"), "{err}");
        // resolve_at never panics and degrades to one flat domain with
        // two-level stealing off.
        let (map, two_level) = DomainSpec::Auto.resolve_at(root, 4);
        assert_eq!(map, DomainMap::flat(4));
        assert!(!two_level);
    }

    #[test]
    fn one_cpu_host_is_a_detection_error_not_a_panic() {
        // Build a fake sysfs with exactly one CPU.
        let dir = std::env::temp_dir().join(format!("hbp-topo-1cpu-{}", std::process::id()));
        let cache = dir.join("cpu0/cache/index0");
        std::fs::create_dir_all(&cache).unwrap();
        std::fs::write(cache.join("level"), "1\n").unwrap();
        std::fs::write(cache.join("type"), "Data\n").unwrap();
        std::fs::write(cache.join("shared_cpu_list"), "0\n").unwrap();
        let err = detect_at(&dir, 4).expect_err("1-CPU host must not shard");
        assert!(err.contains("1 CPU"), "{err}");
        let (map, two_level) = DomainSpec::Auto.resolve_at(&dir, 4);
        assert_eq!(map, DomainMap::flat(4));
        assert!(!two_level);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detection_groups_cpus_by_llc_shared_list() {
        // Fake a 4-CPU host with two L2 complexes: cpus {0,1} share one
        // LLC, {2,3} the other; L1s are private (level 1 loses to 2).
        let dir = std::env::temp_dir().join(format!("hbp-topo-2dom-{}", std::process::id()));
        for cpu in 0..4 {
            let base = dir.join(format!("cpu{cpu}/cache"));
            let l1 = base.join("index0");
            std::fs::create_dir_all(&l1).unwrap();
            std::fs::write(l1.join("level"), "1\n").unwrap();
            std::fs::write(l1.join("type"), "Data\n").unwrap();
            std::fs::write(l1.join("shared_cpu_list"), format!("{cpu}\n")).unwrap();
            let l2 = base.join("index1");
            std::fs::create_dir_all(&l2).unwrap();
            std::fs::write(l2.join("level"), "2\n").unwrap();
            std::fs::write(l2.join("type"), "Unified\n").unwrap();
            let list = if cpu < 2 { "0-1" } else { "2-3" };
            std::fs::write(l2.join("shared_cpu_list"), format!("{list}\n")).unwrap();
        }
        let map = detect_at(&dir, 4).expect("two clean domains");
        assert_eq!(map.labels(), &[0, 0, 1, 1]);
        assert_eq!(map.domains(), 2);
        // Oversubscribed pools wrap: worker 5 shares cpu1's domain.
        let map8 = detect_at(&dir, 8).expect("wrapped assignment");
        assert_eq!(map8.labels(), &[0, 0, 1, 1, 0, 0, 1, 1]);
        let (_, two_level) = DomainSpec::Auto.resolve_at(&dir, 4);
        assert!(two_level, "2 detected domains turn two-level stealing on");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tag_spec_labels_without_sharding() {
        let (map, two_level) = DomainSpec::Tag(2).resolve(4);
        assert_eq!(map, DomainMap::simulated(4, 2));
        assert!(
            !two_level,
            "tag: classifies locality but keeps flat stealing"
        );
        let (_, sharded) = DomainSpec::Count(2).resolve(4);
        assert!(sharded);
        let (map1, one) = DomainSpec::Count(1).resolve(4);
        assert_eq!(map1, DomainMap::flat(4));
        assert!(!one, "one domain degenerates to the flat pool");
    }
}
