//! Virtual time: the discrete-event heap and the sweep cadence.
//!
//! The simulator is event-driven. Each core advances on [`EvKind::Step`]
//! events stamped with its private virtual clock; steal rounds run on
//! [`EvKind::Sweep`] events. Ties are broken by a global sequence number,
//! so event order — and therefore every simulated execution — is fully
//! deterministic: two runs of the same computation on the same machine
//! pop the exact same event sequence.
//!
//! Sweeps are deduplicated by timestamp: scheduling a sweep at a time at
//! which (or before which) one is already pending is a no-op, which keeps
//! the event volume linear in the number of chargeable actions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What a scheduled event does when popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvKind {
    /// Advance the given core by one chargeable action.
    Step(u32),
    /// Attempt steals for all idle cores.
    Sweep,
}

/// One scheduled event: `(time, seq)` orders the heap, `seq` makes the
/// order total (FIFO among events pushed for the same instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ev {
    /// Virtual time at which the event fires.
    pub time: u64,
    /// Global push sequence number (tie-breaker).
    pub seq: u64,
    /// The event's action.
    pub kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(o.time, o.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}

/// The event heap plus the sweep-dedup state.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    sweep_scheduled_at: Option<u64>,
}

impl EventQueue {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push an event at `time`; later pushes at equal times pop later.
    pub fn push(&mut self, time: u64, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Ev> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    /// Request a steal sweep at `time`. `wanted` gates the request (the
    /// engine passes "some core is idle"); a sweep already pending at an
    /// earlier-or-equal time absorbs the request.
    pub fn schedule_sweep(&mut self, time: u64, wanted: bool) {
        if !wanted {
            return;
        }
        if let Some(t) = self.sweep_scheduled_at {
            if t <= time {
                return;
            }
        }
        self.sweep_scheduled_at = Some(time);
        self.push(time, EvKind::Sweep);
    }

    /// Mark the pending sweep as started (called when its event pops), so
    /// the next request schedules a fresh one.
    pub fn sweep_started(&mut self) {
        self.sweep_scheduled_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(5, EvKind::Step(0));
        q.push(3, EvKind::Step(1));
        q.push(3, EvKind::Step(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            order,
            vec![EvKind::Step(1), EvKind::Step(2), EvKind::Step(0)]
        );
    }

    #[test]
    fn sweeps_dedupe_by_timestamp() {
        let mut q = EventQueue::new();
        q.schedule_sweep(4, true);
        q.schedule_sweep(4, true); // absorbed
        q.schedule_sweep(9, true); // absorbed (a sweep is pending earlier)
        q.schedule_sweep(2, true); // earlier: scheduled too
        let sweeps = std::iter::from_fn(|| q.pop())
            .filter(|e| e.kind == EvKind::Sweep)
            .count();
        assert_eq!(sweeps, 2);
    }

    #[test]
    fn unwanted_sweeps_are_dropped() {
        let mut q = EventQueue::new();
        q.schedule_sweep(1, false);
        assert!(q.pop().is_none());
    }
}
