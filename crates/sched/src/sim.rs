//! The discrete-event engine core.
//!
//! [`Engine`] owns the simulated machine state — per-core virtual clocks,
//! the [`TaskDeques`](crate::deque::TaskDeques), the
//! [`StackAllocator`](crate::stacks::StackAllocator), the
//! [`EventQueue`](crate::clock::EventQueue), and the statistics — and
//! executes the recorded computation one chargeable action at a time.
//!
//! *Who* steals *what* during a sweep is delegated to a
//! [`StealPolicy`](crate::policy::StealPolicy): the engine exposes the
//! queries a policy needs (`head_pri`, `pending_pri`, …) and the two
//! effects it may apply (`commit_steal`, `note_failed_round` /
//! `note_failed_probe`); everything else — frame allocation, fork/join
//! bookkeeping, miss accounting — is policy-independent and lives here.

use hbp_machine::{MachineConfig, MemSystem, Word};
use hbp_model::{Computation, Item, NodeId, Target};
use hbp_trace::{EventKind as TrEv, TraceSink};

use crate::clock::{EvKind, EventQueue};
use crate::deque::TaskDeques;
use crate::policy::StealPolicy;
use crate::report::ExecReport;
use crate::stacks::StackAllocator;

use std::collections::HashSet;

/// Where a core is within its current node's item list.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    node: NodeId,
    item: usize,
    pos: u32,
}

#[derive(Debug, Clone, Copy)]
enum CoreState {
    Idle,
    Run(Cursor),
}

#[derive(Debug)]
struct Core {
    time: u64,
    busy: u64,
    steal_overhead: u64,
    idle_accum: u64,
    idle_since: u64,
    state: CoreState,
    cur_region: u32,
    /// Miss deltas of the currently open trace segment
    /// (heap block / stack block / stack plain); tracked only when a
    /// tracer is attached, flushed as [`TrEv::MissDelta`] at segment close.
    seg_miss: [u64; 3],
}

/// The policy-independent simulator state (see module docs).
pub struct Engine<'a> {
    comp: &'a Computation,
    cfg: MachineConfig,
    ms: MemSystem,
    /// Optional structured-event recorder (see [`Engine::attach_trace`]).
    trace: Option<&'a TraceSink>,
    /// Virtual time of the sweep currently being served (for the
    /// [`TrEv::StealFail`] events emitted from `note_failed_*`).
    sweep_now: u64,
    // --- static structure -------------------------------------------------
    /// node -> (parent node, index of the fork item inside the parent)
    parent: Vec<Option<(NodeId, usize)>>,
    /// priority of the fork that created the node (root: D' + 1)
    pri_of: Vec<u32>,
    // --- dynamic state ----------------------------------------------------
    cores: Vec<Core>,
    deques: TaskDeques,
    stacks: StackAllocator,
    frame_addr: Vec<Word>,
    region_of: Vec<u32>,
    /// per node: remaining children of its currently-active fork
    fork_remaining: Vec<u8>,
    /// per node: item index of its currently-active fork
    active_fork: Vec<u32>,
    /// per node: last core to execute part of the node's kernel items
    executor_of: Vec<u32>,
    clock: EventQueue,
    done: bool,
    end_time: u64,
    // --- statistics --------------------------------------------------------
    executed: u64,
    steals: u64,
    steals_by_pri: Vec<u64>,
    stolen_sizes: Vec<u64>,
    failed_rounds: HashSet<(u32, u32)>,
    failed_probes: u64,
    usurpations: u64,
    heap_block_misses: u64,
    stack_block_misses: u64,
    stack_plain_misses: u64,
}

impl<'a> Engine<'a> {
    /// Fresh engine for `comp` on the machine `cfg`.
    pub fn new(comp: &'a Computation, cfg: MachineConfig) -> Self {
        assert_eq!(
            comp.block_words, cfg.block_words,
            "computation was built for block size {}, machine has {}",
            comp.block_words, cfg.block_words
        );
        let n = comp.nodes.len();
        let mut parent = vec![None; n];
        let mut pri_of = vec![comp.n_priorities + 1; n];
        for (pn, ii, l, r, pri) in comp.forks() {
            parent[l.idx()] = Some((pn, ii));
            parent[r.idx()] = Some((pn, ii));
            pri_of[l.idx()] = pri;
            pri_of[r.idx()] = pri;
        }
        Self {
            comp,
            cfg,
            ms: MemSystem::new(cfg),
            trace: None,
            sweep_now: 0,
            parent,
            pri_of,
            cores: (0..cfg.p)
                .map(|_| Core {
                    time: 0,
                    busy: 0,
                    steal_overhead: 0,
                    idle_accum: 0,
                    idle_since: 0,
                    state: CoreState::Idle,
                    cur_region: 0,
                    seg_miss: [0; 3],
                })
                .collect(),
            deques: TaskDeques::new(cfg.p),
            stacks: StackAllocator::new(comp, cfg),
            frame_addr: vec![Word::MAX; n],
            region_of: vec![u32::MAX; n],
            fork_remaining: vec![0; n],
            active_fork: vec![u32::MAX; n],
            executor_of: vec![u32::MAX; n],
            clock: EventQueue::new(),
            done: false,
            end_time: 0,
            executed: 0,
            steals: 0,
            steals_by_pri: vec![0; comp.n_priorities as usize + 2],
            stolen_sizes: Vec::new(),
            failed_rounds: HashSet::new(),
            failed_probes: 0,
            usurpations: 0,
            heap_block_misses: 0,
            stack_block_misses: 0,
            stack_plain_misses: 0,
        }
    }

    /// Record structured events into `sink` for the rest of this run.
    ///
    /// Purely observational: the event loop, costs, and report are
    /// bit-identical with and without a tracer (the determinism tests
    /// cover this). The sink must be sized for at least `cfg.p` workers.
    pub fn attach_trace(&mut self, sink: &'a TraceSink) {
        assert!(
            sink.workers() >= self.cfg.p,
            "trace sink sized for {} workers, machine has {}",
            sink.workers(),
            self.cfg.p
        );
        assert!(
            sink.clock() == hbp_trace::ClockDomain::Virtual,
            "sim traces are virtual-time; use ClockDomain::Virtual"
        );
        self.trace = Some(sink);
    }

    /// Emit one trace event for `core` (no-op without a tracer).
    #[inline]
    fn emit(&self, core: usize, t: u64, kind: TrEv) {
        if let Some(tr) = self.trace {
            tr.push(core, t, kind);
        }
    }

    /// Flush the open segment's miss deltas for `core` at time `t`
    /// (called just before the segment-closing event is emitted).
    fn close_segment(&mut self, core: usize, t: u64) {
        if self.trace.is_none() {
            return;
        }
        let [heap_block, stack_block, stack_plain] = self.cores[core].seg_miss;
        if heap_block + stack_block + stack_plain > 0 {
            self.emit(
                core,
                t,
                TrEv::MissDelta {
                    heap_block,
                    stack_block,
                    stack_plain,
                },
            );
        }
        self.cores[core].seg_miss = [0; 3];
    }

    fn schedule_sweep(&mut self, time: u64) {
        // Only idle cores benefit from sweeps; dedupe by timestamp.
        let wanted = self
            .cores
            .iter()
            .any(|c| matches!(c.state, CoreState::Idle));
        self.clock.schedule_sweep(time, wanted);
    }

    /// Push `node`'s frame in `region` and make `core` start executing it.
    fn start_node(&mut self, core: usize, node: NodeId, region: u32) {
        let tn = &self.comp.nodes[node.idx()];
        let fa = self.stacks.push_frame(region, tn.pad_words, tn.frame_words);
        self.frame_addr[node.idx()] = fa;
        self.region_of[node.idx()] = region;
        self.executor_of[node.idx()] = core as u32;
        self.cores[core].cur_region = region;
        self.cores[core].state = CoreState::Run(Cursor {
            node,
            item: 0,
            pos: 0,
        });
        if self.trace.is_some() {
            let t = self.cores[core].time;
            self.emit(
                core,
                t,
                TrEv::TaskBegin {
                    task: node.idx() as u32,
                },
            );
        }
    }

    fn resolve(&self, t: Target) -> Word {
        match t {
            Target::Global(w) => w,
            Target::Local { node, off } => {
                let fa = self.frame_addr[node.idx()];
                debug_assert!(fa != Word::MAX, "access to dead frame of {node:?}");
                fa + off as u64
            }
        }
    }

    /// Execute one chargeable action for `core`; zero-cost control steps
    /// (node finish, join resolution) cascade within the same event.
    fn step(&mut self, core: usize) {
        loop {
            let cur = match self.cores[core].state {
                CoreState::Idle => return,
                CoreState::Run(c) => c,
            };
            let node = cur.node;
            let items_len = self.comp.nodes[node.idx()].items.len();
            if cur.item >= items_len {
                if self.finish_node(core, node) {
                    continue; // new state, keep cascading
                }
                return; // idle or done
            }
            match self.comp.nodes[node.idx()].items[cur.item] {
                Item::Seg(s) => {
                    if cur.pos >= s.len() {
                        self.cores[core].state = CoreState::Run(Cursor {
                            node,
                            item: cur.item + 1,
                            pos: 0,
                        });
                        continue;
                    }
                    let a = self.comp.arena[(s.start + cur.pos) as usize];
                    let addr = self.resolve(a.target);
                    let (out, cost) = self.ms.access_costed(core, addr, a.write);
                    let is_stack = addr >= self.stacks.stack_base();
                    if out.is_miss() {
                        if out.is_block_miss() {
                            if is_stack {
                                self.stack_block_misses += 1;
                                if self.trace.is_some() {
                                    self.cores[core].seg_miss[1] += 1;
                                }
                            } else {
                                self.heap_block_misses += 1;
                                if self.trace.is_some() {
                                    self.cores[core].seg_miss[0] += 1;
                                }
                            }
                        } else if is_stack {
                            self.stack_plain_misses += 1;
                            if self.trace.is_some() {
                                self.cores[core].seg_miss[2] += 1;
                            }
                        }
                    }
                    self.executed += 1;
                    self.cores[core].time += cost;
                    self.cores[core].busy += cost;
                    self.cores[core].state = CoreState::Run(Cursor {
                        node,
                        item: cur.item,
                        pos: cur.pos + 1,
                    });
                    let t = self.cores[core].time;
                    self.clock.push(t, EvKind::Step(core as u32));
                    return;
                }
                Item::Fork { left, right, .. } => {
                    // O(1) fork bookkeeping.
                    self.cores[core].time += 1;
                    self.cores[core].busy += 1;
                    if self.trace.is_some() {
                        let t = self.cores[core].time;
                        self.close_segment(core, t);
                        self.emit(
                            core,
                            t,
                            TrEv::Fork {
                                parent: node.idx() as u32,
                                left: left.idx() as u32,
                                right: right.idx() as u32,
                            },
                        );
                    }
                    self.fork_remaining[node.idx()] = 2;
                    self.active_fork[node.idx()] = cur.item as u32;
                    self.deques.push_bottom(core, right);
                    let region = self.cores[core].cur_region;
                    self.start_node(core, left, region);
                    let t = self.cores[core].time;
                    self.clock.push(t, EvKind::Step(core as u32));
                    self.schedule_sweep(t);
                    return;
                }
            }
        }
    }

    /// Handle completion of `node` by `core`. Returns `true` if the core
    /// has a new running state to cascade into.
    fn finish_node(&mut self, core: usize, node: NodeId) -> bool {
        if self.trace.is_some() {
            let t = self.cores[core].time;
            self.close_segment(core, t);
            self.emit(
                core,
                t,
                TrEv::TaskEnd {
                    task: node.idx() as u32,
                },
            );
        }
        // Pop the frame (LIFO within its region).
        let tn = &self.comp.nodes[node.idx()];
        let region = self.region_of[node.idx()];
        let fa = self.frame_addr[node.idx()];
        self.stacks
            .pop_frame(region, fa, tn.pad_words, tn.frame_words);
        self.frame_addr[node.idx()] = Word::MAX;

        if node == self.comp.root {
            self.done = true;
            self.end_time = self.cores[core].time;
            self.cores[core].state = CoreState::Idle;
            self.cores[core].idle_since = self.cores[core].time;
            return false;
        }
        let (pnode, _pitem) = self.parent[node.idx()].expect("non-root has a parent");
        self.fork_remaining[pnode.idx()] -= 1;
        if self.fork_remaining[pnode.idx()] > 0 {
            // Sibling still outstanding: resume it from our own deque if it
            // was not stolen, otherwise this kernel is blocked — go idle.
            if let Some(sib) = self.deques.pop_bottom(core) {
                debug_assert_eq!(
                    self.parent[sib.idx()].map(|(p, _)| p),
                    Some(pnode),
                    "deque bottom is not the sibling"
                );
                let region = self.cores[core].cur_region;
                self.start_node(core, sib, region);
                let t = self.cores[core].time;
                self.schedule_sweep(t);
                return true;
            }
            self.cores[core].state = CoreState::Idle;
            self.cores[core].idle_since = self.cores[core].time;
            let t = self.cores[core].time;
            self.schedule_sweep(t);
            return false;
        }
        // Both children done: the last finisher continues the parent
        // (usurpation if it is not the core previously executing it).
        if self.executor_of[pnode.idx()] != core as u32 {
            self.usurpations += 1;
        }
        self.executor_of[pnode.idx()] = core as u32;
        self.cores[core].cur_region = self.region_of[pnode.idx()];
        let resume_item = self.active_fork[pnode.idx()] as usize + 1;
        self.cores[core].state = CoreState::Run(Cursor {
            node: pnode,
            item: resume_item,
            pos: 0,
        });
        if self.trace.is_some() {
            let t = self.cores[core].time;
            self.emit(
                core,
                t,
                TrEv::JoinResume {
                    task: pnode.idx() as u32,
                },
            );
        }
        true
    }

    /// Run the whole computation, delegating every sweep to `policy`.
    pub fn drive(&mut self, policy: &mut dyn StealPolicy) {
        let region = self.stacks.new_region();
        self.start_node(0, self.comp.root, region);
        if self.trace.is_some() {
            self.emit(
                0,
                0,
                TrEv::RegionAttach {
                    task: self.comp.root.idx() as u32,
                    region,
                },
            );
        }
        self.clock.push(0, EvKind::Step(0));
        while let Some(ev) = self.clock.pop() {
            if self.done {
                break;
            }
            match ev.kind {
                EvKind::Step(c) => self.step(c as usize),
                EvKind::Sweep => {
                    self.clock.sweep_started();
                    self.sweep_now = ev.time;
                    policy.sweep(self, ev.time);
                }
            }
        }
        assert!(self.done, "event queue drained before completion");
        assert_eq!(self.executed, self.comp.work(), "not all accesses executed");
    }

    /// Extract the final [`ExecReport`].
    pub fn report(self) -> ExecReport {
        let makespan = self.cores.iter().map(|c| c.time).max().unwrap_or(0);
        let idle: Vec<u64> = self
            .cores
            .iter()
            .map(|c| makespan - c.busy - c.steal_overhead)
            .collect();
        let steal_attempts = self.steals + self.failed_rounds.len() as u64 + self.failed_probes;
        ExecReport {
            p: self.cfg.p,
            makespan,
            work: self.executed,
            machine: self.ms.stats(),
            heap_block_misses: self.heap_block_misses,
            stack_block_misses: self.stack_block_misses,
            stack_plain_misses: self.stack_plain_misses,
            steals: self.steals,
            // The sim steals one task per commit, always.
            stolen_tasks: self.steals,
            steal_attempts,
            steals_by_priority: self
                .steals_by_pri
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(p, &c)| (p as u32, c))
                .collect(),
            stolen_sizes: self.stolen_sizes,
            usurpations: self.usurpations,
            busy: self.cores.iter().map(|c| c.busy).collect(),
            steal_overhead: self.cores.iter().map(|c| c.steal_overhead).collect(),
            idle,
            n_priorities: self.comp.n_priorities,
            // The simulator has no elasticity: every configured core
            // participates in every run.
            workers_active: self.cfg.p,
        }
    }

    // --- queries and effects for StealPolicy implementations ---------------

    /// Number of simulated cores.
    pub fn p(&self) -> usize {
        self.cfg.p
    }

    /// Whether the root node has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether `core` is idle (a candidate thief).
    pub fn is_idle(&self, core: usize) -> bool {
        matches!(self.cores[core].state, CoreState::Idle)
    }

    /// Size of the root task (for §5.3's stealable-size floor).
    pub fn root_size(&self) -> u64 {
        self.comp.nodes[self.comp.root.idx()].size
    }

    /// Priority of the task at the top of `v`'s deque, if any.
    pub fn head_pri(&self, v: usize) -> Option<u32> {
        self.deques.head(v).map(|n| self.pri_of[n.idx()])
    }

    /// Size of the task at the top of `v`'s deque, if any.
    pub fn head_size(&self, v: usize) -> Option<u64> {
        self.deques.head(v).map(|n| self.comp.nodes[n.idx()].size)
    }

    /// §4.7's flagged upper bound: a busy core with an empty deque reports
    /// `priority(current node) − 1` for a task it may yet generate.
    pub fn pending_pri(&self, v: usize) -> Option<u32> {
        if !self.deques.is_empty(v) {
            return None;
        }
        match self.cores[v].state {
            CoreState::Run(c) => Some(self.pri_of[c.node.idx()].saturating_sub(1)),
            CoreState::Idle => None,
        }
    }

    /// Size of the node `v` is currently executing (`None` when idle).
    pub fn running_node_size(&self, v: usize) -> Option<u64> {
        match self.cores[v].state {
            CoreState::Run(c) => Some(self.comp.nodes[c.node.idx()].size),
            CoreState::Idle => None,
        }
    }

    /// Steal the top of `victim`'s deque for `thief`: charge `sP`, open a
    /// fresh stack region, start the task, and record the statistics. The
    /// victim's deque must be non-empty.
    pub fn commit_steal(&mut self, thief: usize, victim: usize, now: u64) {
        let node = self.deques.steal_top(victim).expect("victim head exists");
        self.steals += 1;
        let pri = self.pri_of[node.idx()];
        self.steals_by_pri[pri as usize] += 1;
        self.stolen_sizes.push(self.comp.nodes[node.idx()].size);
        if self.trace.is_some() {
            self.emit(
                thief,
                now,
                TrEv::StealCommit {
                    task: node.idx() as u32,
                    victim: victim as u32,
                    count: 1,
                    cross_domain: false,
                },
            );
        }
        let c = &mut self.cores[thief];
        c.idle_accum += now.saturating_sub(c.idle_since);
        c.time = now + self.cfg.steal_cost;
        c.steal_overhead += self.cfg.steal_cost;
        let region = self.stacks.new_region();
        self.start_node(thief, node, region);
        let t = self.cores[thief].time;
        if self.trace.is_some() {
            self.emit(
                thief,
                t,
                TrEv::RegionAttach {
                    task: node.idx() as u32,
                    region,
                },
            );
        }
        self.clock.push(t, EvKind::Step(thief as u32));
    }

    /// Record that `thief` sat out a round at priority `pri` (deduplicated
    /// per `(thief, pri)` pair — Cor 4.1's attempt accounting).
    pub fn note_failed_round(&mut self, thief: usize, pri: u32) {
        // Only a *newly* failed (thief, pri) pair emits a trace event, so
        // the traced attempt volume matches Cor 4.1's deduplicated count.
        if self.failed_rounds.insert((thief as u32, pri)) && self.trace.is_some() {
            self.emit(thief, self.sweep_now, TrEv::StealFail);
        }
    }

    /// Record an unsuccessful randomized probe by `thief` (RWS): charges
    /// the probe fee and counts toward steal attempts.
    pub fn note_failed_probe(&mut self, thief: usize) {
        self.failed_probes += 1;
        self.cores[thief].steal_overhead += self.cfg.probe_cost;
        if self.trace.is_some() {
            self.emit(thief, self.sweep_now, TrEv::StealFail);
        }
    }
}
