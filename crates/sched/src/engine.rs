//! Entry points of the simulator: [`Policy`], [`run`], [`run_sequential`].
//!
//! This module is a thin facade over the layered scheduler subsystem —
//! see [`crate::sim`] for the event-loop core, [`crate::clock`] /
//! [`crate::deque`] / [`crate::stacks`] for its parts, and
//! [`crate::policy`] for the [`StealPolicy`](crate::policy::StealPolicy)
//! implementations the [`Policy`] enum selects between. The signatures
//! here are stable: call sites in `hbp-bench`, the examples, and the
//! tests use `run(comp, cfg, policy)` unchanged across the refactor.

use hbp_machine::MachineConfig;
use hbp_model::Computation;
use hbp_trace::TraceSink;

use crate::policy::{Bsp, Pws, Rws, StealPolicy};
use crate::report::{ExecReport, SeqReport};
use crate::sim::Engine;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's deterministic Priority Work Stealing scheduler (§4).
    Pws,
    /// Randomized work stealing with the given seed (baseline, [13]).
    Rws {
        /// RNG seed: runs with equal seeds are identical.
        seed: u64,
    },
    /// Bulk-synchronous mapping (paper §5.3): like PWS, but only tasks of
    /// size at least `root_size / 2^prefix_levels` may be stolen — i.e.
    /// each collection's recursion is unravelled for `prefix_levels`
    /// levels, those subtrees are distributed, and everything below runs
    /// without further stealing.
    Bsp {
        /// Number of recursion levels open for stealing
        /// (the paper's `log p` unravelling; pass `⌈log₂p⌉ + 1`).
        prefix_levels: u32,
    },
}

impl Policy {
    /// The [`StealPolicy`] implementation this variant selects.
    pub fn steal_policy(self) -> Box<dyn StealPolicy> {
        match self {
            Policy::Pws => Box::new(Pws),
            Policy::Rws { seed } => Box::new(Rws::new(seed)),
            Policy::Bsp { prefix_levels } => Box::new(Bsp::new(prefix_levels)),
        }
    }

    /// Parse an `HBP_POLICY` value: `None` (unset), the empty string or
    /// `pws` → [`Policy::Pws`]; `rws` / `rws:<seed>` → [`Policy::Rws`]
    /// (default seed 1); `bsp` / `bsp:<levels>` → [`Policy::Bsp`]
    /// (default 4 levels). Anything else is an error naming the
    /// variable, the offending value, and the accepted forms.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        let Some(s) = value else {
            return Ok(Policy::Pws);
        };
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let num = |default: u64| -> Result<u64, String> {
            match arg {
                None => Ok(default),
                Some(a) => a.parse().map_err(|_| {
                    format!("HBP_POLICY argument must be an integer, got {a:?} in {s:?}")
                }),
            }
        };
        match name {
            "" | "pws" => {
                if arg.is_some() {
                    return Err(format!("HBP_POLICY pws takes no argument, got {s:?}"));
                }
                Ok(Policy::Pws)
            }
            "rws" => Ok(Policy::Rws { seed: num(1)? }),
            "bsp" => Ok(Policy::Bsp {
                prefix_levels: u32::try_from(num(4)?)
                    .map_err(|_| format!("HBP_POLICY bsp levels must fit in 32 bits, got {s:?}"))?,
            }),
            other => Err(format!(
                "HBP_POLICY must be pws, rws[:seed] or bsp[:levels], got {other:?}"
            )),
        }
    }
}

/// Execute `comp` on the machine `cfg` under `policy` and report.
pub fn run(comp: &Computation, cfg: MachineConfig, policy: Policy) -> ExecReport {
    run_with_policy(comp, cfg, policy.steal_policy().as_mut())
}

/// Execute `comp` under a caller-supplied [`StealPolicy`] — the extension
/// point for scheduling disciplines beyond the built-in [`Policy`] set.
pub fn run_with_policy(
    comp: &Computation,
    cfg: MachineConfig,
    policy: &mut dyn StealPolicy,
) -> ExecReport {
    let mut eng = Engine::new(comp, cfg);
    eng.drive(policy);
    eng.report()
}

/// Like [`run`], recording structured events into `sink` along the way.
///
/// Tracing is purely observational: the returned [`ExecReport`] is
/// bit-identical to the untraced [`run`]. The sink must be in
/// [`hbp_trace::ClockDomain::Virtual`] and sized for at least `cfg.p`
/// workers; collect it afterwards with [`TraceSink::collect`].
pub fn run_traced(
    comp: &Computation,
    cfg: MachineConfig,
    policy: Policy,
    sink: &TraceSink,
) -> ExecReport {
    run_with_policy_traced(comp, cfg, policy.steal_policy().as_mut(), sink)
}

/// [`run_with_policy`] with structured-event recording (see [`run_traced`]).
pub fn run_with_policy_traced(
    comp: &Computation,
    cfg: MachineConfig,
    policy: &mut dyn StealPolicy,
    sink: &TraceSink,
) -> ExecReport {
    let mut eng = Engine::new(comp, cfg);
    eng.attach_trace(sink);
    eng.drive(policy);
    eng.report()
}

/// Execute `comp` sequentially on a single core with the same cache
/// geometry: yields the sequential cache complexity `Q(n, M, B)`.
pub fn run_sequential(comp: &Computation, cfg: MachineConfig) -> SeqReport {
    let seq_cfg = MachineConfig { p: 1, ..cfg };
    let r = run(comp, seq_cfg, Policy::Pws);
    let t = r.machine.total();
    SeqReport {
        q_misses: t.misses(),
        work: r.work,
        makespan: r.makespan,
    }
}
