//! The discrete-event multicore engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use hbp_machine::{MachineConfig, MemSystem, Word};
use hbp_model::{Computation, Item, NodeId, Target};

use crate::report::{ExecReport, SeqReport};

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's deterministic Priority Work Stealing scheduler (§4).
    Pws,
    /// Randomized work stealing with the given seed (baseline, [13]).
    Rws {
        /// RNG seed: runs with equal seeds are identical.
        seed: u64,
    },
    /// Bulk-synchronous mapping (paper §5.3): like PWS, but only tasks of
    /// size at least `root_size / 2^prefix_levels` may be stolen — i.e.
    /// each collection's recursion is unravelled for `prefix_levels`
    /// levels, those subtrees are distributed, and everything below runs
    /// without further stealing.
    Bsp {
        /// Number of recursion levels open for stealing
        /// (the paper's `log p` unravelling; pass `⌈log₂p⌉ + 1`).
        prefix_levels: u32,
    },
}

/// Words reserved per stack region; frames of one kernel must fit.
const REGION_WORDS: u64 = 1 << 26;

#[derive(Debug, Clone, Copy)]
struct Cursor {
    node: NodeId,
    item: usize,
    pos: u32,
}

#[derive(Debug, Clone, Copy)]
enum CoreState {
    Idle,
    Run(Cursor),
}

#[derive(Debug)]
struct Core {
    time: u64,
    busy: u64,
    steal_overhead: u64,
    idle_accum: u64,
    idle_since: u64,
    state: CoreState,
    cur_region: u32,
}

#[derive(Debug, Clone, Copy)]
struct Region {
    base: Word,
    sp: Word,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Advance the given core by one chargeable action.
    Step(u32),
    /// Attempt steals for all idle cores.
    Sweep,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    time: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(o.time, o.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}

struct Engine<'a> {
    comp: &'a Computation,
    cfg: MachineConfig,
    policy: Policy,
    ms: MemSystem,
    // --- static structure -------------------------------------------------
    /// node -> (parent node, index of the fork item inside the parent)
    parent: Vec<Option<(NodeId, usize)>>,
    /// priority of the fork that created the node (root: D' + 1)
    pri_of: Vec<u32>,
    stack_base: Word,
    // --- dynamic state ----------------------------------------------------
    cores: Vec<Core>,
    /// front = top (steal end), back = bottom (owner end)
    deques: Vec<VecDeque<NodeId>>,
    frame_addr: Vec<Word>,
    region_of: Vec<u32>,
    regions: Vec<Region>,
    /// per node: remaining children of its currently-active fork
    fork_remaining: Vec<u8>,
    /// per node: item index of its currently-active fork
    active_fork: Vec<u32>,
    /// per node: last core to execute part of the node's kernel items
    executor_of: Vec<u32>,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    sweep_scheduled_at: Option<u64>,
    rng: Option<ChaCha8Rng>,
    done: bool,
    end_time: u64,
    // --- statistics --------------------------------------------------------
    executed: u64,
    steals: u64,
    steals_by_pri: Vec<u64>,
    stolen_sizes: Vec<u64>,
    failed_rounds: HashSet<(u32, u32)>,
    rws_failed_probes: u64,
    usurpations: u64,
    heap_block_misses: u64,
    stack_block_misses: u64,
    stack_plain_misses: u64,
}

impl<'a> Engine<'a> {
    fn new(comp: &'a Computation, cfg: MachineConfig, policy: Policy) -> Self {
        assert_eq!(
            comp.block_words, cfg.block_words,
            "computation was built for block size {}, machine has {}",
            comp.block_words, cfg.block_words
        );
        let n = comp.nodes.len();
        let mut parent = vec![None; n];
        let mut pri_of = vec![comp.n_priorities + 1; n];
        for (pn, ii, l, r, pri) in comp.forks() {
            parent[l.idx()] = Some((pn, ii));
            parent[r.idx()] = Some((pn, ii));
            pri_of[l.idx()] = pri;
            pri_of[r.idx()] = pri;
        }
        let stack_base = (comp.heap_words.div_ceil(cfg.block_words) + 1) * cfg.block_words;
        let rng = match policy {
            Policy::Rws { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
            Policy::Pws | Policy::Bsp { .. } => None,
        };
        Self {
            comp,
            cfg,
            policy,
            ms: MemSystem::new(cfg),
            parent,
            pri_of,
            stack_base,
            cores: (0..cfg.p)
                .map(|_| Core {
                    time: 0,
                    busy: 0,
                    steal_overhead: 0,
                    idle_accum: 0,
                    idle_since: 0,
                    state: CoreState::Idle,
                    cur_region: 0,
                })
                .collect(),
            deques: vec![VecDeque::new(); cfg.p],
            frame_addr: vec![Word::MAX; n],
            region_of: vec![u32::MAX; n],
            regions: Vec::new(),
            fork_remaining: vec![0; n],
            active_fork: vec![u32::MAX; n],
            executor_of: vec![u32::MAX; n],
            heap: BinaryHeap::new(),
            seq: 0,
            sweep_scheduled_at: None,
            rng,
            done: false,
            end_time: 0,
            executed: 0,
            steals: 0,
            steals_by_pri: vec![0; comp.n_priorities as usize + 2],
            stolen_sizes: Vec::new(),
            failed_rounds: HashSet::new(),
            rws_failed_probes: 0,
            usurpations: 0,
            heap_block_misses: 0,
            stack_block_misses: 0,
            stack_plain_misses: 0,
        }
    }

    fn push_ev(&mut self, time: u64, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn schedule_sweep(&mut self, time: u64) {
        // Only idle cores benefit from sweeps; dedupe by timestamp.
        if !self
            .cores
            .iter()
            .any(|c| matches!(c.state, CoreState::Idle))
        {
            return;
        }
        if let Some(t) = self.sweep_scheduled_at {
            if t <= time {
                return;
            }
        }
        self.sweep_scheduled_at = Some(time);
        self.push_ev(time, EvKind::Sweep);
    }

    fn new_region(&mut self) -> u32 {
        let id = self.regions.len() as u32;
        let base = self.stack_base + id as u64 * REGION_WORDS;
        self.regions.push(Region { base, sp: base });
        id
    }

    /// Push `node`'s frame in `region` and make `core` start executing it.
    fn start_node(&mut self, core: usize, node: NodeId, region: u32) {
        let tn = &self.comp.nodes[node.idx()];
        let r = &mut self.regions[region as usize];
        let fa = r.sp + tn.pad_words as u64;
        r.sp = fa + tn.frame_words as u64;
        assert!(
            r.sp < r.base + REGION_WORDS,
            "stack region overflow: frames too large for REGION_WORDS"
        );
        self.frame_addr[node.idx()] = fa;
        self.region_of[node.idx()] = region;
        self.executor_of[node.idx()] = core as u32;
        self.cores[core].cur_region = region;
        self.cores[core].state = CoreState::Run(Cursor {
            node,
            item: 0,
            pos: 0,
        });
    }

    fn resolve(&self, t: Target) -> Word {
        match t {
            Target::Global(w) => w,
            Target::Local { node, off } => {
                let fa = self.frame_addr[node.idx()];
                debug_assert!(fa != Word::MAX, "access to dead frame of {node:?}");
                fa + off as u64
            }
        }
    }

    /// Execute one chargeable action for `core`; zero-cost control steps
    /// (node finish, join resolution) cascade within the same event.
    fn step(&mut self, core: usize) {
        loop {
            let cur = match self.cores[core].state {
                CoreState::Idle => return,
                CoreState::Run(c) => c,
            };
            let node = cur.node;
            let items_len = self.comp.nodes[node.idx()].items.len();
            if cur.item >= items_len {
                if self.finish_node(core, node) {
                    continue; // new state, keep cascading
                }
                return; // idle or done
            }
            match self.comp.nodes[node.idx()].items[cur.item] {
                Item::Seg(s) => {
                    if cur.pos >= s.len() {
                        self.cores[core].state = CoreState::Run(Cursor {
                            node,
                            item: cur.item + 1,
                            pos: 0,
                        });
                        continue;
                    }
                    let a = self.comp.arena[(s.start + cur.pos) as usize];
                    let addr = self.resolve(a.target);
                    let (out, cost) = self.ms.access_costed(core, addr, a.write);
                    let is_stack = addr >= self.stack_base;
                    if out.is_miss() {
                        if out.is_block_miss() {
                            if is_stack {
                                self.stack_block_misses += 1;
                            } else {
                                self.heap_block_misses += 1;
                            }
                        } else if is_stack {
                            self.stack_plain_misses += 1;
                        }
                    }
                    self.executed += 1;
                    self.cores[core].time += cost;
                    self.cores[core].busy += cost;
                    self.cores[core].state = CoreState::Run(Cursor {
                        node,
                        item: cur.item,
                        pos: cur.pos + 1,
                    });
                    let t = self.cores[core].time;
                    self.push_ev(t, EvKind::Step(core as u32));
                    return;
                }
                Item::Fork { left, right, .. } => {
                    // O(1) fork bookkeeping.
                    self.cores[core].time += 1;
                    self.cores[core].busy += 1;
                    self.fork_remaining[node.idx()] = 2;
                    self.active_fork[node.idx()] = cur.item as u32;
                    self.deques[core].push_back(right);
                    let region = self.cores[core].cur_region;
                    self.start_node(core, left, region);
                    let t = self.cores[core].time;
                    self.push_ev(t, EvKind::Step(core as u32));
                    self.schedule_sweep(t);
                    return;
                }
            }
        }
    }

    /// Handle completion of `node` by `core`. Returns `true` if the core has
    /// a new running state to cascade into.
    fn finish_node(&mut self, core: usize, node: NodeId) -> bool {
        // Pop the frame (LIFO within its region).
        let tn = &self.comp.nodes[node.idx()];
        let region = self.region_of[node.idx()];
        let fa = self.frame_addr[node.idx()];
        let r = &mut self.regions[region as usize];
        debug_assert_eq!(
            r.sp,
            fa + tn.frame_words as u64,
            "non-LIFO frame pop for {node:?}"
        );
        r.sp = fa - tn.pad_words as u64;
        self.frame_addr[node.idx()] = Word::MAX;

        if node == self.comp.root {
            self.done = true;
            self.end_time = self.cores[core].time;
            self.cores[core].state = CoreState::Idle;
            self.cores[core].idle_since = self.cores[core].time;
            return false;
        }
        let (pnode, _pitem) = self.parent[node.idx()].expect("non-root has a parent");
        self.fork_remaining[pnode.idx()] -= 1;
        if self.fork_remaining[pnode.idx()] > 0 {
            // Sibling still outstanding: resume it from our own deque if it
            // was not stolen, otherwise this kernel is blocked — go idle.
            if let Some(sib) = self.deques[core].pop_back() {
                debug_assert_eq!(
                    self.parent[sib.idx()].map(|(p, _)| p),
                    Some(pnode),
                    "deque bottom is not the sibling"
                );
                let region = self.cores[core].cur_region;
                self.start_node(core, sib, region);
                let t = self.cores[core].time;
                self.schedule_sweep(t);
                return true;
            }
            self.cores[core].state = CoreState::Idle;
            self.cores[core].idle_since = self.cores[core].time;
            let t = self.cores[core].time;
            self.schedule_sweep(t);
            return false;
        }
        // Both children done: the last finisher continues the parent
        // (usurpation if it is not the core previously executing it).
        if self.executor_of[pnode.idx()] != core as u32 {
            self.usurpations += 1;
        }
        self.executor_of[pnode.idx()] = core as u32;
        self.cores[core].cur_region = self.region_of[pnode.idx()];
        let resume_item = self.active_fork[pnode.idx()] as usize + 1;
        self.cores[core].state = CoreState::Run(Cursor {
            node: pnode,
            item: resume_item,
            pos: 0,
        });
        true
    }

    /// Priority of the task at the top of `v`'s deque, if any.
    fn head_pri(&self, v: usize) -> Option<u32> {
        self.deques[v].front().map(|n| self.pri_of[n.idx()])
    }

    /// §4.7's flagged upper bound: a busy core with an empty deque reports
    /// `priority(current node) − 1` for a task it may yet generate.
    fn pending_pri(&self, v: usize) -> Option<u32> {
        if !self.deques[v].is_empty() {
            return None;
        }
        match self.cores[v].state {
            CoreState::Run(c) => Some(self.pri_of[c.node.idx()].saturating_sub(1)),
            CoreState::Idle => None,
        }
    }

    fn sweep(&mut self, now: u64) {
        self.sweep_scheduled_at = None;
        match self.policy {
            Policy::Pws => self.sweep_pws(now, 0),
            Policy::Rws { .. } => self.sweep_rws(now),
            Policy::Bsp { prefix_levels } => {
                // §5.3: only subtrees from the top `prefix_levels` levels
                // of unravelling (size ≥ root/2^levels) may move.
                let root_size = self.comp.nodes[self.comp.root.idx()].size;
                let floor = (root_size >> prefix_levels.min(63)).max(1);
                self.sweep_pws(now, floor);
            }
        }
    }

    fn sweep_pws(&mut self, now: u64, min_size: u64) {
        // Serve idle cores in index order (the deterministic rank matching
        // of the distributed implementation, §4.7).
        for thief in 0..self.cfg.p {
            if !matches!(self.cores[thief].state, CoreState::Idle) || self.done {
                continue;
            }
            // Round priority: max over deque heads and pending flags,
            // restricted to the stealable sizes (min_size > 1 under §5.3).
            let mut best_head: Option<(u32, usize)> = None; // (pri, victim)
            for v in 0..self.cfg.p {
                if let (Some(pri), Some(&head)) = (self.head_pri(v), self.deques[v].front()) {
                    if self.comp.nodes[head.idx()].size >= min_size
                        && best_head.is_none_or(|(bp, _)| pri > bp)
                    {
                        best_head = Some((pri, v));
                    }
                }
            }
            let max_pending = (0..self.cfg.p)
                .filter(|&v| match self.cores[v].state {
                    // a busy core can still generate stealable tasks only
                    // while its current node is big enough to fork them
                    CoreState::Run(c) => self.comp.nodes[c.node.idx()].size / 2 >= min_size,
                    CoreState::Idle => false,
                })
                .filter_map(|v| self.pending_pri(v))
                .max();
            match (best_head, max_pending) {
                (Some((pri, victim)), pending) => {
                    if pending.is_some_and(|pp| pp > pri) {
                        // A busy core may yet generate a higher-priority
                        // task: wait for it (round has not started).
                        self.failed_rounds.insert((thief as u32, pending.unwrap()));
                        continue;
                    }
                    let node = self.deques[victim].pop_front().expect("head exists");
                    self.steals += 1;
                    self.steals_by_pri[pri as usize] += 1;
                    self.stolen_sizes.push(self.comp.nodes[node.idx()].size);
                    let c = &mut self.cores[thief];
                    c.idle_accum += now.saturating_sub(c.idle_since);
                    c.time = now + self.cfg.steal_cost;
                    c.steal_overhead += self.cfg.steal_cost;
                    let region = self.new_region();
                    self.start_node(thief, node, region);
                    let t = self.cores[thief].time;
                    self.push_ev(t, EvKind::Step(thief as u32));
                }
                (None, Some(pp)) => {
                    self.failed_rounds.insert((thief as u32, pp));
                }
                (None, None) => {}
            }
        }
    }

    fn sweep_rws(&mut self, now: u64) {
        for thief in 0..self.cfg.p {
            if !matches!(self.cores[thief].state, CoreState::Idle) || self.done {
                continue;
            }
            let rng = self.rng.as_mut().expect("RWS has an RNG");
            let mut victim = rng.random_range(0..self.cfg.p.max(2) - 1);
            if victim >= thief {
                victim += 1;
            }
            if victim >= self.cfg.p {
                continue; // p == 1
            }
            if let Some(node) = self.deques[victim].pop_front() {
                self.steals += 1;
                let pri = self.pri_of[node.idx()];
                self.steals_by_pri[pri as usize] += 1;
                self.stolen_sizes.push(self.comp.nodes[node.idx()].size);
                let c = &mut self.cores[thief];
                c.idle_accum += now.saturating_sub(c.idle_since);
                c.time = now + self.cfg.steal_cost;
                c.steal_overhead += self.cfg.steal_cost;
                let region = self.new_region();
                self.start_node(thief, node, region);
                let t = self.cores[thief].time;
                self.push_ev(t, EvKind::Step(thief as u32));
            } else {
                self.rws_failed_probes += 1;
                self.cores[thief].steal_overhead += self.cfg.probe_cost;
            }
        }
    }

    fn run_to_completion(&mut self) {
        let region = self.new_region();
        self.start_node(0, self.comp.root, region);
        self.push_ev(0, EvKind::Step(0));
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.done {
                break;
            }
            match ev.kind {
                EvKind::Step(c) => self.step(c as usize),
                EvKind::Sweep => self.sweep(ev.time),
            }
        }
        assert!(self.done, "event queue drained before completion");
        assert_eq!(self.executed, self.comp.work(), "not all accesses executed");
    }

    fn report(self) -> ExecReport {
        let makespan = self.cores.iter().map(|c| c.time).max().unwrap_or(0);
        let idle: Vec<u64> = self
            .cores
            .iter()
            .map(|c| makespan - c.busy - c.steal_overhead)
            .collect();
        let steal_attempts = self.steals + self.failed_rounds.len() as u64 + self.rws_failed_probes;
        ExecReport {
            p: self.cfg.p,
            makespan,
            work: self.executed,
            machine: self.ms.stats(),
            heap_block_misses: self.heap_block_misses,
            stack_block_misses: self.stack_block_misses,
            stack_plain_misses: self.stack_plain_misses,
            steals: self.steals,
            steal_attempts,
            steals_by_priority: self
                .steals_by_pri
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(p, &c)| (p as u32, c))
                .collect(),
            stolen_sizes: self.stolen_sizes,
            usurpations: self.usurpations,
            busy: self.cores.iter().map(|c| c.busy).collect(),
            steal_overhead: self.cores.iter().map(|c| c.steal_overhead).collect(),
            idle,
            n_priorities: self.comp.n_priorities,
        }
    }
}

/// Execute `comp` on the machine `cfg` under `policy` and report.
pub fn run(comp: &Computation, cfg: MachineConfig, policy: Policy) -> ExecReport {
    let mut e = Engine::new(comp, cfg, policy);
    e.run_to_completion();
    e.report()
}

/// Execute `comp` sequentially on a single core with the same cache
/// geometry: yields the sequential cache complexity `Q(n, M, B)`.
pub fn run_sequential(comp: &Computation, cfg: MachineConfig) -> SeqReport {
    let seq_cfg = MachineConfig { p: 1, ..cfg };
    let r = run(comp, seq_cfg, Policy::Pws);
    let t = r.machine.total();
    SeqReport {
        q_misses: t.misses(),
        work: r.work,
        makespan: r.makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbp_model::{BuildConfig, Builder, GArray};

    /// The in-order-layout BP sum used across tests (paper §3.3).
    fn bp_sum(n: usize, block: u64, padded: bool) -> Computation {
        let data: Vec<u64> = (0..n as u64).collect();
        let mut cfg = BuildConfig::with_block(block);
        if padded {
            cfg = cfg.padded();
        }
        Builder::build(cfg, n as u64, |b| {
            let a = b.input(&data);
            let out = b.alloc::<u64>(2 * n - 1);
            fn slot(lo: usize, hi: usize) -> usize {
                if hi - lo == 1 {
                    2 * lo
                } else {
                    2 * (lo + (hi - lo) / 2) - 1
                }
            }
            fn rec(b: &mut Builder, a: GArray<u64>, out: GArray<u64>, lo: usize, hi: usize) {
                if hi - lo == 1 {
                    let v = b.read(a, lo);
                    b.write(out, slot(lo, hi), v);
                    return;
                }
                let mid = lo + (hi - lo) / 2;
                b.fork(
                    (mid - lo) as u64,
                    (hi - mid) as u64,
                    |b| rec(b, a, out, lo, mid),
                    |b| rec(b, a, out, mid, hi),
                );
                let v1 = b.read(out, slot(lo, mid));
                let v2 = b.read(out, slot(mid, hi));
                b.write(out, slot(lo, hi), v1 + v2);
            }
            rec(b, a, out, 0, n);
        })
    }

    #[test]
    fn sequential_equals_parallel_with_one_core() {
        let comp = bp_sum(256, 32, false);
        let cfg = MachineConfig::new(1, 1 << 10, 32);
        let r = run(&comp, cfg, Policy::Pws);
        assert_eq!(r.steals, 0);
        assert_eq!(r.work, comp.work());
        assert_eq!(r.block_misses(), 0, "single core cannot block-miss");
    }

    #[test]
    fn pws_executes_all_work_on_many_cores() {
        let comp = bp_sum(512, 32, false);
        for p in [2, 4, 8] {
            let cfg = MachineConfig::new(p, 1 << 10, 32);
            let r = run(&comp, cfg, Policy::Pws);
            assert_eq!(r.work, comp.work(), "p={p}");
            assert!(r.steals > 0, "p={p} should steal");
        }
    }

    #[test]
    fn pws_is_deterministic() {
        let comp = bp_sum(512, 32, false);
        let cfg = MachineConfig::new(4, 1 << 10, 32);
        let r1 = run(&comp, cfg, Policy::Pws);
        let r2 = run(&comp, cfg, Policy::Pws);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.steals, r2.steals);
        assert_eq!(r1.machine.total(), r2.machine.total());
        assert_eq!(r1.stolen_sizes, r2.stolen_sizes);
    }

    #[test]
    fn rws_is_seed_deterministic() {
        let comp = bp_sum(512, 32, false);
        let cfg = MachineConfig::new(4, 1 << 10, 32);
        let a = run(&comp, cfg, Policy::Rws { seed: 7 });
        let b = run(&comp, cfg, Policy::Rws { seed: 7 });
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.steals, b.steals);
    }

    #[test]
    fn pws_steals_at_most_p_minus_1_per_priority() {
        let comp = bp_sum(1024, 32, false);
        for p in [2, 4, 8, 16] {
            let cfg = MachineConfig::new(p, 1 << 12, 32);
            let r = run(&comp, cfg, Policy::Pws);
            assert!(
                r.max_steals_per_priority() <= (p as u64 - 1),
                "p={p}: {} steals at one priority",
                r.max_steals_per_priority()
            );
        }
    }

    #[test]
    fn pws_steals_biggest_tasks_first() {
        let comp = bp_sum(1024, 32, false);
        let cfg = MachineConfig::new(4, 1 << 12, 32);
        let r = run(&comp, cfg, Policy::Pws);
        // Under PWS the first steal must be the biggest available task
        // (priority order ≈ size order); sizes must be non-increasing
        // within a factor 2 band along the steal sequence prefix.
        let first = r.stolen_sizes[0];
        assert!(first >= 256, "first stolen task is large, got {first}");
    }

    #[test]
    fn parallel_speedup_on_uniform_work() {
        let comp = bp_sum(2048, 32, false);
        let m = 1 << 12;
        let seq = run_sequential(&comp, MachineConfig::new(1, m, 32));
        let par = run(&comp, MachineConfig::new(8, m, 32), Policy::Pws);
        assert!(
            par.makespan * 3 < seq.makespan,
            "8 cores should be >3x faster: {} vs {}",
            par.makespan,
            seq.makespan
        );
    }

    #[test]
    fn work_conservation() {
        let comp = bp_sum(512, 32, false);
        let cfg = MachineConfig::new(4, 1 << 10, 32);
        let r = run(&comp, cfg, Policy::Pws);
        // Busy time = accesses + miss stalls + fork bookkeeping.
        let t = r.machine.total();
        let forks = comp.forks().count() as u64;
        let expect = t.accesses() + t.misses() * cfg.miss_cost + forks;
        let busy: u64 = r.busy.iter().sum();
        assert_eq!(busy, expect);
    }

    #[test]
    fn usurpations_occur_and_are_counted() {
        let comp = bp_sum(2048, 32, false);
        let cfg = MachineConfig::new(8, 1 << 10, 32);
        let r = run(&comp, cfg, Policy::Pws);
        // With steals there are joins completed by thieves.
        assert!(r.usurpations > 0);
        assert!(r.usurpations <= r.steals * 2);
    }

    #[test]
    fn stack_sharing_produces_block_misses_unpadded() {
        // The up-pass writes into parent frames from thief cores: with
        // unpadded stacks on one region this must produce stack block
        // misses under multi-core PWS.
        let comp = bp_sum(2048, 32, false);
        let cfg = MachineConfig::new(8, 1 << 10, 32);
        let r = run(&comp, cfg, Policy::Pws);
        assert!(
            r.stack_block_misses + r.heap_block_misses > 0,
            "parallel run of a writing computation should block-miss somewhere"
        );
    }

    #[test]
    fn padding_never_increases_stack_block_misses() {
        let plain = bp_sum(2048, 32, false);
        let padded = bp_sum(2048, 32, true);
        let cfg = MachineConfig::new(8, 1 << 12, 32);
        let rp = run(&plain, cfg, Policy::Pws);
        let rq = run(&padded, cfg, Policy::Pws);
        assert!(
            rq.stack_block_misses <= rp.stack_block_misses,
            "padding should not increase stack block misses: {} > {}",
            rq.stack_block_misses,
            rp.stack_block_misses
        );
    }

    #[test]
    fn seq_report_matches_direct_q() {
        let comp = bp_sum(256, 32, false);
        let cfg = MachineConfig::new(8, 1 << 9, 32);
        let seq = run_sequential(&comp, cfg);
        assert!(seq.q_misses > 0);
        assert_eq!(seq.work, comp.work());
        assert_eq!(
            seq.makespan,
            seq.work + seq.q_misses * cfg.miss_cost + comp.forks().count() as u64
        );
    }

    #[test]
    fn bsp_steals_only_top_levels() {
        let comp = bp_sum(1024, 32, false);
        let cfg = MachineConfig::new(8, 1 << 12, 32);
        let levels = 4;
        let r = run(
            &comp,
            cfg,
            Policy::Bsp {
                prefix_levels: levels,
            },
        );
        assert_eq!(r.work, comp.work());
        // only tasks from the top `levels` priorities move: sizes ≥ n/2^4
        let min_size = r.stolen_sizes.iter().min().copied().unwrap_or(u64::MAX);
        assert!(
            min_size >= 1024 >> levels,
            "BSP stole a task of size {min_size}"
        );
        // and strictly fewer steals than full PWS
        let pws = run(&comp, cfg, Policy::Pws);
        assert!(r.steals <= pws.steals);
    }

    #[test]
    fn bsp_with_full_prefix_equals_pws() {
        let comp = bp_sum(256, 32, false);
        let cfg = MachineConfig::new(4, 1 << 10, 32);
        let a = run(&comp, cfg, Policy::Bsp { prefix_levels: 64 });
        let b = run(&comp, cfg, Policy::Pws);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.steals, b.steals);
    }

    #[test]
    fn l2_hierarchy_reduces_makespan_vs_flat_when_set_fits_l2() {
        // Working set larger than L1 but within the shared L2: the
        // hierarchical machine (§5.2) completes faster than the flat one
        // with the same L1, and slower than a flat machine with a giant L1.
        let comp = bp_sum(4096, 32, false);
        let flat = MachineConfig::new(4, 1 << 8, 32);
        let l2 = flat.with_l2(1 << 16, false);
        let rf = run(&comp, flat, Policy::Pws);
        let rl = run(&comp, l2, Policy::Pws);
        assert!(
            rl.makespan <= rf.makespan,
            "L2 should not slow things down: {} vs {}",
            rl.makespan,
            rf.makespan
        );
        let t = rl.machine.total();
        assert!(t.l2_hits > 0, "second phase reads must hit L2");
    }

    #[test]
    fn partitioned_l2_behaves_like_private_second_level() {
        let comp = bp_sum(2048, 32, false);
        let base = MachineConfig::new(4, 1 << 8, 32);
        let shared = base.with_l2(1 << 14, false);
        let parted = base.with_l2(1 << 14, true);
        let rs = run(&comp, shared, Policy::Pws);
        let rp = run(&comp, parted, Policy::Pws);
        assert_eq!(rs.work, rp.work);
        // shared L2 serves coherence refills cheaply -> at least as many
        // L2 hits as the partitioned variant
        assert!(rs.machine.total().l2_hits >= rp.machine.total().l2_hits);
    }

    #[test]
    fn rws_steals_more_or_equal_small_tasks() {
        // RWS steals shallow tasks too, but lacking rounds it typically
        // performs more total steals than PWS on the same machine.
        let comp = bp_sum(2048, 32, false);
        let cfg = MachineConfig::new(8, 1 << 10, 32);
        let pws = run(&comp, cfg, Policy::Pws);
        let rws = run(&comp, cfg, Policy::Rws { seed: 42 });
        assert!(rws.steals + 8 >= pws.steals);
    }
}
