//! Per-core task deques with the paper's Obs 4.1 access discipline.
//!
//! Each core owns one deque of ready (forked, not yet started) tasks:
//!
//! * a **fork** pushes the right child at the *bottom* (owner end);
//! * the **owner** resumes work by popping the *bottom* — the most
//!   recently forked, smallest, deepest task;
//! * a **thief** steals from the *top* — the oldest, largest,
//!   highest-priority task.
//!
//! This ordering is exactly what makes priorities monotone along a deque
//! (Obs 4.1): tasks appear top-to-bottom in decreasing size / increasing
//! depth, so the top is always the best steal candidate.

use std::collections::VecDeque;

use hbp_model::NodeId;

/// The `p` per-core deques of the simulated machine.
#[derive(Debug)]
pub struct TaskDeques {
    queues: Vec<VecDeque<NodeId>>,
}

impl TaskDeques {
    /// One empty deque per core.
    pub fn new(p: usize) -> Self {
        Self {
            queues: vec![VecDeque::new(); p],
        }
    }

    /// Owner push: the just-forked right child goes to the bottom.
    pub fn push_bottom(&mut self, core: usize, node: NodeId) {
        self.queues[core].push_back(node);
    }

    /// Owner pop: resume the most recently forked task, if any.
    pub fn pop_bottom(&mut self, core: usize) -> Option<NodeId> {
        self.queues[core].pop_back()
    }

    /// Thief pop: take the largest / highest-priority task.
    pub fn steal_top(&mut self, victim: usize) -> Option<NodeId> {
        self.queues[victim].pop_front()
    }

    /// The task a thief *would* steal from `victim`, if any.
    pub fn head(&self, victim: usize) -> Option<NodeId> {
        self.queues[victim].front().copied()
    }

    /// Whether `core`'s deque holds no ready tasks.
    pub fn is_empty(&self, core: usize) -> bool {
        self.queues[core].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let mut d = TaskDeques::new(2);
        d.push_bottom(0, n(1));
        d.push_bottom(0, n(2));
        d.push_bottom(0, n(3));
        assert_eq!(d.head(0), Some(n(1)));
        assert_eq!(d.steal_top(0), Some(n(1))); // oldest = biggest
        assert_eq!(d.pop_bottom(0), Some(n(3))); // newest = deepest
        assert_eq!(d.pop_bottom(0), Some(n(2)));
        assert!(d.is_empty(0));
        assert!(d.pop_bottom(0).is_none());
        assert!(d.steal_top(1).is_none());
    }
}
