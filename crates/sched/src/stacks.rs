//! Kernel stack regions (paper §3.3).
//!
//! Every *kernel* — the root task, or a stolen task together with the
//! subcomputation it spawns — executes on a fresh **stack region**: a
//! contiguous range of `region_words` words above the global heap. Node
//! frames (locals + padding) are pushed and popped LIFO within their
//! kernel's region, so
//!
//! * sibling subtrees executed by the same core *reuse* the same stack
//!   blocks (the source of cheap, plain misses), and
//! * a stolen task's frames live in a *different* region from its
//!   ancestors', while up-pass writes into the parent frame still cross
//!   regions — exactly the stack block-sharing that Lemma 3.1 and §4.3
//!   charge for.
//!
//! `region_words` comes from [`MachineConfig`]; the default (`2^26`) is
//! far larger than any frame chain the algorithm suite produces, and
//! extreme-geometry tests can shrink it.

use hbp_machine::{MachineConfig, Word};
use hbp_model::Computation;

/// One kernel's stack region: `[base, base + region_words)` with a
/// bump-pointer `sp`.
#[derive(Debug, Clone, Copy)]
struct Region {
    base: Word,
    sp: Word,
}

/// Allocator for kernel stack regions and node frames within them.
#[derive(Debug)]
pub struct StackAllocator {
    /// First word above the (block-aligned) global heap.
    stack_base: Word,
    /// Words reserved per region (from [`MachineConfig::region_words`]).
    region_words: u64,
    regions: Vec<Region>,
}

impl StackAllocator {
    /// Place the stack area just above `comp`'s heap, block-aligned.
    pub fn new(comp: &Computation, cfg: MachineConfig) -> Self {
        let stack_base = (comp.heap_words.div_ceil(cfg.block_words) + 1) * cfg.block_words;
        Self {
            stack_base,
            region_words: cfg.region_words,
            regions: Vec::new(),
        }
    }

    /// First stack address: `addr >= stack_base()` means "stack", below
    /// means "heap" (used to split the miss accounting).
    pub fn stack_base(&self) -> Word {
        self.stack_base
    }

    /// Open a fresh region (root kernel or stolen task) and return its id.
    pub fn new_region(&mut self) -> u32 {
        let id = self.regions.len() as u32;
        let base = self.stack_base + id as u64 * self.region_words;
        self.regions.push(Region { base, sp: base });
        id
    }

    /// Push a frame of `frame_words` words after `pad_words` of padding;
    /// returns the frame's base address.
    pub fn push_frame(&mut self, region: u32, pad_words: u32, frame_words: u32) -> Word {
        let r = &mut self.regions[region as usize];
        let fa = r.sp + pad_words as u64;
        r.sp = fa + frame_words as u64;
        assert!(
            r.sp < r.base + self.region_words,
            "stack region overflow: frames too large for region_words = {} \
             (raise MachineConfig::region_words)",
            self.region_words
        );
        fa
    }

    /// Pop the frame at `fa` (must be the region's most recent — frames
    /// are strictly LIFO within a kernel).
    pub fn pop_frame(&mut self, region: u32, fa: Word, pad_words: u32, frame_words: u32) {
        let r = &mut self.regions[region as usize];
        debug_assert_eq!(
            r.sp,
            fa + frame_words as u64,
            "non-LIFO frame pop in region {region}"
        );
        r.sp = fa - pad_words as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbp_model::{BuildConfig, Builder};

    fn tiny_comp(block: u64) -> Computation {
        let data: Vec<u64> = (0..8).collect();
        Builder::build(BuildConfig::with_block(block), 8, |b| {
            let a = b.input(&data);
            let out = b.alloc::<u64>(1);
            let v = b.read(a, 0);
            b.write(out, 0, v);
        })
    }

    #[test]
    fn regions_are_disjoint_and_block_aligned() {
        let comp = tiny_comp(32);
        let cfg = MachineConfig::new(2, 1 << 10, 32);
        let mut s = StackAllocator::new(&comp, cfg);
        assert_eq!(s.stack_base() % 32, 0);
        let r0 = s.new_region();
        let r1 = s.new_region();
        let f0 = s.push_frame(r0, 0, 16);
        let f1 = s.push_frame(r1, 0, 16);
        assert_eq!(f1 - f0, cfg.region_words);
    }

    #[test]
    fn frames_are_lifo_within_a_region() {
        let comp = tiny_comp(32);
        let cfg = MachineConfig::new(2, 1 << 10, 32);
        let mut s = StackAllocator::new(&comp, cfg);
        let r = s.new_region();
        let a = s.push_frame(r, 0, 8);
        let b = s.push_frame(r, 4, 8);
        assert_eq!(b, a + 8 + 4);
        s.pop_frame(r, b, 4, 8);
        let b2 = s.push_frame(r, 4, 8);
        assert_eq!(b2, b, "pop must free the space for reuse");
    }

    #[test]
    #[should_panic(expected = "stack region overflow")]
    fn overflow_panics_with_a_hint() {
        let comp = tiny_comp(1);
        let mut cfg = MachineConfig::new(1, 16, 1);
        cfg.region_words = 16;
        let mut s = StackAllocator::new(&comp, cfg);
        let r = s.new_region();
        for _ in 0..4 {
            s.push_frame(r, 0, 8);
        }
    }
}
