//! Real-threads execution backend: randomized work stealing on
//! `std::thread` scoped workers.
//!
//! Where [`crate::sim`] replays a *recorded* computation on a simulated
//! machine, this module runs *actual Rust closures* — the `par_*` kernels
//! of `hbp-algos` — on a pool of OS threads, and reports wall-clock time
//! in the same [`ExecReport`] shape the simulator produces, so figure
//! binaries can switch backends without changing their reporting path.
//!
//! The runtime is a deliberately small work-stealing scheduler:
//!
//! * each worker owns a **Chase-Lev-ordered deque**: the owner pushes and
//!   pops at the *bottom* (LIFO), thieves steal from the *top* (FIFO) —
//!   the same Obs 4.1 discipline the simulator models. (The deque is a
//!   mutex-guarded ring rather than the lock-free Chase-Lev array: the
//!   ordering semantics are what the reproduction needs, and the guarded
//!   version is auditable without atomics reasoning.)
//! * [`join`] is the fork primitive: the right branch is published on the
//!   owner's deque while the owner runs the left branch; on return the
//!   owner pops it back (inline execution) or, if a thief took it, steals
//!   *other* work while waiting for the branch's completion flag.
//! * idle workers probe uniformly random victims (seeded xorshift per
//!   worker, so victim sequences are reproducible even though OS
//!   scheduling is not).
//!
//! ## Report semantics
//!
//! All times are **nanoseconds of wall-clock**, not simulated units:
//! `makespan` is the end-to-end pool runtime, `busy[w]` is the time
//! worker `w` spent inside top-level tasks (the root, or a task stolen
//! from its main loop — join-wait spinning inside a task is attributed
//! to that task), `steal_overhead[w]` is the time spent probing between
//! top-level tasks, and `work` counts executed tasks (the root plus
//! every forked branch). Simulator-only fields (cache counters,
//! priorities, stolen sizes) are zero/empty.
//!
//! ## Tracing
//!
//! [`run_native_traced`] additionally records structured events
//! (`hbp-trace`, [`ClockDomain::WallNs`]): task begin/end around every
//! executed task (nested when a join-wait steals), forks, steal
//! commits/failures. Each worker appends only to its own lock-free ring,
//! so the cost per event is one `Instant::elapsed` plus three relaxed
//! atomics; with tracing off ([`run_native`]) the only overhead is one
//! `Option` check per site.
//!
//! ## Panics
//!
//! A panicking kernel closure does not poison the pool: every branch is
//! executed under `catch_unwind`, the remaining workers drain, and the
//! panic is re-raised from [`run_native`] as a `String` payload naming
//! the worker that panicked — `kernel panicked on worker W: message`.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hbp_machine::{CoreStats, MachineStats};
use hbp_trace::{ClockDomain, EventKind as TrEv, TraceSink};

use crate::report::ExecReport;

/// Configuration of one native pool run.
#[derive(Debug, Clone, Copy)]
pub struct NativeConfig {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
    /// Seed for the workers' victim-selection RNGs.
    pub seed: u64,
}

impl Default for NativeConfig {
    /// One worker per hardware thread — but at least 4, so stealing
    /// exists even on small hosts (the same default
    /// `hbp_core::NativeExecutor::from_env` uses when `HBP_WORKERS` is
    /// unset) — and seed 0.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4),
            seed: 0,
        }
    }
}

/// Type-erased pointer to a pending [`join`] branch. The pointee is a
/// [`StackJob`] living in the owner's `join` stack frame, which outlives
/// every access: the owner does not return from `join` until the job's
/// `done` flag is set, and the executor never touches the job after
/// setting it.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
    /// Trace task id of the branch (0 when tracing is off).
    id: u32,
}

// SAFETY: a JobRef is only ever created from a StackJob whose closure and
// result are Send; the pointer itself crosses threads exactly once (one
// thief executes it, or the owner reclaims it).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job. SAFETY: the caller must hold the only live copy of
    /// this ref (a job executes exactly once) and the pointee must still
    /// be alive — guaranteed by the `join` protocol above.
    unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A forked branch parked on the owner's stack: the closure, its result
/// slot, and the completion flag the owner waits on.
struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        Self {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    fn as_job_ref(&self, id: u32) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::exec,
            id,
        }
    }

    /// SAFETY: called at most once, with `ptr` pointing to a live Self.
    unsafe fn exec(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.f.get()).take().expect("job executed twice");
        let r = panic::catch_unwind(AssertUnwindSafe(f));
        if let Err(payload) = &r {
            // Attribute the panic to the executing worker; the pool
            // boundary re-raises it with this context.
            if let Some(ctx) = CTX.get() {
                (*ctx.pool).note_panic(ctx.index, payload.as_ref());
            }
        }
        *this.result.get() = Some(r);
        // Release: the result write must be visible before `done`.
        this.done.store(true, Ordering::Release);
    }

    /// Take the result after `done` is observed (Acquire).
    /// SAFETY: only the owner calls this, exactly once, after execution.
    unsafe fn take_result(&self) -> std::thread::Result<R> {
        (*self.result.get())
            .take()
            .expect("job result taken before execution")
    }
}

/// One worker's deque: Chase-Lev *ordering* (owner bottom-LIFO, thieves
/// top-FIFO) behind a mutex.
#[derive(Default)]
struct Deque {
    q: Mutex<VecDeque<JobRef>>,
}

impl Deque {
    fn push_bottom(&self, j: JobRef) {
        self.q.lock().expect("deque poisoned").push_back(j);
    }

    fn pop_bottom(&self) -> Option<JobRef> {
        self.q.lock().expect("deque poisoned").pop_back()
    }

    fn steal_top(&self) -> Option<JobRef> {
        self.q.lock().expect("deque poisoned").pop_front()
    }
}

/// Per-worker counters (each worker writes only its own; Relaxed is fine,
/// aggregation happens after the scope joins).
#[derive(Default)]
struct WorkerCounters {
    busy_ns: AtomicU64,
    steal_ns: AtomicU64,
    steals: AtomicU64,
    failed_probes: AtomicU64,
    tasks: AtomicU64,
}

/// Shared state of one pool run; lives on `run_native`'s stack.
struct Pool {
    deques: Vec<Deque>,
    counters: Vec<WorkerCounters>,
    done: AtomicBool,
    seed: u64,
    /// Structured-event recorder (None = tracing off, zero extra work).
    trace: Option<Arc<TraceSink>>,
    /// Wall-clock zero for trace timestamps.
    epoch: Instant,
    /// Next trace task id (0 is the root).
    next_task: AtomicU32,
    /// Kernel panics observed so far: `(worker, message)` in the order
    /// they were caught (first entry = first panic).
    panics: Mutex<Vec<(usize, String)>>,
}

impl Pool {
    /// Nanoseconds since the pool epoch (trace timestamp).
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a caught kernel panic for attribution at the pool boundary.
    fn note_panic(&self, worker: usize, payload: &(dyn std::any::Any + Send)) {
        let msg = payload_message(payload);
        if let Ok(mut v) = self.panics.lock() {
            v.push((worker, msg));
        }
    }
}

/// Best-effort human-readable panic payload.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The calling context of a worker thread: which pool, which index.
#[derive(Clone, Copy)]
struct Ctx {
    pool: *const Pool,
    index: usize,
}

thread_local! {
    /// Set for the lifetime of a worker's main function; `None` on every
    /// other thread (where [`join`] degrades to sequential calls).
    static CTX: Cell<Option<Ctx>> = const { Cell::new(None) };
    /// xorshift64* state for victim selection.
    static RNG: Cell<u64> = const { Cell::new(0) };
    /// Task nesting depth; busy time is measured at depth 0→1 only.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Trace task id the worker is currently executing.
    static CUR_TASK: Cell<u32> = const { Cell::new(0) };
}

/// Whether the current thread is a native-pool worker (used by
/// `hbp_algos::par::pjoin` to route joins here instead of rayon).
pub fn in_pool() -> bool {
    CTX.get().is_some()
}

fn next_rand() -> u64 {
    let mut x = RNG.get();
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    RNG.set(x);
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Failed probes before an idle loop starts sleeping instead of
/// yielding: long enough that steal latency stays in the microseconds
/// while work is flowing, short enough that persistently idle workers
/// stop contending with the workers doing measured work.
const SPIN_PROBES: u32 = 64;

/// Back off after `fails` consecutive failed probes: spin-yield first,
/// then sleep briefly (bounded, so wakeup latency stays small).
fn idle_backoff(fails: u32) {
    if fails < SPIN_PROBES {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

/// Probe the other workers' deque tops in random rotation; `None` after
/// one full empty scan, else the job and the victim it came from.
fn steal_from_others(pool: &Pool, me: usize) -> Option<(JobRef, usize)> {
    let p = pool.deques.len();
    if p <= 1 {
        return None;
    }
    let start = (next_rand() % (p as u64 - 1)) as usize;
    for k in 0..p - 1 {
        let mut v = (start + k) % (p - 1);
        if v >= me {
            v += 1;
        }
        if let Some(j) = pool.deques[v].steal_top() {
            return Some((j, v));
        }
    }
    None
}

/// Execute a task, timing it into `busy_ns` when it is top-level and
/// counting it either way. With tracing on, brackets the execution in
/// `TaskBegin`/`TaskEnd` events (nested inside the enclosing task's
/// segment when called from a join-wait).
fn execute_task(pool: &Pool, me: usize, j: JobRef) {
    let d = DEPTH.get();
    DEPTH.set(d + 1);
    let prev_task = CUR_TASK.get();
    if let Some(tr) = &pool.trace {
        CUR_TASK.set(j.id);
        tr.push(me, pool.now_ns(), TrEv::TaskBegin { task: j.id });
    }
    if d == 0 {
        let t0 = Instant::now();
        // SAFETY: we hold the only copy of `j` (it came from a deque pop).
        unsafe { j.execute() };
        pool.counters[me]
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    } else {
        // SAFETY: as above.
        unsafe { j.execute() };
    }
    if let Some(tr) = &pool.trace {
        tr.push(me, pool.now_ns(), TrEv::TaskEnd { task: j.id });
        CUR_TASK.set(prev_task);
    }
    DEPTH.set(d);
    pool.counters[me].tasks.fetch_add(1, Ordering::Relaxed);
}

/// Fork-join on the native pool: runs `a` on the calling worker while `b`
/// is available for stealing; returns both results. Outside a pool worker
/// (no [`run_native`] scope on this thread) both closures simply run
/// sequentially. Panics in either branch propagate to the caller, with
/// the executing worker named in the payload (see the module docs).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some(ctx) = CTX.get() else {
        return (a(), b());
    };
    // SAFETY: CTX is only set while the pool is alive on run_native's
    // stack (workers are scope-joined before it returns).
    let pool = unsafe { &*ctx.pool };
    let me = ctx.index;

    let job = StackJob::new(b);
    let branch_id = match &pool.trace {
        Some(tr) => {
            let id = pool.next_task.fetch_add(1, Ordering::Relaxed);
            let cur = CUR_TASK.get();
            tr.push(
                me,
                pool.now_ns(),
                TrEv::Fork {
                    parent: cur,
                    left: cur,
                    right: id,
                },
            );
            id
        }
        None => 0,
    };
    let job_ref = job.as_job_ref(branch_id);
    pool.deques[me].push_bottom(job_ref);

    // Run the left branch. Even if it panics we must settle the right
    // branch first: a thief executing `job` borrows this stack frame.
    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    if let Err(payload) = &ra {
        pool.note_panic(me, payload.as_ref());
    }

    match pool.deques[me].pop_bottom() {
        Some(j) if std::ptr::eq(j.data, job_ref.data) => {
            // Not stolen: run the right branch inline.
            execute_task(pool, me, j);
        }
        other => {
            // Our job is gone (stolen). Anything we popped instead belongs
            // to an enclosing join on this worker — put it back.
            if let Some(j) = other {
                pool.deques[me].push_bottom(j);
            }
            // Steal other work while the thief finishes our branch.
            // Probe time inside a task is attributed to that task (see
            // the module docs), so no steal_ns accounting here.
            let mut fails = 0u32;
            while !job.done.load(Ordering::Acquire) {
                steal_once(pool, me, &mut fails, false);
            }
        }
    }

    let ra = match ra {
        Ok(v) => v,
        Err(payload) => panic::resume_unwind(payload),
    };
    // SAFETY: the job has executed (inline or by a thief, done observed).
    let rb = match unsafe { job.take_result() } {
        Ok(v) => v,
        Err(payload) => panic::resume_unwind(payload),
    };
    (ra, rb)
}

/// One steal attempt for an idle context: probe every other deque,
/// record counters and trace events, and execute the stolen task on
/// success. `count_probe_ns` charges the probe scan to `steal_ns`
/// (true in the top-level idle loop; false inside a join-wait, where
/// probe time is attributed to the waiting task). Returns whether a
/// task ran.
fn steal_once(pool: &Pool, me: usize, fails: &mut u32, count_probe_ns: bool) -> bool {
    let t0 = Instant::now();
    let found = steal_from_others(pool, me);
    if count_probe_ns {
        pool.counters[me]
            .steal_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    match found {
        Some((j, victim)) => {
            *fails = 0;
            pool.counters[me].steals.fetch_add(1, Ordering::Relaxed);
            if let Some(tr) = &pool.trace {
                tr.push(
                    me,
                    pool.now_ns(),
                    TrEv::StealCommit {
                        task: j.id,
                        victim: victim as u32,
                    },
                );
            }
            execute_task(pool, me, j);
            true
        }
        None => {
            pool.counters[me]
                .failed_probes
                .fetch_add(1, Ordering::Relaxed);
            if let Some(tr) = &pool.trace {
                tr.push(me, pool.now_ns(), TrEv::StealFail);
            }
            idle_backoff(*fails);
            *fails = fails.saturating_add(1);
            false
        }
    }
}

/// A worker's idle loop: steal top-level tasks until the pool is done.
fn worker_main(pool: &Pool, me: usize) {
    CTX.set(Some(Ctx { pool, index: me }));
    RNG.set((pool.seed ^ (me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1);
    let mut fails = 0u32;
    while !pool.done.load(Ordering::Acquire) {
        steal_once(pool, me, &mut fails, true);
    }
    CTX.set(None);
}

/// Run `root` on a fresh pool of `cfg.workers` scoped threads and report.
///
/// `root` executes on worker 0; [`join`] calls inside it (directly or via
/// `hbp_algos::par::pjoin`) fork onto the worker deques, and idle workers
/// steal. Returns the root's value plus the wall-clock [`ExecReport`]
/// (see the module docs for the field semantics).
pub fn run_native<R, F>(cfg: NativeConfig, root: F) -> (R, ExecReport)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    run_native_traced(cfg, None, root)
}

/// [`run_native`] with optional structured-event recording.
///
/// When `trace` is `Some`, the sink must be in
/// [`ClockDomain::WallNs`] and sized for at least `cfg.workers` workers;
/// collect it after this returns. When `None`, behaves exactly like
/// [`run_native`].
pub fn run_native_traced<R, F>(
    cfg: NativeConfig,
    trace: Option<Arc<TraceSink>>,
    root: F,
) -> (R, ExecReport)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(
        CTX.get().is_none(),
        "run_native cannot be nested inside a pool worker"
    );
    if let Some(tr) = &trace {
        assert!(
            tr.workers() >= cfg.workers,
            "trace sink sized for {} workers, pool has {}",
            tr.workers(),
            cfg.workers
        );
        assert!(
            tr.clock() == ClockDomain::WallNs,
            "native traces are wall-clock; use ClockDomain::WallNs"
        );
    }
    let t0 = Instant::now();
    let pool = Pool {
        deques: (0..cfg.workers).map(|_| Deque::default()).collect(),
        counters: (0..cfg.workers)
            .map(|_| WorkerCounters::default())
            .collect(),
        done: AtomicBool::new(false),
        seed: cfg.seed,
        trace,
        epoch: t0,
        next_task: AtomicU32::new(1),
        panics: Mutex::new(Vec::new()),
    };
    let mut root_result: Option<R> = None;
    let scope_outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let pool = &pool;
            let slot = &mut root_result;
            s.spawn(move || {
                CTX.set(Some(Ctx { pool, index: 0 }));
                RNG.set((pool.seed ^ 0x9E37_79B9_7F4A_7C15) | 1);
                DEPTH.set(1);
                CUR_TASK.set(0);
                if let Some(tr) = &pool.trace {
                    tr.push(0, pool.now_ns(), TrEv::TaskBegin { task: 0 });
                }
                let t = Instant::now();
                let r = panic::catch_unwind(AssertUnwindSafe(root));
                pool.counters[0]
                    .busy_ns
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                pool.counters[0].tasks.fetch_add(1, Ordering::Relaxed);
                if let Some(tr) = &pool.trace {
                    tr.push(0, pool.now_ns(), TrEv::TaskEnd { task: 0 });
                }
                DEPTH.set(0);
                CTX.set(None);
                // Release the other workers even when the root panicked.
                pool.done.store(true, Ordering::Release);
                match r {
                    Ok(v) => *slot = Some(v),
                    Err(payload) => {
                        pool.note_panic(0, payload.as_ref());
                        panic::resume_unwind(payload)
                    }
                }
            });
            for w in 1..cfg.workers {
                s.spawn(move || worker_main(pool, w));
            }
        });
    }));
    let makespan = t0.elapsed().as_nanos() as u64;
    if let Err(payload) = scope_outcome {
        // A kernel closure panicked. All workers have drained (the scope
        // joined); surface the first recorded panic with its worker id
        // instead of the raw payload.
        let first = pool.panics.lock().ok().and_then(|v| v.first().cloned());
        match first {
            Some((w, msg)) => panic!("kernel panicked on worker {w}: {msg}"),
            None => panic::resume_unwind(payload),
        }
    }

    let busy: Vec<u64> = pool
        .counters
        .iter()
        .map(|c| c.busy_ns.load(Ordering::Relaxed))
        .collect();
    let steal_overhead: Vec<u64> = pool
        .counters
        .iter()
        .map(|c| c.steal_ns.load(Ordering::Relaxed))
        .collect();
    let idle: Vec<u64> = busy
        .iter()
        .zip(&steal_overhead)
        .map(|(&b, &s)| makespan.saturating_sub(b + s))
        .collect();
    let sum = |f: fn(&WorkerCounters) -> &AtomicU64| -> u64 {
        pool.counters
            .iter()
            .map(|c| f(c).load(Ordering::Relaxed))
            .sum()
    };
    let steals = sum(|c| &c.steals);
    let report = ExecReport {
        p: cfg.workers,
        makespan,
        work: sum(|c| &c.tasks),
        machine: MachineStats {
            per_core: vec![CoreStats::default(); cfg.workers],
            block_transfers: 0,
        },
        heap_block_misses: 0,
        stack_block_misses: 0,
        stack_plain_misses: 0,
        steals,
        steal_attempts: steals + sum(|c| &c.failed_probes),
        steals_by_priority: Vec::new(),
        stolen_sizes: Vec::new(),
        usurpations: 0,
        busy,
        steal_overhead,
        idle,
        n_priorities: 0,
    };
    (root_result.expect("root completed"), report)
}
