//! Execution reports: everything the paper's lemmas quantify.

use serde::{Deserialize, Serialize};

use hbp_machine::MachineStats;

/// Result of one scheduled (parallel) execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecReport {
    /// Number of simulated cores.
    pub p: usize,
    /// Completion time: max over cores of their final virtual clock.
    pub makespan: u64,
    /// Total accesses executed (must equal the computation's work).
    pub work: u64,
    /// Raw memory-system counters.
    pub machine: MachineStats,
    /// Coherence (block) misses on global-heap addresses.
    pub heap_block_misses: u64,
    /// Coherence (block) misses on execution-stack addresses (§3.3).
    pub stack_block_misses: u64,
    /// Plain (cold + capacity) misses on execution-stack addresses.
    pub stack_plain_misses: u64,
    /// Successful steals (claiming sequences: a batched steal on the
    /// native backend counts once however many tasks it moved).
    pub steals: u64,
    /// Tasks moved by successful steals. Equals `steals` on the sim
    /// backend and on unbatched native runs; exceeds it when
    /// `HBP_STEAL_BATCH` lets one commit claim several tasks.
    pub stolen_tasks: u64,
    /// Successful steals + deduplicated failed round attempts (Cor 4.1
    /// bounds this by `2·p·D'`).
    pub steal_attempts: u64,
    /// Steal count per task priority (Obs 4.3: each entry ≤ p−1).
    pub steals_by_priority: Vec<(u32, u64)>,
    /// Sizes of stolen tasks (Lemma 2.1's excess analysis).
    pub stolen_sizes: Vec<u64>,
    /// Usurpations: joins where the continuing core differs from the core
    /// that previously executed the parent (Def 4.1, Lemma 4.6).
    pub usurpations: u64,
    /// Per-core busy time (compute + miss stalls).
    pub busy: Vec<u64>,
    /// Per-core steal overhead (`sP` per success, probe fees on failures).
    pub steal_overhead: Vec<u64>,
    /// Per-core idle time (waiting in rounds / for joins).
    pub idle: Vec<u64>,
    /// Number of distinct priorities `D'` of the computation.
    pub n_priorities: u32,
    /// Peak worker participation during the job (driver included).
    /// Equals `p` on the simulator and on a fixed-size native pool;
    /// on an elastic pool it reports how many workers actually
    /// registered for this job (`1..=p`), so serve layers can observe
    /// autoscaling per launch. `0` in reports deserialized from
    /// pre-elastic JSON.
    #[serde(default)]
    pub workers_active: usize,
}

impl ExecReport {
    /// Total cache misses excluding coherence misses — comparable to
    /// the sequential `Q(n, M, B)`.
    pub fn plain_misses(&self) -> u64 {
        self.machine.total().plain_misses()
    }

    /// Total coherence (block) misses.
    pub fn block_misses(&self) -> u64 {
        self.machine.total().coherence
    }

    /// Maximum steals over any single priority.
    pub fn max_steals_per_priority(&self) -> u64 {
        self.steals_by_priority
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0)
    }

    /// Compare against a sequential run: the paper's *excess* quantities.
    pub fn excess_vs(&self, seq: &SeqReport) -> ExcessReport {
        ExcessReport {
            cache_miss_excess: self.plain_misses().saturating_sub(seq.q_misses),
            block_miss_total: self.block_misses(),
            q_sequential: seq.q_misses,
        }
    }
}

/// Result of a sequential (p = 1) execution: the baseline `Q(n, M, B)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SeqReport {
    /// Sequential cache complexity: all misses of the single core.
    pub q_misses: u64,
    /// Work (accesses).
    pub work: u64,
    /// Sequential completion time (`W + b·Q`).
    pub makespan: u64,
}

/// The paper's excess quantities (§4.2, §4.3): how much a scheduled
/// execution pays beyond the sequential cache complexity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExcessReport {
    /// `max(0, parallel plain misses − Q)` — the PWS cache-miss excess
    /// `Q_C` before the `O(Q)` forgiveness constant.
    pub cache_miss_excess: u64,
    /// Total block misses (all coherence misses) — the block-miss excess
    /// `Q_B` is this figure when it exceeds `O(Q)`.
    pub block_miss_total: u64,
    /// The sequential baseline `Q`.
    pub q_sequential: u64,
}
