//! # hbp-sched — PWS and RWS scheduling on the simulated multicore
//!
//! Implements §4 of Cole & Ramachandran (IPDPS 2012 / arXiv:1103.4071): a
//! discrete-event multicore engine that executes a recorded
//! [`hbp_model::Computation`] on the simulated memory system of
//! `hbp-machine`, under one of two work-stealing policies:
//!
//! * **PWS** — the paper's deterministic *Priority Work Stealing* scheduler
//!   (§4.1, §4.7): steals proceed in rounds of decreasing task priority;
//!   idle cores are rank-matched to deque heads of the round's priority;
//!   busy cores with empty deques publish a flagged *pending priority* upper
//!   bound that makes thieves wait instead of stealing deeper tasks; a
//!   successful steal costs `sP = Θ(b log p)`.
//! * **RWS** — seeded randomized work stealing (the baseline of [18, 6] and
//!   the companion paper [13]).
//!
//! The engine models, at word-access granularity:
//!
//! * per-core virtual clocks (1 unit per access, `+b` per miss);
//! * task deques (fork pushes the right child at the bottom; owners pop the
//!   bottom; thieves steal the top — Obs 4.1's priority ordering);
//! * join continuation by the *last finisher*, i.e. **usurpation**
//!   (Def 4.1), which is detected and counted;
//! * **execution stacks** (§3.3): every kernel — the root task or a stolen
//!   task — owns a fresh stack region; node frames are pushed/popped LIFO
//!   within their kernel's region, so stack blocks are *reused* by sibling
//!   subtrees and *shared* between a stolen task and its ancestors, exactly
//!   the sources of block misses that Lemma 3.1 and §4.3 analyze.
//!
//! Outputs are an [`ExecReport`]: makespan, per-core busy/idle/steal time,
//! miss counts split heap vs stack and by kind (cold / capacity /
//! coherence), per-priority steal counts (Obs 4.3), steal attempt totals
//! (Cor 4.1), stolen-task sizes (Lemma 2.1), and usurpations (Lemma 4.6).

pub mod engine;
pub mod report;

pub use engine::{run, run_sequential, Policy};
pub use report::{ExcessReport, ExecReport, SeqReport};
