//! # hbp-sched — PWS and RWS scheduling, simulated and native
//!
//! Implements §4 of Cole & Ramachandran (IPDPS 2012 / arXiv:1103.4071):
//! a discrete-event multicore engine that executes a recorded
//! [`hbp_model::Computation`] on the simulated memory system of
//! `hbp-machine`, under a pluggable work-stealing policy — plus a
//! real-threads backend that runs actual fork-join closures on OS
//! workers with the same stealing discipline.
//!
//! ## Layout
//!
//! The simulator is a layered subsystem:
//!
//! * [`engine`] — the stable entry points: [`Policy`], [`run`],
//!   [`run_sequential`], and [`run_with_policy`] for custom disciplines;
//! * [`sim`] — the policy-independent event-loop core ([`sim::Engine`]):
//!   per-core virtual clocks, fork/join and usurpation bookkeeping,
//!   word-granularity miss accounting;
//! * [`policy`] — the [`StealPolicy`] trait and the paper's three
//!   disciplines: [`policy::Pws`] (§4.1, §4.7 priority rounds),
//!   [`policy::Rws`] (seeded randomized baseline of [13]), and
//!   [`policy::Bsp`] (§5.3 bulk-synchronous mapping);
//! * [`clock`] — the event heap, virtual time, and sweep cadence;
//! * [`deque`] — per-core task deques with Obs 4.1's push/pop/steal
//!   ordering (fork pushes the right child at the bottom; owners pop the
//!   bottom; thieves steal the top);
//! * [`stacks`] — §3.3 kernel stack regions: every kernel owns a fresh
//!   region of [`hbp_machine::MachineConfig::region_words`] words; frames
//!   are pushed/popped LIFO within it, so stack blocks are *reused* by
//!   sibling subtrees and *shared* between a stolen task and its
//!   ancestors — exactly the block-miss sources of Lemma 3.1 / §4.3;
//! * [`cl_deque`] — a real lock-free Chase-Lev deque (growable circular
//!   array, CAS-on-steal, `SeqCst` fence on the last-element conflict,
//!   retired-buffer reclamation) — the native realization of the Obs 4.1
//!   discipline;
//! * [`native`] — the real-threads backend: [`native::run_native`] runs a
//!   closure on scoped `std::thread` workers over per-worker [`ClDeque`]s
//!   (or the legacy mutex ring via [`DequeKind::Mutex`]), with victim
//!   selection, §5.3 steal admission, and idle backoff supplied by the
//!   policies' native facets ([`policy::NativeStealPolicy`]), reporting
//!   wall-clock makespan and per-worker busy/steal counters in the same
//!   [`ExecReport`] shape;
//! * [`topology`] — cache-domain topology for the native backend:
//!   [`DomainSpec`] (`HBP_DOMAINS=auto|<k>|tag:<k>`) resolves to a
//!   worker → domain [`DomainMap`] (detected from `/sys` cache sharing
//!   or simulated), driving **two-level stealing** — local victims
//!   first, cross-domain admission gated by a fork-depth floor
//!   (`HBP_CROSS_DEPTH`) that generalizes the §5.3 BSP rule;
//! * [`perf`] — hardware counter sampling for the native backend: per-
//!   worker `perf_event` fds (raw syscall, feature `perf`, graceful
//!   stub/off degradation via [`CounterMode`]) read at task boundaries
//!   and emitted as `MissDelta` trace events, so `trace_diff` can align
//!   the sim's *predicted* misses against *measured* ones.
//!
//! Both backends can additionally record **structured event traces**
//! (`hbp-trace`): [`run_traced`] / [`run_with_policy_traced`] hook the
//! sim event loop (task begin/end, forks, join resumes, steals,
//! stack-region attaches, per-segment cache-miss deltas in virtual
//! time), and [`native::run_native_traced`] records the same vocabulary
//! from the pool workers in wall-clock nanoseconds. Tracing is
//! observational: reports are bit-identical with and without a sink
//! attached.
//!
//! Outputs are an [`ExecReport`]: makespan, per-core busy/idle/steal time,
//! miss counts split heap vs stack and by kind (cold / capacity /
//! coherence), per-priority steal counts (Obs 4.3), steal attempt totals
//! (Cor 4.1), stolen-task sizes (Lemma 2.1), and usurpations (Lemma 4.6).

pub mod cl_deque;
pub mod clock;
pub mod deque;
pub mod engine;
pub mod native;
pub mod perf;
pub mod policy;
pub mod report;
pub mod sim;
pub mod stacks;
pub mod topology;

pub use cl_deque::{ClDeque, Steal};
pub use engine::{
    run, run_sequential, run_traced, run_with_policy, run_with_policy_traced, Policy,
};
pub use native::DequeKind;
pub use perf::{CounterMode, CounterSource};
pub use policy::{NativeStealPolicy, StealPolicy};
pub use report::{ExcessReport, ExecReport, SeqReport};
pub use topology::{DomainMap, DomainSpec};
