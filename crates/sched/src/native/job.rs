//! The unit of native work: a forked branch parked on its owner's stack,
//! and the type-erased reference the deques move between workers.

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

use super::runtime::note_current_worker_panic;

/// Type-erased pointer to a pending [`super::join`] branch. The pointee
/// is a [`StackJob`] living in the owner's `join` stack frame, which
/// outlives every access: the owner does not return from `join` until
/// the job's `done` flag is set, and the executor never touches the job
/// after setting it.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pub(crate) data: *const (),
    exec: unsafe fn(*const ()),
    /// Trace task id of the branch (0 when tracing is off).
    pub(crate) id: u32,
    /// Fork depth of the branch: the root is 0, every join adds 1. The
    /// §5.3 native admission floor (`NativeStealPolicy::admit`) is
    /// expressed against this.
    pub(crate) depth: u32,
}

// SAFETY: a JobRef is only ever created from a StackJob whose closure and
// result are Send; the pointer itself crosses threads exactly once (one
// thief executes it, or the owner reclaims it).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job. SAFETY: the caller must hold the only live copy of
    /// this ref (a job executes exactly once) and the pointee must still
    /// be alive — guaranteed by the `join` protocol above.
    pub(crate) unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A forked branch parked on the owner's stack: the closure, its result
/// slot, and the completion flag the owner waits on.
pub(crate) struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    pub(crate) done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        Self {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    pub(crate) fn as_job_ref(&self, id: u32, depth: u32) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::exec,
            id,
            depth,
        }
    }

    /// SAFETY: called at most once, with `ptr` pointing to a live Self.
    unsafe fn exec(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.f.get()).take().expect("job executed twice");
        let r = panic::catch_unwind(AssertUnwindSafe(f));
        if let Err(payload) = &r {
            // Attribute the panic to the executing worker; the pool
            // boundary re-raises it with this context.
            note_current_worker_panic(payload.as_ref());
        }
        *this.result.get() = Some(r);
        // Release: the result write must be visible before `done`.
        this.done.store(true, Ordering::Release);
    }

    /// Take the result after `done` is observed (Acquire).
    /// SAFETY: only the owner calls this, exactly once, after execution.
    pub(crate) unsafe fn take_result(&self) -> std::thread::Result<R> {
        (*self.result.get())
            .take()
            .expect("job result taken before execution")
    }
}

/// Best-effort human-readable panic payload.
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
