//! Real-threads execution backend: policy-driven work stealing on a
//! persistent pool of `std::thread` workers over lock-free Chase-Lev
//! deques.
//!
//! Where [`crate::sim`] replays a *recorded* computation on a simulated
//! machine, this module runs *actual Rust closures* — the `par_*` kernels
//! of `hbp-algos` — on a pool of OS threads, and reports wall-clock time
//! in the same [`ExecReport`] shape the simulator produces, so figure
//! binaries can switch backends without changing their reporting path.
//!
//! The runtime is layered (PR 4 split mechanism from policy; PR 6 split
//! pool *lifetime* from job *execution*):
//!
//! * **deque** ([`crate::cl_deque`]): each worker owns a lock-free
//!   **Chase-Lev deque** — the owner pushes and pops at the *bottom*
//!   without locks, thieves CAS the *top*, and the last-element conflict
//!   is arbitrated by a `SeqCst` fence — the real realization of the
//!   Obs 4.1 discipline the simulator models. The PR 2 mutex-guarded
//!   ring survives behind [`DequeKind::Mutex`] (`HBP_DEQUE=mutex`) for
//!   A/B comparison against the steal-latency histograms;
//! * **policy** ([`crate::policy::NativeStealPolicy`]): victim probe
//!   order, steal admission (the §5.3 fork-depth floor), and idle
//!   backoff come from the same `Pws`/`Rws`/`Bsp` modules that drive
//!   the simulator — [`NativeConfig::policy`] carries the
//!   [`Policy`] enum, so `HBP_POLICY` selects the discipline on both
//!   backends;
//! * **worker loop** ([`runtime`]): [`join`] is the fork primitive — the
//!   right branch is published on the owner's deque while the owner runs
//!   the left branch; on return the owner pops it back (inline
//!   execution) or, if a thief took it, steals *other* work while
//!   waiting for the branch's completion flag. Idle workers run the
//!   policy's probe plan until the job's root completes;
//! * **pool** ([`pool`]): a [`NativePool`] spawns its workers **once**
//!   and serves successive jobs through a submission queue — workers
//!   park on a condvar between jobs, shutdown is explicit and
//!   idempotent, and every job gets its own [`ExecReport`] (and
//!   optionally its own trace sink). [`run_native`] is the one-shot
//!   convenience: spawn a pool, submit one job, wait, shut down.
//!
//! ## Report semantics
//!
//! All times are **nanoseconds of wall-clock**, not simulated units:
//! `makespan` is the job's runtime (root start to pool quiescence),
//! `busy[w]` is the time worker `w` spent inside top-level tasks (the
//! root, or a task stolen from its main loop — join-wait spinning inside
//! a task is attributed to that task), `steal_overhead[w]` is the time
//! spent probing between top-level tasks, and `work` counts executed
//! tasks (the root plus every forked branch). On a persistent pool these
//! are per-job counter *deltas*, so successive reports compose.
//! Simulator-only fields (cache counters, priorities, stolen sizes) are
//! zero/empty.
//!
//! ## Tracing
//!
//! [`run_native_traced`] and [`NativePool::submit_traced`] additionally
//! record structured events (`hbp-trace`, [`ClockDomain::WallNs`]): task
//! begin/end around every executed task (nested when a join-wait
//! steals), forks, steal commits/failures. Each worker appends only to
//! its own lock-free ring, so the cost per event is one
//! `Instant::elapsed` plus three relaxed atomics; with tracing off the
//! only overhead is one `Option` check per site. Timestamps are relative
//! to the traced job's start, not the pool's.
//!
//! ## Panics
//!
//! A panicking kernel closure does not poison the pool: every branch is
//! executed under `catch_unwind`, the remaining workers drain, the pool
//! stays serviceable for the next job, and the panic is re-raised from
//! [`run_native`] / [`PoolHandle::wait`] as a `String` payload naming
//! the worker that panicked — `kernel panicked on worker W: message`.
//! [`PoolHandle::outcome`] exposes the caught payload instead, for
//! servers that must survive bad requests.

mod job;
pub mod pool;
pub(crate) mod runtime;

use std::sync::Arc;

use hbp_trace::TraceSink;

use crate::engine::Policy;
use crate::perf::CounterMode;
use crate::report::ExecReport;

use runtime::CTX;

pub use crate::topology::{DomainMap, DomainSpec};
pub use pool::{JobOutcome, NativePool, PoolHandle, SubmitError};
pub use runtime::{in_pool, join};

#[cfg(test)]
mod batch_tests {
    use super::StealBatch;

    #[test]
    fn steal_batch_parse_accepts_the_documented_values() {
        for v in [None, Some(""), Some("1"), Some("on"), Some("policy")] {
            assert_eq!(StealBatch::parse(v), Ok(StealBatch::Policy), "{v:?}");
        }
        for v in [Some("0"), Some("off")] {
            assert_eq!(StealBatch::parse(v), Ok(StealBatch::Off), "{v:?}");
        }
        assert_eq!(StealBatch::parse(Some("4")), Ok(StealBatch::Cap(4)));
        let err = StealBatch::parse(Some("nope")).unwrap_err();
        assert!(
            err.contains("HBP_STEAL_BATCH") && err.contains("nope"),
            "{err}"
        );
    }
}

/// Which per-worker deque implementation the pool uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DequeKind {
    /// The lock-free Chase-Lev array ([`crate::cl_deque`]) — default.
    #[default]
    ChaseLev,
    /// The PR 2 mutex-guarded ring with Chase-Lev *ordering*, kept for
    /// A/B comparison (on a loaded host the mutex shows up as fork→steal
    /// latencies in the ≥2^16 ns histogram buckets).
    Mutex,
}

impl DequeKind {
    /// Parse an `HBP_DEQUE` value: `None` (unset), the empty string,
    /// `cl` or `chase-lev` → [`DequeKind::ChaseLev`]; `mutex` →
    /// [`DequeKind::Mutex`]; anything else is an error naming the
    /// variable, the offending value, and the accepted ones.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("") | Some("cl") | Some("chase-lev") => Ok(DequeKind::ChaseLev),
            Some("mutex") => Ok(DequeKind::Mutex),
            Some(other) => Err(format!(
                "HBP_DEQUE must be `cl`/`chase-lev` or `mutex`, got {other:?}"
            )),
        }
    }
}

/// How much one committed steal may claim (`HBP_STEAL_BATCH`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealBatch {
    /// Batching on, capped by the policy facet's
    /// [`steal_batch_cap`](crate::policy::NativeStealPolicy::steal_batch_cap)
    /// — the default.
    #[default]
    Policy,
    /// Batching off: every steal claims exactly one task (the pre-batch
    /// behavior, kept for A/B runs).
    Off,
    /// Batching on with an explicit per-steal cap (≥ 2); the claiming
    /// sequence still takes at most half the victim's observed queue.
    Cap(usize),
}

impl StealBatch {
    /// Parse an `HBP_STEAL_BATCH` value: `None` (unset), the empty
    /// string, `1`, `on` or `policy` → [`StealBatch::Policy`]; `0` or
    /// `off` → [`StealBatch::Off`]; an integer ≥ 2 →
    /// [`StealBatch::Cap`]. (`1` means *enabled at the policy default*,
    /// matching the CI A/B spelling `HBP_STEAL_BATCH=1|off` — a literal
    /// cap of one is exactly what `off` provides.) Anything else is an
    /// error naming the variable, the value, and the accepted ones.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("") | Some("1") | Some("on") | Some("policy") => Ok(StealBatch::Policy),
            Some("0") | Some("off") => Ok(StealBatch::Off),
            Some(other) => match other.parse::<usize>() {
                Ok(n) if n >= 2 => Ok(StealBatch::Cap(n)),
                _ => Err(format!(
                    "HBP_STEAL_BATCH must be `on`/`1`/`policy`, `off`/`0`, or a cap >= 2, got {other:?}"
                )),
            },
        }
    }

    /// The effective per-steal cap under `policy` (1 = unbatched).
    pub(crate) fn cap(self, policy: &dyn crate::policy::NativeStealPolicy) -> usize {
        match self {
            StealBatch::Policy => policy.steal_batch_cap().max(1),
            StealBatch::Off => 1,
            StealBatch::Cap(n) => n.max(2),
        }
    }
}

/// Configuration of one native pool.
#[derive(Debug, Clone, Copy)]
pub struct NativeConfig {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
    /// Seed for the workers' victim-selection RNGs (mixed with an
    /// [`Policy::Rws`] seed when the policy carries one).
    pub seed: u64,
    /// The stealing discipline's native facet (victim order, §5.3
    /// admission, backoff) — see [`crate::policy::native`].
    pub policy: Policy,
    /// Per-worker deque implementation.
    pub deque: DequeKind,
    /// Steal-batching mode (top-level idle-loop steals may claim several
    /// tasks per committed steal; see [`StealBatch`]).
    pub batch: StealBatch,
    /// Task-boundary counter sampling for traced jobs (`HBP_COUNTERS`;
    /// see [`crate::perf`]). Only consulted while a trace sink is
    /// attached — untraced jobs never open or read counters.
    pub counters: CounterMode,
    /// Cache-domain sharding (`HBP_DOMAINS`; see [`crate::topology`]).
    /// [`DomainSpec::Auto`] detects from the host (flat fallback),
    /// `Count(k)` simulates `k` domains with two-level stealing, and
    /// `Tag(k)` labels locality while keeping flat stealing. With one
    /// resolved domain the pool is behaviorally identical to the
    /// pre-domain flat pool.
    pub domains: DomainSpec,
    /// Fork-depth floor for cross-domain steals (`HBP_CROSS_DEPTH`):
    /// a branch published at fork depth `d` may cross domains only when
    /// `d <= cross_depth` (and the policy's own admission also holds).
    /// Ignored unless two-level stealing is on.
    pub cross_depth: u32,
    /// Elastic band (`HBP_AUTOSCALE=min..max`). `None` (the default)
    /// pins the pool at `workers` threads, exactly the pre-elastic
    /// behavior. `Some((min, max))` spawns the pool at capacity
    /// `max(workers, max)` and runs a controller thread that steers the
    /// *desired* worker count inside `[min, max]` from the submission
    /// backlog: pressure grows one worker per tick, sustained idleness
    /// shrinks one. Workers above the desired target retire cooperatively
    /// — they stop popping, let thieves drain their deque, execute any
    /// thief-inadmissible leftovers themselves, and park until the target
    /// rises again. [`NativePool::set_desired_workers`] overrides the
    /// controller manually.
    pub autoscale: Option<(usize, usize)>,
}

impl Default for NativeConfig {
    /// One worker per hardware thread — but at least 4, so stealing
    /// exists even on small hosts (the same default
    /// `hbp_core::NativeExecutor::from_env` uses when `HBP_WORKERS` is
    /// unset) — seed 0, randomized stealing, Chase-Lev deques.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4),
            seed: 0,
            policy: Policy::Rws { seed: 0 },
            deque: DequeKind::ChaseLev,
            batch: StealBatch::Policy,
            counters: CounterMode::Auto,
            domains: DomainSpec::Auto,
            cross_depth: crate::topology::DEFAULT_CROSS_DEPTH,
            autoscale: None,
        }
    }
}

impl NativeConfig {
    /// The per-worker RNG stream seed: the pool seed, mixed with the
    /// policy's own seed when it carries one (so `rws:7` and `rws:8`
    /// probe differently even on the same pool seed).
    pub(crate) fn stream_seed(&self) -> u64 {
        match self.policy {
            Policy::Rws { seed } => self.seed ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            Policy::Pws | Policy::Bsp { .. } => self.seed,
        }
    }
}

/// One-shot execution on a throwaway pool: run `root` to completion and
/// report.
///
/// `root` executes on worker 0; [`join`] calls inside it (directly or via
/// `hbp_algos::par::pjoin`) fork onto the worker deques, and idle workers
/// steal under the pool's policy facet. Returns the root's value plus the
/// wall-clock [`ExecReport`] (see the module docs for the field
/// semantics). Spawning threads per call is the whole cost — servers that
/// launch many kernels keep one [`NativePool`] and
/// [`NativePool::submit`] into it, or use the `hbp-core` session API.
pub(crate) fn run_once<R, F>(
    cfg: NativeConfig,
    trace: Option<Arc<TraceSink>>,
    root: F,
) -> (R, ExecReport)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    assert!(
        CTX.get().is_none(),
        "a one-shot native run cannot be nested inside a pool worker"
    );
    let pool = NativePool::new(cfg);
    // The root borrows the caller's stack (non-'static), which is sound
    // because we block on the job's completion before returning: the
    // ScopedRoot outlives the job by construction.
    let root_cell = pool::ScopedRoot::new(root);
    let meta = unsafe {
        pool.submit_scoped(
            trace,
            &root_cell as *const _ as *const (),
            pool::ScopedRoot::<F, R>::exec,
        )
    }
    .expect("fresh pool accepts a submission");
    let done = meta.wait();
    // SAFETY: the meta completed, so the driver wrote the result and no
    // longer references the ScopedRoot.
    let result = unsafe { root_cell.take_result() };
    drop(pool); // joins the workers
    match result {
        Ok(v) => (v, done.report),
        Err(payload) => pool::raise_job_panic(&done.panics, payload),
    }
}

/// Run `root` on a fresh pool of `cfg.workers` threads and report.
#[deprecated(
    since = "0.10.0",
    note = "use `NativePool::run` (or the `hbp-core` session API) instead"
)]
pub fn run_native<R, F>(cfg: NativeConfig, root: F) -> (R, ExecReport)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    NativePool::run(cfg, root)
}

/// [`run_native`] with optional structured-event recording.
#[deprecated(
    since = "0.10.0",
    note = "use `NativePool::run_traced` (or the `hbp-core` session API) instead"
)]
pub fn run_native_traced<R, F>(
    cfg: NativeConfig,
    trace: Option<Arc<TraceSink>>,
    root: F,
) -> (R, ExecReport)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    NativePool::run_traced(cfg, trace, root)
}
