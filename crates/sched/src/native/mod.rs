//! Real-threads execution backend: policy-driven work stealing on
//! `std::thread` scoped workers over lock-free Chase-Lev deques.
//!
//! Where [`crate::sim`] replays a *recorded* computation on a simulated
//! machine, this module runs *actual Rust closures* — the `par_*` kernels
//! of `hbp-algos` — on a pool of OS threads, and reports wall-clock time
//! in the same [`ExecReport`] shape the simulator produces, so figure
//! binaries can switch backends without changing their reporting path.
//!
//! The runtime is layered (the tentpole refactor of PR 4):
//!
//! * **deque** ([`crate::cl_deque`]): each worker owns a lock-free
//!   **Chase-Lev deque** — the owner pushes and pops at the *bottom*
//!   without locks, thieves CAS the *top*, and the last-element conflict
//!   is arbitrated by a `SeqCst` fence — the real realization of the
//!   Obs 4.1 discipline the simulator models. The PR 2 mutex-guarded
//!   ring survives behind [`DequeKind::Mutex`] (`HBP_DEQUE=mutex`) for
//!   A/B comparison against the steal-latency histograms;
//! * **policy** ([`crate::policy::NativeStealPolicy`]): victim probe
//!   order, steal admission (the §5.3 fork-depth floor), and idle
//!   backoff come from the same `Pws`/`Rws`/`Bsp` modules that drive
//!   the simulator — [`NativeConfig::policy`] carries the
//!   [`Policy`] enum, so `HBP_POLICY` selects the discipline on both
//!   backends;
//! * **worker loop** ([`runtime`]): [`join`] is the fork primitive — the
//!   right branch is published on the owner's deque while the owner runs
//!   the left branch; on return the owner pops it back (inline
//!   execution) or, if a thief took it, steals *other* work while
//!   waiting for the branch's completion flag. Idle workers run the
//!   policy's probe plan until the root completes.
//!
//! ## Report semantics
//!
//! All times are **nanoseconds of wall-clock**, not simulated units:
//! `makespan` is the end-to-end pool runtime, `busy[w]` is the time
//! worker `w` spent inside top-level tasks (the root, or a task stolen
//! from its main loop — join-wait spinning inside a task is attributed
//! to that task), `steal_overhead[w]` is the time spent probing between
//! top-level tasks, and `work` counts executed tasks (the root plus
//! every forked branch). Simulator-only fields (cache counters,
//! priorities, stolen sizes) are zero/empty.
//!
//! ## Tracing
//!
//! [`run_native_traced`] additionally records structured events
//! (`hbp-trace`, [`ClockDomain::WallNs`]): task begin/end around every
//! executed task (nested when a join-wait steals), forks, steal
//! commits/failures. Each worker appends only to its own lock-free ring,
//! so the cost per event is one `Instant::elapsed` plus three relaxed
//! atomics; with tracing off ([`run_native`]) the only overhead is one
//! `Option` check per site.
//!
//! ## Panics
//!
//! A panicking kernel closure does not poison the pool: every branch is
//! executed under `catch_unwind`, the remaining workers drain, and the
//! panic is re-raised from [`run_native`] as a `String` payload naming
//! the worker that panicked — `kernel panicked on worker W: message`.

mod job;
pub(crate) mod runtime;

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hbp_machine::{CoreStats, MachineStats};
use hbp_trace::{ClockDomain, EventKind as TrEv, TraceSink};

use crate::engine::Policy;
use crate::policy::native_facet;
use crate::report::ExecReport;

use runtime::{Ctx, Pool, WorkerCounters, WorkerDeque, CTX, CUR_TASK, DEPTH, FORK_DEPTH, RNG};

pub use runtime::{in_pool, join};

/// Which per-worker deque implementation the pool uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DequeKind {
    /// The lock-free Chase-Lev array ([`crate::cl_deque`]) — default.
    #[default]
    ChaseLev,
    /// The PR 2 mutex-guarded ring with Chase-Lev *ordering*, kept for
    /// A/B comparison (on a loaded host the mutex shows up as fork→steal
    /// latencies in the ≥2^16 ns histogram buckets).
    Mutex,
}

impl DequeKind {
    /// Parse an `HBP_DEQUE` value: `None` (unset), the empty string,
    /// `cl` or `chase-lev` → [`DequeKind::ChaseLev`]; `mutex` →
    /// [`DequeKind::Mutex`]; anything else is an error naming the
    /// variable, the offending value, and the accepted ones.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("") | Some("cl") | Some("chase-lev") => Ok(DequeKind::ChaseLev),
            Some("mutex") => Ok(DequeKind::Mutex),
            Some(other) => Err(format!(
                "HBP_DEQUE must be `cl`/`chase-lev` or `mutex`, got {other:?}"
            )),
        }
    }

    /// Read `HBP_DEQUE` from the environment (see [`DequeKind::parse`]).
    pub fn try_from_env() -> Result<Self, String> {
        Self::parse(std::env::var("HBP_DEQUE").ok().as_deref())
    }

    /// [`DequeKind::try_from_env`], panicking with the parse error
    /// (typos must not silently fall back in CI).
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Configuration of one native pool run.
#[derive(Debug, Clone, Copy)]
pub struct NativeConfig {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
    /// Seed for the workers' victim-selection RNGs (mixed with an
    /// [`Policy::Rws`] seed when the policy carries one).
    pub seed: u64,
    /// The stealing discipline's native facet (victim order, §5.3
    /// admission, backoff) — see [`crate::policy::native`].
    pub policy: Policy,
    /// Per-worker deque implementation.
    pub deque: DequeKind,
}

impl Default for NativeConfig {
    /// One worker per hardware thread — but at least 4, so stealing
    /// exists even on small hosts (the same default
    /// `hbp_core::NativeExecutor::from_env` uses when `HBP_WORKERS` is
    /// unset) — seed 0, randomized stealing, Chase-Lev deques.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4),
            seed: 0,
            policy: Policy::Rws { seed: 0 },
            deque: DequeKind::ChaseLev,
        }
    }
}

impl NativeConfig {
    /// The per-worker RNG stream seed: the pool seed, mixed with the
    /// policy's own seed when it carries one (so `rws:7` and `rws:8`
    /// probe differently even on the same pool seed).
    fn stream_seed(&self) -> u64 {
        match self.policy {
            Policy::Rws { seed } => self.seed ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            Policy::Pws | Policy::Bsp { .. } => self.seed,
        }
    }
}

/// Run `root` on a fresh pool of `cfg.workers` scoped threads and report.
///
/// `root` executes on worker 0; [`join`] calls inside it (directly or via
/// `hbp_algos::par::pjoin`) fork onto the worker deques, and idle workers
/// steal under `cfg.policy`'s native facet. Returns the root's value plus
/// the wall-clock [`ExecReport`] (see the module docs for the field
/// semantics).
pub fn run_native<R, F>(cfg: NativeConfig, root: F) -> (R, ExecReport)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    run_native_traced(cfg, None, root)
}

/// [`run_native`] with optional structured-event recording.
///
/// When `trace` is `Some`, the sink must be in
/// [`ClockDomain::WallNs`] and sized for at least `cfg.workers` workers;
/// collect it after this returns. When `None`, behaves exactly like
/// [`run_native`].
pub fn run_native_traced<R, F>(
    cfg: NativeConfig,
    trace: Option<Arc<TraceSink>>,
    root: F,
) -> (R, ExecReport)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(
        CTX.get().is_none(),
        "run_native cannot be nested inside a pool worker"
    );
    if let Some(tr) = &trace {
        assert!(
            tr.workers() >= cfg.workers,
            "trace sink sized for {} workers, pool has {}",
            tr.workers(),
            cfg.workers
        );
        assert!(
            tr.clock() == ClockDomain::WallNs,
            "native traces are wall-clock; use ClockDomain::WallNs"
        );
    }
    let t0 = Instant::now();
    let pool = Pool {
        deques: (0..cfg.workers)
            .map(|_| WorkerDeque::new(cfg.deque))
            .collect(),
        counters: (0..cfg.workers)
            .map(|_| WorkerCounters::default())
            .collect(),
        done: AtomicBool::new(false),
        seed: cfg.stream_seed(),
        policy: native_facet(cfg.policy),
        trace,
        epoch: t0,
        next_task: AtomicU32::new(1),
        panics: Mutex::new(Vec::new()),
    };
    let mut root_result: Option<R> = None;
    let scope_outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let pool = &pool;
            let slot = &mut root_result;
            s.spawn(move || {
                CTX.set(Some(Ctx { pool, index: 0 }));
                RNG.set((pool.seed ^ 0x9E37_79B9_7F4A_7C15) | 1);
                DEPTH.set(1);
                CUR_TASK.set(0);
                FORK_DEPTH.set(0);
                if let Some(tr) = &pool.trace {
                    tr.push(0, pool.now_ns(), TrEv::TaskBegin { task: 0 });
                }
                let t = Instant::now();
                let r = panic::catch_unwind(AssertUnwindSafe(root));
                pool.counters[0]
                    .busy_ns
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                pool.counters[0].tasks.fetch_add(1, Ordering::Relaxed);
                if let Some(tr) = &pool.trace {
                    tr.push(0, pool.now_ns(), TrEv::TaskEnd { task: 0 });
                }
                DEPTH.set(0);
                CTX.set(None);
                // Release the other workers even when the root panicked.
                pool.done.store(true, Ordering::Release);
                match r {
                    Ok(v) => *slot = Some(v),
                    Err(payload) => {
                        pool.note_panic(0, payload.as_ref());
                        panic::resume_unwind(payload)
                    }
                }
            });
            for w in 1..cfg.workers {
                s.spawn(move || runtime::worker_main(pool, w));
            }
        });
    }));
    let makespan = t0.elapsed().as_nanos() as u64;
    if let Err(payload) = scope_outcome {
        // A kernel closure panicked. All workers have drained (the scope
        // joined); surface the first recorded panic with its worker id
        // instead of the raw payload.
        let first = pool.panics.lock().ok().and_then(|v| v.first().cloned());
        match first {
            Some((w, msg)) => panic!("kernel panicked on worker {w}: {msg}"),
            None => panic::resume_unwind(payload),
        }
    }

    let busy: Vec<u64> = pool
        .counters
        .iter()
        .map(|c| c.busy_ns.load(Ordering::Relaxed))
        .collect();
    let steal_overhead: Vec<u64> = pool
        .counters
        .iter()
        .map(|c| c.steal_ns.load(Ordering::Relaxed))
        .collect();
    let idle: Vec<u64> = busy
        .iter()
        .zip(&steal_overhead)
        .map(|(&b, &s)| makespan.saturating_sub(b + s))
        .collect();
    let sum = |f: fn(&WorkerCounters) -> &AtomicU64| -> u64 {
        pool.counters
            .iter()
            .map(|c| f(c).load(Ordering::Relaxed))
            .sum()
    };
    let steals = sum(|c| &c.steals);
    let report = ExecReport {
        p: cfg.workers,
        makespan,
        work: sum(|c| &c.tasks),
        machine: MachineStats {
            per_core: vec![CoreStats::default(); cfg.workers],
            block_transfers: 0,
        },
        heap_block_misses: 0,
        stack_block_misses: 0,
        stack_plain_misses: 0,
        steals,
        steal_attempts: steals + sum(|c| &c.failed_probes),
        steals_by_priority: Vec::new(),
        stolen_sizes: Vec::new(),
        usurpations: 0,
        busy,
        steal_overhead,
        idle,
        n_priorities: 0,
    };
    (root_result.expect("root completed"), report)
}
