//! [`NativePool`]: the persistent serve-forever pool.
//!
//! PR 4's runtime spawned a fresh pool of scoped threads per kernel
//! launch; this module splits the pool's *lifetime* out of the launch.
//! A [`NativePool`] spawns its workers **once**: worker 0 is the
//! *driver* — it drains a FIFO submission queue and executes each job's
//! root closure — and workers `1..p` are *thieves* that park on a
//! condvar between jobs and steal forked branches while a job runs.
//! The Chase-Lev deques, [`NativeStealPolicy`] facets, and the
//! `HBP_DEQUE` A/B all survive unchanged underneath: a job executes
//! exactly as a `run_native` root did, it just no longer pays thread
//! spawn/join per launch.
//!
//! ## Job lifecycle
//!
//! [`NativePool::submit`] enqueues a `'static` root closure and returns
//! a [`PoolHandle`]; [`PoolHandle::wait`] blocks until the job ran and
//! yields the root's value plus a per-job [`ExecReport`] (counter
//! *deltas* between the job's start and its quiesce point, so reports
//! compose across the pool's lifetime). Jobs execute one at a time in
//! submission order — a kernel launch spreads over every worker, like a
//! GPU kernel owns the device — which is what makes per-job reports and
//! per-job trace sinks well-defined. Queueing time is reported
//! separately ([`JobOutcome::queue_ns`]), so a server layer can split
//! latency into queue wait vs service.
//!
//! ## Shutdown
//!
//! [`NativePool::shutdown`] is explicit and **idempotent**: the first
//! call asks the driver to drain the queue (already-accepted jobs still
//! run and their handles complete), rejects new submissions, and joins
//! every worker; further calls are no-ops. Dropping the pool calls it.
//!
//! ## Tracing
//!
//! [`NativePool::submit_traced`] attaches a per-job
//! [`TraceSink`]: the driver swaps the pool's sink in the quiesced
//! window between jobs (no thief holds a steal loop there — see the
//! registration protocol in [`super::runtime::thief_main`]), so every
//! request can get its own isolated trace with per-job timestamps
//! starting near zero.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hbp_machine::{CoreStats, MachineStats};
use hbp_trace::{ClockDomain, EventKind as TrEv, TraceSink};

use crate::policy::{native_facet, NativeStealPolicy};
use crate::report::ExecReport;

use super::runtime::{
    self, note_current_worker_panic, Ctx, Pool, WorkerCounters, CTX, CUR_TASK, DEPTH, FORK_DEPTH,
    RNG,
};
use super::NativeConfig;

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// [`NativePool::shutdown`] was already requested; the pool accepts
    /// no new jobs (queued ones still drain).
    ShutDown,
    /// The admission queue is saturated *right now*, but is expected to
    /// drain: resubmitting after the enclosed hint should succeed. The
    /// hint is computed by the admitting layer from its queue depth and
    /// observed drain rate (the pool itself queues unboundedly; bounded
    /// admission layers such as `hbp-serve` produce this variant).
    /// Cooperative clients sleep the hint and retry; impatient ones may
    /// treat it as a plain rejection.
    RetryAfter(std::time::Duration),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShutDown => write!(f, "pool is shut down"),
            SubmitError::RetryAfter(d) => {
                write!(f, "admission queue is full; retry after {}ns", d.as_nanos())
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// The type-erased root runner of one submission. Both variants catch
/// their own unwinds and store the outcome where the submitter can
/// reach it, so the driver thread never unwinds.
pub(crate) enum RootRun {
    /// A `'static` closure from [`NativePool::submit`] (result lands in
    /// the handle's `Arc`ed slot).
    Boxed(Box<dyn FnOnce() + Send>),
    /// A lifetime-erased pointer to a [`ScopedRoot`] on the stack of a
    /// blocked `run_native` caller (which outlives the job by waiting
    /// on the meta before returning).
    Raw {
        data: *const (),
        exec: unsafe fn(*const ()),
    },
}

// SAFETY: Boxed closures are Send by bound; Raw pointers target a
// ScopedRoot whose closure and result are Send, and cross threads
// exactly once (submitter → driver).
unsafe impl Send for RootRun {}

/// One accepted job, queued until the driver picks it up.
pub(crate) struct Submission {
    pub(crate) run: RootRun,
    pub(crate) trace: Option<Arc<TraceSink>>,
    pub(crate) enqueued: Instant,
    pub(crate) meta: Arc<JobMeta>,
}

/// What the driver publishes when a job completes.
pub(crate) struct JobDone {
    pub(crate) report: ExecReport,
    pub(crate) queue_ns: u64,
    pub(crate) panics: Vec<(usize, String)>,
}

/// Completion rendezvous between the driver and one submitter.
pub(crate) struct JobMeta {
    done: Mutex<Option<JobDone>>,
    cv: Condvar,
}

impl JobMeta {
    fn new() -> Self {
        Self {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn complete(&self, d: JobDone) {
        let mut g = self.done.lock().expect("job meta poisoned");
        debug_assert!(g.is_none(), "job completed twice");
        *g = Some(d);
        self.cv.notify_all();
    }

    pub(crate) fn wait(&self) -> JobDone {
        let mut g = self.done.lock().expect("job meta poisoned");
        loop {
            if let Some(d) = g.take() {
                return d;
            }
            g = self.cv.wait(g).expect("job meta poisoned");
        }
    }
}

/// A borrowed root closure parked on a blocked caller's stack frame
/// (the scoped-submission analogue of `StackJob` for forked branches).
pub(crate) struct ScopedRoot<F, R> {
    f: std::cell::UnsafeCell<Option<F>>,
    result: std::cell::UnsafeCell<Option<std::thread::Result<R>>>,
}

// SAFETY: accessed by the driver exactly once (exec) and by the owning
// caller after completion; F and R are Send by the submit bounds.
unsafe impl<F: Send, R: Send> Sync for ScopedRoot<F, R> {}

impl<F, R> ScopedRoot<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        Self {
            f: std::cell::UnsafeCell::new(Some(f)),
            result: std::cell::UnsafeCell::new(None),
        }
    }

    /// SAFETY: called at most once, with `ptr` pointing to a live Self.
    pub(crate) unsafe fn exec(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.f.get()).take().expect("scoped root executed twice");
        let r = panic::catch_unwind(AssertUnwindSafe(f));
        if let Err(payload) = &r {
            note_current_worker_panic(payload.as_ref());
        }
        *this.result.get() = Some(r);
    }

    /// SAFETY: only after the job's meta completed (result written).
    pub(crate) unsafe fn take_result(&self) -> std::thread::Result<R> {
        (*self.result.get())
            .take()
            .expect("scoped root result taken before execution")
    }
}

/// Result slot of a boxed submission, shared between the closure that
/// fills it and the [`PoolHandle`] that takes it.
struct ResultCell<R>(Mutex<Option<std::thread::Result<R>>>);

/// Everything a completed job yields: the root's outcome (value or
/// panic payload), the per-job report, the time the job sat in the
/// submission queue, and the kernel panics recorded during it.
pub struct JobOutcome<R> {
    /// The root closure's return value, or the panic payload if it
    /// (or a forked branch) panicked.
    pub result: std::thread::Result<R>,
    /// Per-job execution report: counter deltas over the job window,
    /// `makespan` = root start → pool quiesce, wall-clock nanoseconds.
    pub report: ExecReport,
    /// Nanoseconds the job waited in the submission queue before the
    /// driver picked it up (not part of the report's makespan).
    pub queue_ns: u64,
    /// Kernel panics caught during the job, `(worker, message)`.
    pub panics: Vec<(usize, String)>,
}

/// Waitable handle to one submitted job. Consuming it with
/// [`PoolHandle::wait`] (or [`PoolHandle::outcome`]) is the only way to
/// observe the job's result, so every report is delivered exactly once.
pub struct PoolHandle<R> {
    result: Arc<ResultCell<R>>,
    meta: Arc<JobMeta>,
}

impl<R> PoolHandle<R> {
    /// Block until the job completed; return the full [`JobOutcome`]
    /// (never panics on a kernel panic — inspect `result` instead).
    pub fn outcome(self) -> JobOutcome<R> {
        let done = self.meta.wait();
        let result = self
            .result
            .0
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("job completed without a result");
        JobOutcome {
            result,
            report: done.report,
            queue_ns: done.queue_ns,
            panics: done.panics,
        }
    }

    /// Block until the job completed; return the root's value and the
    /// per-job report. A kernel panic is re-raised here, attributed to
    /// the worker that caught it (`kernel panicked on worker W: msg`).
    pub fn wait(self) -> (R, ExecReport) {
        let o = self.outcome();
        match o.result {
            Ok(v) => (v, o.report),
            Err(payload) => raise_job_panic(&o.panics, payload),
        }
    }
}

/// Re-raise a job panic with worker attribution when available.
pub(crate) fn raise_job_panic(
    panics: &[(usize, String)],
    payload: Box<dyn std::any::Any + Send>,
) -> ! {
    match panics.first() {
        Some((w, msg)) => panic!("kernel panicked on worker {w}: {msg}"),
        None => panic::resume_unwind(payload),
    }
}

/// A persistent work-stealing pool: workers spawn once, successive jobs
/// arrive through a submission queue, idle workers park between jobs,
/// shutdown is explicit (see the module docs).
pub struct NativePool {
    shared: Arc<Pool>,
    threads: Vec<JoinHandle<()>>,
    /// Fixed thread capacity (the elastic ceiling; per-worker storage is
    /// sized at this and never resized).
    workers: usize,
}

impl NativePool {
    /// Spawn a pool of worker threads (one driver + thieves), with
    /// `cfg`'s policy facet, deque kind, and RNG stream seed.
    ///
    /// The pool's **capacity** is `cfg.workers`, raised to the autoscale
    /// ceiling when `cfg.autoscale` is set: every capacity slot gets its
    /// thread and its place in the domain map at spawn (the map is
    /// resolved once, over the full capacity, so grow/shrink never
    /// re-partitions it — `domains()` metadata is stable for the pool's
    /// lifetime). Initially only `cfg.workers` slots *participate*
    /// (clamped into the autoscale band when one is set); the rest park
    /// until [`NativePool::set_desired_workers`] — or the autoscale
    /// controller — raises the target over them.
    pub fn new(cfg: NativeConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        if let Some((min, max)) = cfg.autoscale {
            assert!(
                min >= 1 && min <= max,
                "autoscale band must satisfy 1 <= min <= max, got {min}..{max}"
            );
        }
        let capacity = cfg
            .autoscale
            .map_or(cfg.workers, |(_, max)| max.max(cfg.workers));
        let desired = cfg
            .autoscale
            .map_or(cfg.workers, |(min, max)| cfg.workers.clamp(min, max));
        let policy: Box<dyn NativeStealPolicy> = native_facet(cfg.policy);
        let batch_cap = cfg.batch.cap(policy.as_ref());
        // Resolve the cache-domain sharding once, at spawn: auto-detected
        // from /sys (flat fallback, loudly), or simulated (`<k>`/`tag:<k>`).
        let (domains, two_level) = cfg.domains.resolve(capacity);
        let shared = Arc::new(Pool::new(
            capacity,
            desired,
            cfg.stream_seed(),
            policy,
            cfg.deque,
            batch_cap,
            cfg.counters,
            domains,
            two_level,
            cfg.cross_depth,
        ));
        let mut threads = Vec::with_capacity(capacity + 1);
        let p = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("hbp-pool-driver".into())
                .spawn(move || driver_main(&p))
                .expect("spawn pool driver"),
        );
        for w in 1..capacity {
            let p = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("hbp-pool-w{w}"))
                    .spawn(move || runtime::thief_main(&p, w))
                    .expect("spawn pool worker"),
            );
        }
        if let Some((min, max)) = cfg.autoscale {
            let p = Arc::clone(&shared);
            let max = max.min(capacity);
            threads.push(
                std::thread::Builder::new()
                    .name("hbp-pool-autoscale".into())
                    .spawn(move || autoscale_main(&p, min.min(max), max))
                    .expect("spawn autoscale controller"),
            );
        }
        Self {
            shared,
            threads,
            workers: capacity,
        }
    }

    /// Number of worker threads (driver included) — the pool's fixed
    /// capacity, i.e. the elastic ceiling, not the current target.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The current elastic participation target (see
    /// [`NativePool::set_desired_workers`]).
    pub fn desired_workers(&self) -> usize {
        self.shared.desired.load(Ordering::Relaxed)
    }

    /// Set the elastic participation target: workers `w < n` serve jobs,
    /// workers `w >= n` retire at their next steal-loop boundary (they
    /// stop popping, let thieves drain their deques, then park — see
    /// `runtime::thief_main`) and rejoin when the target grows back.
    /// Clamped to `1..=workers()`; takes effect mid-job in both
    /// directions. Worker 0 (the driver) always participates.
    pub fn set_desired_workers(&self, n: usize) {
        let n = n.clamp(1, self.workers);
        self.shared.desired.store(n, Ordering::Relaxed);
        // Wake parked thieves so a grow is acted on immediately (a
        // shrink needs no wake: active workers poll `desired`).
        self.shared.work_cv.notify_all();
    }

    /// Resolved cache-domain count (1 = the flat pool).
    pub fn domains(&self) -> usize {
        self.shared.domains.domains()
    }

    /// Whether two-level stealing (local-first victim order, the
    /// cross-domain depth floor, domain-aware parking) is active —
    /// false for flat, single-domain, and `tag:<k>` pools.
    pub fn two_level(&self) -> bool {
        self.shared.two_level
    }

    /// Jobs accepted but not yet started (the driver's backlog).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool state poisoned")
            .queue
            .len()
    }

    /// Submit a root closure; the returned handle waits for its value
    /// and per-job report. Jobs run in submission order.
    pub fn submit<R, F>(&self, f: F) -> Result<PoolHandle<R>, SubmitError>
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        self.submit_traced(None, f)
    }

    /// [`NativePool::submit`] with a per-job trace sink (must be in
    /// [`ClockDomain::WallNs`] and sized for at least
    /// [`NativePool::workers`] workers). Event timestamps restart near
    /// zero at the job's start.
    pub fn submit_traced<R, F>(
        &self,
        trace: Option<Arc<TraceSink>>,
        f: F,
    ) -> Result<PoolHandle<R>, SubmitError>
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        self.check_sink(trace.as_deref());
        let result = Arc::new(ResultCell(Mutex::new(None)));
        let slot = Arc::clone(&result);
        let run = RootRun::Boxed(Box::new(move || {
            let r = panic::catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = &r {
                note_current_worker_panic(payload.as_ref());
            }
            *slot.0.lock().expect("result slot poisoned") = Some(r);
        }));
        let meta = self.enqueue(run, trace)?;
        Ok(PoolHandle { result, meta })
    }

    /// Lifetime-erased submission for the blocking `run_native` path.
    ///
    /// SAFETY: `data`/`exec` must target a live [`ScopedRoot`] whose
    /// borrows stay valid until the returned meta completes — the
    /// caller must wait on it before returning.
    pub(crate) unsafe fn submit_scoped(
        &self,
        trace: Option<Arc<TraceSink>>,
        data: *const (),
        exec: unsafe fn(*const ()),
    ) -> Result<Arc<JobMeta>, SubmitError> {
        self.check_sink(trace.as_deref());
        self.enqueue(RootRun::Raw { data, exec }, trace)
    }

    fn check_sink(&self, trace: Option<&TraceSink>) {
        if let Some(tr) = trace {
            assert!(
                tr.workers() >= self.workers,
                "trace sink sized for {} workers, pool has {}",
                tr.workers(),
                self.workers
            );
            assert!(
                tr.clock() == ClockDomain::WallNs,
                "native traces are wall-clock; use ClockDomain::WallNs"
            );
        }
    }

    fn enqueue(
        &self,
        run: RootRun,
        trace: Option<Arc<TraceSink>>,
    ) -> Result<Arc<JobMeta>, SubmitError> {
        let meta = Arc::new(JobMeta::new());
        {
            let mut s = self.shared.state.lock().expect("pool state poisoned");
            if s.exit {
                return Err(SubmitError::ShutDown);
            }
            s.queue.push_back(Submission {
                run,
                trace,
                enqueued: Instant::now(),
                meta: Arc::clone(&meta),
            });
            let m = hbp_metrics::global();
            if m.on() {
                m.jobs_submitted.inc();
                let depth = s.queue.len() as i64;
                m.pool_backlog.set(depth);
                m.pool_backlog_peak.raise_to(depth);
            }
        }
        self.shared.work_cv.notify_all();
        Ok(meta)
    }

    /// Run `root` on a fresh one-job pool and report — the session-API
    /// replacement for the deprecated free function `run_native`.
    pub fn run<R, F>(cfg: NativeConfig, root: F) -> (R, ExecReport)
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        super::run_once(cfg, None, root)
    }

    /// [`NativePool::run`] with optional structured-event recording
    /// (the replacement for the deprecated `run_native_traced`). When
    /// `trace` is `Some`, the sink must be in [`ClockDomain::WallNs`]
    /// and sized for at least the pool's capacity; collect it after
    /// this returns.
    pub fn run_traced<R, F>(
        cfg: NativeConfig,
        trace: Option<Arc<TraceSink>>,
        root: F,
    ) -> (R, ExecReport)
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        super::run_once(cfg, trace, root)
    }

    /// Drain the queue (accepted jobs still run), reject new
    /// submissions, and join every worker. Idempotent: repeat calls
    /// (including the one from `Drop`) are no-ops.
    pub fn shutdown(&mut self) {
        {
            let mut s = self.shared.state.lock().expect("pool state poisoned");
            s.exit = true;
        }
        self.shared.work_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NativePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker's counter snapshot, used for per-job deltas.
#[derive(Clone, Copy, Default)]
struct CounterSnap {
    busy_ns: u64,
    steal_ns: u64,
    steals: u64,
    stolen_tasks: u64,
    failed_probes: u64,
    tasks: u64,
}

fn snapshot(counters: &[WorkerCounters]) -> Vec<CounterSnap> {
    counters
        .iter()
        .map(|c| CounterSnap {
            busy_ns: c.busy_ns.load(Ordering::Relaxed),
            steal_ns: c.steal_ns.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            stolen_tasks: c.stolen_tasks.load(Ordering::Relaxed),
            failed_probes: c.failed_probes.load(Ordering::Relaxed),
            tasks: c.tasks.load(Ordering::Relaxed),
        })
        .collect()
}

/// Assemble a per-job [`ExecReport`] from before/after counter
/// snapshots (same field semantics as the one-shot runner's report —
/// see the `native` module docs). `workers_active` is the job's peak
/// worker participation (driver included), which on an elastic pool can
/// be anywhere in `1..=p`.
fn delta_report(
    before: &[CounterSnap],
    after: &[CounterSnap],
    makespan: u64,
    workers_active: usize,
) -> ExecReport {
    let p = before.len();
    let busy: Vec<u64> = (0..p)
        .map(|w| after[w].busy_ns - before[w].busy_ns)
        .collect();
    let steal_overhead: Vec<u64> = (0..p)
        .map(|w| after[w].steal_ns - before[w].steal_ns)
        .collect();
    let idle: Vec<u64> = busy
        .iter()
        .zip(&steal_overhead)
        .map(|(&b, &s)| makespan.saturating_sub(b + s))
        .collect();
    let steals: u64 = (0..p).map(|w| after[w].steals - before[w].steals).sum();
    let stolen_tasks: u64 = (0..p)
        .map(|w| after[w].stolen_tasks - before[w].stolen_tasks)
        .sum();
    let failed: u64 = (0..p)
        .map(|w| after[w].failed_probes - before[w].failed_probes)
        .sum();
    ExecReport {
        p,
        makespan,
        work: (0..p).map(|w| after[w].tasks - before[w].tasks).sum(),
        machine: MachineStats {
            per_core: vec![CoreStats::default(); p],
            block_transfers: 0,
        },
        heap_block_misses: 0,
        stack_block_misses: 0,
        stack_plain_misses: 0,
        steals,
        stolen_tasks,
        steal_attempts: steals + failed,
        steals_by_priority: Vec::new(),
        stolen_sizes: Vec::new(),
        usurpations: 0,
        busy,
        steal_overhead,
        idle,
        n_priorities: 0,
        workers_active,
    }
}

/// The autoscale controller: a sampling loop that steers the pool's
/// `desired` worker target inside `[min, max]` from the observable
/// pressure signals — the submission backlog (the same queue depth the
/// metrics registry publishes as `pool_backlog`) and whether a job is in
/// flight. Pressure (a queued or running job) grows the target one
/// worker per tick; a fully idle pool shrinks one worker per
/// [`IDLE_TICKS_TO_SHRINK`] quiet ticks, down to `min`. Exits with the
/// pool.
fn autoscale_main(pool: &Pool, min: usize, max: usize) {
    /// Sampling period. Coarse enough to stay invisible in profiles,
    /// fine enough that a serve-scenario burst grows the pool within a
    /// few requests.
    const TICK: std::time::Duration = std::time::Duration::from_micros(500);
    const IDLE_TICKS_TO_SHRINK: u32 = 4;
    let mut idle_ticks = 0u32;
    loop {
        let (backlog, running, exit) = {
            let s = pool.state.lock().expect("pool state poisoned");
            (s.queue.len(), s.running, s.exit)
        };
        if exit && !running && backlog == 0 {
            return;
        }
        let cur = pool.desired.load(Ordering::Relaxed);
        if backlog > 0 || running {
            idle_ticks = 0;
            if cur < max {
                pool.desired.store(cur + 1, Ordering::Relaxed);
                pool.work_cv.notify_all();
            }
        } else {
            idle_ticks = idle_ticks.saturating_add(1);
            if idle_ticks >= IDLE_TICKS_TO_SHRINK && cur > min {
                pool.desired.store(cur - 1, Ordering::Relaxed);
                idle_ticks = 0;
            }
        }
        std::thread::sleep(TICK);
    }
}

/// The driver's main loop: drain the submission queue until shutdown.
fn driver_main(pool: &Pool) {
    CTX.set(Some(Ctx { pool, index: 0 }));
    RNG.set((pool.seed ^ 0x9E37_79B9_7F4A_7C15) | 1);
    loop {
        let sub = {
            let mut s = pool.state.lock().expect("pool state poisoned");
            loop {
                if let Some(sub) = s.queue.pop_front() {
                    let m = hbp_metrics::global();
                    if m.on() {
                        m.pool_backlog.set(s.queue.len() as i64);
                    }
                    break Some(sub);
                }
                if s.exit {
                    break None;
                }
                s = pool.work_cv.wait(s).expect("pool state poisoned");
            }
        };
        let Some(sub) = sub else { break };
        drive_one(pool, sub);
    }
    CTX.set(None);
    // Release parked thieves: with `exit` set, an empty queue, and
    // nothing running, their loop condition lets them return.
    pool.work_cv.notify_all();
}

/// Execute one submission on the pool: swap per-job state in the
/// quiesced window, wake the thieves, run the root as task 0 on the
/// driver, wait for quiescence, and publish the per-job outcome.
fn drive_one(pool: &Pool, sub: Submission) {
    let Submission {
        run,
        trace,
        enqueued,
        meta,
    } = sub;
    let queue_ns = enqueued.elapsed().as_nanos() as u64;
    // Quiesced window: no thief holds a steal loop (see thief_main's
    // registration protocol), so per-job state swaps are race-free.
    pool.set_trace(trace);
    if pool.domains.domains() > 1 {
        if let Some(tr) = pool.trace() {
            // Annotate the trace's worker lanes with their cache
            // domains (flat pools leave this empty, so their traces
            // stay byte-identical to the pre-domain runtime's).
            tr.set_domains(pool.domains.labels());
        }
    }
    pool.next_task.store(1, Ordering::Relaxed);
    pool.job_t0_ns
        .store(pool.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let before = snapshot(&pool.counters);
    pool.done.store(false, Ordering::Release);
    {
        let mut s = pool.state.lock().expect("pool state poisoned");
        s.running = true;
        s.epoch += 1;
        // Reset the per-job participation peak to the driver alone;
        // every thief registration raises it (see thief_main).
        s.participants = 1;
    }
    pool.work_cv.notify_all();

    let t0 = Instant::now();
    DEPTH.set(1);
    CUR_TASK.set(0);
    FORK_DEPTH.set(0);
    let mut root_c0 = None;
    if let Some(tr) = pool.trace() {
        tr.push(0, pool.now_ns(), TrEv::TaskBegin { task: 0 });
        root_c0 = crate::perf::sample(pool.counters_mode, 0);
    }
    let tb = Instant::now();
    // Both runner variants catch their own unwinds; this outer catch is
    // the driver's last line of defense (a poisoned result slot, say) —
    // the driver thread must survive every job.
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| match run {
        RootRun::Boxed(f) => f(),
        // SAFETY: submit_scoped's contract — the ScopedRoot is alive
        // until its meta completes, which is after this returns.
        RootRun::Raw { data, exec } => unsafe { exec(data) },
    }));
    pool.counters[0]
        .busy_ns
        .fetch_add(tb.elapsed().as_nanos() as u64, Ordering::Relaxed);
    pool.counters[0].tasks.fetch_add(1, Ordering::Relaxed);
    if let Some(tr) = pool.trace() {
        runtime::emit_miss_delta(pool, 0, tr, root_c0);
        tr.push(0, pool.now_ns(), TrEv::TaskEnd { task: 0 });
    }
    DEPTH.set(0);
    if let Err(payload) = outcome {
        pool.note_panic(0, payload.as_ref());
    }
    pool.done.store(true, Ordering::Release);
    let workers_active = {
        let mut s = pool.state.lock().expect("pool state poisoned");
        s.running = false;
        while s.active > 0 {
            s = pool.quiesce_cv.wait(s).expect("pool state poisoned");
        }
        s.participants
    };
    let makespan = t0.elapsed().as_nanos() as u64;
    let after = snapshot(&pool.counters);
    let report = delta_report(&before, &after, makespan, workers_active);
    {
        // Per-job serve-level publish: one increment and one histogram
        // observation per job (end-to-end latency = queue wait + service),
        // plus the driver's own task count for this job — the per-task
        // increments in execute_task cover forked branches, and the root
        // runs outside it.
        let m = hbp_metrics::global();
        if m.on() {
            m.jobs_completed.inc();
            m.job_latency_ns.observe(queue_ns + makespan);
            m.workers_active.set(workers_active as i64);
            m.shard(0).tasks_executed.inc();
        }
    }
    let panics = pool
        .panics
        .lock()
        .map(|mut v| v.drain(..).collect())
        .unwrap_or_default();
    // Drop the job's sink reference before signaling completion, so a
    // waiter that collects its sink right after wait() observes the
    // quiesced rings (the sink's collect contract).
    pool.set_trace(None);
    meta.complete(JobDone {
        report,
        queue_ns,
        panics,
    });
}
