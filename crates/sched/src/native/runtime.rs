//! The policy-driven worker runtime: per-worker deques, the fork-join
//! primitive, and the idle loop.
//!
//! This is the layer the tentpole refactor lifted out of the old
//! monolithic `native.rs`. The runtime owns *mechanism* — deque
//! operations, counters, tracing hooks, panic attribution — and
//! delegates every *decision* to the configured
//! [`NativeStealPolicy`](crate::policy::NativeStealPolicy) facet: victim
//! probe order ([`plan_probes`](crate::policy::NativeStealPolicy::plan_probes)),
//! steal admission by fork depth
//! ([`admit`](crate::policy::NativeStealPolicy::admit) — evaluated on the
//! thief's side *before* the claiming CAS, so refused tasks stay put),
//! and idle backoff.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hbp_trace::{EventKind as TrEv, TraceSink};

use crate::cl_deque::{ClDeque, Steal};
use crate::perf::{self, CounterMode};
use crate::policy::native::SPIN_PROBES;
use crate::policy::NativeStealPolicy;
use crate::topology::DomainMap;

use super::job::{payload_message, JobRef, StackJob};
use super::pool::Submission;
use super::DequeKind;

/// One worker's deque: the lock-free Chase-Lev array by default, or the
/// PR 2 mutex-guarded ring kept for A/B comparison (`HBP_DEQUE=mutex`,
/// `bench_diff`-able via the steal-latency histograms).
pub(crate) enum WorkerDeque {
    /// The lock-free Chase-Lev deque ([`crate::cl_deque`]).
    ChaseLev(ClDeque<JobRef>),
    /// Chase-Lev *ordering* (owner bottom-LIFO, thieves top-FIFO) behind
    /// a mutex — the pre-tentpole implementation.
    Mutex(Mutex<VecDeque<JobRef>>),
}

impl WorkerDeque {
    pub(crate) fn new(kind: DequeKind) -> Self {
        match kind {
            DequeKind::ChaseLev => WorkerDeque::ChaseLev(ClDeque::default()),
            DequeKind::Mutex => WorkerDeque::Mutex(Mutex::new(VecDeque::new())),
        }
    }

    /// Owner: publish a branch at the bottom.
    pub(crate) fn push_bottom(&self, j: JobRef) {
        match self {
            WorkerDeque::ChaseLev(d) => d.push(j),
            WorkerDeque::Mutex(q) => q.lock().expect("deque poisoned").push_back(j),
        }
    }

    /// Owner: reclaim the bottom branch.
    pub(crate) fn pop_bottom(&self) -> Option<JobRef> {
        match self {
            WorkerDeque::ChaseLev(d) => d.pop(),
            WorkerDeque::Mutex(q) => q.lock().expect("deque poisoned").pop_back(),
        }
    }

    /// Thief: claim the top branch if the policy admits its fork depth.
    pub(crate) fn steal_top(&self, admit: &dyn Fn(u32) -> bool) -> Steal<JobRef> {
        match self {
            WorkerDeque::ChaseLev(d) => d.steal_with(|j| admit(j.depth)),
            WorkerDeque::Mutex(q) => {
                let mut q = q.lock().expect("deque poisoned");
                match q.front() {
                    None => Steal::Empty,
                    Some(j) if !admit(j.depth) => Steal::Denied,
                    Some(_) => Steal::Data(q.pop_front().expect("front observed")),
                }
            }
        }
    }

    /// Thief: claim up to `max` admitted branches from the top in one
    /// claiming sequence, appending to `out` in deque order (the
    /// Chase-Lev path is [`ClDeque::steal_batch_with`]; the mutex ring
    /// takes the same ceil-half-bounded admitted prefix under its lock).
    pub(crate) fn steal_top_batch(
        &self,
        max: usize,
        admit: &dyn Fn(u32) -> bool,
        out: &mut Vec<JobRef>,
    ) -> Steal<usize> {
        match self {
            WorkerDeque::ChaseLev(d) => d.steal_batch_with(max, |j| admit(j.depth), out),
            WorkerDeque::Mutex(q) => {
                let mut q = q.lock().expect("deque poisoned");
                if q.is_empty() {
                    return Steal::Empty;
                }
                let want = q.len().div_ceil(2).min(max.max(1));
                let mut taken = 0;
                while taken < want {
                    match q.front() {
                        Some(j) if admit(j.depth) => {
                            out.push(q.pop_front().expect("front observed"));
                            taken += 1;
                        }
                        _ => break,
                    }
                }
                if taken == 0 {
                    Steal::Denied
                } else {
                    Steal::Data(taken)
                }
            }
        }
    }

    /// Whether the deque currently looks empty (owner-side hint
    /// maintenance; a racing thief may still be claiming the last
    /// element, which only makes the published hint conservative).
    pub(crate) fn looks_empty(&self) -> bool {
        self.len_hint() == 0
    }

    /// Approximate current length (racy by nature; the queue-depth gauge
    /// and the owner's hint maintenance both tolerate staleness).
    pub(crate) fn len_hint(&self) -> usize {
        match self {
            WorkerDeque::ChaseLev(d) => d.len_hint(),
            WorkerDeque::Mutex(q) => q.lock().expect("deque poisoned").len(),
        }
    }
}

/// Per-worker counters (each worker writes only its own; Relaxed is fine,
/// aggregation happens after the scope joins).
#[derive(Default)]
pub(crate) struct WorkerCounters {
    pub(crate) busy_ns: AtomicU64,
    pub(crate) steal_ns: AtomicU64,
    pub(crate) steals: AtomicU64,
    /// Tasks moved by committed steals (≥ `steals`; equal when every
    /// steal was unbatched).
    pub(crate) stolen_tasks: AtomicU64,
    pub(crate) failed_probes: AtomicU64,
    pub(crate) tasks: AtomicU64,
}

/// The mutex-guarded coordination state of a persistent pool: the
/// submission queue, the job epoch the thieves synchronize on, and the
/// shutdown flag. One mutex guards all of it — submissions, job
/// start/stop, and thief registration are rare events compared to the
/// lock-free deque traffic inside a job.
#[derive(Default)]
pub(crate) struct PoolState {
    /// Jobs accepted but not yet driven (FIFO).
    pub(crate) queue: VecDeque<Submission>,
    /// Monotonic job counter; bumped when the driver starts a job so
    /// parked thieves can tell a *new* job from a spurious wakeup.
    pub(crate) epoch: u64,
    /// Whether a job is currently executing on the pool.
    pub(crate) running: bool,
    /// Thieves currently inside a steal loop for the running job. The
    /// driver completes a job only once this returns to zero, which is
    /// what makes the per-job trace-sink swap and counter snapshot safe.
    pub(crate) active: usize,
    /// Peak worker concurrency observed during the current job (driver
    /// included): reset to 1 by the driver at job start, raised on every
    /// thief registration — including mid-job re-registrations after a
    /// grow. Reported as [`ExecReport::workers_active`].
    pub(crate) participants: usize,
    /// Shutdown requested: the driver drains the queue then exits, and
    /// thieves exit once nothing is running or queued.
    pub(crate) exit: bool,
}

/// Per-domain micro-park state for the sharded idle loop: an exhausted
/// thief sleeps on *its domain's* condvar instead of a blind
/// `sleep(50µs)`, so an owner publishing work can wake a worker that
/// shares its cache domain first. The wait is always timeout-bounded by
/// the same 50µs the flat backoff sleeps, so a missed notify costs
/// exactly what the pre-domain pool already paid — never liveness.
#[derive(Default)]
pub(crate) struct DomainSleep {
    /// Workers currently inside [`Pool::domain_park`] for this domain
    /// (racy by a few instructions around the wait; wake-side reads
    /// tolerate that because the wait is timeout-bounded).
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Shared state of one native pool: owned by [`super::pool::NativePool`]
/// behind an `Arc`, borrowed as `&Pool` by the worker threads (via
/// [`Ctx`]) for their lifetime.
pub(crate) struct Pool {
    /// Elasticity target: workers `me < desired` take part in jobs,
    /// workers `me >= desired` retire at the next steal-loop boundary
    /// and park until the target grows back over them. Clamped to
    /// `1..=deques.len()` (the pool's fixed capacity) — the driver
    /// (worker 0) never retires. Per-worker storage below is always
    /// sized at *capacity* and never resized: worker threads hold
    /// `&Pool` borrows into these Vecs for the pool's lifetime, so
    /// growth only ever flips `desired`, never reallocates.
    pub(crate) desired: AtomicUsize,
    pub(crate) deques: Vec<WorkerDeque>,
    /// Shallowest fork depth published on each worker's deque
    /// (`u32::MAX` = looks empty). Owner-maintained on push/pop with
    /// relaxed atomics; thieves read it through
    /// [`NativeStealPolicy::plan_probes_hinted`] to order their probe
    /// scans (the PWS shallowest-victim approximation of §4.7). The
    /// hint is allowed to be stale — thieves draining a deque leave it
    /// untouched — because every probe re-validates against the live
    /// deque; staleness costs a reordered scan, never correctness.
    pub(crate) depth_hints: Vec<AtomicU32>,
    /// Effective per-steal batch cap for top-level idle-loop steals
    /// (1 = unbatched; from [`super::StealBatch`] × the policy facet).
    pub(crate) batch_cap: usize,
    pub(crate) counters: Vec<WorkerCounters>,
    /// Per-job completion flag: reset by the driver before a job's root
    /// starts, set once the root returns (root return implies every
    /// forked branch joined, so the job is quiescent).
    pub(crate) done: AtomicBool,
    /// Per-worker RNG stream seed (pool seed mixed with the policy's).
    pub(crate) seed: u64,
    /// Task-boundary counter sampling mode for traced jobs
    /// ([`crate::perf`]; only consulted when a trace sink is attached).
    pub(crate) counters_mode: CounterMode,
    /// The scheduling discipline's native facet: probe order, admission,
    /// backoff.
    pub(crate) policy: Box<dyn NativeStealPolicy>,
    /// Worker → cache-domain assignment (resolved from
    /// [`super::NativeConfig::domains`]; one flat domain when unsharded).
    /// Always consulted for steal-locality *classification* (metrics,
    /// `StealCommit::cross_domain`), even when two-level stealing is off
    /// (`HBP_DOMAINS=tag:<k>`).
    pub(crate) domains: DomainMap,
    /// Whether two-level stealing is on: local-first victim order, the
    /// cross-domain depth floor, and domain-aware parking. When false
    /// the idle loop is the pre-domain flat pool, instruction for
    /// instruction on the steal path — the `domains=1` identity the
    /// trace_diff gate checks.
    pub(crate) two_level: bool,
    /// Fork-depth floor for cross-domain steals (see
    /// [`NativeStealPolicy::cross_admit`]).
    pub(crate) cross_depth: u32,
    /// Per-domain micro-park state (empty unless `two_level`).
    dsleep: Vec<DomainSleep>,
    /// Workers currently micro-parked across all domains — the wake
    /// path's cheap short-circuit (one relaxed load per fork when
    /// nobody sleeps).
    total_sleepers: AtomicUsize,
    /// The *current job's* structured-event recorder (None = tracing
    /// off, zero extra work). Swapped by the driver between jobs.
    ///
    /// # Safety protocol
    ///
    /// Written only by the driver thread in the quiesced window between
    /// jobs (`state.running == false && state.active == 0`, held under
    /// the state mutex transition). Read by workers only inside a job —
    /// thieves register in `state.active` under the mutex *before*
    /// entering their steal loop and deregister after leaving it, so no
    /// read can overlap a write; the mutex hand-offs provide the
    /// happens-before edges.
    trace_cell: UnsafeCell<Option<Arc<TraceSink>>>,
    /// Wall-clock zero of the pool (trace timestamps are relative to
    /// the current job's start; see [`Pool::now_ns`]).
    pub(crate) epoch: Instant,
    /// Nanoseconds from the pool epoch to the current job's start.
    pub(crate) job_t0_ns: AtomicU64,
    /// Next trace task id (0 is the root; reset per job).
    pub(crate) next_task: AtomicU32,
    /// Kernel panics observed in the current job: `(worker, message)` in
    /// the order they were caught; drained by the driver per job.
    pub(crate) panics: Mutex<Vec<(usize, String)>>,
    /// Coordination state (queue, epochs, shutdown).
    pub(crate) state: Mutex<PoolState>,
    /// Wakes the driver (new submission / shutdown) and the thieves
    /// (job started / shutdown).
    pub(crate) work_cv: Condvar,
    /// Wakes the driver when the last registered thief leaves its steal
    /// loop (`state.active` back to zero).
    pub(crate) quiesce_cv: Condvar,
}

// SAFETY: every field but `trace_cell` is Sync on its own; `trace_cell`
// follows the quiesce protocol documented on the field (driver-only
// writes while no thief is registered, mutex hand-offs for ordering).
unsafe impl Sync for Pool {}

impl Pool {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        workers: usize,
        desired: usize,
        seed: u64,
        policy: Box<dyn NativeStealPolicy>,
        deque: DequeKind,
        batch_cap: usize,
        counters_mode: CounterMode,
        domains: DomainMap,
        two_level: bool,
        cross_depth: u32,
    ) -> Self {
        // Two-level stealing is meaningless with a single domain; the
        // resolver already clears it, but guard here too so the identity
        // "one domain ⇒ flat pool" holds for any caller.
        let two_level = two_level && domains.domains() > 1;
        let dsleep = if two_level {
            (0..domains.domains())
                .map(|_| DomainSleep::default())
                .collect()
        } else {
            Vec::new()
        };
        Self {
            desired: AtomicUsize::new(desired.clamp(1, workers)),
            deques: (0..workers).map(|_| WorkerDeque::new(deque)).collect(),
            depth_hints: (0..workers).map(|_| AtomicU32::new(u32::MAX)).collect(),
            batch_cap: batch_cap.max(1),
            counters: (0..workers).map(|_| WorkerCounters::default()).collect(),
            done: AtomicBool::new(true),
            seed,
            counters_mode,
            policy,
            domains,
            two_level,
            cross_depth,
            dsleep,
            total_sleepers: AtomicUsize::new(0),
            trace_cell: UnsafeCell::new(None),
            epoch: Instant::now(),
            job_t0_ns: AtomicU64::new(0),
            next_task: AtomicU32::new(1),
            panics: Mutex::new(Vec::new()),
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            quiesce_cv: Condvar::new(),
        }
    }

    /// The current job's trace sink, if any.
    #[inline]
    pub(crate) fn trace(&self) -> Option<&Arc<TraceSink>> {
        // SAFETY: the quiesce protocol on `trace_cell` — reads happen
        // only inside a job, writes only between jobs.
        unsafe { (*self.trace_cell.get()).as_ref() }
    }

    /// Swap the per-job trace sink. Must only be called by the driver in
    /// the quiesced window between jobs (see the `trace_cell` docs).
    pub(crate) fn set_trace(&self, trace: Option<Arc<TraceSink>>) {
        // SAFETY: caller contract (driver thread, quiesced window).
        unsafe { *self.trace_cell.get() = trace }
    }

    /// Nanoseconds since the current job's start (trace timestamp).
    pub(crate) fn now_ns(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() as u64)
            .saturating_sub(self.job_t0_ns.load(Ordering::Relaxed))
    }

    /// Record a caught kernel panic for attribution at the job boundary.
    pub(crate) fn note_panic(&self, worker: usize, payload: &(dyn std::any::Any + Send)) {
        let msg = payload_message(payload);
        if let Ok(mut v) = self.panics.lock() {
            v.push((worker, msg));
        }
    }

    /// Owner: publish a branch on `me`'s deque and fold its fork depth
    /// into the worker's top-depth hint (the shallowest depth queued is
    /// what a §4.7-style thief wants to know about).
    pub(crate) fn push_bottom_hinted(&self, me: usize, j: JobRef) {
        self.depth_hints[me].fetch_min(j.depth, Ordering::Relaxed);
        self.deques[me].push_bottom(j);
        if self.two_level {
            self.domain_wake(me);
        }
        let m = hbp_metrics::global();
        if m.on() {
            let d = self.deques[me].len_hint() as i64;
            let sh = m.shard(me);
            sh.queue_depth.set(d);
            sh.queue_depth_peak.raise_to(d);
        }
    }

    /// Sharded idle backoff: instead of a blind `sleep(50µs)`, wait
    /// (timeout-bounded by the same 50µs) on the worker's *domain*
    /// condvar, so a local fork wakes a domain-mate immediately. Missed
    /// notifies degrade to exactly the flat pool's sleep — see
    /// [`DomainSleep`].
    pub(crate) fn domain_park(&self, me: usize) {
        let ds = &self.dsleep[self.domains.domain_of(me)];
        ds.sleepers.fetch_add(1, Ordering::Relaxed);
        self.total_sleepers.fetch_add(1, Ordering::Relaxed);
        let guard = ds.lock.lock().expect("domain sleep lock poisoned");
        let _ = ds
            .cv
            .wait_timeout(guard, Duration::from_micros(50))
            .expect("domain sleep lock poisoned");
        ds.sleepers.fetch_sub(1, Ordering::Relaxed);
        self.total_sleepers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Fork-side wake for the sharded pool: prefer a micro-parked worker
    /// in the publisher's own domain (the steal would be local); when
    /// every domain-mate is already busy, wake the domain with the most
    /// sleepers — an idle domain starts pulling work before a busy one
    /// is oversubscribed. One relaxed load when nobody sleeps.
    fn domain_wake(&self, me: usize) {
        if self.total_sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let my = self.domains.domain_of(me);
        if self.dsleep[my].sleepers.load(Ordering::Relaxed) > 0 {
            self.dsleep[my].cv.notify_one();
            return;
        }
        if let Some(ds) = self
            .dsleep
            .iter()
            .max_by_key(|ds| ds.sleepers.load(Ordering::Relaxed))
        {
            if ds.sleepers.load(Ordering::Relaxed) > 0 {
                ds.cv.notify_one();
            }
        }
    }

    /// Owner: reclaim the bottom branch, clearing the hint when the
    /// deque drains (the one cheap moment the owner can tell).
    pub(crate) fn pop_bottom_hinted(&self, me: usize) -> Option<JobRef> {
        let j = self.deques[me].pop_bottom();
        if self.deques[me].looks_empty() {
            self.depth_hints[me].store(u32::MAX, Ordering::Relaxed);
        }
        let m = hbp_metrics::global();
        if m.on() {
            m.shard(me)
                .queue_depth
                .set(self.deques[me].len_hint() as i64);
        }
        j
    }
}

/// The calling context of a worker thread: which pool, which index.
#[derive(Clone, Copy)]
pub(crate) struct Ctx {
    pub(crate) pool: *const Pool,
    pub(crate) index: usize,
}

thread_local! {
    /// Set for the lifetime of a worker's main function; `None` on every
    /// other thread (where [`join`] degrades to sequential calls).
    pub(crate) static CTX: Cell<Option<Ctx>> = const { Cell::new(None) };
    /// xorshift64* state for victim selection.
    pub(crate) static RNG: Cell<u64> = const { Cell::new(0) };
    /// Task nesting depth; busy time is measured at depth 0→1 only.
    pub(crate) static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Trace task id the worker is currently executing.
    pub(crate) static CUR_TASK: Cell<u32> = const { Cell::new(0) };
    /// Fork depth of the branch the worker is currently executing (the
    /// root is 0; each enclosing `join` adds 1). Published on forked
    /// [`JobRef`]s so steal policies can apply the §5.3 floor.
    pub(crate) static FORK_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Scratch probe plan, reused across scans (no per-scan allocation).
    static PROBES: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Scratch batch-steal buffer, reused across steals.
    static BATCH: RefCell<Vec<JobRef>> = const { RefCell::new(Vec::new()) };
}

/// Whether the current thread is a native-pool worker (used by
/// `hbp_algos::par::pjoin` to route joins here instead of rayon).
pub fn in_pool() -> bool {
    CTX.get().is_some()
}

/// Attribute a caught kernel panic to the worker running on this thread
/// (no-op outside a pool worker).
pub(crate) fn note_current_worker_panic(payload: &(dyn std::any::Any + Send)) {
    if let Some(ctx) = CTX.get() {
        // SAFETY: CTX is only set while the pool is alive on
        // run_native's stack.
        unsafe { (*ctx.pool).note_panic(ctx.index, payload) };
    }
}

/// Probe the other workers' deque tops in the policy's planned order
/// (hinted by the victims' published top depths), claiming up to `max`
/// tasks from the first victim that yields any; the claimed tasks are
/// appended to `out` in deque order. `None` after one full unsuccessful
/// scan, else the victim index (`out` then holds ≥ 1 task).
///
/// On a domain-sharded pool (`two_level`) the scan is **two-phase**: the
/// policy's [`plan_probes_sharded`](NativeStealPolicy::plan_probes_sharded)
/// order visits every victim in the thief's own cache domain before any
/// remote one, and remote victims additionally gate each task's fork
/// depth through [`cross_admit`](NativeStealPolicy::cross_admit) — the
/// admission composes thief-side *before* the claiming CAS, exactly
/// like the flat §5.3 floor, so refused tasks stay on their owner's
/// deque with exactly-once accounting untouched.
fn steal_from_others(pool: &Pool, me: usize, max: usize, out: &mut Vec<JobRef>) -> Option<usize> {
    let p = pool.deques.len();
    if p <= 1 {
        return None;
    }
    PROBES.with_borrow_mut(|order| {
        let mut rng = RNG.get();
        let hint = |v: usize| pool.depth_hints[v].load(Ordering::Relaxed);
        let my_dom = pool.domains.domain_of(me);
        if pool.two_level {
            let dom = |v: usize| pool.domains.domain_of(v);
            pool.policy
                .plan_probes_sharded(me, p, &mut rng, &hint, &dom, my_dom, order);
        } else {
            pool.policy
                .plan_probes_hinted(me, p, &mut rng, &hint, order);
        }
        RNG.set(rng);
        for &v in order.iter() {
            debug_assert_ne!(v, me, "policies must not plan self-probes");
            let cross = pool.two_level && pool.domains.domain_of(v) != my_dom;
            let admit = |depth: u32| {
                pool.policy.admit(depth)
                    && (!cross || pool.policy.cross_admit(depth, pool.cross_depth))
            };
            loop {
                let got = if max > 1 {
                    pool.deques[v].steal_top_batch(max, &admit, out)
                } else {
                    match pool.deques[v].steal_top(&admit) {
                        Steal::Data(j) => {
                            out.push(j);
                            Steal::Data(1)
                        }
                        Steal::Empty => Steal::Empty,
                        Steal::Retry => Steal::Retry,
                        Steal::Denied => Steal::Denied,
                    }
                };
                match got {
                    Steal::Data(_) => return Some(v),
                    // Lost a CAS race on a non-empty deque: retry the
                    // same victim (someone made progress, so this
                    // terminates when the deque drains).
                    Steal::Retry => continue,
                    Steal::Empty | Steal::Denied => break,
                }
            }
        }
        None
    })
}

/// Execute a task, timing it into `busy_ns` when it is top-level and
/// counting it either way. With tracing on, brackets the execution in
/// `TaskBegin`/`TaskEnd` events (nested inside the enclosing task's
/// segment when called from a join-wait).
pub(crate) fn execute_task(pool: &Pool, me: usize, j: JobRef) {
    let d = DEPTH.get();
    DEPTH.set(d + 1);
    let prev_fork_depth = FORK_DEPTH.get();
    FORK_DEPTH.set(j.depth);
    let prev_task = CUR_TASK.get();
    let mut c0 = None;
    if let Some(tr) = pool.trace() {
        CUR_TASK.set(j.id);
        tr.push(me, pool.now_ns(), TrEv::TaskBegin { task: j.id });
        c0 = perf::sample(pool.counters_mode, me);
    }
    if d == 0 {
        let t0 = Instant::now();
        // SAFETY: we hold the only copy of `j` (it came from a deque pop).
        unsafe { j.execute() };
        pool.counters[me]
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    } else {
        // SAFETY: as above.
        unsafe { j.execute() };
    }
    if let Some(tr) = pool.trace() {
        emit_miss_delta(pool, me, tr, c0);
        tr.push(me, pool.now_ns(), TrEv::TaskEnd { task: j.id });
        CUR_TASK.set(prev_task);
    }
    FORK_DEPTH.set(prev_fork_depth);
    DEPTH.set(d);
    pool.counters[me].tasks.fetch_add(1, Ordering::Relaxed);
    let m = hbp_metrics::global();
    if m.on() {
        m.shard(me).tasks_executed.inc();
    }
}

/// Close a counter-sampled task window: read the worker's cumulative
/// counters again and emit the delta as a `MissDelta` event *inside* the
/// task's open segment (before its `TaskEnd`), mirroring where the
/// simulator records its predicted deltas. `c0` is the `TaskBegin`-side
/// reading; `None` (sampling off/unavailable) emits nothing.
pub(crate) fn emit_miss_delta(
    pool: &Pool,
    me: usize,
    tr: &TraceSink,
    c0: Option<perf::CounterValues>,
) {
    let Some(c0) = c0 else { return };
    let Some(c1) = perf::sample(pool.counters_mode, me) else {
        return;
    };
    tr.push(
        me,
        pool.now_ns(),
        TrEv::MissDelta {
            heap_block: c1[0].saturating_sub(c0[0]),
            stack_block: c1[1].saturating_sub(c0[1]),
            stack_plain: c1[2].saturating_sub(c0[2]),
        },
    );
}

/// Fork-join on the native pool: runs `a` on the calling worker while `b`
/// is available for stealing; returns both results. Outside a pool worker
/// (no [`super::run_native`] scope on this thread) both closures simply
/// run sequentially. Panics in either branch propagate to the caller,
/// with the executing worker named in the payload (see the module docs).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some(ctx) = CTX.get() else {
        return (a(), b());
    };
    // SAFETY: CTX is only set while the pool is alive on run_native's
    // stack (workers are scope-joined before it returns).
    let pool = unsafe { &*ctx.pool };
    let me = ctx.index;

    let job = StackJob::new(b);
    let branch_depth = FORK_DEPTH.get() + 1;
    let branch_id = match pool.trace() {
        Some(tr) => {
            let id = pool.next_task.fetch_add(1, Ordering::Relaxed);
            let cur = CUR_TASK.get();
            tr.push(
                me,
                pool.now_ns(),
                TrEv::Fork {
                    parent: cur,
                    left: cur,
                    right: id,
                },
            );
            id
        }
        None => 0,
    };
    let job_ref = job.as_job_ref(branch_id, branch_depth);
    pool.push_bottom_hinted(me, job_ref);

    // Run the left branch — at the same fork depth as the published
    // right branch. Even if it panics we must settle the right branch
    // first: a thief executing `job` borrows this stack frame.
    FORK_DEPTH.set(branch_depth);
    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    FORK_DEPTH.set(branch_depth - 1);
    if let Err(payload) = &ra {
        pool.note_panic(me, payload.as_ref());
    }

    match pool.pop_bottom_hinted(me) {
        Some(j) if std::ptr::eq(j.data, job_ref.data) => {
            // Not stolen: run the right branch inline.
            execute_task(pool, me, j);
        }
        other => {
            // Our job is gone (stolen). Anything we popped instead belongs
            // to an enclosing join on this worker — put it back.
            if let Some(j) = other {
                pool.push_bottom_hinted(me, j);
            }
            // Steal other work while the thief finishes our branch.
            // Probe time inside a task is attributed to that task (see
            // the module docs), so no steal_ns accounting here. Unbatched:
            // see `steal_once` for why join-waits must not take extras.
            let mut fails = 0u32;
            while !job.done.load(Ordering::Acquire) {
                steal_once(pool, me, &mut fails, false, false);
            }
        }
    }

    let ra = match ra {
        Ok(v) => v,
        Err(payload) => panic::resume_unwind(payload),
    };
    // SAFETY: the job has executed (inline or by a thief, done observed).
    let rb = match unsafe { job.take_result() } {
        Ok(v) => v,
        Err(payload) => panic::resume_unwind(payload),
    };
    (ra, rb)
}

/// One steal attempt for an idle context: probe the other deques in the
/// policy's order, record counters and trace events, and execute the
/// stolen task(s) on success. `count_probe_ns` charges the probe scan to
/// `steal_ns` (true in the top-level idle loop; false inside a
/// join-wait, where probe time is attributed to the waiting task).
///
/// `batch` enables multi-task claiming (cap = the pool's effective
/// `batch_cap`): the first claimed task executes immediately, the rest
/// are re-published on `me`'s own deque — re-stealable by anyone, and
/// drained by the top-level loop's own-deque pop. Join-wait steals stay
/// unbatched on purpose: a batch extra buried on the deque *below* the
/// enclosing join's branch would let that join's pop-back miss its
/// branch and spin on work only other workers can finish — fatal on a
/// pool with a single active worker. The top-level loop has no
/// enclosing join, so the extras are always its own to drain.
///
/// Returns whether a task ran.
pub(crate) fn steal_once(
    pool: &Pool,
    me: usize,
    fails: &mut u32,
    count_probe_ns: bool,
    batch: bool,
) -> bool {
    let cap = if batch { pool.batch_cap } else { 1 };
    // The BATCH borrow must not outlive the claiming sequence: the task
    // executed below can re-enter steal_once from a nested join-wait on
    // this very thread, which borrows BATCH again.
    let first = BATCH.with_borrow_mut(|buf| {
        debug_assert!(buf.is_empty(), "batch scratch drained between steals");
        let t0 = Instant::now();
        let found = steal_from_others(pool, me, cap, buf);
        if count_probe_ns {
            pool.counters[me]
                .steal_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let victim = found?;
        let count = buf.len();
        // Locality classification runs off the domain *labels* alone, so
        // `tag:<k>` pools measure steal locality without sharded order
        // (the A/B control) and flat pools count everything local.
        let cross = pool.domains.domain_of(victim) != pool.domains.domain_of(me);
        pool.counters[me].steals.fetch_add(1, Ordering::Relaxed);
        pool.counters[me]
            .stolen_tasks
            .fetch_add(count as u64, Ordering::Relaxed);
        let m = hbp_metrics::global();
        if m.on() {
            let sh = m.shard(me);
            sh.steals_committed.inc();
            sh.steal_batch.observe(count as u64);
            if cross {
                sh.steals_cross_domain.inc();
            } else {
                sh.steals_local.inc();
            }
        }
        let first = buf[0];
        if let Some(tr) = pool.trace() {
            tr.push(
                me,
                pool.now_ns(),
                TrEv::StealCommit {
                    task: first.id,
                    victim: victim as u32,
                    count: count as u32,
                    cross_domain: cross,
                },
            );
        }
        // Re-publish the extras bottom-up in deque order: the deepest
        // lands nearest the bottom, so our own pops run depth-first
        // while thieves see the shallowest on top — the same discipline
        // a local fork sequence produces.
        for j in buf.drain(1..) {
            pool.push_bottom_hinted(me, j);
        }
        buf.clear();
        Some(first)
    });
    match first {
        Some(first) => {
            *fails = 0;
            execute_task(pool, me, first);
            true
        }
        None => {
            pool.counters[me]
                .failed_probes
                .fetch_add(1, Ordering::Relaxed);
            let m = hbp_metrics::global();
            if m.on() {
                m.shard(me).steals_failed.inc();
            }
            if let Some(tr) = pool.trace() {
                tr.push(me, pool.now_ns(), TrEv::StealFail);
            }
            // Sharded pools replace the policy's sleep-phase backoff
            // with a domain micro-park (same 50µs bound, but wakeable by
            // a domain-mate's fork); the spin-yield phase and every
            // unsharded pool keep the policy's own backoff untouched.
            if pool.two_level && *fails >= SPIN_PROBES {
                pool.domain_park(me);
            } else {
                pool.policy.backoff(*fails);
            }
            *fails = fails.saturating_add(1);
            false
        }
    }
}

/// How many yield-spins a retiring worker grants thieves to drain its
/// deque before it runs the leftovers itself (see [`thief_main`]).
const RETIRE_DRAIN_SPINS: u32 = 256;

/// A thief's persistent loop: park between jobs, register for each new
/// job epoch, steal top-level tasks until the job is done, deregister.
///
/// Registration (`state.active`) happens under the state mutex in the
/// same critical section that observes the new epoch, so the driver's
/// quiesce wait (`active == 0` with `running == false`) cannot miss a
/// thief that is about to enter its steal loop — the guarantee the
/// per-job trace-sink swap and counter snapshots rely on.
///
/// ## Elastic participation
///
/// A thief only registers while `me < desired`, and re-checks `desired`
/// at every steal-loop iteration. When the target shrinks below it, the
/// worker **retires**: it stops popping and stealing, yields so other
/// thieves can empty its Chase-Lev deque through the normal top-CAS
/// protocol (exactly-once is the deque's own invariant — retirement adds
/// no new transfer path), then deregisters and parks. Leftovers that no
/// thief claims within [`RETIRE_DRAIN_SPINS`] yields — admission floors
/// (§5.3 / cross-domain) can make a task *thief-invisible* — are
/// executed by the retiring owner itself before it parks, so a task can
/// never strand on a parked worker's deque. After retirement `seen` is
/// cleared, so a grow while the *same* job is still running re-registers
/// the worker into the current epoch (grow → shrink → grow composes
/// within one job).
pub(crate) fn thief_main(pool: &Pool, me: usize) {
    CTX.set(Some(Ctx { pool, index: me }));
    RNG.set((pool.seed ^ (me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1);
    let mut seen = 0u64;
    loop {
        {
            let m = hbp_metrics::global();
            let mut s = pool.state.lock().expect("pool state poisoned");
            let mut parked = false;
            loop {
                if s.running && s.epoch != seen && me < pool.desired.load(Ordering::Relaxed) {
                    seen = s.epoch;
                    s.active += 1;
                    s.participants = s.participants.max(s.active + 1);
                    break;
                }
                if s.exit && !s.running && s.queue.is_empty() {
                    drop(s);
                    CTX.set(None);
                    return;
                }
                if m.on() && !parked {
                    parked = true;
                    m.shard(me).parks.inc();
                }
                s = pool.work_cv.wait(s).expect("pool state poisoned");
            }
            if m.on() && parked {
                m.shard(me).unparks.inc();
            }
        }
        let mut fails = 0u32;
        let mut retiring = false;
        while !pool.done.load(Ordering::Acquire) {
            if me >= pool.desired.load(Ordering::Relaxed) {
                retiring = true;
                break;
            }
            // Drain our own deque first: a prior batched steal may have
            // re-published extras here. At the top level everything on
            // our deque is ours to run (no enclosing join to starve).
            while let Some(j) = pool.pop_bottom_hinted(me) {
                execute_task(pool, me, j);
            }
            if pool.done.load(Ordering::Acquire) {
                break;
            }
            steal_once(pool, me, &mut fails, true, true);
        }
        if retiring {
            // Stop popping; let thieves empty our deque. Every task here
            // is top-level (its fork parent join-waits elsewhere and
            // probes all capacity slots, retired or not), so the job
            // cannot lose it — but an admission-denied task might be
            // claimable by nobody, so after a bounded grace we run the
            // leftovers ourselves rather than strand them.
            let mut spins = 0u32;
            while !pool.done.load(Ordering::Acquire) && !pool.deques[me].looks_empty() {
                spins += 1;
                if spins > RETIRE_DRAIN_SPINS {
                    while let Some(j) = pool.pop_bottom_hinted(me) {
                        execute_task(pool, me, j);
                    }
                    break;
                }
                std::thread::yield_now();
            }
            // Re-arm registration for the *current* epoch: if the target
            // grows back while this job still runs, we rejoin it (epochs
            // start at 1, so 0 never collides with a live epoch).
            seen = 0;
        }
        let mut s = pool.state.lock().expect("pool state poisoned");
        s.active -= 1;
        if s.active == 0 {
            pool.quiesce_cv.notify_all();
        }
    }
}
