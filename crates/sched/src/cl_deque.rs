//! A lock-free Chase–Lev work-stealing deque.
//!
//! This is the real realization of the Obs 4.1 deque discipline that
//! [`crate::deque`] models in virtual time and the native backend's old
//! mutex-guarded ring merely *ordered*: the owner pushes and pops at the
//! **bottom** without synchronization in the common case, thieves race on
//! the **top** with a single compare-and-swap, and the one genuinely
//! contended case — owner and thief meeting on the last element — is
//! arbitrated by a `SeqCst` fence plus a CAS on `top` (Chase & Lev,
//! SPAA 2005; memory orderings follow Lê, Pop, Cocchini & Zappa Nardelli,
//! PPoPP 2013).
//!
//! ## Shape
//!
//! * `bottom` and `top` are monotonically increasing indices into a
//!   **growable circular array** (capacity always a power of two; slots
//!   are addressed `index & mask`, so the indices themselves never wrap).
//! * [`ClDeque::push`] grows the array when full — owner-only, so growth
//!   needs no CAS: the new buffer is published with a `Release` store.
//! * **Retired-buffer reclamation**: a thief may still be reading a slot
//!   of a buffer the owner just replaced. Retired buffers are therefore
//!   parked in a retire list and freed only when the deque is dropped —
//!   the degenerate (and provably safe) end of the epoch spectrum. A
//!   deque that grows `g` times retires `2^{g+1} - 2` slots total, i.e.
//!   less than one extra copy of the largest live buffer, so the cost is
//!   bounded and there is no per-operation reclamation bookkeeping on
//!   the steal path.
//! * [`ClDeque::steal_with`] takes an **admission filter**: the thief
//!   reads the top element, asks the filter, and only then CASes `top`.
//!   A denied element stays in place. This is what lets the BSP facet of
//!   the native runtime (§5.3) refuse deep tasks without dequeuing them,
//!   and the filter *composes*: on a domain-sharded pool the runtime
//!   passes `admit(depth) && cross_admit(depth, floor)` for cross-domain
//!   victims, so a task too deep to cross cache domains is refused by
//!   the same thief-side predicate, before the claiming CAS, with no new
//!   deque machinery.
//!
//! ## Safety notes
//!
//! A thief's raw copy of a slot can race with the owner overwriting
//! that slot after the element was lost elsewhere — the standard
//! Chase–Lev hazard. No code path *observes* such a copy: after the
//! read, the thief re-checks `top` (monotonic, so `top == t` proves the
//! slot was stable for the whole read — the owner can only reuse the
//! physical slot once `top` has moved past it) and `mem::forget`s the
//! copy on any mismatch before the admission filter or the caller sees
//! it. The single-threaded unit tests below are Miri-clean, and the
//! cross-thread protocol is exercised by the steal storms in
//! `tests/cl_deque.rs`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Outcome of one steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// The top element was read and claimed.
    Data(T),
    /// Lost a race (another thief took the top, or the owner popped the
    /// last element); retrying immediately may succeed.
    Retry,
    /// The admission filter refused the top element; it stays in place.
    Denied,
}

/// One circular buffer generation.
struct Buffer<T> {
    /// Power-of-two slot count.
    cap: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Self { cap, slots })
    }

    /// Write `v` at logical index `i`. SAFETY: owner-only; the slot must
    /// not hold a live value (indices in `[top, bottom)` are live).
    unsafe fn write(&self, i: isize, v: T) {
        let slot = &self.slots[(i as usize) & (self.cap - 1)];
        (*slot.get()).write(v);
    }

    /// Read the value at logical index `i`. SAFETY: the caller must
    /// either own the index (owner pop) or validate the read with a
    /// successful CAS on `top` before using it (thief), forgetting the
    /// value otherwise.
    unsafe fn read(&self, i: isize) -> T {
        let slot = &self.slots[(i as usize) & (self.cap - 1)];
        (*slot.get()).assume_init_read()
    }
}

/// The lock-free Chase–Lev deque (see module docs).
///
/// The owner calls [`push`](ClDeque::push) / [`pop`](ClDeque::pop) from
/// one thread; any number of thieves call [`steal`](ClDeque::steal) /
/// [`steal_with`](ClDeque::steal_with) concurrently.
pub struct ClDeque<T> {
    /// Next index the owner pushes at (owner-written, thief-read).
    bottom: AtomicIsize,
    /// Next index thieves steal at (CASed by thieves and the owner's
    /// last-element pop).
    top: AtomicIsize,
    /// Current buffer generation.
    buffer: AtomicPtr<Buffer<T>>,
    /// Replaced generations, freed on drop (see module docs).
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the protocol moves each element from exactly one thread to
// exactly one thread; T crossing is what requires Send. The deque itself
// is shared by reference across workers.
unsafe impl<T: Send> Send for ClDeque<T> {}
unsafe impl<T: Send> Sync for ClDeque<T> {}

impl<T> Default for ClDeque<T> {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl<T> ClDeque<T> {
    /// Initial slot count of [`ClDeque::default`] — enough that the
    /// fork-join kernels rarely grow, small enough that per-worker
    /// deques stay cache-resident.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// An empty deque whose first buffer holds `cap` slots (rounded up
    /// to a power of two, minimum 2).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        Self {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Approximate number of queued elements (exact when quiescent;
    /// a racing snapshot otherwise). Diagnostic only.
    pub fn len_hint(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Current buffer capacity (owner/diagnostic).
    pub fn capacity(&self) -> usize {
        unsafe { &*self.buffer.load(Ordering::Acquire) }.cap
    }

    /// Owner: publish `v` at the bottom. Lock- and wait-free (growth
    /// allocates, but never blocks on another thread).
    pub fn push(&self, v: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        if b - t >= unsafe { &*buf }.cap as isize {
            buf = self.grow(b, t, buf);
        }
        // SAFETY: index b is not live; only the owner writes slots.
        unsafe { (*buf).write(b, v) };
        // Publish the element before the index: a thief that observes
        // bottom = b + 1 must also observe the slot write.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner: take the bottom element (LIFO). The only synchronizing
    /// case is the last-element conflict with a thief, resolved by the
    /// `SeqCst` fence + CAS on `top`.
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // The owner's bottom decrement must be globally visible before
        // it reads top, or a concurrent thief and the owner could both
        // take the last element.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t < b {
            // More than one element: the bottom one is ours outright.
            // SAFETY: index b is live and now below every thief's reach.
            return Some(unsafe { (*buf).read(b) });
        }
        if t == b {
            // Last element: race the thieves for it via top.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if won {
                // SAFETY: the CAS excluded every thief from index b.
                return Some(unsafe { (*buf).read(b) });
            }
            return None;
        }
        // Already empty: restore bottom.
        self.bottom.store(b + 1, Ordering::Relaxed);
        None
    }

    /// Thief: claim the top element (FIFO relative to the owner's
    /// pushes).
    pub fn steal(&self) -> Steal<T> {
        self.steal_with(|_| true)
    }

    /// Thief: read the top element, consult `admit`, and only claim it
    /// (CAS on `top`) if admitted. A denied element is left in place and
    /// [`Steal::Denied`] is returned — the §5.3 size-floor hook.
    pub fn steal_with(&self, admit: impl FnOnce(&T) -> bool) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Order the top read before the bottom read: observing a stale
        // (small) bottom after a fresh top can only under-report, never
        // steal a popped element.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.buffer.load(Ordering::Acquire);
        // SAFETY: the raw copy is only *observed* (by `admit` or the
        // caller) after validation. The owner can reuse physical slot
        // `t & mask` of this buffer only once `top` has advanced past
        // `t` (a push at index `b ≡ t (mod cap)` requires the owner to
        // have read `top > t`, else it would have grown into a fresh
        // buffer), and `top` is monotonic — so the seqlock-style
        // re-check below proves the slot was stable for the whole read
        // before anything looks at the bytes. A copy that fails
        // validation is forgotten unobserved.
        let v = unsafe { (*buf).read(t) };
        if self.top.load(Ordering::Acquire) != t {
            // Raced: another thief claimed index t (and the owner may
            // have been overwriting the slot under our read).
            std::mem::forget(v);
            return Steal::Retry;
        }
        if !admit(&v) {
            std::mem::forget(v);
            return Steal::Denied;
        }
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Data(v)
        } else {
            std::mem::forget(v);
            Steal::Retry
        }
    }

    /// Thief: claim up to `max` elements from the top in **one claiming
    /// sequence** — a single probe (one `top`/`bottom`/buffer snapshot,
    /// one fence) followed by back-to-back claims, appending the stolen
    /// elements to `out` in deque (FIFO) order.
    ///
    /// At most **half** the observed queue is taken (rounded up, always
    /// at least one), so a victim with work in flight keeps the majority
    /// of its deque. `admit` is consulted per element in claim order; the
    /// first denial ends the batch with the denied element left in
    /// place — since fork depth grows toward the bottom, the admitted
    /// prefix is exactly the shallowest (§5.3-admissible) run.
    ///
    /// Why each claim still CASes `top` once: the owner pops the
    /// *bottom* without touching `top` (except on the last element), so
    /// a single range-claim `top: t → t+k` could double-take an element
    /// a concurrent owner pop already returned. Claiming one index at a
    /// time — re-reading `bottom` between claims, exactly the
    /// single-steal protocol replayed — keeps exactly-once delivery.
    /// The batch still amortizes what actually dominates small-task
    /// steal cost: the probe scan, the fence pair, the failed-attempt
    /// backoff, and the per-steal bookkeeping (one trace commit, one
    /// counter update for the whole batch) — and after the first
    /// successful claim the `top` line is held exclusive, so the
    /// follow-up CASes are local.
    ///
    /// Returns [`Steal::Data`]`(k)` with `k >= 1` elements appended,
    /// [`Steal::Empty`] / [`Steal::Denied`] / [`Steal::Retry`] (nothing
    /// appended) otherwise.
    pub fn steal_batch_with(
        &self,
        max: usize,
        mut admit: impl FnMut(&T) -> bool,
        out: &mut Vec<T>,
    ) -> Steal<usize> {
        let mut t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        let avail = b - t;
        if avail <= 0 {
            return Steal::Empty;
        }
        // Ceil-half of what we saw, bounded by the caller's cap.
        let want = (((avail + 1) / 2) as usize).min(max.max(1));
        let buf = self.buffer.load(Ordering::Acquire);
        let mut taken = 0usize;
        while taken < want {
            if taken > 0 {
                // The owner pops the bottom without moving `top`, so
                // only a fresh `bottom` read can show the deque drained
                // beneath the rest of our planned batch.
                fence(Ordering::SeqCst);
                if t >= self.bottom.load(Ordering::Acquire) {
                    break;
                }
            }
            // SAFETY: identical to `steal_with` — the copy is observed
            // only after the `top == t` re-check proves the slot was
            // stable for the whole read (a push overwriting logical
            // index `t` in this buffer generation requires the owner to
            // have seen `top > t` first, and growth redirects pushes to
            // a fresh buffer while this one is retired un-freed), and a
            // copy failing any validation is forgotten unobserved.
            let v = unsafe { (*buf).read(t) };
            if self.top.load(Ordering::Acquire) != t {
                std::mem::forget(v);
                break;
            }
            if !admit(&v) {
                std::mem::forget(v);
                if taken == 0 {
                    return Steal::Denied;
                }
                break;
            }
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::mem::forget(v);
                break;
            }
            out.push(v);
            taken += 1;
            t += 1;
        }
        if taken == 0 {
            // There was data, but we lost every race for it.
            Steal::Retry
        } else {
            Steal::Data(taken)
        }
    }

    /// Owner: replace the full buffer with one of twice the capacity,
    /// copying the live window `[t, b)`, and retire the old generation.
    fn grow(&self, b: isize, t: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let old_ref = unsafe { &*old };
        let new = Buffer::<T>::new(old_ref.cap * 2);
        for i in t..b {
            // SAFETY: live slots are moved as raw copies; the old buffer
            // is retired un-dropped, so no value is duplicated or lost.
            unsafe {
                let v = std::ptr::read(old_ref.slots[(i as usize) & (old_ref.cap - 1)].get());
                std::ptr::write(new.slots[(i as usize) & (new.cap - 1)].get(), v);
            }
        }
        let new = Box::into_raw(new);
        self.buffer.store(new, Ordering::Release);
        self.retired.lock().expect("retire list poisoned").push(old);
        new
    }
}

impl<T> Drop for ClDeque<T> {
    fn drop(&mut self) {
        // &mut self: no concurrent owner or thieves. Drop live elements,
        // then free the current and retired buffers (retired slots hold
        // only already-moved copies — never dropped).
        let b = *self.bottom.get_mut();
        let t = *self.top.get_mut();
        let buf = *self.buffer.get_mut();
        for i in t..b {
            unsafe {
                drop((*buf).read(i));
            }
        }
        unsafe {
            drop(Box::from_raw(buf));
        }
        for p in self
            .retired
            .get_mut()
            .expect("retire list poisoned")
            .drain(..)
        {
            unsafe {
                drop(Box::from_raw(p));
            }
        }
    }
}

/// Single-threaded unit tests: every path of the protocol that does not
/// need a second thread, kept Miri-clean (CI runs
/// `cargo miri test -p hbp-sched --lib cl_deque::`).
#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn owner_push_pop_is_lifo() {
        let d = ClDeque::with_capacity(8);
        for i in 0..5u64 {
            d.push(i);
        }
        for i in (0..5u64).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None, "pop on empty stays empty");
    }

    #[test]
    fn steal_takes_the_top_fifo() {
        let d = ClDeque::with_capacity(8);
        for i in 0..4u64 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Data(0));
        assert_eq!(d.steal(), Steal::Data(1));
        assert_eq!(d.pop(), Some(3), "owner still pops the bottom");
        assert_eq!(d.steal(), Steal::Data(2));
        assert_eq!(d.steal(), Steal::Empty);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_steal_tracks_a_model() {
        use std::collections::VecDeque;
        let d = ClDeque::with_capacity(4);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = 0u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match x % 3 {
                0 => {
                    d.push(next);
                    model.push_back(next);
                    next += 1;
                }
                1 => assert_eq!(d.pop(), model.pop_back()),
                _ => {
                    let want = model.pop_front();
                    match d.steal() {
                        Steal::Data(v) => assert_eq!(Some(v), want),
                        Steal::Empty => assert_eq!(want, None),
                        s => panic!("single-threaded steal cannot be {s:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn grows_past_the_initial_capacity_and_keeps_order() {
        let d = ClDeque::with_capacity(2);
        let n = 1000u64;
        for i in 0..n {
            d.push(i);
        }
        assert!(d.capacity() >= n as usize, "buffer grew");
        assert_eq!(d.len_hint(), n as usize);
        // Steal half from the top (0..), pop the rest from the bottom.
        for i in 0..n / 2 {
            assert_eq!(d.steal(), Steal::Data(i));
        }
        for i in (n / 2..n).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.len_hint(), 0);
    }

    #[test]
    fn growth_with_wrapped_window_preserves_the_live_elements() {
        // Advance top so the live window wraps the circular buffer, then
        // force a growth: the copy must be window-relative, not raw.
        let d = ClDeque::with_capacity(4);
        for i in 0..4u64 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Data(0));
        assert_eq!(d.steal(), Steal::Data(1));
        for i in 4..9u64 {
            d.push(i); // crosses the old capacity → grow with offset top
        }
        for i in 2..9u64 {
            assert_eq!(d.steal(), Steal::Data(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_with_denied_leaves_the_element_in_place() {
        let d = ClDeque::with_capacity(4);
        d.push(10u64);
        d.push(20u64);
        assert_eq!(d.steal_with(|&v| v >= 15), Steal::Denied);
        assert_eq!(d.len_hint(), 2, "denied element not consumed");
        assert_eq!(d.steal_with(|&v| v >= 5), Steal::Data(10));
        assert_eq!(d.steal_with(|&v| v >= 25), Steal::Denied);
        assert_eq!(d.pop(), Some(20), "owner is never filtered");
    }

    #[test]
    fn steal_batch_takes_ceil_half_in_fifo_order() {
        let d = ClDeque::with_capacity(16);
        for i in 0..8u64 {
            d.push(i);
        }
        let mut out = Vec::new();
        // 8 queued → ceil-half is 4, under a generous cap.
        assert_eq!(d.steal_batch_with(64, |_| true, &mut out), Steal::Data(4));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(d.len_hint(), 4);
        // 4 left → ceil-half is 2, but the cap binds first.
        out.clear();
        assert_eq!(d.steal_batch_with(1, |_| true, &mut out), Steal::Data(1));
        assert_eq!(out, vec![4]);
        // The owner still pops its (LIFO) bottom underneath the batches.
        assert_eq!(d.pop(), Some(7));
        out.clear();
        assert_eq!(d.steal_batch_with(64, |_| true, &mut out), Steal::Data(1));
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn steal_batch_on_one_element_and_empty() {
        let d = ClDeque::with_capacity(4);
        let mut out: Vec<u64> = Vec::new();
        assert_eq!(d.steal_batch_with(8, |_| true, &mut out), Steal::Empty);
        d.push(42);
        // One element: ceil-half of 1 is 1 — a batch never observes an
        // element it cannot take.
        assert_eq!(d.steal_batch_with(8, |_| true, &mut out), Steal::Data(1));
        assert_eq!(out, vec![42]);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_batch_admission_stops_at_the_first_denial() {
        let d = ClDeque::with_capacity(16);
        for i in 0..8u64 {
            d.push(i);
        }
        let mut out = Vec::new();
        // Admit only values < 2: the batch claims the admitted prefix
        // (deque order 0, 1) and leaves the denied element in place.
        assert_eq!(
            d.steal_batch_with(8, |&v| v < 2, &mut out),
            Steal::Data(2),
            "admitted prefix claimed"
        );
        assert_eq!(out, vec![0, 1]);
        assert_eq!(d.len_hint(), 6);
        // First element denied → Denied, nothing claimed.
        out.clear();
        assert_eq!(d.steal_batch_with(8, |&v| v > 100, &mut out), Steal::Denied);
        assert!(out.is_empty());
        assert_eq!(d.len_hint(), 6);
    }

    #[test]
    fn steal_batch_with_growth_and_wrapped_window() {
        // Same geometry as the single-steal growth test: the live
        // window wraps the circular buffer before growing.
        let d = ClDeque::with_capacity(4);
        for i in 0..4u64 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Data(0));
        assert_eq!(d.steal(), Steal::Data(1));
        for i in 4..9u64 {
            d.push(i);
        }
        let mut out = Vec::new();
        // 7 live (2..=8) → ceil-half is 4.
        assert_eq!(d.steal_batch_with(64, |_| true, &mut out), Steal::Data(4));
        assert_eq!(out, vec![2, 3, 4, 5]);
        for i in (6..9u64).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_batch_drop_semantics_no_leak() {
        let live = Arc::new(AtomicUsize::new(0));
        {
            let d = ClDeque::with_capacity(2);
            for _ in 0..20 {
                live.fetch_add(1, Ordering::SeqCst);
                d.push(Probe(Arc::clone(&live)));
            }
            let mut out = Vec::new();
            assert_eq!(d.steal_batch_with(64, |_| true, &mut out), Steal::Data(10));
            drop(out); // stolen probes dropped by the thief
                       // 10 probes still queued when the deque drops.
        }
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "every element dropped exactly once across batch + deque drop"
        );
    }

    /// Drop-count probe: decrements on drop, so leaks and double-drops
    /// both show up in the final count.
    struct Probe(Arc<AtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn drop_semantics_no_leak_no_double_drop() {
        let live = Arc::new(AtomicUsize::new(0));
        {
            let d = ClDeque::with_capacity(2);
            for _ in 0..37 {
                live.fetch_add(1, Ordering::SeqCst);
                d.push(Probe(Arc::clone(&live))); // forces several growths
            }
            for _ in 0..10 {
                drop(d.pop());
            }
            let Steal::Data(p) = d.steal() else {
                panic!("non-empty deque must yield a steal");
            };
            drop(p);
            // 26 elements still queued when the deque drops.
        }
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "every element dropped exactly once (incl. retired buffers)"
        );
    }

    #[test]
    fn empty_deque_steals_report_empty() {
        let d: ClDeque<u64> = ClDeque::default();
        assert_eq!(d.steal(), Steal::Empty);
        assert_eq!(d.steal_with(|_| true), Steal::Empty);
        assert_eq!(d.len_hint(), 0);
        assert_eq!(d.capacity(), ClDeque::<u64>::DEFAULT_CAPACITY);
    }

    #[test]
    fn retiring_owner_races_a_thief_without_loss_or_duplication() {
        // The elastic-pool retirement protocol (runtime::thief_main), in
        // miniature: the owner stops treating the deque as its own,
        // yields so a concurrent thief can drain it through the normal
        // top-CAS path, then claims the leftovers itself — here the
        // thief's admission filter makes the second half of the ids
        // thief-invisible, the same way the cross-domain depth floor
        // does in the runtime. Exactly-once must survive the owner's
        // pop-bottom racing the thief's steal-top. Small on purpose:
        // CI runs this module under Miri.
        use std::sync::atomic::AtomicU64;
        const N: u64 = 128;
        let d = Arc::new(ClDeque::with_capacity(8));
        for i in 1..=N {
            d.push(i);
        }
        let claimed_sum = Arc::new(AtomicU64::new(0));
        let claimed_n = Arc::new(AtomicUsize::new(0));
        let (td, ts, tn) = (
            Arc::clone(&d),
            Arc::clone(&claimed_sum),
            Arc::clone(&claimed_n),
        );
        let thief = std::thread::spawn(move || {
            let mut denied = 0u32;
            loop {
                match td.steal_with(|&v| v <= N / 2) {
                    Steal::Data(v) => {
                        denied = 0;
                        ts.fetch_add(v, Ordering::Relaxed);
                        tn.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => {}
                    Steal::Denied => {
                        denied += 1;
                        if denied > 8 {
                            break; // admission wall: leave it to the owner
                        }
                        std::thread::yield_now();
                    }
                    Steal::Empty => break,
                }
            }
        });
        // Retirement: a bounded yield window for the thief, then the
        // owner self-executes whatever is left (the RETIRE_DRAIN_SPINS
        // path — admission-denied tasks can never strand here).
        for _ in 0..32 {
            if d.len_hint() == 0 {
                break;
            }
            std::thread::yield_now();
        }
        while let Some(v) = d.pop() {
            claimed_sum.fetch_add(v, Ordering::Relaxed);
            claimed_n.fetch_add(1, Ordering::Relaxed);
        }
        thief.join().unwrap();
        assert_eq!(
            claimed_n.load(Ordering::Relaxed),
            N as usize,
            "every task claimed exactly once across thief + retiring owner"
        );
        assert_eq!(
            claimed_sum.load(Ordering::Relaxed),
            N * (N + 1) / 2,
            "the claim multiset is exactly 1..=N — no loss, no duplication"
        );
    }
}
