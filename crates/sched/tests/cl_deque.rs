//! Cross-thread stress tests of the lock-free Chase-Lev deque: steal
//! storms, growth under contention, and proptest linearizability-style
//! accounting — every pushed item is popped or stolen **exactly once**.
//!
//! (The single-threaded protocol paths live as Miri-clean unit tests in
//! `src/cl_deque.rs`; these tests exercise the actual cross-thread
//! races, which Miri's single-threaded scope cannot.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hbp_sched::cl_deque::{ClDeque, Steal};
use proptest::prelude::*;

/// One steal-storm round: the owner pushes `n` items (popping a few on
/// the way, per `pop_every`), `thieves` threads hammer `steal` until the
/// deque drains, and every item must surface exactly once.
///
/// Returns (owner-consumed, per-thief-consumed) counts for assertions
/// beyond the multiset check.
fn storm(n: u64, thieves: usize, initial_cap: usize, pop_every: u64) -> (usize, Vec<usize>) {
    let deque: Arc<ClDeque<u64>> = Arc::new(ClDeque::with_capacity(initial_cap));
    let done = Arc::new(AtomicBool::new(false));
    let mut seen = vec![0u32; n as usize];

    let (owner_got, thief_got) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..thieves)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut got: Vec<u64> = Vec::new();
                    loop {
                        match deque.steal() {
                            Steal::Data(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty | Steal::Denied => {
                                if done.load(Ordering::Acquire) {
                                    // Drain once more: the owner may have
                                    // pushed between our probe and the flag.
                                    match deque.steal() {
                                        Steal::Data(v) => got.push(v),
                                        Steal::Retry => continue,
                                        _ => break,
                                    }
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut owner: Vec<u64> = Vec::new();
        for i in 0..n {
            deque.push(i);
            if pop_every > 0 && i % pop_every == pop_every - 1 {
                if let Some(v) = deque.pop() {
                    owner.push(v);
                }
            }
        }
        // Owner drains what the thieves left behind.
        while let Some(v) = deque.pop() {
            owner.push(v);
        }
        done.store(true, Ordering::Release);
        let thief_got: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (owner, thief_got)
    });

    for &v in owner_got.iter().chain(thief_got.iter().flatten()) {
        seen[v as usize] += 1;
    }
    let missing: Vec<u64> = (0..n).filter(|&i| seen[i as usize] == 0).collect();
    let duped: Vec<u64> = (0..n).filter(|&i| seen[i as usize] > 1).collect();
    assert!(
        missing.is_empty() && duped.is_empty(),
        "items lost {missing:?} / duplicated {duped:?} (n={n}, thieves={thieves}, cap={initial_cap})"
    );
    (owner_got.len(), thief_got.iter().map(Vec::len).collect())
}

#[test]
fn steal_storm_every_item_exactly_once() {
    let (owner, thieves) = storm(100_000, 3, 64, 0);
    assert_eq!(owner + thieves.iter().sum::<usize>(), 100_000);
}

#[test]
fn steal_storm_with_owner_pops_interleaved() {
    storm(50_000, 4, 64, 7);
}

#[test]
fn steal_storm_under_forced_growth() {
    // Initial capacity 2: the owner grows the buffer dozens of times
    // while thieves race on retired generations.
    storm(20_000, 3, 2, 0);
}

#[test]
fn steal_storm_single_thief_tiny() {
    storm(1_000, 1, 2, 3);
}

#[test]
fn concurrent_filtered_steals_never_take_denied_items() {
    // Thieves only admit even values; odd values must all remain for
    // the owner. Exercises the read-admit-CAS window under contention.
    let n = 20_000u64;
    let deque: Arc<ClDeque<u64>> = Arc::new(ClDeque::with_capacity(8));
    let done = Arc::new(AtomicBool::new(false));
    let (owner_got, thief_got) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut got: Vec<u64> = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        match deque.steal_with(|v| v % 2 == 0) {
                            Steal::Data(v) => got.push(v),
                            _ => std::hint::spin_loop(),
                        }
                    }
                    got
                })
            })
            .collect();
        let mut owner: Vec<u64> = Vec::new();
        for i in 0..n {
            deque.push(i);
        }
        while let Some(v) = deque.pop() {
            owner.push(v);
        }
        done.store(true, Ordering::Release);
        let thief_got: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (owner, thief_got)
    });
    for v in thief_got.iter().flatten() {
        assert_eq!(v % 2, 0, "thieves must only ever receive admitted items");
    }
    let total = owner_got.len() + thief_got.iter().map(Vec::len).sum::<usize>();
    assert_eq!(total, n as usize, "every item consumed exactly once");
    let odd_to_owner = owner_got.iter().filter(|&&v| v % 2 == 1).count();
    assert_eq!(
        odd_to_owner,
        (n / 2) as usize,
        "all odd items reach the owner"
    );
}

/// Batched-steal storm: like `storm`, but thieves call
/// `steal_batch_with(max, ..)` and may carry several items home per
/// claiming sequence. Exactly-once must survive batches racing each
/// other, the owner's bottom pops, and buffer growth mid-batch.
///
/// Returns (owner-consumed, per-thief batch sizes) so callers can also
/// assert batch geometry (never more than `max`, never empty on Data).
fn batch_storm(
    n: u64,
    thieves: usize,
    max: usize,
    initial_cap: usize,
    pop_every: u64,
) -> (usize, Vec<Vec<usize>>) {
    let deque: Arc<ClDeque<u64>> = Arc::new(ClDeque::with_capacity(initial_cap));
    let done = Arc::new(AtomicBool::new(false));
    let mut seen = vec![0u32; n as usize];

    let (owner_got, thief_got) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..thieves)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut got: Vec<u64> = Vec::new();
                    let mut batches: Vec<usize> = Vec::new();
                    let mut buf: Vec<u64> = Vec::new();
                    loop {
                        match deque.steal_batch_with(max, |_| true, &mut buf) {
                            Steal::Data(k) => {
                                assert_eq!(k, buf.len(), "count matches delivered items");
                                assert!(k >= 1 && k <= max, "batch size within [1, max]");
                                batches.push(k);
                                got.append(&mut buf);
                            }
                            Steal::Retry => {}
                            Steal::Empty | Steal::Denied => {
                                assert!(buf.is_empty(), "no items delivered without Data");
                                if done.load(Ordering::Acquire) {
                                    match deque.steal_batch_with(max, |_| true, &mut buf) {
                                        Steal::Data(k) => {
                                            batches.push(k);
                                            got.append(&mut buf);
                                        }
                                        Steal::Retry => continue,
                                        _ => break,
                                    }
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                    (got, batches)
                })
            })
            .collect();

        let mut owner: Vec<u64> = Vec::new();
        for i in 0..n {
            deque.push(i);
            if pop_every > 0 && i % pop_every == pop_every - 1 {
                if let Some(v) = deque.pop() {
                    owner.push(v);
                }
            }
        }
        while let Some(v) = deque.pop() {
            owner.push(v);
        }
        done.store(true, Ordering::Release);
        let joined: Vec<(Vec<u64>, Vec<usize>)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        (owner, joined)
    });

    for &v in owner_got
        .iter()
        .chain(thief_got.iter().flat_map(|(g, _)| g))
    {
        seen[v as usize] += 1;
    }
    let missing: Vec<u64> = (0..n).filter(|&i| seen[i as usize] == 0).collect();
    let duped: Vec<u64> = (0..n).filter(|&i| seen[i as usize] > 1).collect();
    assert!(
        missing.is_empty() && duped.is_empty(),
        "items lost {missing:?} / duplicated {duped:?} \
         (n={n}, thieves={thieves}, max={max}, cap={initial_cap})"
    );
    (
        owner_got.len(),
        thief_got.into_iter().map(|(_, b)| b).collect(),
    )
}

#[test]
fn batched_steal_storm_every_item_exactly_once() {
    let (owner, batches) = batch_storm(100_000, 3, 8, 64, 0);
    let stolen: usize = batches.iter().flatten().sum();
    assert_eq!(owner + stolen, 100_000);
}

#[test]
fn batched_steal_storm_with_owner_pops_and_growth() {
    // Capacity 2 forces dozens of grows while batches are mid-claim;
    // owner pops race the bottom end of the same windows.
    batch_storm(30_000, 4, 8, 2, 5);
}

#[test]
fn batched_storm_actually_batches() {
    // One thief, no owner pops after the fill: with the deque pre-loaded
    // and max=8, at least one multi-item batch must occur — guards
    // against a regression where steal_batch_with degenerates to
    // single-steal (the exactly-once tests above would still pass).
    let (_, batches) = batch_storm(50_000, 1, 8, 64, 0);
    assert!(
        batches[0].iter().any(|&k| k > 1),
        "50k items / 1 thief / max=8 never produced a multi-item batch: {:?}",
        &batches[0][..batches[0].len().min(32)]
    );
}

#[test]
fn batched_steals_respect_admission_prefix() {
    // Thieves admit only values below a horizon; everything else must
    // fall through to the owner, batches or not.
    let n = 20_000u64;
    let horizon = 10_000u64;
    let deque: Arc<ClDeque<u64>> = Arc::new(ClDeque::with_capacity(8));
    let done = Arc::new(AtomicBool::new(false));
    let (owner_got, thief_got) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut got: Vec<u64> = Vec::new();
                    let mut buf: Vec<u64> = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        match deque.steal_batch_with(6, |&v| v < horizon, &mut buf) {
                            Steal::Data(_) => got.append(&mut buf),
                            _ => std::hint::spin_loop(),
                        }
                    }
                    got
                })
            })
            .collect();
        let mut owner: Vec<u64> = Vec::new();
        for i in 0..n {
            deque.push(i);
        }
        while let Some(v) = deque.pop() {
            owner.push(v);
        }
        done.store(true, Ordering::Release);
        let thief_got: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (owner, thief_got)
    });
    for v in thief_got.iter().flatten() {
        assert!(*v < horizon, "batched thieves only receive admitted items");
    }
    let total = owner_got.len() + thief_got.iter().map(Vec::len).sum::<usize>();
    assert_eq!(total, n as usize, "every item consumed exactly once");
    let beyond_to_owner = owner_got.iter().filter(|&&v| v >= horizon).count();
    assert_eq!(
        beyond_to_owner,
        (n - horizon) as usize,
        "all non-admitted items reach the owner"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linearizability-style accounting under randomized geometry: for
    /// any (n, thieves, capacity, pop cadence), every pushed job is
    /// popped or stolen exactly once — no loss, no duplication, across
    /// growth and the last-element CAS races.
    #[test]
    fn storm_accounting_holds_for_any_geometry(
        n in 1u64..4000,
        thieves in 1usize..5,
        cap_pow in 1u32..7,
        pop_every in 0u64..9,
    ) {
        storm(n, thieves, 1usize << cap_pow, pop_every);
    }

    /// Same accounting with batched thieves over randomized batch caps:
    /// exactly-once holds for any (n, thieves, max, capacity, cadence),
    /// including max=1 (degenerate single-steal) and caps larger than
    /// the deque ever holds.
    #[test]
    fn batched_storm_accounting_holds_for_any_geometry(
        n in 1u64..4000,
        thieves in 1usize..5,
        max in 1usize..13,
        cap_pow in 1u32..7,
        pop_every in 0u64..9,
    ) {
        batch_storm(n, thieves, max, 1usize << cap_pow, pop_every);
    }
}
