//! Steal-locality classification in the metrics registry.
//!
//! Lives in its own integration-test binary on purpose: the registry is
//! process-global, and the single test below resets it between phases —
//! sharing a process with unrelated metrics-publishing tests would race
//! the counters.

use hbp_sched::native::{join, NativeConfig, NativePool};
use hbp_sched::{DomainSpec, Policy};

/// Join-based sum with busy leaves, so idle workers actually steal.
fn spin_sum(xs: &[u64], leaf: usize) -> u64 {
    if xs.len() <= leaf {
        let mut acc = 0u64;
        for _ in 0..200 {
            for &x in xs {
                acc = acc.wrapping_add(x).rotate_left(7) ^ x;
            }
        }
        let _ = std::hint::black_box(acc);
        return xs.iter().sum();
    }
    let (l, r) = xs.split_at(xs.len() / 2);
    let (a, b) = join(|| spin_sum(l, leaf), || spin_sum(r, leaf));
    a + b
}

/// Run one pool under `domains`, returning the registry's
/// (committed, local, cross) totals for the run. Retries a few times
/// when `want_steals` — stealing needs the OS to co-schedule workers,
/// which is overwhelmingly likely per attempt but not certain.
fn locality_of(domains: DomainSpec, cross_depth: u32, want_steals: bool) -> (u64, u64, u64) {
    let m = hbp_metrics::global();
    m.set_enabled(true);
    let xs: Vec<u64> = (0..1 << 14).collect();
    for attempt in 0..5 {
        m.reset();
        let cfg = NativeConfig {
            workers: 4,
            seed: 41 + attempt,
            policy: Policy::Rws { seed: 3 },
            domains,
            cross_depth,
            ..NativeConfig::default()
        };
        let (got, _) = NativePool::run(cfg, || spin_sum(&xs, 64));
        assert_eq!(got, xs.iter().sum::<u64>(), "{domains:?}");
        let snap = m.snapshot();
        let (committed, _) = snap.total_steals();
        let (local, cross) = snap.total_steal_locality();
        if committed > 0 || !want_steals {
            return (committed, local, cross);
        }
    }
    panic!("{domains:?}: no steals committed across 5 attempts");
}

#[test]
fn locality_counters_partition_committed_steals() {
    // One domain: every steal is local by definition, none cross.
    let (committed, local, cross) = locality_of(DomainSpec::Count(1), 3, true);
    assert_eq!(cross, 0, "one domain can have no cross-domain steal");
    assert_eq!(local, committed, "every committed steal classifies local");

    // Sharded pool: the two counters partition the committed total.
    let (committed, local, cross) = locality_of(DomainSpec::Count(2), 3, true);
    assert_eq!(
        local + cross,
        committed,
        "Count(2): locality classification covers every committed steal"
    );

    // Tag labels classify locality while the stealing stays flat — the
    // partition law is identical (this is the A/B control arm).
    let (committed, local, cross) = locality_of(DomainSpec::Tag(2), 3, true);
    assert_eq!(
        local + cross,
        committed,
        "Tag(2): labels classify without sharding"
    );
}
