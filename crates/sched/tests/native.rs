//! Behavioural tests of the native (real-threads) execution backend.

use hbp_sched::native::{join, NativeConfig, NativePool};

/// Recursive join-based sum with busy leaves, so there is enough work for
/// idle workers to steal even under adversarial OS scheduling.
fn spin_sum(xs: &[u64], leaf: usize) -> u64 {
    if xs.len() <= leaf {
        // ~tens of microseconds of real work per leaf.
        let mut acc = 0u64;
        for _ in 0..200 {
            for &x in xs {
                acc = acc.wrapping_add(x).rotate_left(7) ^ x;
            }
        }
        let _ = std::hint::black_box(acc);
        return xs.iter().sum();
    }
    let (l, r) = xs.split_at(xs.len() / 2);
    let (a, b) = join(|| spin_sum(l, leaf), || spin_sum(r, leaf));
    a + b
}

#[test]
fn join_outside_pool_is_sequential_and_correct() {
    let (a, b) = join(|| 21 * 2, || "ok");
    assert_eq!((a, b), (42, "ok"));
}

#[test]
fn single_worker_pool_computes_without_steals() {
    let xs: Vec<u64> = (0..4096).collect();
    let want: u64 = xs.iter().sum();
    let cfg = NativeConfig {
        workers: 1,
        seed: 1,
        ..NativeConfig::default()
    };
    let (got, r) = NativePool::run(cfg, || spin_sum(&xs, 64));
    assert_eq!(got, want);
    assert_eq!(r.p, 1);
    assert_eq!(r.steals, 0, "one worker has nobody to steal from");
    assert!(r.work > 1, "root + inline branches are counted");
    assert!(r.busy[0] > 0);
    assert!(r.makespan >= r.busy[0]);
}

#[test]
fn multi_worker_pool_computes_steals_and_reports() {
    let xs: Vec<u64> = (0..1 << 15).collect();
    let want: u64 = xs.iter().sum();
    // Retry a few times: stealing is guaranteed by construction only if
    // the OS ever schedules a second worker while work is available,
    // which is overwhelmingly likely per attempt but not certain.
    let mut last = None;
    for attempt in 0..5 {
        let cfg = NativeConfig {
            workers: 4,
            seed: 7 + attempt,
            ..NativeConfig::default()
        };
        let (got, r) = NativePool::run(cfg, || spin_sum(&xs, 128));
        assert_eq!(got, want);
        assert_eq!(r.p, 4);
        assert_eq!(r.busy.len(), 4);
        // tasks = the root + one forked (right) branch per join = #leaves
        assert_eq!(r.work, ((1usize << 15) / 128) as u64);
        if r.steals > 0 && r.busy.iter().filter(|&&b| b > 0).count() >= 2 {
            return; // multi-worker execution observed
        }
        last = Some(r);
    }
    panic!("no stealing across 5 attempts: {last:?}");
}

#[test]
fn report_shape_matches_simulator_fields() {
    let cfg = NativeConfig {
        workers: 2,
        seed: 3,
        ..NativeConfig::default()
    };
    let (_, r) = NativePool::run(cfg, || {
        let (a, b) = join(|| 1u64, || 2u64);
        a + b
    });
    // Simulator-only metrics are zero/empty, per the module contract.
    assert_eq!(r.machine.total().accesses(), 0);
    assert_eq!(r.heap_block_misses + r.stack_block_misses, 0);
    assert!(r.steals_by_priority.is_empty());
    assert!(r.stolen_sizes.is_empty());
    assert_eq!(r.usurpations, 0);
    assert!(r.steal_attempts >= r.steals);
    assert_eq!(r.idle.len(), 2);
}

#[test]
fn panics_propagate_from_forked_branch() {
    let cfg = NativeConfig {
        workers: 2,
        seed: 9,
        ..NativeConfig::default()
    };
    let res = std::panic::catch_unwind(|| {
        NativePool::run(cfg, || {
            let (_, _) = join(|| 1, || panic!("branch boom"));
        })
    });
    assert!(res.is_err(), "branch panic must reach the caller");
}

/// Payload of a caught panic as text (`String` or `&str` payloads).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string payload>".to_string())
}

#[test]
fn kernel_panic_surfaces_worker_id_and_message() {
    let cfg = NativeConfig {
        workers: 3,
        seed: 11,
        ..NativeConfig::default()
    };
    let payload = std::panic::catch_unwind(|| {
        NativePool::run(cfg, || {
            // Enough forks that the panicking branch may be stolen; the
            // attribution must hold whichever worker executes it.
            let (_, _) = join(
                || spin_sum(&[1, 2, 3, 4], 1),
                || -> u64 { panic!("kernel boom {}", 6 * 7) },
            );
        })
    })
    .expect_err("kernel panic must reach the caller");
    let msg = panic_text(payload.as_ref());
    assert!(
        msg.contains("kernel panicked on worker "),
        "panic names the worker: {msg}"
    );
    assert!(
        msg.contains("kernel boom 42"),
        "panic keeps the original message: {msg}"
    );
}

#[test]
fn root_panic_is_attributed_to_worker_zero() {
    let cfg = NativeConfig {
        workers: 2,
        seed: 13,
        ..NativeConfig::default()
    };
    let payload = std::panic::catch_unwind(|| {
        NativePool::run(cfg, || -> u64 { panic!("root boom") });
    })
    .expect_err("root panic must reach the caller");
    let msg = panic_text(payload.as_ref());
    assert!(
        msg.contains("kernel panicked on worker 0: root boom"),
        "root runs on worker 0: {msg}"
    );
}

#[test]
fn pool_survives_panic_then_runs_again() {
    // The regression: a panicking kernel must not poison the pool
    // machinery for subsequent runs in the same process.
    let cfg = NativeConfig {
        workers: 4,
        seed: 17,
        ..NativeConfig::default()
    };
    let _ = std::panic::catch_unwind(|| {
        NativePool::run(cfg, || {
            let (_, _) = join(|| 1u64, || -> u64 { panic!("one-off boom") });
        })
    });
    let xs: Vec<u64> = (0..1 << 12).collect();
    let want: u64 = xs.iter().sum();
    let (got, r) = NativePool::run(cfg, || spin_sum(&xs, 64));
    assert_eq!(got, want, "a fresh pool after a panic works normally");
    assert!(r.makespan > 0);
}

#[test]
fn nested_joins_deeply_recurse_without_deadlock() {
    let xs: Vec<u64> = (0..1 << 12).collect();
    let want: u64 = xs.iter().sum();
    let cfg = NativeConfig {
        workers: 3,
        seed: 5,
        ..NativeConfig::default()
    };
    // leaf = 1: maximum join depth, thousands of tasks.
    let (got, _) = NativePool::run(cfg, || spin_sum(&xs, 1));
    assert_eq!(got, want);
}

// ---------------------------------------------------------------------
// Policy-driven runtime (PR 4): the same kernels must compute correctly
// under every policy facet, on both deque implementations, with
// deterministic task accounting.
// ---------------------------------------------------------------------

use hbp_sched::native::DequeKind;
use hbp_sched::Policy;

#[test]
fn every_policy_facet_computes_correctly_on_both_deques() {
    let xs: Vec<u64> = (0..1 << 13).collect();
    let want: u64 = xs.iter().sum();
    for policy in [
        Policy::Pws,
        Policy::Rws { seed: 5 },
        Policy::Bsp { prefix_levels: 3 },
    ] {
        for deque in [DequeKind::ChaseLev, DequeKind::Mutex] {
            let cfg = NativeConfig {
                workers: 4,
                seed: 21,
                policy,
                deque,
                ..NativeConfig::default()
            };
            let (got, r) = NativePool::run(cfg, || spin_sum(&xs, 64));
            assert_eq!(got, want, "{policy:?} on {deque:?}");
            // tasks = root + one forked branch per join = #leaves.
            assert_eq!(
                r.work,
                ((1usize << 13) / 64) as u64,
                "{policy:?} on {deque:?}"
            );
        }
    }
}

#[test]
fn work_accounting_is_deterministic_across_runs_and_deques() {
    let xs: Vec<u64> = (0..1 << 12).collect();
    let runs: Vec<u64> = [DequeKind::ChaseLev, DequeKind::ChaseLev, DequeKind::Mutex]
        .into_iter()
        .map(|deque| {
            let cfg = NativeConfig {
                workers: 3,
                seed: 9,
                policy: Policy::Rws { seed: 2 },
                deque,
                ..NativeConfig::default()
            };
            NativePool::run(cfg, || spin_sum(&xs, 32)).1.work
        })
        .collect();
    assert_eq!(runs[0], runs[1], "fixed seed ⇒ identical task count");
    assert_eq!(runs[0], runs[2], "task structure is deque-independent");
}

#[test]
fn bsp_facet_steals_only_shallow_branches() {
    use std::sync::Arc;
    let xs: Vec<u64> = (0..1 << 14).collect();
    let want: u64 = xs.iter().sum();
    let cfg = NativeConfig {
        workers: 4,
        seed: 3,
        policy: Policy::Bsp { prefix_levels: 2 },
        deque: DequeKind::ChaseLev,
        ..NativeConfig::default()
    };
    let sink = Arc::new(hbp_trace::TraceSink::new(4, hbp_trace::ClockDomain::WallNs));
    let (got, _) = NativePool::run_traced(cfg, Some(Arc::clone(&sink)), || spin_sum(&xs, 16));
    assert_eq!(got, want);
    let trace = sink.collect();
    // Map forked task id -> fork depth by replaying the fork events
    // (the root is depth 0; `right` of a fork whose parent has depth d
    // is d + 1 — but the native backend reports left == parent, so the
    // branch depth is bounded by the tree level; here we simply check
    // the policy's observable contract: every stolen task id was
    // *some* fork, and steals happened only while shallow work existed.
    let steals = trace.count(|k| matches!(k, hbp_trace::EventKind::StealCommit { .. }));
    let forks = trace.count(|k| matches!(k, hbp_trace::EventKind::Fork { .. }));
    assert!(forks > 0);
    // With 2 stealable levels the admissible published branches are the
    // single right-branch at depth 1 plus the two at depth 2; steals
    // cannot exceed those 3.
    assert!(steals <= 3, "BSP(2) admitted too many steals: {steals}");
}

#[test]
fn chase_lev_traced_run_is_panic_free_and_task_count_deterministic() {
    // Acceptance regression (ISSUE 4): traced Chase-Lev pool reports
    // are panic-free and deterministic in task count under a fixed seed.
    use std::sync::Arc;
    let xs: Vec<u64> = (0..1 << 12).collect();
    let counts: Vec<(u64, u64, u64)> = (0..2)
        .map(|_| {
            let cfg = NativeConfig {
                workers: 4,
                seed: 17,
                policy: Policy::Rws { seed: 1 },
                deque: DequeKind::ChaseLev,
                ..NativeConfig::default()
            };
            let sink = Arc::new(hbp_trace::TraceSink::new(4, hbp_trace::ClockDomain::WallNs));
            let (_, r) = NativePool::run_traced(cfg, Some(Arc::clone(&sink)), || spin_sum(&xs, 64));
            let trace = sink.collect();
            let begins = trace.count(|k| matches!(k, hbp_trace::EventKind::TaskBegin { .. }));
            let ends = trace.count(|k| matches!(k, hbp_trace::EventKind::TaskEnd { .. }));
            assert_eq!(begins, ends, "every begun task ends");
            assert_eq!(trace.segments().unclosed, 0);
            (r.work, begins, ends)
        })
        .collect();
    assert_eq!(counts[0], counts[1], "fixed seed ⇒ identical task counts");
    assert_eq!(counts[0].0, counts[0].1, "report work == traced tasks");
}

#[test]
#[allow(deprecated)]
fn deprecated_run_native_shims_still_match_the_pool_entry_points() {
    // The one place the 0.10 shims themselves are exercised: same
    // answer and same task accounting as the NativePool entry points
    // they forward to. Everything else in the tree must use the pool
    // API (CI builds with `-D deprecated`).
    let xs: Vec<u64> = (0..1 << 12).collect();
    let want: u64 = xs.iter().sum();
    let cfg = NativeConfig {
        workers: 3,
        seed: 11,
        ..NativeConfig::default()
    };
    let (shim, shim_r) = hbp_sched::native::run_native(cfg, || spin_sum(&xs, 64));
    let (pool, pool_r) = NativePool::run(cfg, || spin_sum(&xs, 64));
    assert_eq!(shim, want);
    assert_eq!(shim, pool);
    assert_eq!(shim_r.work, pool_r.work, "same task structure via the shim");
    let (traced, _) = hbp_sched::native::run_native_traced(cfg, None, || spin_sum(&xs, 64));
    assert_eq!(traced, want);
}
