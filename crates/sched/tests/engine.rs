//! Behavioural tests of the simulator across the module split: these ran
//! against the monolithic `engine.rs` before the subsystem refactor and
//! must keep passing unchanged against the layered core.

use hbp_machine::MachineConfig;
use hbp_model::{BuildConfig, Builder, Computation, GArray};
use hbp_sched::{run, run_sequential, Policy};

/// The in-order-layout BP sum used across tests (paper §3.3).
fn bp_sum(n: usize, block: u64, padded: bool) -> Computation {
    let data: Vec<u64> = (0..n as u64).collect();
    let mut cfg = BuildConfig::with_block(block);
    if padded {
        cfg = cfg.padded();
    }
    Builder::build(cfg, n as u64, |b| {
        let a = b.input(&data);
        let out = b.alloc::<u64>(2 * n - 1);
        fn slot(lo: usize, hi: usize) -> usize {
            if hi - lo == 1 {
                2 * lo
            } else {
                2 * (lo + (hi - lo) / 2) - 1
            }
        }
        fn rec(b: &mut Builder, a: GArray<u64>, out: GArray<u64>, lo: usize, hi: usize) {
            if hi - lo == 1 {
                let v = b.read(a, lo);
                b.write(out, slot(lo, hi), v);
                return;
            }
            let mid = lo + (hi - lo) / 2;
            b.fork(
                (mid - lo) as u64,
                (hi - mid) as u64,
                |b| rec(b, a, out, lo, mid),
                |b| rec(b, a, out, mid, hi),
            );
            let v1 = b.read(out, slot(lo, mid));
            let v2 = b.read(out, slot(mid, hi));
            b.write(out, slot(lo, hi), v1 + v2);
        }
        rec(b, a, out, 0, n);
    })
}

#[test]
fn sequential_equals_parallel_with_one_core() {
    let comp = bp_sum(256, 32, false);
    let cfg = MachineConfig::new(1, 1 << 10, 32);
    let r = run(&comp, cfg, Policy::Pws);
    assert_eq!(r.steals, 0);
    assert_eq!(r.work, comp.work());
    assert_eq!(r.block_misses(), 0, "single core cannot block-miss");
}

#[test]
fn pws_executes_all_work_on_many_cores() {
    let comp = bp_sum(512, 32, false);
    for p in [2, 4, 8] {
        let cfg = MachineConfig::new(p, 1 << 10, 32);
        let r = run(&comp, cfg, Policy::Pws);
        assert_eq!(r.work, comp.work(), "p={p}");
        assert!(r.steals > 0, "p={p} should steal");
    }
}

#[test]
fn pws_is_deterministic() {
    let comp = bp_sum(512, 32, false);
    let cfg = MachineConfig::new(4, 1 << 10, 32);
    let r1 = run(&comp, cfg, Policy::Pws);
    let r2 = run(&comp, cfg, Policy::Pws);
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.steals, r2.steals);
    assert_eq!(r1.machine.total(), r2.machine.total());
    assert_eq!(r1.stolen_sizes, r2.stolen_sizes);
}

#[test]
fn rws_is_seed_deterministic() {
    let comp = bp_sum(512, 32, false);
    let cfg = MachineConfig::new(4, 1 << 10, 32);
    let a = run(&comp, cfg, Policy::Rws { seed: 7 });
    let b = run(&comp, cfg, Policy::Rws { seed: 7 });
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.steals, b.steals);
}

#[test]
fn pws_steals_at_most_p_minus_1_per_priority() {
    let comp = bp_sum(1024, 32, false);
    for p in [2, 4, 8, 16] {
        let cfg = MachineConfig::new(p, 1 << 12, 32);
        let r = run(&comp, cfg, Policy::Pws);
        assert!(
            r.max_steals_per_priority() <= (p as u64 - 1),
            "p={p}: {} steals at one priority",
            r.max_steals_per_priority()
        );
    }
}

#[test]
fn pws_steals_biggest_tasks_first() {
    let comp = bp_sum(1024, 32, false);
    let cfg = MachineConfig::new(4, 1 << 12, 32);
    let r = run(&comp, cfg, Policy::Pws);
    // Under PWS the first steal must be the biggest available task
    // (priority order ≈ size order); sizes must be non-increasing
    // within a factor 2 band along the steal sequence prefix.
    let first = r.stolen_sizes[0];
    assert!(first >= 256, "first stolen task is large, got {first}");
}

#[test]
fn parallel_speedup_on_uniform_work() {
    let comp = bp_sum(2048, 32, false);
    let m = 1 << 12;
    let seq = run_sequential(&comp, MachineConfig::new(1, m, 32));
    let par = run(&comp, MachineConfig::new(8, m, 32), Policy::Pws);
    assert!(
        par.makespan * 3 < seq.makespan,
        "8 cores should be >3x faster: {} vs {}",
        par.makespan,
        seq.makespan
    );
}

#[test]
fn work_conservation() {
    let comp = bp_sum(512, 32, false);
    let cfg = MachineConfig::new(4, 1 << 10, 32);
    let r = run(&comp, cfg, Policy::Pws);
    // Busy time = accesses + miss stalls + fork bookkeeping.
    let t = r.machine.total();
    let forks = comp.forks().count() as u64;
    let expect = t.accesses() + t.misses() * cfg.miss_cost + forks;
    let busy: u64 = r.busy.iter().sum();
    assert_eq!(busy, expect);
}

#[test]
fn usurpations_occur_and_are_counted() {
    let comp = bp_sum(2048, 32, false);
    let cfg = MachineConfig::new(8, 1 << 10, 32);
    let r = run(&comp, cfg, Policy::Pws);
    // With steals there are joins completed by thieves.
    assert!(r.usurpations > 0);
    assert!(r.usurpations <= r.steals * 2);
}

#[test]
fn stack_sharing_produces_block_misses_unpadded() {
    // The up-pass writes into parent frames from thief cores: with
    // unpadded stacks on one region this must produce stack block
    // misses under multi-core PWS.
    let comp = bp_sum(2048, 32, false);
    let cfg = MachineConfig::new(8, 1 << 10, 32);
    let r = run(&comp, cfg, Policy::Pws);
    assert!(
        r.stack_block_misses + r.heap_block_misses > 0,
        "parallel run of a writing computation should block-miss somewhere"
    );
}

#[test]
fn padding_never_increases_stack_block_misses() {
    let plain = bp_sum(2048, 32, false);
    let padded = bp_sum(2048, 32, true);
    let cfg = MachineConfig::new(8, 1 << 12, 32);
    let rp = run(&plain, cfg, Policy::Pws);
    let rq = run(&padded, cfg, Policy::Pws);
    assert!(
        rq.stack_block_misses <= rp.stack_block_misses,
        "padding should not increase stack block misses: {} > {}",
        rq.stack_block_misses,
        rp.stack_block_misses
    );
}

#[test]
fn seq_report_matches_direct_q() {
    let comp = bp_sum(256, 32, false);
    let cfg = MachineConfig::new(8, 1 << 9, 32);
    let seq = run_sequential(&comp, cfg);
    assert!(seq.q_misses > 0);
    assert_eq!(seq.work, comp.work());
    assert_eq!(
        seq.makespan,
        seq.work + seq.q_misses * cfg.miss_cost + comp.forks().count() as u64
    );
}

#[test]
fn bsp_steals_only_top_levels() {
    let comp = bp_sum(1024, 32, false);
    let cfg = MachineConfig::new(8, 1 << 12, 32);
    let levels = 4;
    let r = run(
        &comp,
        cfg,
        Policy::Bsp {
            prefix_levels: levels,
        },
    );
    assert_eq!(r.work, comp.work());
    // only tasks from the top `levels` priorities move: sizes ≥ n/2^4
    let min_size = r.stolen_sizes.iter().min().copied().unwrap_or(u64::MAX);
    assert!(
        min_size >= 1024 >> levels,
        "BSP stole a task of size {min_size}"
    );
    // and strictly fewer steals than full PWS
    let pws = run(&comp, cfg, Policy::Pws);
    assert!(r.steals <= pws.steals);
}

#[test]
fn bsp_with_full_prefix_equals_pws() {
    let comp = bp_sum(256, 32, false);
    let cfg = MachineConfig::new(4, 1 << 10, 32);
    let a = run(&comp, cfg, Policy::Bsp { prefix_levels: 64 });
    let b = run(&comp, cfg, Policy::Pws);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.steals, b.steals);
}

#[test]
fn l2_hierarchy_reduces_makespan_vs_flat_when_set_fits_l2() {
    // Working set larger than L1 but within the shared L2: the
    // hierarchical machine (§5.2) completes faster than the flat one
    // with the same L1, and slower than a flat machine with a giant L1.
    let comp = bp_sum(4096, 32, false);
    let flat = MachineConfig::new(4, 1 << 8, 32);
    let l2 = flat.with_l2(1 << 16, false);
    let rf = run(&comp, flat, Policy::Pws);
    let rl = run(&comp, l2, Policy::Pws);
    assert!(
        rl.makespan <= rf.makespan,
        "L2 should not slow things down: {} vs {}",
        rl.makespan,
        rf.makespan
    );
    let t = rl.machine.total();
    assert!(t.l2_hits > 0, "second phase reads must hit L2");
}

#[test]
fn partitioned_l2_behaves_like_private_second_level() {
    let comp = bp_sum(2048, 32, false);
    let base = MachineConfig::new(4, 1 << 8, 32);
    let shared = base.with_l2(1 << 14, false);
    let parted = base.with_l2(1 << 14, true);
    let rs = run(&comp, shared, Policy::Pws);
    let rp = run(&comp, parted, Policy::Pws);
    assert_eq!(rs.work, rp.work);
    // shared L2 serves coherence refills cheaply -> at least as many
    // L2 hits as the partitioned variant
    assert!(rs.machine.total().l2_hits >= rp.machine.total().l2_hits);
}

#[test]
fn rws_steals_more_or_equal_small_tasks() {
    // RWS steals shallow tasks too, but lacking rounds it typically
    // performs more total steals than PWS on the same machine.
    let comp = bp_sum(2048, 32, false);
    let cfg = MachineConfig::new(8, 1 << 10, 32);
    let pws = run(&comp, cfg, Policy::Pws);
    let rws = run(&comp, cfg, Policy::Rws { seed: 42 });
    assert!(rws.steals + 8 >= pws.steals);
}
