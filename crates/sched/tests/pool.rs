//! Behavioural tests of the persistent [`NativePool`]: spawn-once /
//! serve-forever lifetime, shutdown idempotence, exactly-once report
//! delivery under concurrent clients, and per-job trace isolation.

use std::sync::Arc;

use hbp_sched::native::{join, DequeKind, NativeConfig, NativePool, SubmitError};
use hbp_sched::Policy;
use hbp_trace::{ClockDomain, EventKind, TraceSink};

/// Recursive join-based sum (same shape as the `native.rs` suite).
fn spin_sum(xs: &[u64], leaf: usize) -> u64 {
    if xs.len() <= leaf {
        let mut acc = 0u64;
        for _ in 0..50 {
            for &x in xs {
                acc = acc.wrapping_add(x).rotate_left(7) ^ x;
            }
        }
        let _ = std::hint::black_box(acc);
        return xs.iter().sum();
    }
    let (l, r) = xs.split_at(xs.len() / 2);
    let (a, b) = join(|| spin_sum(l, leaf), || spin_sum(r, leaf));
    a + b
}

fn cfg(workers: usize, seed: u64) -> NativeConfig {
    NativeConfig {
        workers,
        seed,
        policy: Policy::Rws { seed: 1 },
        deque: DequeKind::ChaseLev,
        ..NativeConfig::default()
    }
}

#[test]
fn one_pool_serves_many_jobs_without_respawning() {
    let pool = NativePool::new(cfg(4, 11));
    for i in 0..16u64 {
        let xs: Vec<u64> = (0..1 << 10).map(|x| x + i).collect();
        let want: u64 = xs.iter().sum();
        let (got, r) = pool
            .submit(move || spin_sum(&xs, 32))
            .expect("live pool accepts jobs")
            .wait();
        assert_eq!(got, want, "job {i}");
        // Per-job reports are counter *deltas*: every job sees its own
        // task count, not the pool's running total.
        assert_eq!(r.work, (1u64 << 10) / 32, "job {i} report is per-job");
        assert_eq!(r.p, 4);
    }
}

#[test]
fn shutdown_twice_is_idempotent_and_does_not_hang() {
    let mut pool = NativePool::new(cfg(3, 5));
    let (got, _) = pool
        .submit(|| 6 * 7)
        .expect("accepts before shutdown")
        .wait();
    assert_eq!(got, 42);
    pool.shutdown();
    pool.shutdown(); // regression: second call must be a no-op, not a double-join
    assert!(matches!(pool.submit(|| 0), Err(SubmitError::ShutDown)));
}

#[test]
fn drop_with_queued_jobs_drains_them() {
    // Dropping a pool with a backlog must neither hang nor abandon
    // accepted jobs: shutdown drains the queue, then joins.
    let pool = NativePool::new(cfg(2, 23));
    let handles: Vec<_> = (0..8u64)
        .map(|i| {
            let xs: Vec<u64> = (0..512).map(|x| x ^ i).collect();
            pool.submit(move || spin_sum(&xs, 64)).expect("accepted")
        })
        .collect();
    drop(pool); // implicit shutdown with jobs still queued
    for (i, h) in handles.into_iter().enumerate() {
        let xs: Vec<u64> = (0..512).map(|x| x ^ i as u64).collect();
        let (got, _) = h.wait();
        assert_eq!(got, xs.iter().sum::<u64>(), "queued job {i} still ran");
    }
}

#[test]
fn concurrent_clients_each_get_every_report_exactly_once() {
    // Acceptance shape: one pool, ≥4 concurrent clients, many mixed
    // jobs, every handle resolves exactly once with the right value.
    let pool = Arc::new(NativePool::new(cfg(4, 31)));
    let clients = 4;
    let jobs_per_client = 64u64;
    let mut threads = Vec::new();
    for c in 0..clients {
        let pool = Arc::clone(&pool);
        threads.push(std::thread::spawn(move || {
            let mut total_work = 0u64;
            for j in 0..jobs_per_client {
                let n = 256 << (j % 3); // mixed sizes
                let xs: Vec<u64> = (0..n).map(|x| x * (c as u64 + 1) + j).collect();
                let want: u64 = xs.iter().sum();
                let (got, r) = pool
                    .submit(move || spin_sum(&xs, 64))
                    .expect("live pool accepts concurrent submissions")
                    .wait();
                assert_eq!(got, want, "client {c} job {j}");
                total_work += r.work;
            }
            total_work
        }));
    }
    let per_client: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    // Work counts are structural (leaves per job), so each client's sum
    // is exact — a duplicated or lost report would break it.
    let want_per_client: u64 = (0..jobs_per_client).map(|j| (256u64 << (j % 3)) / 64).sum();
    for (c, &w) in per_client.iter().enumerate() {
        assert_eq!(w, want_per_client, "client {c} report accounting");
    }
}

#[test]
fn pool_survives_a_panicking_job_and_serves_the_next() {
    let pool = NativePool::new(cfg(4, 43));
    let outcome = pool
        .submit(|| {
            let (_, _) = join(|| 1u64, || -> u64 { panic!("bad request") });
        })
        .expect("accepted")
        .outcome();
    assert!(outcome.result.is_err(), "panic captured, not propagated");
    assert!(
        outcome
            .panics
            .iter()
            .any(|(_, m)| m.contains("bad request")),
        "panic attributed: {:?}",
        outcome.panics
    );
    // The same pool — same workers, no respawn — serves the next job.
    let xs: Vec<u64> = (0..1 << 10).collect();
    let want: u64 = xs.iter().sum();
    let (got, _) = pool
        .submit(move || spin_sum(&xs, 32))
        .expect("still live")
        .wait();
    assert_eq!(got, want);
}

#[test]
fn per_job_traces_are_isolated_and_timestamps_restart() {
    let pool = NativePool::new(cfg(4, 17));
    // Warm the pool with an untraced job first: its events must not
    // leak into the traced jobs' sinks.
    let xs: Vec<u64> = (0..1 << 10).collect();
    let warm = xs.clone();
    pool.submit(move || spin_sum(&warm, 32)).unwrap().wait();
    for round in 0..2 {
        let sink = Arc::new(TraceSink::new(4, ClockDomain::WallNs));
        let xs = xs.clone();
        let (_, r) = pool
            .submit_traced(Some(Arc::clone(&sink)), move || spin_sum(&xs, 64))
            .unwrap()
            .wait();
        let trace = sink.collect();
        let begins = trace.count(|k| matches!(k, EventKind::TaskBegin { .. }));
        let ends = trace.count(|k| matches!(k, EventKind::TaskEnd { .. }));
        assert_eq!(begins, ends, "round {round}: every begun task ends");
        assert_eq!(
            begins, r.work,
            "round {round}: sink holds exactly this job's tasks"
        );
        assert_eq!(trace.segments().unclosed, 0);
        // Timestamps are per-job, not per-pool-lifetime: the root begins
        // near zero even though the pool has been running for a while.
        let first_ts = trace
            .events
            .iter()
            .map(|e| e.t)
            .min()
            .expect("traced events");
        assert!(
            first_ts < 1_000_000_000,
            "round {round}: job-relative timestamps (first = {first_ts}ns)"
        );
    }
}

#[test]
fn queue_depth_reflects_backlog() {
    let pool = NativePool::new(cfg(2, 3));
    // A slow job at the head lets a backlog build up behind it.
    let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let head = pool
        .submit(move || {
            while !g.load(std::sync::atomic::Ordering::Acquire) {
                std::hint::spin_loop();
            }
        })
        .unwrap();
    let tail: Vec<_> = (0..4).map(|i| pool.submit(move || i).unwrap()).collect();
    // The head job may or may not have started; the backlog is ≤ 5 and,
    // once the driver picked the head up, exactly 4.
    assert!(pool.queue_depth() <= 5);
    gate.store(true, std::sync::atomic::Ordering::Release);
    head.wait();
    for (i, h) in tail.into_iter().enumerate() {
        assert_eq!(h.wait().0, i);
    }
    assert_eq!(pool.queue_depth(), 0);
}

// ---------------------------------------------------------------------
// Elasticity (PR 10): the pool's participation target can move in both
// directions — between jobs and mid-job — without losing, duplicating,
// or corrupting work.
// ---------------------------------------------------------------------

use proptest::prelude::*;

#[test]
fn shrink_caps_participation_and_grow_restores_it() {
    let pool = NativePool::new(cfg(4, 7));
    let xs: Vec<u64> = (0..1 << 12).collect();
    let want: u64 = xs.iter().sum();

    // Shrunk to 1, only the driver registers for new jobs: the per-job
    // participation peak is exactly 1, deterministically.
    pool.set_desired_workers(1);
    let x1 = xs.clone();
    let (got, r) = pool.submit(move || spin_sum(&x1, 64)).unwrap().wait();
    assert_eq!(got, want);
    assert_eq!(r.workers_active, 1, "driver-only after shrink");
    assert_eq!(r.work, (1u64 << 12) / 64, "exactly-once accounting");

    // Grown back, parked thieves may rejoin (scheduling decides how
    // many actually get work before the job ends).
    pool.set_desired_workers(4);
    let x2 = xs.clone();
    let (got, r) = pool.submit(move || spin_sum(&x2, 64)).unwrap().wait();
    assert_eq!(got, want);
    assert!(
        (1..=4).contains(&r.workers_active),
        "grown pool peaks within capacity, got {}",
        r.workers_active
    );
    assert_eq!(r.work, (1u64 << 12) / 64, "exactly-once after regrow");
}

#[test]
fn desired_workers_is_clamped_to_capacity() {
    let pool = NativePool::new(cfg(3, 13));
    pool.set_desired_workers(64);
    assert_eq!(pool.desired_workers(), 3, "clamped to capacity");
    pool.set_desired_workers(0);
    assert_eq!(pool.desired_workers(), 1, "driver never retires");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Grow → shrink → grow churn while a stream of jobs flows through
    /// one pool: every job's answer matches the sequential oracle and
    /// its structural task count is exact — a lost task would hang the
    /// join, a duplicated one would inflate `work`. The schedule is
    /// retargeted *between* submissions and the backlog keeps jobs
    /// running *across* retargets, so retirement and rejoin both happen
    /// while work is in flight.
    #[test]
    fn elastic_churn_keeps_every_job_exactly_once(
        seed in 0u64..1024,
        targets in prop::collection::vec(1usize..=4, 4..9),
        lg_sizes in prop::collection::vec(9usize..=11, 8..14),
    ) {
        let pool = NativePool::new(cfg(4, seed));
        // Guarantee both directions at least once, whatever proptest drew.
        let schedule: Vec<usize> =
            [4, 1, 4].iter().chain(targets.iter()).copied().collect();
        let mut handles = Vec::new();
        for (i, &lg) in lg_sizes.iter().enumerate() {
            pool.set_desired_workers(schedule[i % schedule.len()]);
            let n = 1u64 << lg;
            let xs: Vec<u64> = (0..n).map(|x: u64| x.wrapping_mul(seed | 1)).collect();
            let want: u64 = xs.iter().sum();
            let h = pool
                .submit(move || spin_sum(&xs, 64))
                .expect("live pool accepts during churn");
            handles.push((h, want, n));
        }
        for (i, (h, want, n)) in handles.into_iter().enumerate() {
            let (got, r) = h.wait();
            prop_assert_eq!(got, want, "job {} oracle", i);
            prop_assert_eq!(r.work, n / 64, "job {} ran exactly once", i);
            prop_assert!(
                (1..=4).contains(&r.workers_active),
                "job {} peak participation {} out of band", i, r.workers_active
            );
        }
    }
}
