//! Two-level (domain-sharded) stealing: victim-order laws under
//! randomized geometry, the cross-domain depth floor under real steal
//! storms, and the flat-identity guarantee (`domains=1` is structurally
//! the flat pool).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hbp_sched::cl_deque::{ClDeque, Steal};
use hbp_sched::native::{join, NativeConfig, NativePool};
use hbp_sched::policy::native_facet;
use hbp_sched::{DomainMap, DomainSpec, Policy};
use proptest::prelude::*;

fn policies() -> [Policy; 3] {
    [
        Policy::Pws,
        Policy::Rws { seed: 11 },
        Policy::Bsp { prefix_levels: 3 },
    ]
}

/// Recursive join-based sum with busy leaves (same shape as
/// `tests/native.rs`): enough real work per leaf that idle workers
/// actually steal.
fn spin_sum(xs: &[u64], leaf: usize) -> u64 {
    if xs.len() <= leaf {
        let mut acc = 0u64;
        for _ in 0..200 {
            for &x in xs {
                acc = acc.wrapping_add(x).rotate_left(7) ^ x;
            }
        }
        let _ = std::hint::black_box(acc);
        return xs.iter().sum();
    }
    let (l, r) = xs.split_at(xs.len() / 2);
    let (a, b) = join(|| spin_sum(l, leaf), || spin_sum(r, leaf));
    a + b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two-level victim-order law, for every policy facet under
    /// randomized geometry: `plan_probes_sharded` lists **every victim
    /// in the thief's own domain before any victim outside it**, covers
    /// exactly the other `p - 1` workers, and never revisits the local
    /// half once it has moved on.
    #[test]
    fn sharded_plans_are_local_first_for_any_geometry(
        p in 2usize..12,
        k in 1usize..6,
        thief_pick in 0usize..12,
        seed in 1u64..u64::MAX,
        hint_salt in 0u32..97,
    ) {
        let thief = thief_pick % p;
        let map = DomainMap::simulated(p, k);
        let my_dom = map.domain_of(thief);
        let hint = |v: usize| -> u32 { (v as u32).wrapping_mul(hint_salt) % 7 };
        for policy in policies() {
            let facet = native_facet(policy);
            let mut rng = seed;
            let mut out = Vec::new();
            facet.plan_probes_sharded(
                thief,
                p,
                &mut rng,
                &hint,
                &|v| map.domain_of(v),
                my_dom,
                &mut out,
            );
            // Coverage: exactly the other workers, each once.
            let mut sorted = out.clone();
            sorted.sort_unstable();
            let want: Vec<usize> = (0..p).filter(|&v| v != thief).collect();
            prop_assert_eq!(&sorted, &want, "{:?} covers every victim once", policy);
            // Order: once the plan leaves the thief's domain it never
            // returns — i.e. every local victim precedes every remote one.
            let mut left_home = false;
            for &v in &out {
                let local = map.domain_of(v) == my_dom;
                if !local {
                    left_home = true;
                }
                prop_assert!(
                    !(local && left_home),
                    "{:?}: local victim {} after a remote one in {:?} (domains {:?})",
                    policy, v, out, map.labels()
                );
            }
        }
    }
}

/// The runtime's cross-domain admission, replayed as a `ClDeque` steal
/// storm: items are (depth-tagged) tasks, "cross-domain" thieves compose
/// `admit(depth) && cross_admit(depth, floor)` exactly as
/// `steal_from_others` does, local thieves just `admit(depth)`. No cross
/// thief may ever receive a task deeper than the floor, and exactly-once
/// accounting must survive the storm.
fn cross_floor_storm(policy: Policy, floor: u32, n: u64) {
    let facet: Arc<dyn hbp_sched::NativeStealPolicy> = Arc::from(native_facet(policy));
    // Value encoding: id in the low bits, fork depth in the high byte.
    let depth_of = |v: u64| -> u32 { (v >> 56) as u32 };
    let deque: Arc<ClDeque<u64>> = Arc::new(ClDeque::with_capacity(8));
    let done = Arc::new(AtomicBool::new(false));

    let (owner_got, local_got, cross_got) = std::thread::scope(|s| {
        let spawn_thief = |cross: bool| {
            let deque = Arc::clone(&deque);
            let done = Arc::clone(&done);
            let facet = Arc::clone(&facet);
            s.spawn(move || {
                let mut got: Vec<u64> = Vec::new();
                let admit = |v: &u64| {
                    let d = depth_of(*v);
                    facet.admit(d) && (!cross || facet.cross_admit(d, floor))
                };
                loop {
                    match deque.steal_with(admit) {
                        Steal::Data(v) => got.push(v),
                        Steal::Retry => {}
                        Steal::Empty | Steal::Denied => {
                            if done.load(Ordering::Acquire) {
                                match deque.steal_with(admit) {
                                    Steal::Data(v) => got.push(v),
                                    Steal::Retry => continue,
                                    _ => break,
                                }
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
                got
            })
        };
        let locals: Vec<_> = (0..2).map(|_| spawn_thief(false)).collect();
        let crossers: Vec<_> = (0..2).map(|_| spawn_thief(true)).collect();

        let mut owner: Vec<u64> = Vec::new();
        for i in 0..n {
            // Depths cycle 0..8 so both sides of any floor are populated.
            deque.push(((i % 8) << 56) | i);
        }
        while let Some(v) = deque.pop() {
            owner.push(v);
        }
        done.store(true, Ordering::Release);
        let local_got: Vec<Vec<u64>> = locals.into_iter().map(|h| h.join().unwrap()).collect();
        let cross_got: Vec<Vec<u64>> = crossers.into_iter().map(|h| h.join().unwrap()).collect();
        (owner, local_got, cross_got)
    });

    for &v in cross_got.iter().flatten() {
        assert!(
            facet.cross_admit(depth_of(v), floor),
            "{policy:?}: cross-domain thief committed depth {} past floor {floor}",
            depth_of(v)
        );
    }
    for &v in local_got.iter().flatten() {
        assert!(
            facet.admit(depth_of(v)),
            "{policy:?}: local admission violated"
        );
    }
    // Exactly once: ids 0..n each surface on exactly one side.
    let mut seen = vec![0u32; n as usize];
    for &v in owner_got
        .iter()
        .chain(local_got.iter().flatten())
        .chain(cross_got.iter().flatten())
    {
        seen[(v & 0x00ff_ffff_ffff_ffff) as usize] += 1;
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "{policy:?}: lost/duplicated items under the cross-floor storm"
    );
}

#[test]
fn cross_domain_steals_below_the_floor_are_never_committed() {
    for policy in policies() {
        for floor in [0, 2, 5] {
            cross_floor_storm(policy, floor, 20_000);
        }
    }
}

#[test]
fn sharded_pools_compute_correctly_under_every_policy() {
    let xs: Vec<u64> = (0..1 << 13).collect();
    let want: u64 = xs.iter().sum();
    for policy in policies() {
        for domains in [
            DomainSpec::Count(2),
            DomainSpec::Count(4),
            DomainSpec::Tag(2),
        ] {
            let cfg = NativeConfig {
                workers: 4,
                seed: 23,
                policy,
                domains,
                cross_depth: 2,
                ..NativeConfig::default()
            };
            let (got, r) = NativePool::run(cfg, || spin_sum(&xs, 64));
            assert_eq!(got, want, "{policy:?} under {domains:?}");
            assert_eq!(
                r.work,
                ((1usize << 13) / 64) as u64,
                "{policy:?} under {domains:?}: task structure is domain-independent"
            );
        }
    }
}

/// The flat-identity gate, in-process: a `HBP_DOMAINS=1` pool must be
/// structurally identical to a sharded one under `trace_diff`'s
/// structural equality (same tasks, same forks, balanced begins/ends —
/// schedules may differ, structure may not). This is the programmatic
/// twin of CI's `domain-matrix` trace_diff gate.
#[test]
fn domains_one_is_structurally_identical_to_sharded_under_trace_diff() {
    let xs: Vec<u64> = (0..1 << 12).collect();
    let trace_of = |domains: DomainSpec| {
        let cfg = NativeConfig {
            workers: 4,
            seed: 31,
            policy: Policy::Rws { seed: 5 },
            domains,
            ..NativeConfig::default()
        };
        let sink = Arc::new(hbp_trace::TraceSink::new(4, hbp_trace::ClockDomain::WallNs));
        let (_, _) = NativePool::run_traced(cfg, Some(Arc::clone(&sink)), || spin_sum(&xs, 64));
        sink.collect()
    };
    let flat = trace_of(DomainSpec::Count(1));
    let sharded = trace_of(DomainSpec::Count(4));
    assert!(
        flat.domains.is_empty(),
        "a one-domain pool leaves the trace unlabelled (byte-identical to pre-domain traces)"
    );
    assert_eq!(
        sharded.domains,
        vec![0, 1, 2, 3],
        "a 4-domain pool labels every worker lane"
    );
    assert!(
        !flat.events.iter().any(|e| matches!(
            e.kind,
            hbp_trace::EventKind::StealCommit {
                cross_domain: true,
                ..
            }
        )),
        "one domain ⇒ no steal is ever cross-domain"
    );
    let d = hbp_trace::diff(&flat, &sharded);
    assert!(
        d.structurally_equal(),
        "domains=1 must be structurally identical to a sharded pool: {d}"
    );
}
