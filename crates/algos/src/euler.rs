//! Euler-tour tree computations (paper §4.6: "The Euler tour and tree
//! computation algorithms have the same complexity since they are simple
//! applications of the parallel list ranking algorithm").
//!
//! A rooted tree's Euler tour is a linked list over its `2(n−1)` directed
//! edges. Ranking the tour with two weight assignments gives the classic
//! tree statistics, all through [`crate::listrank`]:
//!
//! * `D(e)` = rank with weight 1 on **down** edges: down-edges at or after
//!   `e` in the tour (the tail's weight is forced to 0);
//! * `U(e)` = rank with weight 1 on **up** edges;
//! * for the down edge `e` into `v`:  `depth(v) = U(e) + 2 − D(e)`;
//! * tour position `pos(e) = m − 1 − (D(e) + U(e))`, and
//!   `subtree_size(v) = (pos(up_e) − pos(down_e) + 1) / 2`.

use hbp_model::{BuildConfig, Builder, Computation, GArray};

use crate::listrank::build_rank;

/// The Euler tour of a rooted tree: for each directed edge `2i = (u→v)`,
/// `2i+1 = (v→u)` of `edges[i] = (u, v)` (u the parent), the successor in
/// the tour; the last edge back into the root is the tail (self-loop).
pub fn euler_tour_succ(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    assert!(n >= 2 && edges.len() == n - 1);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n]; // directed edge ids out of v
    for (i, &(u, v)) in edges.iter().enumerate() {
        adj[u].push(2 * i); // u -> v
        adj[v].push(2 * i + 1); // v -> u
    }
    let head = |e: usize| -> usize {
        let (u, v) = edges[e / 2];
        if e.is_multiple_of(2) {
            v
        } else {
            u
        }
    };
    let m = 2 * (n - 1);
    let mut succ = vec![usize::MAX; m];
    for e in 0..m {
        // next(x→y) = the out-edge of y after (y→x) in y's adjacency.
        let y = head(e);
        let twin = e ^ 1;
        let idx = adj[y]
            .iter()
            .position(|&e2| e2 == twin)
            .expect("twin edge in adjacency");
        succ[e] = adj[y][(idx + 1) % adj[y].len()];
    }
    // Cut the circular tour at the root's first out-edge; its predecessor
    // becomes the tail.
    let first = adj[0][0];
    let tail = (0..m).find(|&e| succ[e] == first).expect("tour is a cycle");
    succ[tail] = tail;
    succ
}

/// Results of the Euler-tour tree computation.
pub struct TreeStats {
    /// The recorded computation (two weighted list rankings + combine BPs).
    pub comp: Computation,
    /// `depth[v]` (root = 0).
    pub depth: GArray<u64>,
    /// `subtree_size[v]` (root = n).
    pub size: GArray<u64>,
}

/// Compute every node's depth and subtree size via Euler tour + LR.
///
/// `edges[i] = (parent, child)` with vertex 0 the root.
pub fn tree_stats(
    n: usize,
    edges: &[(usize, usize)],
    cfg: BuildConfig,
    gapping: bool,
) -> TreeStats {
    assert!(n >= 2);
    let succ = euler_tour_succ(n, edges);
    let m = succ.len();
    let w_down: Vec<u64> = (0..m).map(|e| u64::from(e % 2 == 0)).collect();
    let w_up: Vec<u64> = (0..m).map(|e| u64::from(e % 2 == 1)).collect();
    let mut depth_h = None;
    let mut size_h = None;
    let comp = Builder::build(cfg, m as u64, |b| {
        let d = build_rank(b, &succ, &w_down, gapping);
        let u = build_rank(b, &succ, &w_up, gapping);
        let depth = b.alloc::<u64>(n);
        let size = b.alloc::<u64>(n);
        b.poke(depth, 0, 0);
        b.poke(size, 0, n as u64);
        // One BP over the n−1 tree edges computing both statistics
        // (O(1) accesses per leaf; each vertex written exactly once).
        let mm = m as u64;
        hbp_model::builder::fanout_uniform(b, n - 1, 1, &mut |b, i| {
            let (down, up) = (2 * i, 2 * i + 1);
            let v = edges[i].1;
            let d_dn = b.read(d, down);
            let u_dn = b.read(u, down);
            let d_up = b.read(d, up);
            let u_up = b.read(u, up);
            // ups ≤ pos(e) = total_up − U(e) − 1 (the tail up-edge's weight
            // is forced to 0), downs ≤ pos(e) = total_down − D(e) + 1, so
            // depth(v) = U(e) + 2 − D(e); ≥ 1 since every down edge after e
            // closes with an up edge after e.
            b.write(depth, v, u_dn + 2 - d_dn);
            // pos(e) = m-1-(D+U); size = (pos(up) - pos(down) + 1) / 2
            let pos_dn = mm - 1 - (d_dn + u_dn);
            let pos_up = mm - 1 - (d_up + u_up);
            b.write(size, v, (pos_up - pos_dn).div_ceil(2));
        });
        depth_h = Some(depth);
        size_h = Some(size);
    });
    TreeStats {
        comp,
        depth: depth_h.unwrap(),
        size: size_h.unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_tree;
    use crate::util::read_out;

    /// BFS oracle: depths and subtree sizes.
    fn oracle(n: usize, edges: &[(usize, usize)]) -> (Vec<u64>, Vec<u64>) {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            children[u].push(v);
        }
        let mut depth = vec![0u64; n];
        let mut order = vec![0usize];
        let mut i = 0;
        while i < order.len() {
            let u = order[i];
            i += 1;
            for &v in &children[u] {
                depth[v] = depth[u] + 1;
                order.push(v);
            }
        }
        let mut size = vec![1u64; n];
        for &u in order.iter().rev() {
            for &v in &children[u] {
                size[u] += size[v];
            }
        }
        (depth, size)
    }

    #[test]
    fn tour_is_a_single_list_over_all_edges() {
        let n = 32;
        let edges = random_tree(n, 4);
        let succ = euler_tour_succ(n, &edges);
        let ranks = crate::oracle::list_rank(&succ);
        let mut sorted = ranks.clone();
        sorted.sort();
        assert_eq!(sorted, (0..succ.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn depths_and_sizes_match_bfs() {
        for (n, seed) in [(2usize, 1u64), (5, 2), (17, 3), (64, 4), (200, 5)] {
            let edges = random_tree(n, seed);
            let ts = tree_stats(n, &edges, BuildConfig::default(), true);
            let (want_d, want_s) = oracle(n, &edges);
            assert_eq!(read_out(&ts.comp, ts.depth), want_d, "depth n={n}");
            assert_eq!(read_out(&ts.comp, ts.size), want_s, "size n={n}");
        }
    }

    #[test]
    fn path_tree_depths() {
        // path 0-1-2-...: depth(v) = v, size(v) = n - v
        let n = 20;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let ts = tree_stats(n, &edges, BuildConfig::default(), false);
        let d = read_out(&ts.comp, ts.depth);
        let s = read_out(&ts.comp, ts.size);
        for v in 0..n {
            assert_eq!(d[v], v as u64);
            assert_eq!(s[v], (n - v) as u64);
        }
    }

    #[test]
    fn star_tree_depths() {
        let n = 16;
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        let ts = tree_stats(n, &edges, BuildConfig::default(), true);
        let d = read_out(&ts.comp, ts.depth);
        let s = read_out(&ts.comp, ts.size);
        assert_eq!(d[0], 0);
        assert!(d[1..].iter().all(|&x| x == 1));
        assert!(s[1..].iter().all(|&x| x == 1));
        assert_eq!(s[0], n as u64);
    }
}
