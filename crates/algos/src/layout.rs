//! Matrix layout conversions (paper §3.2): the **bit-interleaved (BI)**
//! layout and the four RM↔BI conversion algorithms.
//!
//! BI (Morton / Z-order) recursively stores the top-left quadrant, then
//! top-right, bottom-left, bottom-right; every quadrant at every recursion
//! depth is *contiguous*, which is what gives the matrix algorithms
//! `f(r) = O(1)` and `L(r) = O(1)`.
//!
//! Conversions:
//!
//! * **RM→BI** — quadrant recursion with BI-ordered (contiguous) writes:
//!   `L(r) = O(1)`, reads `f(r) = √r`.
//! * **Direct BI→RM** — the same recursion with RM writes: `L(r) = √r`
//!   (the bad case motivating the next two).
//! * **BI-RM (gap RM)** — writes into a *gapped* RM layout (row chunks of
//!   length `r` separated by `⌈r/log²r⌉`-word gaps at every recursive size
//!   `r`), then a compaction scan. Tasks of size `r²` with
//!   `r = Ω(B log²B)` share **zero** blocks for writing.
//! * **BI-RM for FFT** — √-decomposition into `√m` contiguous BI tiles,
//!   recursive conversion into a stack temporary, then a BP copy in RM
//!   target order: `L(r) = O(1)` at `O(m log log m)` work.

use hbp_model::{BuildConfig, Builder, Computation, GArray};

use crate::util::View;

/// Morton (bit-interleave) index of `(r, c)`: bit `j` of `r` lands at
/// position `2j+1`, bit `j` of `c` at `2j`. Quadrant order is then
/// top-left, top-right, bottom-left, bottom-right — the paper's BI.
pub fn morton(r: u64, c: u64) -> u64 {
    fn spread(mut x: u64) -> u64 {
        // interleave zeros between the low 32 bits
        x &= 0xffff_ffff;
        x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
        x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
        x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
        x = (x | (x << 2)) & 0x3333_3333_3333_3333;
        x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        x
    }
    (spread(r) << 1) | spread(c)
}

/// Inverse of [`morton`].
pub fn morton_decode(m: u64) -> (u64, u64) {
    fn unspread(mut x: u64) -> u64 {
        x &= 0x5555_5555_5555_5555;
        x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
        x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
        x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
        x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
        x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
        x
    }
    (unspread(m >> 1), unspread(m))
}

/// Quadrant recursion shared by RM→BI and direct BI→RM: visits every cell
/// `(r, c)` of the `k×k` matrix in BI task order.
pub(crate) fn quad_rec(
    b: &mut Builder,
    r0: usize,
    c0: usize,
    k: usize,
    leaf: &mut impl FnMut(&mut Builder, usize, usize),
) {
    if k == 1 {
        leaf(b, r0, c0);
        return;
    }
    let h = k / 2;
    let q = (h * h) as u64;
    b.fork_with(2 * q, 2 * q, |b, bottom| {
        let r1 = if bottom { r0 + h } else { r0 };
        b.fork_with(q, q, |b, rightq| {
            let c1 = if rightq { c0 + h } else { c0 };
            quad_rec(b, r1, c1, h, leaf);
        });
    });
}

/// RM→BI (Type 1 HBP): `bi[morton(r,c)] = rm[r·n + c]`.
pub fn rm_to_bi(rm: &[u64], n: usize, cfg: BuildConfig) -> (Computation, GArray<u64>) {
    assert!(n.is_power_of_two() && rm.len() == n * n);
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |b| {
        let src = b.input(rm);
        let dst = b.alloc::<u64>(n * n);
        out_h = Some(dst);
        quad_rec(b, 0, 0, n, &mut |b, r, c| {
            let v = b.read(src, r * n + c);
            b.write(dst, morton(r as u64, c as u64) as usize, v);
        });
    });
    (comp, out_h.unwrap())
}

/// Direct BI→RM (Type 1 HBP): the naive inverse with `L(r) = √r` —
/// horizontally adjacent tasks share Θ(rows) of output blocks.
pub fn bi_to_rm_direct(bi: &[u64], n: usize, cfg: BuildConfig) -> (Computation, GArray<u64>) {
    assert!(n.is_power_of_two() && bi.len() == n * n);
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |b| {
        let src = b.input(bi);
        let dst = b.alloc::<u64>(n * n);
        out_h = Some(dst);
        quad_rec(b, 0, 0, n, &mut |b, r, c| {
            let v = b.read(src, morton(r as u64, c as u64) as usize);
            b.write(dst, r * n + c, v);
        });
    });
    (comp, out_h.unwrap())
}

// ---- gapped RM layout ---------------------------------------------------

/// Gap inserted after each row chunk of length `r`. The paper uses
/// `r/log²r` and notes that "any analogous sequence of iterates also
/// works"; we use `4r/log²r` — same asymptotics, same `O(1)` total blowup
/// (`Σ 4/j²` converges) — so the zero-sharing regime `gap(r) ≥ B` is
/// reached at sizes small enough to exercise in tests and benchmarks.
pub fn gap_of(r: u64) -> u64 {
    if r < 2 {
        2
    } else {
        let l = (r as f64).log2();
        (4.0 * r as f64 / (l * l)).ceil() as u64
    }
}

/// Width of one row of a gapped `k×k` subarray.
pub fn gwidth(k: u64) -> u64 {
    if k <= 1 {
        1
    } else {
        2 * (gwidth(k / 2) + gap_of(k / 2))
    }
}

/// Column offset of column `c` inside a gapped `k`-wide row.
pub fn gcol(c: u64, k: u64) -> u64 {
    if k <= 1 {
        0
    } else {
        let h = k / 2;
        if c < h {
            gcol(c, h)
        } else {
            gwidth(h) + gap_of(h) + gcol(c - h, h)
        }
    }
}

/// Address of `(r, c)` in the gapped RM layout of an `n×n` matrix.
pub fn gapped_index(r: u64, c: u64, n: u64) -> u64 {
    r * gwidth(n) + gcol(c, n)
}

/// BI-RM (gap RM), Type 1+1 HBP: quadrant recursion writing the gapped RM
/// layout (zero write-sharing for tasks of size `≥ (B log²B)²`), then a
/// compaction scan with contiguous RM writes. Returns the dense RM output.
pub fn bi_to_rm_gap(bi: &[u64], n: usize, cfg: BuildConfig) -> (Computation, GArray<u64>) {
    assert!(n.is_power_of_two() && bi.len() == n * n);
    let nn = n as u64;
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |b| {
        let src = b.input(bi);
        let gapped = b.alloc::<u64>((nn * gwidth(nn)) as usize);
        let dst = b.alloc::<u64>(n * n);
        out_h = Some(dst);
        // Phase 1: BI reads, gapped writes.
        quad_rec(b, 0, 0, n, &mut |b, r, c| {
            let v = b.read(src, morton(r as u64, c as u64) as usize);
            b.write(gapped, gapped_index(r as u64, c as u64, nn) as usize, v);
        });
        // Phase 2: compaction scan in RM order (contiguous writes).
        fn compact(
            b: &mut Builder,
            gapped: GArray<u64>,
            dst: GArray<u64>,
            lo: usize,
            hi: usize,
            n: u64,
        ) {
            if hi - lo == 1 {
                let (r, c) = ((lo as u64) / n, (lo as u64) % n);
                let v = b.read(gapped, gapped_index(r, c, n) as usize);
                b.write(dst, lo, v);
                return;
            }
            let mid = lo + (hi - lo) / 2;
            b.fork(
                (mid - lo) as u64,
                (hi - mid) as u64,
                |b| compact(b, gapped, dst, lo, mid, n),
                |b| compact(b, gapped, dst, mid, hi, n),
            );
        }
        compact(b, gapped, dst, 0, n * n, nn);
    });
    (comp, out_h.unwrap())
}

// ---- BI-RM for FFT -------------------------------------------------------

/// Recursive body: convert the contiguous `k×k` BI matrix at `src` into a
/// `k×k` RM matrix at `dst` (both views), `k` any power of two.
pub(crate) fn bi_rm_fft_rec(b: &mut Builder, src: View<u64>, dst: View<u64>, k: usize) {
    if k <= 2 {
        for r in 0..k {
            for c in 0..k {
                let v = src.read(b, morton(r as u64, c as u64) as usize);
                dst.write(b, r * k + c, v);
            }
        }
        return;
    }
    // Tile side t = 2^⌈log₂k / 2⌉ ≈ √k; a g×g grid of contiguous BI tiles.
    let t = 1usize << k.trailing_zeros().div_ceil(2);
    let g = k / t;
    let m = k * k;
    // Stack temporary of Θ(m) words: exactly linear space (Def 3.6).
    let temp = b.local_array::<u64>(m);
    let tv = View::l(temp);
    // Collection of v = g² ≈ √m recursive subproblems of size t² ≈ √m:
    // tile (tr, tc) is contiguous at BI offset morton(tr, tc)·t².
    hbp_model::builder::fanout_uniform(b, g * g, (t * t) as u64, &mut |b, tile| {
        bi_rm_fft_rec(b, src.shift(tile * t * t), tv.shift(tile * t * t), t);
    });
    // BP copy in RM target order (contiguous writes, L = O(1)).
    fn copy(
        b: &mut Builder,
        tv: View<u64>,
        dst: View<u64>,
        lo: usize,
        hi: usize,
        k: usize,
        t: usize,
    ) {
        if hi - lo == 1 {
            let (r, c) = (lo / k, lo % k);
            let (tr, tc) = (r / t, c / t);
            let tile = morton(tr as u64, tc as u64) as usize;
            let v = tv.read(b, tile * (t * t) + (r % t) * t + (c % t));
            dst.write(b, lo, v);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        b.fork(
            (mid - lo) as u64,
            (hi - mid) as u64,
            |b| copy(b, tv, dst, lo, mid, k, t),
            |b| copy(b, tv, dst, mid, hi, k, t),
        );
    }
    copy(b, tv, dst, 0, m, k, t);
}

/// BI-RM for FFT (Type 2 HBP, c = 1, `v(m) ≈ √m`, `s(m) ≈ √m`):
/// `O(m log log m)` work, `L(r) = O(1)`, `f(r) = O(√r)` with a tall cache.
pub fn bi_to_rm_fft(bi: &[u64], n: usize, cfg: BuildConfig) -> (Computation, GArray<u64>) {
    assert!(bi.len() == n * n);
    assert!(n.is_power_of_two(), "n must be a power of two, got {n}");
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |b| {
        let src = b.input(bi);
        let dst = b.alloc::<u64>(n * n);
        out_h = Some(dst);
        bi_rm_fft_rec(b, View::g(src), View::g(dst), n);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::read_out;
    use hbp_model::analysis;

    #[test]
    fn morton_roundtrip_and_order() {
        for r in 0..16u64 {
            for c in 0..16u64 {
                assert_eq!(morton_decode(morton(r, c)), (r, c));
            }
        }
        // quadrant order: TL < TR < BL < BR for 2x2
        assert_eq!(morton(0, 0), 0);
        assert_eq!(morton(0, 1), 1);
        assert_eq!(morton(1, 0), 2);
        assert_eq!(morton(1, 1), 3);
    }

    #[test]
    fn morton_is_hierarchical() {
        // every k×k quadrant at every level is contiguous
        let n = 16u64;
        for level_k in [2u64, 4, 8] {
            for qr in 0..(n / level_k) {
                for qc in 0..(n / level_k) {
                    let base = morton(qr * level_k, qc * level_k);
                    for r in 0..level_k {
                        for c in 0..level_k {
                            let m = morton(qr * level_k + r, qc * level_k + c);
                            assert!(m >= base && m < base + level_k * level_k);
                        }
                    }
                }
            }
        }
    }

    fn rm_data(n: usize) -> Vec<u64> {
        (0..(n * n) as u64).map(|x| x * 17 + 3).collect()
    }

    #[test]
    fn rm_to_bi_correct() {
        for n in [1usize, 2, 4, 8, 16] {
            let rm = rm_data(n);
            let (comp, out) = rm_to_bi(&rm, n, BuildConfig::default());
            let bi = read_out(&comp, out);
            for r in 0..n {
                for c in 0..n {
                    assert_eq!(bi[morton(r as u64, c as u64) as usize], rm[r * n + c]);
                }
            }
        }
    }

    fn bi_data(n: usize) -> Vec<u64> {
        let rm = rm_data(n);
        let mut bi = vec![0u64; n * n];
        for r in 0..n {
            for c in 0..n {
                bi[morton(r as u64, c as u64) as usize] = rm[r * n + c];
            }
        }
        bi
    }

    #[test]
    fn all_bi_to_rm_variants_agree() {
        for n in [2usize, 4, 8, 16, 32] {
            let bi = bi_data(n);
            let rm = rm_data(n);
            let (c1, o1) = bi_to_rm_direct(&bi, n, BuildConfig::default());
            let (c2, o2) = bi_to_rm_gap(&bi, n, BuildConfig::default());
            let (c3, o3) = bi_to_rm_fft(&bi, n, BuildConfig::default());
            assert_eq!(read_out(&c1, o1), rm, "direct n={n}");
            assert_eq!(read_out(&c2, o2), rm, "gap n={n}");
            assert_eq!(read_out(&c3, o3), rm, "fft n={n}");
        }
    }

    #[test]
    fn gapped_layout_is_injective_and_linear_size() {
        for n in [4u64, 8, 16, 32, 64] {
            let mut seen = std::collections::HashSet::new();
            for r in 0..n {
                for c in 0..n {
                    assert!(seen.insert(gapped_index(r, c, n)), "collision at ({r},{c})");
                }
            }
            assert!(
                gwidth(n) <= 16 * n,
                "gapped width must be O(n): gwidth({n}) = {}",
                gwidth(n)
            );
        }
    }

    #[test]
    fn gap_separates_sibling_writes() {
        // In the gapped layout, row chunks of length h are separated by
        // gap_of(h) ≥ 1 words, so sibling half-rows never abut.
        for k in [8u64, 16, 32] {
            let h = k / 2;
            let last_left = gcol(h - 1, k);
            let first_right = gcol(h, k);
            assert!(
                first_right >= last_left + 1 + gap_of(h),
                "k={k}: {first_right} vs {last_left}+1+{}",
                gap_of(h)
            );
        }
    }

    #[test]
    fn write_sharing_direct_vs_gap() {
        // The whole point of gapping: sibling tasks share far fewer written
        // blocks than the direct conversion. With B = 4 the direct layout
        // shares blocks wherever row chunks are narrower than a block,
        // while the gapped layout separates every chunk by ≥ gap ≥ B.
        let n = 16;
        let bw = 4u64;
        let bi = bi_data(n);
        let (cd, _) = bi_to_rm_direct(&bi, n, BuildConfig::with_block(bw));
        let (cg, _) = bi_to_rm_gap(&bi, n, BuildConfig::with_block(bw));
        let max_direct = analysis::l_estimate(&cd, bw)
            .iter()
            .map(|r| r.shared_blocks)
            .max()
            .unwrap_or(0);
        let max_gap = analysis::l_estimate(&cg, bw)
            .iter()
            .map(|r| r.shared_blocks)
            .max()
            .unwrap_or(0);
        assert!(
            max_gap < max_direct,
            "gapping should reduce shared blocks: {max_gap} !< {max_direct}"
        );
        assert!(max_gap <= 2, "gapped sharing is O(1) here, got {max_gap}");
    }

    #[test]
    fn limited_access_all_conversions() {
        let n = 16;
        let bi = bi_data(n);
        for (name, comp) in [
            ("direct", bi_to_rm_direct(&bi, n, BuildConfig::default()).0),
            ("gap", bi_to_rm_gap(&bi, n, BuildConfig::default()).0),
            ("fft", bi_to_rm_fft(&bi, n, BuildConfig::default()).0),
        ] {
            let (g, l) = analysis::write_counts(&comp);
            assert!(g <= 1, "{name}: global words written once, got {g}");
            assert!(l <= 1, "{name}: local words written once, got {l}");
        }
    }
}
