//! The paper's sorting workload for real: **SPMS — Sample, Partition and
//! Merge Sort** (Cole & Ramachandran, "Resource Oblivious Sorting on
//! Multicores", PAPERS.md) as a recorded HBP computation.
//!
//! The List Ranking and Connected Components analyses of the source paper
//! lean on SPMS (`W = O(n log n)`, `T∞ = O(log n log log n)`,
//! `Q = O((n/B) log_M n)`); [`crate::sort`] keeps the earlier
//! `O(n log² n)` HBP **mergesort stand-in** for A/B comparison (registry
//! row "Sort (merge std-in)"), while this module is the "Sort (SPMS)"
//! row. The structure follows the SPMS recursion:
//!
//! 1. **Sort** — split the input into ≈ `√n` chunks of size ≈ `√n`, sort
//!    each recursively into a *gapped* buffer declared by the parent
//!    (block-aligned chunk origins, so concurrently sorting tasks never
//!    share an output block — Def 3.6 fresh stack storage).
//! 2. **Sample** — from each sorted chunk, read a deterministic,
//!    regularly spaced sample (every chunk contributes ≤ `nb` elements);
//!    the splitters are fixed positions of the sorted sample. No
//!    randomness anywhere: two builds over the same input are identical.
//! 3. **Partition** — cut every sorted run at the splitters
//!    (upper-bound, so equal keys always land in one bucket — this is
//!    what makes the sort *stable*). The cut positions are build-time
//!    planning (unrecorded peeks), which is exactly how the recorded
//!    model keeps Def 3.2's **O(1) task heads**: a merge task reads no
//!    more than a constant number of words before forking.
//! 4. **Merge** — each size-balanced bucket (≤ `√n`-ish elements from
//!    ≤ `√n` runs) is merged by the same sample–partition recursion,
//!    bottoming out in O(1)-size leaves that read their elements once
//!    and write them once into a **gapped output buffer**: per-bucket
//!    capacities are rounded up to whole `B`-word blocks, so any memory
//!    block overlaps at most one bucket boundary and the false-sharing
//!    excess of concurrent bucket writers stays within the paper's
//!    O(1)-per-boundary bound. A final parallel compaction copies the
//!    gapped buffer into the caller's contiguous output.
//!
//! ## Fidelity notes (vs the SPMS paper)
//!
//! * Comparisons performed at build time (splitter selection, partition
//!   cuts) record no accesses, so the *measured* work is the data
//!   movement — Θ(n) reads+writes per recursion level over
//!   `O(log log n)` levels plus the sampling reads — slightly below the
//!   claimed `W = O(n log n)` comparison count. The claims column in
//!   Table 1 keeps the paper's bounds.
//! * Degenerate samples (duplicate-heavy inputs) fall back to splitters
//!   drawn from the distinct key values, and single-key buckets merge by
//!   stable concatenation — both deterministic, both preserving the
//!   size-shrinkage the recursion's termination needs.
//!
//! Figures: `table1`, `fig_pws_vs_rws`, `fig_hierarchy`, `fig_bsp`, and
//! `fig_padding` run this row (the last alongside the mergesort
//! stand-in); `trace_report`/`trace_diff` accept it like any registry
//! row. [`crate::cc`] sorts its edge records through [`spms_into`], and
//! [`crate::listrank`] routes its predecessor computation through an
//! SPMS sort of `(successor, node)` records.

use hbp_model::{BuildConfig, Builder, Computation, GArray};

use crate::sort::Keyed;
use crate::util::View;

/// Below this size a task reads the remaining elements and writes them
/// out sorted — the O(1) leaf of the merge recursion.
const SPMS_BASE: usize = 8;

/// A sorted run: `v[lo..hi)` in ascending key order.
#[derive(Debug)]
struct Piece<T: Keyed> {
    v: View<T>,
    lo: usize,
    hi: usize,
}

impl<T: Keyed> Clone for Piece<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Keyed> Copy for Piece<T> {}

impl<T: Keyed> Piece<T> {
    fn len(&self) -> usize {
        self.hi - self.lo
    }
}

/// Elements per allocation block for `T` (≥ 1 even when one element
/// spans several blocks).
fn block_elems<T: Keyed>(b: &Builder) -> usize {
    ((b.block_words() as usize) / T::WORDS).max(1)
}

fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Binary BP over `weights.len()` leaves with the given element weights:
/// forks split the index range at the weighted midpoint, so declared task
/// sizes track the number of elements a subtree touches.
fn fanout_weighted(b: &mut Builder, weights: &[usize], leaf: &mut impl FnMut(&mut Builder, usize)) {
    fn rec(
        b: &mut Builder,
        weights: &[usize],
        lo: usize,
        hi: usize,
        leaf: &mut impl FnMut(&mut Builder, usize),
    ) {
        debug_assert!(hi > lo);
        if hi - lo == 1 {
            leaf(b, lo);
            return;
        }
        let total: usize = weights[lo..hi].iter().sum();
        // Split index minimizing weight imbalance, kept interior.
        let mut mid = lo + 1;
        let mut acc = weights[lo];
        while mid < hi - 1 && acc * 2 < total {
            acc += weights[mid];
            mid += 1;
        }
        let (wl, wr) = (acc, total - acc);
        b.fork_with(wl.max(1) as u64, wr.max(1) as u64, |b, right| {
            if right {
                rec(b, weights, mid, hi, leaf)
            } else {
                rec(b, weights, lo, mid, leaf)
            }
        });
    }
    assert!(!weights.is_empty());
    rec(b, weights, 0, weights.len(), leaf);
}

/// Parallel copy BP: `dst[i] = src[i]` for `i < len`, O(1) leaves.
fn copy_bp<T: Keyed>(b: &mut Builder, src: View<T>, dst: View<T>, len: usize) {
    if len == 0 {
        return;
    }
    if len <= 2 {
        for i in 0..len {
            let v = src.read(b, i);
            dst.write(b, i, v);
        }
        return;
    }
    let mid = len / 2;
    b.fork(
        mid as u64,
        (len - mid) as u64,
        |b| copy_bp(b, src, dst, mid),
        |b| copy_bp(b, src.shift(mid), dst.shift(mid), len - mid),
    );
}

/// Leaf: gather the pieces' elements in run order (recorded reads), order
/// them by key at build time (stably — run order is input order), and
/// write each output word once.
fn leaf_merge<T: Keyed>(b: &mut Builder, pieces: &[Piece<T>], dst: View<T>) {
    let mut items: Vec<T> = Vec::new();
    for p in pieces {
        for i in p.lo..p.hi {
            items.push(p.v.read(b, i));
        }
    }
    items.sort_by_key(Keyed::key); // stable: preserves gather order on ties
    for (i, v) in items.into_iter().enumerate() {
        dst.write(b, i, v);
    }
}

/// First index in sorted `p.v[p.lo..p.hi)` whose key exceeds `key`
/// (upper bound), found with unrecorded build-time peeks.
fn upper_bound<T: Keyed>(b: &Builder, p: &Piece<T>, key: u64) -> usize {
    let (mut lo, mut hi) = (p.lo, p.hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if p.v.peek(b, mid).key() <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Splitter keys for ≈ `nb` size-balanced buckets, from the deterministic
/// regular sample. The sampling reads are recorded through a **parallel
/// BP with O(1) leaves** (the merge task's own head stays O(1), Def 3.2);
/// the sampled values feed the build-time splitter selection via peeks.
/// Strictly increasing; may come back shorter than `nb - 1`.
fn sample_splitters<T: Keyed>(b: &mut Builder, pieces: &[Piece<T>], nb: usize) -> Vec<u64> {
    let mut pos: Vec<(usize, usize)> = Vec::new();
    for (pi, p) in pieces.iter().enumerate() {
        let len = p.len();
        let spp = len.min(nb);
        for t in 1..=spp {
            // Regularly spaced sample positions within the sorted run.
            pos.push((pi, p.lo + (t * len / (spp + 1)).min(len - 1)));
        }
    }
    hbp_model::builder::fanout_uniform(b, pos.len(), 1, &mut |b, t| {
        let (pi, idx) = pos[t];
        let _ = pieces[pi].v.read(b, idx);
    });
    let mut sample: Vec<u64> = pos
        .iter()
        .map(|&(pi, idx)| pieces[pi].v.peek(b, idx).key())
        .collect();
    sample.sort_unstable();
    let mut spl: Vec<u64> = (1..nb).map(|j| sample[j * sample.len() / nb]).collect();
    spl.dedup();
    spl
}

/// Fallback splitters when the sample degenerates (duplicate-heavy
/// inputs): the distinct key values themselves, excluding the maximum so
/// every bucket is a strict subset. Build-time peeks only.
fn distinct_splitters<T: Keyed>(b: &Builder, pieces: &[Piece<T>], nb: usize) -> Vec<u64> {
    let mut keys: Vec<u64> = Vec::new();
    for p in pieces {
        for i in p.lo..p.hi {
            keys.push(p.v.peek(b, i).key());
        }
    }
    keys.sort_unstable();
    keys.dedup();
    debug_assert!(keys.len() >= 2, "single-key ranges concatenate instead");
    keys.pop(); // strip the maximum: the last bucket must be non-trivial
    let d = keys.len();
    let take = d.min(nb.max(2) - 1);
    let mut spl: Vec<u64> = (1..=take).map(|j| keys[j * d / take - 1]).collect();
    spl.dedup();
    spl
}

/// Cut `pieces` at `splitters`: bucket `j` holds keys in
/// `(splitters[j-1], splitters[j]]` (last bucket unbounded above). Equal
/// keys never straddle a bucket. Returns per-bucket piece lists in run
/// order (stability) with empty buckets removed.
fn partition<T: Keyed>(b: &Builder, pieces: &[Piece<T>], splitters: &[u64]) -> Vec<Vec<Piece<T>>> {
    let nb = splitters.len() + 1;
    let mut buckets: Vec<Vec<Piece<T>>> = vec![Vec::new(); nb];
    for p in pieces {
        let mut lo = p.lo;
        for (j, &s) in splitters.iter().enumerate() {
            let cut = upper_bound(b, &Piece { lo, ..*p }, s);
            if cut > lo {
                buckets[j].push(Piece { lo, hi: cut, ..*p });
            }
            lo = cut;
        }
        if p.hi > lo {
            buckets[nb - 1].push(Piece { lo, ..*p });
        }
    }
    buckets.retain(|pcs| !pcs.is_empty());
    buckets
}

/// Merge sorted `pieces` (ascending, run order = stability order) into
/// `dst[0..m)` by the SPMS sample–partition recursion.
fn merge_pieces<T: Keyed>(b: &mut Builder, pieces: &[Piece<T>], dst: View<T>, m: usize) {
    debug_assert_eq!(m, pieces.iter().map(Piece::len).sum::<usize>());
    if pieces.len() == 1 {
        copy_bp(b, pieces[0].v.shift(pieces[0].lo), dst, m);
        return;
    }
    if m <= SPMS_BASE {
        leaf_merge(b, pieces, dst);
        return;
    }
    // Single-key ranges are already merged: stable concatenation.
    let first_key = pieces[0].v.peek(b, pieces[0].lo).key();
    let single_key = pieces
        .iter()
        .all(|p| p.v.peek(b, p.lo).key() == first_key && p.v.peek(b, p.hi - 1).key() == first_key);
    if single_key {
        let weights: Vec<usize> = pieces.iter().map(Piece::len).collect();
        let offs: Vec<usize> = weights
            .iter()
            .scan(0, |acc, &w| {
                let o = *acc;
                *acc += w;
                Some(o)
            })
            .collect();
        fanout_weighted(b, &weights, &mut |b, i| {
            let p = pieces[i];
            copy_bp(b, p.v.shift(p.lo), dst.shift(offs[i]), p.len());
        });
        return;
    }

    // Sample → splitters → size-balanced buckets (upper-bound cuts keep
    // equal keys together). A degenerate sample (no progress: one bucket
    // kept everything) falls back to distinct-value splitters.
    let nb = (m as f64).sqrt().ceil() as usize;
    let mut splitters = sample_splitters(b, pieces, nb.max(2));
    let mut buckets = partition(b, pieces, &splitters);
    if buckets
        .iter()
        .any(|pcs| pcs.iter().map(Piece::len).sum::<usize>() == m)
    {
        splitters = distinct_splitters(b, pieces, nb.max(2));
        buckets = partition(b, pieces, &splitters);
    }
    debug_assert!(buckets.len() >= 2, "partition must make progress");

    // Gapped output buffer: per-bucket capacity rounded up to whole
    // blocks, so no two buckets' writers share a block interior.
    let blk = block_elems::<T>(b);
    let sizes: Vec<usize> = buckets
        .iter()
        .map(|pcs| pcs.iter().map(Piece::len).sum())
        .collect();
    let mut gaps: Vec<usize> = Vec::with_capacity(sizes.len());
    let mut cap = 0usize;
    for &s in &sizes {
        gaps.push(cap);
        cap += round_up(s, blk);
    }
    let gapped = b.local_array::<T>(cap);
    let gv = View::l(gapped);

    // Recursive merges, one per bucket, into the gapped buffer.
    fanout_weighted(b, &sizes, &mut |b, j| {
        merge_pieces(b, &buckets[j], gv.shift(gaps[j]), sizes[j]);
    });

    // Compaction: gapped → contiguous dst (each word written once).
    let mut prefix = 0usize;
    let dsts: Vec<usize> = sizes
        .iter()
        .map(|&s| {
            let o = prefix;
            prefix += s;
            o
        })
        .collect();
    fanout_weighted(b, &sizes, &mut |b, j| {
        copy_bp(b, gv.shift(gaps[j]), dst.shift(dsts[j]), sizes[j]);
    });
}

/// Sort `src[lo..hi)` into `dst[0..hi-lo)` — the SPMS recursion: ≈ `√n`
/// chunks sorted recursively into a block-gapped buffer declared by this
/// task, then merged by sample–partition. Drop-in for
/// [`crate::sort::sort_rec`] (same signature), used by [`crate::cc`] and
/// [`crate::listrank`].
pub(crate) fn spms_into<T: Keyed>(
    b: &mut Builder,
    src: View<T>,
    dst: View<T>,
    lo: usize,
    hi: usize,
) {
    let n = hi - lo;
    debug_assert!(n >= 1);
    if n <= SPMS_BASE {
        let piece = Piece { v: src, lo, hi };
        leaf_merge(b, &[piece], dst);
        return;
    }
    // ≈ √n chunks of ≈ √n elements each.
    let chunks = (n as f64).sqrt().ceil() as usize;
    let q = n.div_ceil(chunks);
    let mut lens: Vec<usize> = Vec::with_capacity(chunks);
    let mut rem = n;
    while rem > 0 {
        let l = rem.min(q);
        lens.push(l);
        rem -= l;
    }
    // Gapped chunk buffer: block-aligned chunk origins (Def 3.6 fresh
    // storage; concurrent chunk sorts never share an output block).
    let blk = block_elems::<T>(b);
    let mut offs: Vec<usize> = Vec::with_capacity(lens.len());
    let mut cap = 0usize;
    for &l in &lens {
        offs.push(cap);
        cap += round_up(l, blk);
    }
    let buf = b.local_array::<T>(cap);
    let bv = View::l(buf);
    fanout_weighted(b, &lens, &mut |b, i| {
        spms_into(b, src, bv.shift(offs[i]), lo + i * q, lo + i * q + lens[i]);
    });
    let pieces: Vec<Piece<T>> = lens
        .iter()
        .enumerate()
        .map(|(i, &l)| Piece {
            v: bv,
            lo: offs[i],
            hi: offs[i] + l,
        })
        .collect();
    merge_pieces(b, &pieces, dst, n);
}

/// SPMS-sort `data` (any [`Keyed`] element), returning the computation
/// and the sorted output array. The companion of
/// [`crate::sort::mergesort`] — same signature, the real algorithm.
pub fn spms<T: Keyed>(data: &[T], cfg: BuildConfig) -> (Computation, GArray<T>) {
    assert!(!data.is_empty());
    let n = data.len();
    let mut out_h = None;
    let comp = Builder::build(cfg, n as u64, |b| {
        let src = b.input(data);
        let dst = b.alloc::<T>(n);
        out_h = Some(dst);
        spms_into(b, View::g(src), View::g(dst), 0, n);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle;
    use crate::util::read_out;
    use hbp_model::analysis;

    fn keyed(n: usize, modulo: u64, seed: u64) -> Vec<(u64, u64)> {
        gen::random_u64s(n, modulo, seed)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64))
            .collect()
    }

    #[test]
    fn sorts_correctly_including_non_powers_of_two() {
        for n in [1usize, 2, 3, 7, 8, 9, 65, 100, 257, 1000] {
            let data = keyed(n, (n as u64) * 2, 42);
            let (comp, out) = spms(&data, BuildConfig::default());
            assert_eq!(
                read_out(&comp, out),
                oracle::sort_pairs(&data),
                "n={n} (payload equality = stability)"
            );
        }
    }

    #[test]
    fn stable_on_duplicate_heavy_inputs() {
        for modulo in [1u64, 2, 3, 10] {
            let data = keyed(300, modulo, 7);
            let (comp, out) = spms(&data, BuildConfig::default());
            assert_eq!(
                read_out(&comp, out),
                oracle::sort_pairs(&data),
                "modulo={modulo}"
            );
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        let n = 100usize;
        let asc: Vec<u64> = (0..n as u64).collect();
        let desc: Vec<u64> = (0..n as u64).rev().collect();
        let eq: Vec<u64> = vec![7; n];
        let two: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        for data in [asc, desc, eq, two] {
            let (comp, out) = spms(&data, BuildConfig::default());
            let mut want = data.clone();
            want.sort_unstable();
            assert_eq!(read_out(&comp, out), want);
        }
    }

    #[test]
    fn limited_access_every_output_word_written_once() {
        let data = keyed(257, 1 << 30, 3);
        let (c, _) = spms(&data, BuildConfig::default().tracked());
        let (g, l) = analysis::write_counts(&c);
        assert!(g <= 1, "global words written once, got {g}");
        assert!(l <= 1, "gapped buffer words written once, got {l}");
    }

    #[test]
    fn span_is_polylog_and_work_below_mergesort() {
        let data = keyed(1 << 10, 1 << 40, 5);
        let (c, _) = spms(&data, BuildConfig::default());
        let s = analysis::span(&c);
        assert!(s < 1024 * 4, "span {s} should be polylog");
        let (cm, _) = crate::sort::mergesort(&data, BuildConfig::default());
        assert!(
            c.work() < cm.work(),
            "SPMS work {} must undercut the O(n log² n) stand-in {}",
            c.work(),
            cm.work()
        );
    }

    #[test]
    fn build_is_deterministic() {
        let data = keyed(777, 50, 9);
        let (a, ah) = spms(&data, BuildConfig::default());
        let (b, bh) = spms(&data, BuildConfig::default());
        assert_eq!(a.work(), b.work());
        assert_eq!(a.n_priorities, b.n_priorities);
        assert_eq!(read_out(&a, ah), read_out(&b, bh));
    }

    #[test]
    fn gapped_buffers_are_block_aligned() {
        // With block_words = 8 and (u64,u64) elements (2 words), bucket
        // capacities round to multiples of 4 elements; heap usage must
        // exceed the dense footprint (the gaps are real).
        let data = keyed(512, 1 << 20, 11);
        let (gapped, _) = spms(&data, BuildConfig::with_block(64));
        let (snug, _) = spms(&data, BuildConfig::with_block(2));
        let frames_gapped: u32 = gapped.nodes.iter().map(|n| n.frame_words).sum();
        let frames_snug: u32 = snug.nodes.iter().map(|n| n.frame_words).sum();
        assert!(
            frames_gapped > frames_snug,
            "block-aligned gaps must grow the stack footprint: {frames_gapped} vs {frames_snug}"
        );
    }
}
