//! Composed pipelines from §3.2: **RM-MT** and **RM-Strassen** — the
//! paper's prescription for callers whose matrices live in row-major
//! layout:
//!
//! > "By employing RM to BI initially and suitable versions of BI to RM
//! > conversion at the end, we obtain algorithms RM-MT (use BI-RM (gap
//! > RM)), and RM-Strassen (use BI-RM for FFT)."
//!
//! Each pipeline is recorded as **one** HBP computation (sequenced
//! collections inside the root task), so the scheduler sees the real
//! composition, including the phase transitions where usurpation happens
//! (Lemma 4.6).

use hbp_model::{BuildConfig, Builder, Computation, GArray};

use crate::layout::{bi_rm_fft_rec, gapped_index, gwidth, morton, quad_rec};
use crate::mt::diag;
use crate::strassen::strassen_rec;
use crate::util::View;

/// In-builder RM→BI for `f64` data (bit-cast through `u64` views is not
/// needed: we simply read/write the f64 arrays with the same quadrant
/// recursion).
fn rm_to_bi_f64(b: &mut Builder, src: GArray<f64>, dst: GArray<f64>, n: usize) {
    quad_rec(b, 0, 0, n, &mut |b, r, c| {
        let v = b.read(src, r * n + c);
        b.write(dst, morton(r as u64, c as u64) as usize, v);
    });
}

/// RM-MT (§3.2): transpose a row-major matrix resource-obliviously —
/// RM→BI, MT in BI, then BI-RM (gap RM) with its compaction scan.
pub fn rm_mt(rm: &[f64], n: usize, cfg: BuildConfig) -> (Computation, GArray<f64>) {
    assert!(n.is_power_of_two() && rm.len() == n * n);
    let nn = n as u64;
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |b| {
        let src = b.input(rm);
        let bi = b.alloc::<f64>(n * n);
        let gapped = b.alloc::<f64>((nn * gwidth(nn)) as usize);
        let dst = b.alloc::<f64>(n * n);
        out_h = Some(dst);
        // 1. RM -> BI
        rm_to_bi_f64(b, src, bi, n);
        // 2. MT in BI (in place)
        diag(b, bi, 0, n);
        // 3. BI -> gapped RM
        quad_rec(b, 0, 0, n, &mut |b, r, c| {
            let v = b.read(bi, morton(r as u64, c as u64) as usize);
            b.write(gapped, gapped_index(r as u64, c as u64, nn) as usize, v);
        });
        // 4. compaction scan (contiguous writes)
        fn compact(
            b: &mut Builder,
            gapped: GArray<f64>,
            dst: GArray<f64>,
            lo: usize,
            hi: usize,
            n: u64,
        ) {
            if hi - lo == 1 {
                let (r, c) = ((lo as u64) / n, (lo as u64) % n);
                let v = b.read(gapped, gapped_index(r, c, n) as usize);
                b.write(dst, lo, v);
                return;
            }
            let mid = lo + (hi - lo) / 2;
            b.fork(
                (mid - lo) as u64,
                (hi - mid) as u64,
                |b| compact(b, gapped, dst, lo, mid, n),
                |b| compact(b, gapped, dst, mid, hi, n),
            );
        }
        compact(b, gapped, dst, 0, n * n, nn);
    });
    (comp, out_h.unwrap())
}

/// RM-Strassen (§3.2): multiply two row-major matrices — RM→BI on both
/// inputs (as two parallel collections), Strassen in BI, then BI-RM for
/// FFT on the product.
pub fn rm_strassen(
    a_rm: &[f64],
    b_rm: &[f64],
    n: usize,
    cfg: BuildConfig,
) -> (Computation, GArray<f64>) {
    assert!(n.is_power_of_two() && a_rm.len() == n * n && b_rm.len() == n * n);
    let mut out_h = None;
    let comp = Builder::build(cfg, (n * n) as u64, |b| {
        let a_src = b.input(a_rm);
        let b_src = b.input(b_rm);
        let a_bi = b.alloc::<f64>(n * n);
        let b_bi = b.alloc::<f64>(n * n);
        let c_bi = b.alloc::<f64>(n * n);
        let dst = b.alloc::<f64>(n * n);
        out_h = Some(dst);
        // 1. both conversions in parallel (one fork of two collections)
        b.fork(
            (n * n) as u64,
            (n * n) as u64,
            |b| rm_to_bi_f64(b, a_src, a_bi, n),
            |b| rm_to_bi_f64(b, b_src, b_bi, n),
        );
        // 2. Strassen in BI
        strassen_rec(b, View::g(a_bi), View::g(b_bi), View::g(c_bi), n);
        // 3. BI -> RM via the for-FFT conversion (L = O(1)); it operates on
        //    words, so view the f64 product through a raw-word copy.
        //    (f64 bits are preserved: the conversion only moves words.)
        let c_words = b.alloc::<u64>(n * n);
        fn cast_copy(b: &mut Builder, src: GArray<f64>, dst: GArray<u64>, lo: usize, hi: usize) {
            if hi - lo == 1 {
                let v = b.read(src, lo);
                b.write(dst, lo, v.to_bits());
                return;
            }
            let mid = lo + (hi - lo) / 2;
            b.fork(
                (mid - lo) as u64,
                (hi - mid) as u64,
                |b| cast_copy(b, src, dst, lo, mid),
                |b| cast_copy(b, src, dst, mid, hi),
            );
        }
        cast_copy(b, c_bi, c_words, 0, n * n);
        let rm_words = b.alloc::<u64>(n * n);
        bi_rm_fft_rec(b, View::g(c_words), View::g(rm_words), n);
        fn cast_back(b: &mut Builder, src: GArray<u64>, dst: GArray<f64>, lo: usize, hi: usize) {
            if hi - lo == 1 {
                let v = b.read(src, lo);
                b.write(dst, lo, f64::from_bits(v));
                return;
            }
            let mid = lo + (hi - lo) / 2;
            b.fork(
                (mid - lo) as u64,
                (hi - mid) as u64,
                |b| cast_back(b, src, dst, lo, mid),
                |b| cast_back(b, src, dst, mid, hi),
            );
        }
        cast_back(b, rm_words, dst, 0, n * n);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle;
    use crate::util::read_out;

    #[test]
    fn rm_mt_transposes_row_major() {
        for n in [2usize, 4, 8, 16] {
            let rm = gen::random_matrix(n, 1);
            let (comp, out) = rm_mt(&rm, n, BuildConfig::default());
            assert_eq!(read_out(&comp, out), oracle::transpose_rm(&rm, n), "n={n}");
        }
    }

    #[test]
    fn rm_strassen_multiplies_row_major() {
        for n in [2usize, 4, 8, 16] {
            let a = gen::random_matrix(n, 2);
            let b = gen::random_matrix(n, 3);
            let (comp, out) = rm_strassen(&a, &b, n, BuildConfig::default());
            let got = read_out(&comp, out);
            let want = oracle::matmul_rm(&a, &b, n);
            for i in 0..n * n {
                assert!((got[i] - want[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn pipelines_are_limited_access() {
        let rm = gen::random_matrix(8, 4);
        let (c1, _) = rm_mt(&rm, 8, BuildConfig::default());
        let (c2, _) = rm_strassen(&rm, &rm, 8, BuildConfig::default());
        for comp in [&c1, &c2] {
            let (g, l) = hbp_model::analysis::write_counts(comp);
            // the intermediate BI array is written by the conversion and
            // once more by the in-place transpose: still O(1) per word
            assert!(g <= 2, "global writes O(1), got {g}");
            assert!(l <= 1, "local writes once, got {l}");
        }
    }

    #[test]
    fn pipelines_schedule_under_pws() {
        use hbp_machine::MachineConfig;
        let rm = gen::random_matrix(16, 5);
        let (comp, _) = rm_strassen(&rm, &rm, 16, BuildConfig::with_block(32));
        let cfg = MachineConfig::new(8, 1 << 12, 32);
        let r = hbp_sched::run(&comp, cfg, hbp_sched::Policy::Pws);
        assert_eq!(r.work, comp.work());
        assert!(r.max_steals_per_priority() <= 7);
    }
}
