//! Connected Components (paper §3.2, Table 1: Type 4, `W = O(n log² n)`,
//! `T∞ = O(log³ n · log log n)`).
//!
//! The paper uses the CC algorithm of [11], whose dominant cost is `log n`
//! stages of list-ranking-flavored primitives. We implement the same shape
//! with deterministic **min-label hooking**: each stage
//!
//! 1. emits directed edge records `(L[u] → L[v])` for both directions,
//! 2. sorts them by source label (SPMS, [`crate::spms`] — the real
//!    Sample–Partition–Merge sort, not the mergesort stand-in),
//! 3. min-reduces each run (per-class reduction trees, like M-Sum),
//! 4. hooks every label to `min(own, min-neighbor)`,
//! 5. compresses the hooking forest with pointer doubling
//!    (fresh arrays per round — limited access), and
//! 6. relabels vertices.
//!
//! Labels that survive a stage are local minima of the label graph, so no
//! two adjacent labels survive and the number of live labels at least
//! halves: ≤ log₂ n stages.

use hbp_model::{BuildConfig, Builder, Computation, GArray, Local};

use crate::spms::spms_into;
use crate::util::{ceil_log2, View};

/// Min-reduction over `recs[lo..hi)` values, M-Sum style: children deposit
/// partial minima in parent-frame locals.
fn min_run(b: &mut Builder, recs: GArray<(u64, u64)>, lo: usize, hi: usize, dst: Local<u64>) {
    if hi - lo == 1 {
        let (_, v) = b.read(recs, lo);
        b.wloc(dst, v);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let m1 = b.local(u64::MAX);
    let m2 = b.local(u64::MAX);
    b.fork(
        (mid - lo) as u64,
        (hi - mid) as u64,
        |b| min_run(b, recs, lo, mid, m1),
        |b| min_run(b, recs, mid, hi, m2),
    );
    let v1 = b.rloc(m1);
    let v2 = b.rloc(m2);
    b.wloc(dst, v1.min(v2));
}

/// Connected components: returns per-vertex labels (smallest vertex index
/// in the component).
pub fn connected_components(
    n: usize,
    edges: &[(usize, usize)],
    cfg: BuildConfig,
) -> (Computation, GArray<u64>) {
    assert!(n >= 1);
    let mut out_h = None;
    let comp = Builder::build(cfg, (n + edges.len()).max(1) as u64, |b| {
        let eu = b.input(&edges.iter().map(|&(u, _)| u as u64).collect::<Vec<_>>());
        let ev = b.input(&edges.iter().map(|&(_, v)| v as u64).collect::<Vec<_>>());
        let mut lab = b.input(&(0..n as u64).collect::<Vec<_>>());
        let max_stages = 2 * ceil_log2(n.max(2) as u64) + 2;
        for _stage in 0..max_stages {
            // --- emit directed records between differing labels ----------
            let mut live = 0usize;
            for i in 0..edges.len() {
                if b.peek(lab, b.peek(eu, i) as usize) != b.peek(lab, b.peek(ev, i) as usize) {
                    live += 1;
                }
            }
            if live == 0 {
                break;
            }
            let recs = b.alloc::<(u64, u64)>(2 * live);
            {
                // BP over edges: write both directed records (skip equal
                // labels; slot decided at build, one write per slot).
                let mut slot = 0usize;
                let idxs: Vec<usize> = (0..edges.len())
                    .filter(|&i| {
                        b.peek(lab, b.peek(eu, i) as usize) != b.peek(lab, b.peek(ev, i) as usize)
                    })
                    .collect();
                hbp_model::builder::fanout_uniform(b, idxs.len(), 2, &mut |b, j| {
                    let i = idxs[j];
                    let u = b.read(eu, i) as usize;
                    let v = b.read(ev, i) as usize;
                    let lu = b.read(lab, u);
                    let lv = b.read(lab, v);
                    b.write(recs, slot, (lu, lv));
                    b.write(recs, slot + 1, (lv, lu));
                    slot += 2;
                });
            }
            // --- sort records by source label ----------------------------
            let sorted = b.alloc::<(u64, u64)>(2 * live);
            spms_into(b, View::g(recs), View::g(sorted), 0, 2 * live);
            // --- per-run min-reduction + hooking --------------------------
            let parent = b.alloc::<u64>(n);
            hbp_model::builder::fanout_uniform(b, n, 1, &mut |b, l| {
                b.write(parent, l, l as u64);
            });
            // run boundaries known at build time
            let mut runs: Vec<(u64, usize, usize)> = Vec::new();
            let mut i = 0usize;
            while i < 2 * live {
                let key = b.peek(sorted, i).0;
                let mut j = i + 1;
                while j < 2 * live && b.peek(sorted, j).0 == key {
                    j += 1;
                }
                runs.push((key, i, j));
                i = j;
            }
            hbp_model::builder::fanout_uniform(b, runs.len(), 2, &mut |b, ri| {
                let (key, lo, hi) = runs[ri];
                let m = b.local(u64::MAX);
                min_run(b, sorted, lo, hi, m);
                let mv = b.rloc(m);
                b.write(parent, key as usize, mv.min(key));
            });
            // --- pointer doubling (fresh array per round) -----------------
            let mut p = parent;
            for _ in 0..ceil_log2(n.max(2) as u64) {
                let np = b.alloc::<u64>(n);
                hbp_model::builder::fanout_uniform(b, n, 1, &mut |b, l| {
                    let q = b.read(p, l) as usize;
                    let qq = b.read(p, q);
                    b.write(np, l, qq);
                });
                p = np;
            }
            // --- relabel ---------------------------------------------------
            let nl = b.alloc::<u64>(n);
            hbp_model::builder::fanout_uniform(b, n, 1, &mut |b, v| {
                let l = b.read(lab, v) as usize;
                let r = b.read(p, l);
                b.write(nl, v, r);
            });
            lab = nl;
        }
        out_h = Some(lab);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_graph, random_tree};
    use crate::oracle;
    use crate::util::read_out;

    fn check(n: usize, edges: &[(usize, usize)]) {
        let (comp, out) = connected_components(n, edges, BuildConfig::default());
        let got: Vec<usize> = read_out(&comp, out).iter().map(|&x| x as usize).collect();
        let want = oracle::components(n, edges);
        assert_eq!(got, want, "n={n} edges={edges:?}");
    }

    #[test]
    fn simple_graphs() {
        check(1, &[]);
        check(4, &[]);
        check(4, &[(0, 1), (2, 3)]);
        check(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]); // path
        check(5, &[(0, 4), (4, 2), (2, 0)]); // cycle + isolated
    }

    #[test]
    fn adversarial_label_ordering() {
        // descending path: hooking chains are long, doubling must compress
        let n = 16;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (n - 1 - i, n - 2 - i)).collect();
        check(n, &edges);
    }

    #[test]
    fn random_graphs_match_union_find() {
        for (n, m, seed) in [(16, 10, 1u64), (64, 40, 2), (128, 200, 3), (100, 30, 4)] {
            let edges = random_graph(n, m, seed);
            check(n, &edges);
        }
    }

    #[test]
    fn trees_are_single_component() {
        let n = 64;
        let edges = random_tree(n, 9);
        let (comp, out) = connected_components(n, &edges, BuildConfig::default());
        let got = read_out(&comp, out);
        assert!(got.iter().all(|&l| l == 0));
    }

    #[test]
    fn work_scales_quasilinearly() {
        let e64 = random_graph(64, 128, 5);
        let e128 = random_graph(128, 256, 5);
        let (c1, _) = connected_components(64, &e64, BuildConfig::default());
        let (c2, _) = connected_components(128, &e128, BuildConfig::default());
        let ratio = c2.work() as f64 / c1.work() as f64;
        assert!(ratio < 5.0, "W should grow quasilinearly, ratio {ratio}");
    }
}
