//! Resource-oblivious HBP sorting — the **mergesort stand-in**, kept for
//! A/B comparison against the real SPMS.
//!
//! The paper's List Ranking and Connected Components call the SPMS sorting
//! algorithm of [12] (W = O(n log n), T∞ = O(log n log log n)). Until
//! PR 5 this `O(n log² n)` HBP **mergesort** stood in for it everywhere;
//! the real Sample–Partition–Merge sort now lives in [`crate::spms`] and
//! owns the registry's "Sort (SPMS)" row, the LR/CC call sites, and the
//! figures — this module survives as the "Sort (merge std-in)" row so
//! `table1`, `fig_pws_vs_rws` and `fig_padding` can A/B the two (and as
//! the simplest worked example of a Type 2 HBP sorter). Shape: `c = 1`
//! collection of `v = 2` recursive subproblems of size `s(n) = n/2`,
//! followed by a parallel-merge BP.
//!
//! * Each task sorts into a **fresh stack array declared by its parent**
//!   (exactly-linear-space-bounded, Def 3.6), so every word is written once
//!   per merge level through fresh storage — limited access (Def 2.4).
//! * The merge forks on the median of the larger run and a binary search in
//!   the other (task heads do `O(log)` reads — a documented deviation from
//!   Def 3.2's O(1) heads; total work `O(n log² n)` vs SPMS's
//!   `O(n log n)`).

use hbp_model::{BuildConfig, Builder, Computation, GArray, Wordable};

use crate::util::View;

/// Element with a sort key (shared with [`crate::spms`]).
pub trait Keyed: Wordable {
    /// The 64-bit sort key.
    fn key(&self) -> u64;
}

impl Keyed for u64 {
    fn key(&self) -> u64 {
        *self
    }
}

impl Keyed for (u64, u64) {
    fn key(&self) -> u64 {
        self.0
    }
}

impl Keyed for (u64, u64, u64) {
    fn key(&self) -> u64 {
        self.0
    }
}

/// Binary search: first index in `v[lo..hi)` whose key is ≥ `target`.
/// The reads are recorded — this is the merge task head's O(log) work.
fn lower_bound<T: Keyed>(
    b: &mut Builder,
    v: View<T>,
    mut lo: usize,
    mut hi: usize,
    target: u64,
) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if v.read(b, mid).key() < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Parallel merge BP: merge sorted `x[xl..xr)` and `y[yl..yr)` into
/// `out[ol..)`.
fn merge_rec<T: Keyed>(
    b: &mut Builder,
    x: View<T>,
    xl: usize,
    xr: usize,
    y: View<T>,
    yl: usize,
    yr: usize,
    out: View<T>,
    ol: usize,
) {
    let total = (xr - xl) + (yr - yl);
    if total <= 2 {
        // Leaf: O(1) compare-and-copy.
        let mut items: Vec<T> = Vec::with_capacity(2);
        for i in xl..xr {
            items.push(x.read(b, i));
        }
        for i in yl..yr {
            items.push(y.read(b, i));
        }
        if items.len() == 2 && items[0].key() > items[1].key() {
            items.swap(0, 1);
        }
        for (d, v) in items.into_iter().enumerate() {
            out.write(b, ol + d, v);
        }
        return;
    }
    // Split on the median of the larger run; binary-search the other.
    let (xm, ym) = if xr - xl >= yr - yl {
        let xm = xl + (xr - xl) / 2;
        let pivot = x.read(b, xm).key();
        (xm, lower_bound(b, y, yl, yr, pivot))
    } else {
        let ym = yl + (yr - yl) / 2;
        let pivot = y.read(b, ym).key();
        (lower_bound(b, x, xl, xr, pivot), ym)
    };
    let lsize = (xm - xl) + (ym - yl);
    let rsize = total - lsize;
    b.fork(
        lsize.max(1) as u64,
        rsize.max(1) as u64,
        |b| merge_rec(b, x, xl, xm, y, yl, ym, out, ol),
        |b| merge_rec(b, x, xm, xr, y, ym, yr, out, ol + lsize),
    );
}

/// Sort `src[lo..hi)` into `dst[0..hi-lo)`. The two recursive sorts land in
/// stack arrays declared by this task, then a merge BP writes `dst`.
pub(crate) fn sort_rec<T: Keyed>(
    b: &mut Builder,
    src: View<T>,
    dst: View<T>,
    lo: usize,
    hi: usize,
) {
    let n = hi - lo;
    if n == 1 {
        let v = src.read(b, lo);
        dst.write(b, 0, v);
        return;
    }
    if n == 2 {
        let v0 = src.read(b, lo);
        let v1 = src.read(b, lo + 1);
        let (a, c) = if v0.key() <= v1.key() {
            (v0, v1)
        } else {
            (v1, v0)
        };
        dst.write(b, 0, a);
        dst.write(b, 1, c);
        return;
    }
    let mid = lo + n / 2;
    // Θ(n) stack buffers for the two sorted halves (Def 3.6).
    let left = b.local_array::<T>(mid - lo);
    let right = b.local_array::<T>(hi - mid);
    let lv = View::l(left);
    let rv = View::l(right);
    b.fork(
        (mid - lo) as u64,
        (hi - mid) as u64,
        |b| sort_rec(b, src, lv, lo, mid),
        |b| sort_rec(b, src, rv, mid, hi),
    );
    merge_rec(b, lv, 0, mid - lo, rv, 0, hi - mid, dst, 0);
}

/// Sort `data` (any `Keyed` element), returning the computation and the
/// sorted output array.
pub fn mergesort<T: Keyed>(data: &[T], cfg: BuildConfig) -> (Computation, GArray<T>) {
    assert!(!data.is_empty());
    let n = data.len();
    let mut out_h = None;
    let comp = Builder::build(cfg, n as u64, |b| {
        let src = b.input(data);
        let dst = b.alloc::<T>(n);
        out_h = Some(dst);
        sort_rec(b, View::g(src), View::g(dst), 0, n);
    });
    (comp, out_h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::util::read_out;
    use hbp_model::analysis;

    fn keys(n: usize, mult: u64) -> Vec<(u64, u64)> {
        (0..n as u64)
            .map(|i| (i.wrapping_mul(mult) % (n as u64 * 2), i))
            .collect()
    }

    #[test]
    fn sorts_correctly() {
        for n in [1usize, 2, 3, 5, 16, 64, 257] {
            let data = keys(n, 2654435761);
            let (comp, out) = mergesort(&data, BuildConfig::default());
            let got = read_out(&comp, out);
            let want = oracle::sort_pairs(&data);
            let got_keys: Vec<u64> = got.iter().map(|p| p.0).collect();
            let want_keys: Vec<u64> = want.iter().map(|p| p.0).collect();
            assert_eq!(got_keys, want_keys, "n={n}");
        }
    }

    #[test]
    fn sorts_u64_and_triples() {
        let data: Vec<u64> = vec![5, 3, 9, 1, 1, 8, 0];
        let (comp, out) = mergesort(&data, BuildConfig::default());
        assert_eq!(read_out(&comp, out), vec![0, 1, 1, 3, 5, 8, 9]);

        let t: Vec<(u64, u64, u64)> = vec![(3, 1, 1), (1, 2, 2), (2, 3, 3)];
        let (comp, out) = mergesort(&t, BuildConfig::default());
        let got = read_out(&comp, out);
        assert_eq!(got.iter().map(|x| x.0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        for n in [64usize, 100] {
            // already sorted, reversed, all-equal
            let asc: Vec<u64> = (0..n as u64).collect();
            let desc: Vec<u64> = (0..n as u64).rev().collect();
            let eq: Vec<u64> = vec![7; n];
            for data in [asc.clone(), desc, eq] {
                let (comp, out) = mergesort(&data, BuildConfig::default());
                let mut want = data.clone();
                want.sort();
                assert_eq!(read_out(&comp, out), want);
            }
        }
    }

    #[test]
    fn work_is_near_n_log2_n() {
        let (c64, _) = mergesort(&keys(64, 7919), BuildConfig::default());
        let (c256, _) = mergesort(&keys(256, 7919), BuildConfig::default());
        let ratio = c256.work() as f64 / c64.work() as f64;
        // O(n log² n): ratio ≈ 4·(8/6)² ≈ 7.1; allow slack
        assert!((4.0..10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn limited_access_through_fresh_buffers() {
        let (c, _) = mergesort(&keys(128, 31), BuildConfig::default());
        let (g, l) = analysis::write_counts(&c);
        assert!(g <= 1, "global (output) words written once, got {g}");
        assert!(l <= 1, "each stack buffer word written once, got {l}");
    }

    #[test]
    fn span_is_polylog() {
        let (c, _) = mergesort(&keys(256, 31), BuildConfig::default());
        let s = analysis::span(&c);
        // T∞ = O(log³ n)-ish for this merge; must be far below n
        assert!(s < 256 * 8, "span {s}");
    }
}
